# Empty dependencies file for workloads_extra_test.
# This may be replaced when dependencies are built.
