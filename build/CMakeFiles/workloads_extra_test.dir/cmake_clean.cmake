file(REMOVE_RECURSE
  "CMakeFiles/workloads_extra_test.dir/tests/workloads_extra_test.cpp.o"
  "CMakeFiles/workloads_extra_test.dir/tests/workloads_extra_test.cpp.o.d"
  "workloads_extra_test"
  "workloads_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
