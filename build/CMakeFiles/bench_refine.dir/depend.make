# Empty dependencies file for bench_refine.
# This may be replaced when dependencies are built.
