file(REMOVE_RECURSE
  "CMakeFiles/bench_refine.dir/bench/bench_refine.cpp.o"
  "CMakeFiles/bench_refine.dir/bench/bench_refine.cpp.o.d"
  "bench_refine"
  "bench_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
