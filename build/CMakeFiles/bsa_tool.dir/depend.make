# Empty dependencies file for bsa_tool.
# This may be replaced when dependencies are built.
