file(REMOVE_RECURSE
  "CMakeFiles/bsa_tool.dir/examples/bsa_tool.cpp.o"
  "CMakeFiles/bsa_tool.dir/examples/bsa_tool.cpp.o.d"
  "bsa_tool"
  "bsa_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsa_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
