# Empty dependencies file for bsa_property_test.
# This may be replaced when dependencies are built.
