file(REMOVE_RECURSE
  "CMakeFiles/bsa_property_test.dir/tests/bsa_property_test.cpp.o"
  "CMakeFiles/bsa_property_test.dir/tests/bsa_property_test.cpp.o.d"
  "bsa_property_test"
  "bsa_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
