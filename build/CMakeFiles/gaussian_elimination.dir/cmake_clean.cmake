file(REMOVE_RECURSE
  "CMakeFiles/gaussian_elimination.dir/examples/gaussian_elimination.cpp.o"
  "CMakeFiles/gaussian_elimination.dir/examples/gaussian_elimination.cpp.o.d"
  "gaussian_elimination"
  "gaussian_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaussian_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
