# Empty dependencies file for gaussian_elimination.
# This may be replaced when dependencies are built.
