file(REMOVE_RECURSE
  "CMakeFiles/gantt_metrics_test.dir/tests/gantt_metrics_test.cpp.o"
  "CMakeFiles/gantt_metrics_test.dir/tests/gantt_metrics_test.cpp.o.d"
  "gantt_metrics_test"
  "gantt_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
