# Empty dependencies file for gantt_metrics_test.
# This may be replaced when dependencies are built.
