file(REMOVE_RECURSE
  "CMakeFiles/dls_test.dir/tests/dls_test.cpp.o"
  "CMakeFiles/dls_test.dir/tests/dls_test.cpp.o.d"
  "dls_test"
  "dls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
