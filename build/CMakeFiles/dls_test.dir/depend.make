# Empty dependencies file for dls_test.
# This may be replaced when dependencies are built.
