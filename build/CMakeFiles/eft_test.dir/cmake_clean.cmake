file(REMOVE_RECURSE
  "CMakeFiles/eft_test.dir/tests/eft_test.cpp.o"
  "CMakeFiles/eft_test.dir/tests/eft_test.cpp.o.d"
  "eft_test"
  "eft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
