# Empty dependencies file for eft_test.
# This may be replaced when dependencies are built.
