file(REMOVE_RECURSE
  "CMakeFiles/topology_property_test.dir/tests/topology_property_test.cpp.o"
  "CMakeFiles/topology_property_test.dir/tests/topology_property_test.cpp.o.d"
  "topology_property_test"
  "topology_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
