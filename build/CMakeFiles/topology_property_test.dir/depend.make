# Empty dependencies file for topology_property_test.
# This may be replaced when dependencies are built.
