file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_random_size.dir/bench/bench_fig4_random_size.cpp.o"
  "CMakeFiles/bench_fig4_random_size.dir/bench/bench_fig4_random_size.cpp.o.d"
  "bench_fig4_random_size"
  "bench_fig4_random_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_random_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
