# Empty dependencies file for fig_common.
# This may be replaced when dependencies are built.
