file(REMOVE_RECURSE
  "CMakeFiles/fig_common.dir/bench/fig_common.cpp.o"
  "CMakeFiles/fig_common.dir/bench/fig_common.cpp.o.d"
  "libfig_common.a"
  "libfig_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
