file(REMOVE_RECURSE
  "libfig_common.a"
)
