file(REMOVE_RECURSE
  "CMakeFiles/static_routing_test.dir/tests/static_routing_test.cpp.o"
  "CMakeFiles/static_routing_test.dir/tests/static_routing_test.cpp.o.d"
  "static_routing_test"
  "static_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
