# Empty dependencies file for static_routing_test.
# This may be replaced when dependencies are built.
