# Empty dependencies file for bench_fig3_regular_size.
# This may be replaced when dependencies are built.
