file(REMOVE_RECURSE
  "CMakeFiles/bsa_test.dir/tests/bsa_test.cpp.o"
  "CMakeFiles/bsa_test.dir/tests/bsa_test.cpp.o.d"
  "bsa_test"
  "bsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
