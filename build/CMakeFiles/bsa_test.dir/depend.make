# Empty dependencies file for bsa_test.
# This may be replaced when dependencies are built.
