file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_example.dir/bench/bench_paper_example.cpp.o"
  "CMakeFiles/bench_paper_example.dir/bench/bench_paper_example.cpp.o.d"
  "bench_paper_example"
  "bench_paper_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
