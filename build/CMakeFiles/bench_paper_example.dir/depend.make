# Empty dependencies file for bench_paper_example.
# This may be replaced when dependencies are built.
