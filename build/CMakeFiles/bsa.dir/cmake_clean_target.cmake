file(REMOVE_RECURSE
  "libbsa.a"
)
