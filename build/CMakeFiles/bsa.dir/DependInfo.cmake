
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dls.cpp" "CMakeFiles/bsa.dir/src/baselines/dls.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/baselines/dls.cpp.o.d"
  "/root/repo/src/baselines/eft.cpp" "CMakeFiles/bsa.dir/src/baselines/eft.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/baselines/eft.cpp.o.d"
  "/root/repo/src/baselines/list_common.cpp" "CMakeFiles/bsa.dir/src/baselines/list_common.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/baselines/list_common.cpp.o.d"
  "/root/repo/src/baselines/mh.cpp" "CMakeFiles/bsa.dir/src/baselines/mh.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/baselines/mh.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "CMakeFiles/bsa.dir/src/common/cli.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/common/cli.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/bsa.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/bsa.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/bsa.cpp" "CMakeFiles/bsa.dir/src/core/bsa.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/core/bsa.cpp.o.d"
  "/root/repo/src/core/pivot.cpp" "CMakeFiles/bsa.dir/src/core/pivot.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/core/pivot.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "CMakeFiles/bsa.dir/src/core/refine.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/core/refine.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "CMakeFiles/bsa.dir/src/core/serialization.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/core/serialization.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "CMakeFiles/bsa.dir/src/exp/experiment.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/exp/experiment.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "CMakeFiles/bsa.dir/src/graph/graph_io.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/graph_stats.cpp" "CMakeFiles/bsa.dir/src/graph/graph_stats.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/graph/graph_stats.cpp.o.d"
  "/root/repo/src/graph/levels.cpp" "CMakeFiles/bsa.dir/src/graph/levels.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/graph/levels.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "CMakeFiles/bsa.dir/src/graph/task_graph.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/graph/task_graph.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "CMakeFiles/bsa.dir/src/graph/traversal.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/graph/traversal.cpp.o.d"
  "/root/repo/src/network/cost_model.cpp" "CMakeFiles/bsa.dir/src/network/cost_model.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/network/cost_model.cpp.o.d"
  "/root/repo/src/network/routing.cpp" "CMakeFiles/bsa.dir/src/network/routing.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/network/routing.cpp.o.d"
  "/root/repo/src/network/topology.cpp" "CMakeFiles/bsa.dir/src/network/topology.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/network/topology.cpp.o.d"
  "/root/repo/src/runtime/result_sink.cpp" "CMakeFiles/bsa.dir/src/runtime/result_sink.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/runtime/result_sink.cpp.o.d"
  "/root/repo/src/runtime/scenario.cpp" "CMakeFiles/bsa.dir/src/runtime/scenario.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/runtime/scenario.cpp.o.d"
  "/root/repo/src/runtime/sweep_runner.cpp" "CMakeFiles/bsa.dir/src/runtime/sweep_runner.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/runtime/sweep_runner.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "CMakeFiles/bsa.dir/src/runtime/thread_pool.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/sched/assignment.cpp" "CMakeFiles/bsa.dir/src/sched/assignment.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/assignment.cpp.o.d"
  "/root/repo/src/sched/event_sim.cpp" "CMakeFiles/bsa.dir/src/sched/event_sim.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/event_sim.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "CMakeFiles/bsa.dir/src/sched/gantt.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/gantt.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "CMakeFiles/bsa.dir/src/sched/metrics.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/metrics.cpp.o.d"
  "/root/repo/src/sched/retime.cpp" "CMakeFiles/bsa.dir/src/sched/retime.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/retime.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "CMakeFiles/bsa.dir/src/sched/schedule.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/schedule_io.cpp" "CMakeFiles/bsa.dir/src/sched/schedule_io.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/schedule_io.cpp.o.d"
  "/root/repo/src/sched/timeline.cpp" "CMakeFiles/bsa.dir/src/sched/timeline.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/timeline.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "CMakeFiles/bsa.dir/src/sched/validate.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/sched/validate.cpp.o.d"
  "/root/repo/src/workloads/random_dag.cpp" "CMakeFiles/bsa.dir/src/workloads/random_dag.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/workloads/random_dag.cpp.o.d"
  "/root/repo/src/workloads/regular.cpp" "CMakeFiles/bsa.dir/src/workloads/regular.cpp.o" "gcc" "CMakeFiles/bsa.dir/src/workloads/regular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
