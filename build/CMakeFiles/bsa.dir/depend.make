# Empty dependencies file for bsa.
# This may be replaced when dependencies are built.
