file(REMOVE_RECURSE
  "CMakeFiles/mh_test.dir/tests/mh_test.cpp.o"
  "CMakeFiles/mh_test.dir/tests/mh_test.cpp.o.d"
  "mh_test"
  "mh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
