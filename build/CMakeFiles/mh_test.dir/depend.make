# Empty dependencies file for mh_test.
# This may be replaced when dependencies are built.
