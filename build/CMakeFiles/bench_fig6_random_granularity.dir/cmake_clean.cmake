file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_random_granularity.dir/bench/bench_fig6_random_granularity.cpp.o"
  "CMakeFiles/bench_fig6_random_granularity.dir/bench/bench_fig6_random_granularity.cpp.o.d"
  "bench_fig6_random_granularity"
  "bench_fig6_random_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_random_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
