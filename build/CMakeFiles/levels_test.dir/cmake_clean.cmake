file(REMOVE_RECURSE
  "CMakeFiles/levels_test.dir/tests/levels_test.cpp.o"
  "CMakeFiles/levels_test.dir/tests/levels_test.cpp.o.d"
  "levels_test"
  "levels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
