# Empty dependencies file for levels_test.
# This may be replaced when dependencies are built.
