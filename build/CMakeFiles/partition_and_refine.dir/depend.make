# Empty dependencies file for partition_and_refine.
# This may be replaced when dependencies are built.
