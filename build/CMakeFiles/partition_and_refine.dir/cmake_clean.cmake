file(REMOVE_RECURSE
  "CMakeFiles/partition_and_refine.dir/examples/partition_and_refine.cpp.o"
  "CMakeFiles/partition_and_refine.dir/examples/partition_and_refine.cpp.o.d"
  "partition_and_refine"
  "partition_and_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_and_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
