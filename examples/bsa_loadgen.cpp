// bsa_loadgen — load generator for the bsa_served scheduling daemon.
//
// Replays a deterministic stream of mixed scheduling requests over
// parallel pipelined connections, skewed toward a configurable hot set
// so the daemon's LRU schedule cache has something to hit. Reports
// client-side latency percentiles, throughput and the observed cache-hit
// count on one greppable summary line.
//
// Also a handy protocol swiss-army knife:
//   --one         send a single schedule request and print the result
//                 (with --export FILE writing the schedule text, for
//                 byte-identity diffs against `bsa_tool --export`)
//   --shutdown    ask the daemon to stop

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fault/failpoint.hpp"
#include "sched/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "workloads/workload_registry.hpp"

namespace {

constexpr const char* kUsage = R"(bsa_loadgen — load generator for bsa_served

Usage: bsa_loadgen [options]

Connection:
  --socket PATH      daemon socket [bsa_served.sock]
  --timeout-ms N     per-response read deadline, negative waits forever
                     [30000]

Load mode (default):
  --requests N       total requests to send [1000]
  --conns N          parallel connections [4]
  --window N         pipelined in-flight requests per connection [8]
  --seed N           base RNG seed for the request stream [1]
  --hot-keys N       distinct requests in the hot set [16]
  --hot-frac F       fraction of traffic drawn from the hot set [0.8]
  --cold-keys N      distinct requests in the cold pool [100000]
  --workloads LIST   comma-separated workload specs to mix [random]
  --algos LIST       comma-separated scheduler specs to mix [bsa]
  --size N           task count per request [50]
  --procs N          processors per request [8]
  --topology KIND    topology kind [ring]

Single-shot mode:
  --one              send one request built from the flags below and exit
  --workload SPEC    [random]   --algo SPEC  [bsa]     --gran F   [1]
  --het N  [1]       --link-het N [1]        --per-pair
  --validate         --no-cache (bypass the daemon's schedule cache)
  --export FILE      write the returned schedule text to FILE

Chaos mode (compose with load mode):
  --chaos SPEC       arm *client-process* failpoints (injected read/write
                     errno, short I/O, disconnects — docs/DESIGN_FAULT.md)
                     and switch workers from pipelining to one-at-a-time
                     RPC through the retrying client
  --retries N        retries per request in chaos mode [3]

Control:
  --shutdown         ask the daemon to shut down and exit
  --help             show this message

The summary line always reports unanswered= (requests that got no typed
response at all) and retries=; a chaos run exits nonzero only when
unanswered > 0.
)";

struct LoadOptions {
  std::string socket;
  std::uint64_t requests = 1000;
  int conns = 4;
  int window = 8;
  std::uint64_t seed = 1;
  std::uint64_t hot_keys = 16;
  double hot_frac = 0.8;
  std::uint64_t cold_keys = 100000;
  std::vector<std::string> workloads;
  std::vector<std::string> algos;
  int size = 50;
  int procs = 8;
  std::string topology = "ring";
  int timeout_ms = 30000;
  bool chaos = false;
  int retries = 3;
};

struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t retries = 0;
};

/// Draw the next request in a worker's stream: hot-set member with
/// probability hot_frac (seed in [1, hot_keys]), otherwise one of
/// cold_keys colder seeds. Workload/algo cycle with the seed so the mix
/// covers every spec without adding a second random stream.
bsa::serve::Request draw_request(const LoadOptions& opt, bsa::Rng& rng) {
  bsa::serve::Request req;
  const bool hot = rng.bernoulli(opt.hot_frac);
  const std::uint64_t pool = hot ? opt.hot_keys : opt.cold_keys;
  const std::uint64_t pick =
      1 + static_cast<std::uint64_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(pool) - 1));
  req.seed = hot ? pick : opt.hot_keys + pick;
  req.workload = opt.workloads[pick % opt.workloads.size()];
  req.algo = opt.algos[pick % opt.algos.size()];
  req.topology = opt.topology;
  req.size = opt.size;
  req.procs = opt.procs;
  return req;
}

/// One connection's worth of traffic: keep `window` requests in flight,
/// matching responses to send timestamps by id.
WorkerResult run_worker(const LoadOptions& opt, int worker,
                        std::uint64_t quota) {
  using Clock = std::chrono::steady_clock;
  WorkerResult result;
  result.latencies_us.reserve(quota);
  bsa::serve::ClientOptions copt;
  copt.read_timeout_ms = opt.timeout_ms;
  auto client = bsa::serve::Client::connect(opt.socket, copt);
  bsa::Rng rng(bsa::derive_seed(opt.seed, 1000 + worker));

  std::map<std::uint64_t, Clock::time_point> in_flight;
  std::uint64_t sent = 0;
  while (sent < quota || !in_flight.empty()) {
    while (sent < quota &&
           in_flight.size() < static_cast<std::size_t>(opt.window)) {
      const std::uint64_t id = client.send(draw_request(opt, rng));
      in_flight.emplace(id, Clock::now());
      ++sent;
    }
    const bsa::serve::Response resp = client.recv();
    const auto it = in_flight.find(resp.id);
    if (it == in_flight.end()) continue;
    result.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - it->second)
            .count());
    in_flight.erase(it);
    if (resp.ok) {
      ++result.ok;
      if (resp.cached) ++result.cache_hits;
    } else {
      ++result.errors;
    }
  }
  return result;
}

/// Chaos-mode traffic: one request at a time through the retrying
/// client (pipelining cannot pair with per-request retries — a resend
/// would reorder the window). Injected client-process faults surface as
/// transport errors here; a request is `unanswered` only when every
/// retry was spent without a typed response.
WorkerResult run_worker_chaos(const LoadOptions& opt, int worker,
                              std::uint64_t quota) {
  using Clock = std::chrono::steady_clock;
  WorkerResult result;
  result.latencies_us.reserve(quota);
  bsa::serve::ClientOptions copt;
  copt.read_timeout_ms = opt.timeout_ms;
  bsa::serve::RetryPolicy policy;
  policy.max_attempts = opt.retries + 1;
  // The per-call attempt cap is the governor here; the budget only
  // guards against a fully dead daemon.
  policy.retry_budget = static_cast<int>(
      std::min<std::uint64_t>(quota * static_cast<std::uint64_t>(opt.retries),
                              1u << 20));
  policy.seed = bsa::derive_seed(opt.seed, 2000 + worker);
  bsa::serve::RetryingClient client(opt.socket, copt, policy);
  bsa::Rng rng(bsa::derive_seed(opt.seed, 1000 + worker));

  for (std::uint64_t i = 0; i < quota; ++i) {
    const bsa::serve::Request req = draw_request(opt, rng);
    const Clock::time_point t0 = Clock::now();
    try {
      const bsa::serve::Response resp = client.call(req);
      result.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
      if (resp.ok) {
        ++result.ok;
        if (resp.cached) ++result.cache_hits;
      } else {
        ++result.errors;
      }
    } catch (const std::exception&) {
      ++result.unanswered;
    }
  }
  result.retries = static_cast<std::uint64_t>(client.retries_used());
  return result;
}

int run_load(const LoadOptions& opt) {
  using Clock = std::chrono::steady_clock;
  const int conns = std::max(1, opt.conns);
  std::vector<WorkerResult> results(static_cast<std::size_t>(conns));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(conns));

  const Clock::time_point t0 = Clock::now();
  for (int w = 0; w < conns; ++w) {
    // Spread the total evenly; the first (requests % conns) workers take
    // one extra so every request is sent.
    const std::uint64_t quota =
        opt.requests / static_cast<std::uint64_t>(conns) +
        (static_cast<std::uint64_t>(w) <
                 opt.requests % static_cast<std::uint64_t>(conns)
             ? 1
             : 0);
    workers.emplace_back([&opt, &results, w, quota] {
      results[static_cast<std::size_t>(w)] =
          opt.chaos ? run_worker_chaos(opt, w, quota)
                    : run_worker(opt, w, quota);
    });
  }
  for (std::thread& t : workers) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> latencies;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t retries = 0;
  for (WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    ok += r.ok;
    errors += r.errors;
    cache_hits += r.cache_hits;
    unanswered += r.unanswered;
    retries += r.retries;
  }
  const double p50 =
      latencies.empty() ? 0 : bsa::percentile_of(latencies, 50);
  const double p99 =
      latencies.empty() ? 0 : bsa::percentile_of(latencies, 99);
  const double rps =
      wall_s > 0 ? static_cast<double>(ok + errors) / wall_s : 0;

  // One greppable line — the CI serve-smoke and chaos-smoke steps assert
  // on these fields (new fields go at the end to keep old greps working).
  std::cout << "LOADGEN ok=" << ok << " errors=" << errors
            << " cache_hits=" << cache_hits << " p50_us=" << p50
            << " p99_us=" << p99 << " rps=" << rps
            << " unanswered=" << unanswered << " retries=" << retries
            << std::endl;
  // Under chaos, typed error responses are expected (overload shedding);
  // the invariant is that nothing goes *unanswered*.
  if (opt.chaos) return unanswered == 0 ? 0 : 1;
  return errors == 0 && unanswered == 0 ? 0 : 1;
}

int run_one(const bsa::CliParser& cli, const std::string& socket) {
  bsa::serve::Request req;
  req.workload = cli.get_string("workload", req.workload);
  req.algo = cli.get_string("algo", req.algo);
  req.topology = cli.get_string("topology", req.topology);
  req.size = static_cast<int>(cli.get_int("size", req.size));
  req.gran = cli.get_double("gran", req.gran);
  req.procs = static_cast<int>(cli.get_int("procs", req.procs));
  req.het = static_cast<int>(cli.get_int("het", req.het));
  req.link_het = static_cast<int>(cli.get_int("link-het", req.link_het));
  req.per_pair = cli.get_bool("per-pair", req.per_pair);
  req.seed = cli.get_uint64("seed", req.seed);
  req.validate = cli.get_bool("validate", req.validate);
  if (cli.has("no-cache")) req.use_cache = false;

  bsa::serve::ClientOptions copt;
  copt.read_timeout_ms =
      static_cast<int>(cli.get_int("timeout-ms", copt.read_timeout_ms));
  auto client = bsa::serve::Client::connect(socket, copt);
  const bsa::serve::Response resp = client.call(req);
  if (!resp.ok) {
    std::cerr << "bsa_loadgen: server error: " << resp.error << "\n";
    return 1;
  }
  std::cout << "workload=" << resp.text("workload")
            << " algo=" << resp.text("algo") << " makespan="
            << resp.makespan() << " cached=" << (resp.cached ? 1 : 0)
            << " server_us=" << resp.server_us << std::endl;
  if (cli.has("export")) {
    const std::string path = cli.get_string("export", "");
    std::ofstream out(path, std::ios::trunc);
    BSA_REQUIRE(out.good(), "cannot open --export file '" << path << "'");
    out << resp.schedule_text();
    std::cout << "wrote schedule to " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bsa::CliParser cli(argc, argv);
    if (cli.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    const std::string socket = cli.get_string("socket", "bsa_served.sock");

    if (cli.has("shutdown")) {
      bsa::serve::ClientOptions copt;
      copt.read_timeout_ms =
          static_cast<int>(cli.get_int("timeout-ms", copt.read_timeout_ms));
      auto client = bsa::serve::Client::connect(socket, copt);
      const bsa::serve::Response resp = client.shutdown_server();
      std::cout << "shutdown " << (resp.ok ? "acknowledged" : "failed")
                << std::endl;
      return resp.ok ? 0 : 1;
    }
    if (cli.has("one")) return run_one(cli, socket);

    LoadOptions opt;
    opt.socket = socket;
    opt.requests = cli.get_uint64("requests", opt.requests);
    opt.conns = static_cast<int>(cli.get_int("conns", opt.conns));
    opt.window = static_cast<int>(cli.get_int("window", opt.window));
    BSA_REQUIRE(opt.window > 0, "--window expects a positive depth");
    opt.seed = cli.get_uint64("seed", opt.seed);
    opt.hot_keys = cli.get_uint64("hot-keys", opt.hot_keys);
    opt.hot_frac = cli.get_double("hot-frac", opt.hot_frac);
    BSA_REQUIRE(opt.hot_frac >= 0.0 && opt.hot_frac <= 1.0,
                "--hot-frac expects a fraction in [0,1]");
    opt.cold_keys = cli.get_uint64("cold-keys", opt.cold_keys);
    BSA_REQUIRE(opt.hot_keys > 0 && opt.cold_keys > 0,
                "--hot-keys/--cold-keys expect positive pool sizes");
    opt.size = static_cast<int>(cli.get_int("size", opt.size));
    opt.procs = static_cast<int>(cli.get_int("procs", opt.procs));
    opt.topology = cli.get_string("topology", opt.topology);
    opt.timeout_ms = static_cast<int>(cli.get_int("timeout-ms", opt.timeout_ms));
    opt.retries = static_cast<int>(cli.get_int("retries", opt.retries));
    BSA_REQUIRE(opt.retries >= 0, "--retries expects >= 0");
    if (cli.has("chaos")) {
      opt.chaos = true;
      bsa::fault::configure(cli.get_string("chaos", ""));
      std::cout << "client failpoints armed: " << bsa::fault::active_spec()
                << std::endl;
    }

    const auto& workload_registry = bsa::workloads::WorkloadRegistry::global();
    opt.workloads = workload_registry.split_spec_list(
        cli.get_string("workloads", "random"));
    const auto& scheduler_registry = bsa::sched::SchedulerRegistry::global();
    opt.algos =
        scheduler_registry.split_spec_list(cli.get_string("algos", "bsa"));
    BSA_REQUIRE(!opt.workloads.empty() && !opt.algos.empty(),
                "--workloads/--algos expect at least one spec each");

    return run_load(opt);
  } catch (const std::exception& e) {
    std::cerr << "bsa_loadgen: " << e.what() << "\n";
    return 1;
  }
}
