/// A narrated walkthrough of the paper's §2 example: serialization,
/// pivot selection and bubble-up migration on the 9-task graph of
/// Figure 1 scheduled onto the 4-processor heterogeneous ring of
/// Figure 2 with the Table 1 execution costs.
///
///   $ ./paper_walkthrough
///
/// Unlike bench_paper_example (which prints paper-vs-measured tables),
/// this example focuses on *why* each step happens, tracing the
/// algorithm's quantities as the paper's prose does.

#include <iostream>

#include "core/bsa.hpp"
#include "core/pivot.hpp"
#include "core/serialization.hpp"
#include "graph/graph_io.hpp"
#include "sched/gantt.hpp"
#include "../tests/paper_fixture.hpp"

int main() {
  using namespace bsa;
  namespace pf = bsa::testing;

  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);

  std::cout << "The program graph (Figure 1 reconstruction):\n\n";
  graph::write_text(std::cout, g);

  std::cout << "\nStep 1 — levels and the critical path.\n";
  const auto levels = graph::compute_levels(g);
  std::cout << "  task  t-level  b-level  t+b\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    std::cout << "  " << g.task_name(t) << "    " << levels.t_level[ti]
              << "\t" << levels.b_level[ti] << "\t"
              << levels.t_level[ti] + levels.b_level[ti]
              << (levels.on_critical_path(t) ? "   <- CP" : "") << '\n';
  }
  std::cout << "  CP length (nominal costs): " << levels.cp_length << "\n";

  std::cout << "\nStep 2 — pivot selection: shortest CP under each "
               "processor's actual costs.\n";
  const auto pivot = core::select_first_pivot(g, topo, cm);
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    std::cout << "  P" << (p + 1) << ": CP length "
              << pivot.cp_length_by_proc[static_cast<std::size_t>(p)]
              << (p == pivot.pivot ? "   <- pivot" : "") << '\n';
  }

  std::cout << "\nStep 3 — serialization onto the pivot (CP tasks early, "
               "IB ancestors before them, OB tasks last):\n  ";
  Rng rng(0);
  const auto serial = core::serialize(
      g, cm.exec_costs_on(pivot.pivot), cm.nominal_comm_costs(), rng);
  for (const TaskId t : serial.order) std::cout << g.task_name(t) << ' ';
  std::cout << '\n';

  std::cout << "\nStep 4 — bubble-up migration (breadth-first pivots, "
               "tasks move to neighbours only when they finish no later "
               "and the schedule does not grow):\n";
  const auto result = core::schedule_bsa(g, topo, cm);
  for (const auto& m : result.trace.migrations) {
    std::cout << "  " << g.task_name(m.task) << ": P" << (m.from + 1)
              << " -> P" << (m.to + 1) << "  (finish " << m.old_finish
              << " -> " << m.new_finish << ", schedule length now "
              << m.makespan_after << ")\n";
  }

  std::cout << "\nFinal schedule, length " << result.schedule_length()
            << " (serial start was " << result.trace.initial_serial_length
            << "):\n\n";
  sched::print_gantt(std::cout, result.schedule, 90);
  return 0;
}
