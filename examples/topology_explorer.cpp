/// Domain example: the effect of processor connectivity.
///
///   $ ./topology_explorer [--tasks 120] [--granularity 0.5] [--seeds 3]
///
/// Schedules the same workloads onto eight different 16-processor
/// networks — from a linear chain to a full clique — and reports how
/// schedule length, link utilisation and message hop counts respond to
/// connectivity, for both BSA and DLS. Reproduces the paper's
/// observation that both algorithms benefit from higher connectivity
/// while BSA's advantage is largest on sparse networks.

#include <iostream>
#include <vector>

#include "baselines/dls.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "network/topology.hpp"
#include "sched/metrics.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 120));
  const double granularity = cli.get_double("granularity", 0.5);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  std::vector<net::Topology> topologies;
  topologies.push_back(net::Topology::linear(16));
  topologies.push_back(net::Topology::ring(16));
  topologies.push_back(net::Topology::star(16));
  topologies.push_back(net::Topology::mesh(4, 4));
  topologies.push_back(net::Topology::torus(4, 4));
  topologies.push_back(net::Topology::hypercube(4));
  topologies.push_back(net::Topology::random(16, 2, 8, base_seed));
  topologies.push_back(net::Topology::clique(16));

  std::cout << "connectivity sweep: " << num_tasks
            << "-task random graphs, granularity " << granularity << ", "
            << seeds << " seed(s)\n\n";

  TextTable table({"topology", "links", "BSA", "DLS", "BSA/DLS",
                   "BSA hops/msg", "BSA max link util"});
  for (const auto& topo : topologies) {
    double bsa_sum = 0;
    double dls_sum = 0;
    double hops = 0;
    double crossing = 0;
    double util = 0;
    for (int rep = 0; rep < seeds; ++rep) {
      workloads::RandomDagParams params;
      params.num_tasks = num_tasks;
      params.granularity = granularity;
      params.seed = derive_seed(base_seed, static_cast<std::uint64_t>(rep));
      const auto g = workloads::random_layered_dag(params);
      const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
          g, topo, 1, 50, 1, 50, derive_seed(params.seed, 13));
      const auto bsa_result = core::schedule_bsa(g, topo, cm);
      const auto dls_result = baselines::schedule_dls(g, topo, cm);
      bsa_sum += bsa_result.schedule_length();
      dls_sum += dls_result.schedule_length();
      const auto m = sched::compute_metrics(bsa_result.schedule, cm);
      hops += m.total_hops;
      crossing += m.num_crossing_messages;
      util += m.max_link_utilization;
    }
    table.new_row()
        .cell(topo.name())
        .cell(static_cast<long long>(topo.num_links()))
        .cell(bsa_sum / seeds, 1)
        .cell(dls_sum / seeds, 1)
        .cell(dls_sum > 0 ? bsa_sum / dls_sum : 0.0, 3)
        .cell(crossing > 0 ? hops / crossing : 0.0, 2)
        .cell(util / seeds, 3);
  }
  table.print(std::cout);
  std::cout << "\nreading guide: lower connectivity -> longer schedules and "
               "larger BSA advantage;\nhops/msg shows routes lengthening on "
               "sparse networks.\n";
  return 0;
}
