/// Command-line scheduling tool: read a task graph from a file (or
/// stdin) in the native text format — or generate one from any
/// registered workload spec — pick a topology and cost model on the
/// command line, schedule with any registered algorithm spec, and print
/// the result.
///
///   $ ./bsa_tool graph.tg --topology ring --procs 8 --algo bsa --gantt
///   $ ./bsa_tool graph.tg --algo bsa:gate=always,route=static --algo dls
///   $ ./bsa_tool --workload fft:points=64 --algo all --procs 16
///   $ ./bsa_tool --workload all --size 80 --algo bsa --out runs.jsonl
///   $ cat graph.tg | ./bsa_tool --algo all --threads 3 --out runs.jsonl
///
/// Graph format (see graph::read_text):
///   task <cost> [name]
///   edge <src> <dst> <cost>
///
/// Run `bsa_tool --help` for the flag reference; the full spec grammar
/// for --algo and --workload lives in docs/SPECS.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "exp/experiment.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "obs/decision_log.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/gantt.hpp"
#include "sched/scheduler.hpp"
#include "sched/schedule_io.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/workload_registry.hpp"

namespace {

using namespace bsa;

constexpr const char* kUsage = R"(usage: bsa_tool [graph.tg] [flags]

Reads a task graph from a file (or stdin), or generates one per
--workload spec, and schedules it with every requested --algo spec.

  --workload SPEC[,SPEC...]  generate graphs from the workload registry
                     (repeatable; "all" = every registered workload;
                     e.g. fft:points=64,ccr=0.5 or stencil:rows=8,cols=8)
  --size N           target task count for scalable workloads (default 100)
  --gran G           granularity (avg exec / avg comm) for generated
                     workloads (default 1.0; a spec's ccr= option wins)
  --list-workloads   print the registered workload names and exit
  --algo SPEC[,SPEC...]  scheduler registry specs (default bsa;
                     repeatable; "all" = every registered algorithm;
                     variants like bsa:gate=always,route=static).
                     --bsa/--dls/--eft/--mh boolean aliases also work.
  --list-algos       print the registered algorithm names and exit
  --topology ring|hypercube|clique|mesh|random|linear|star  (default ring)
  --procs N          processor count (default 8)
  --het N / --link-het N   heterogeneity ranges U[1,N]  (default 1)
  --per-pair         per-(task,processor) factors instead of speeds
  --seed S           RNG seed
  --threads N        run the requested algorithms concurrently (0 = all cores)
  --gantt            render an ASCII Gantt chart
  --dot              print the graph(s) in Graphviz DOT and exit
  --stats            print workload statistics before scheduling
  --export FILE      write the (last) schedule in text form to FILE
  --export-csv FILE  write the (last) schedule as CSV event rows
  --out FILE         append one JSONL metrics row per algorithm run
  --validate         run the full invariant checker and report

Observability (tracing/logging never changes any schedule or table;
see docs/DESIGN_OBS.md):
  --counters         print each run's deterministic algorithm counters
                     (and add ctr:* columns to --out rows)
  --trace FILE       write a Chrome trace-event JSON of the runs
                     (load in Perfetto or chrome://tracing)
  --decision-log FILE  stream BSA's per-migration-attempt decisions as
                     JSONL (one "migration" event per attempt)
  --progress         live done/total meter on stderr (auto-disabled
                     when stderr is not a terminal)

Spec grammar reference (both registries, every option): docs/SPECS.md
)";

void report(const std::string& name, const sched::Schedule& s,
            const net::HeterogeneousCostModel& cm, bool gantt,
            const std::optional<sched::ValidationReport>& validation) {
  std::cout << "--- " << name << " ---\n";
  sched::print_listing(std::cout, s);
  if (gantt) {
    std::cout << '\n';
    sched::print_gantt(std::cout, s, 96);
  }
  const auto metrics = sched::compute_metrics(s, cm);
  std::cout << "crossing messages: " << metrics.num_crossing_messages
            << ", total hops: " << metrics.total_hops
            << ", avg processor utilisation: "
            << metrics.avg_proc_utilization << '\n';
  if (validation.has_value()) {
    std::cout << "validation: " << validation->to_string() << '\n';
  }
  std::cout << '\n';
}

/// One input graph: from a file/stdin ("external") or a workload spec.
struct Input {
  std::string workload;  ///< canonical workload spec, or "external"
  graph::TaskGraph g;
};

/// Shared observability state for one bsa_tool invocation (all fields
/// optional; a default ObsState is "everything off").
struct ObsState {
  obs::Tracer* tracer = nullptr;
  std::ostream* decision_out = nullptr;
  bool print_counters = false;
  obs::ProgressMeter* meter = nullptr;
  std::atomic<std::size_t> runs_done{0};
};

/// Schedule `input` with every requested algorithm and report/export.
/// When `keep_last` is non-null the last schedule is moved into it
/// (for --export on the final input).
/// `row_index` numbers JSONL rows consecutively across all inputs of
/// one invocation (the spec's documented "unique enumeration position").
void schedule_input(const CliParser& cli, const Input& input,
                    const net::Topology& topo, const std::string& topo_kind,
                    const std::vector<std::string>& specs,
                    runtime::ThreadPool& pool, runtime::JsonlSink* jsonl,
                    std::size_t* row_index, ObsState& obs_state,
                    std::optional<sched::Schedule>* keep_last) {
  const sched::SchedulerRegistry& registry =
      sched::SchedulerRegistry::global();
  const graph::TaskGraph& g = input.g;
  const int procs = static_cast<int>(cli.get_int("procs", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int het = static_cast<int>(cli.get_int("het", 1));
  const int link_het = static_cast<int>(cli.get_int("link-het", 1));
  const auto cm =
      cli.get_bool("per-pair", false)
          ? net::HeterogeneousCostModel::uniform(g, topo, 1, het, 1,
                                                 link_het, seed)
          : net::HeterogeneousCostModel::uniform_processor_speeds(
                g, topo, 1, het, 1, link_het, seed);

  if (input.workload != runtime::kExternalWorkload) {
    std::cout << "workload: " << input.workload << '\n';
  }
  std::cout << "graph: " << g.num_tasks() << " tasks, " << g.num_edges()
            << " messages, granularity " << g.granularity() << '\n'
            << "system: " << topo.name() << ", heterogeneity U[1," << het
            << "] exec / U[1," << link_het << "] links\n\n";
  if (cli.get_bool("stats", false)) {
    graph::print_stats(std::cout, graph::compute_stats(g));
    std::cout << '\n';
  }

  const bool gantt = cli.get_bool("gantt", false);
  const bool run_validate = cli.get_bool("validate", false);

  struct Run {
    std::string spec;   ///< canonical registry spec
    std::string name;   ///< display label for the report
    std::unique_ptr<sched::Scheduler> scheduler;
    std::optional<sched::Schedule> schedule;
    obs::CounterSnapshot counters;
    /// Per-run decision collector so parallel runs never interleave in
    /// the --decision-log file; written out in request order below.
    std::unique_ptr<obs::CollectingDecisionLog> decisions;
    double wall_ms = 0;
  };
  std::vector<Run> runs;
  for (const std::string& spec : specs) {
    // resolve() rejects unknown names/options with a message listing
    // the registered choices — surfaced via main's catch block.
    Run r;
    r.scheduler = registry.resolve(spec);
    r.spec = r.scheduler->spec();
    r.name = r.scheduler->display_label();
    // Overlapping requests ("--algo all --bsa") collapse to one run per
    // canonical spec so reports and JSONL rows aren't duplicated.
    bool duplicate = false;
    for (const Run& seen : runs) duplicate = duplicate || seen.spec == r.spec;
    if (duplicate) continue;
    if (obs_state.decision_out != nullptr) {
      r.decisions = std::make_unique<obs::CollectingDecisionLog>();
    }
    runs.push_back(std::move(r));
  }

  // The graph, topology and cost model are immutable and scheduler
  // instances are stateless, so the requested algorithms can run
  // concurrently; reports stay in request order.
  pool.parallel_for(runs.size(), 1, [&](std::size_t i) {
    Run& r = runs[i];
    obs::Hooks hooks;
    hooks.tracer = obs_state.tracer;
    hooks.trace_tid =
        static_cast<std::uint32_t>(runtime::current_worker_id() + 1);
    hooks.decision_log = r.decisions.get();
    const auto t0 = std::chrono::steady_clock::now();
    sched::SchedulerResult result =
        r.scheduler->run_observed(g, topo, cm, seed, hooks);
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    r.schedule = std::move(result.schedule);
    r.counters = std::move(result.counters);
    if (obs_state.meter != nullptr) {
      obs_state.meter->update(obs_state.runs_done.fetch_add(1) + 1);
    }
  });

  // Decision logs drain serially in request order — the file is
  // deterministic however the runs were scheduled above.
  if (obs_state.decision_out != nullptr) {
    for (const Run& r : runs) {
      for (const obs::MigrationDecision& d : r.decisions->decisions()) {
        *obs_state.decision_out << obs::decision_to_jsonl(d, r.spec) << '\n';
      }
    }
  }

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    // Validate at most once per schedule; --validate prints the full
    // report and --out records the verdict.
    std::optional<sched::ValidationReport> validation;
    if (run_validate || jsonl != nullptr) {
      validation = sched::validate(*r.schedule, cm);
    }
    report(r.name, *r.schedule, cm, gantt,
           run_validate ? validation : std::nullopt);
    if (obs_state.print_counters && !r.counters.empty()) {
      std::cout << "counters (" << r.name << "):\n";
      for (const auto& [counter_name, value] : r.counters) {
        std::cout << "  " << counter_name << " = " << value << '\n';
      }
      std::cout << '\n';
    }
    if (jsonl != nullptr) {
      runtime::ScenarioResult row;
      row.spec.index = (*row_index)++;
      row.spec.workload = input.workload;
      row.spec.size = g.num_tasks();
      row.spec.granularity = g.granularity();
      row.spec.topology = topo_kind;
      row.spec.procs = procs;
      row.spec.het_lo = 1;
      row.spec.het_hi = het;
      row.spec.link_het_lo = 1;
      row.spec.link_het_hi = link_het;
      row.spec.per_pair = cli.get_bool("per-pair", false);
      row.spec.algo = r.spec;
      row.spec.instance_seed = seed;
      row.schedule_length = r.schedule->makespan();
      row.wall_ms = r.wall_ms;
      row.valid = validation->ok();
      row.counters = r.counters;
      jsonl->consume(row);
    }
  }
  if (keep_last != nullptr) *keep_last = std::move(runs.back().schedule);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  try {
    if (cli.get_bool("help", false)) {
      std::cout << kUsage;
      return 0;
    }
    const sched::SchedulerRegistry& registry =
        sched::SchedulerRegistry::global();
    const workloads::WorkloadRegistry& workload_registry =
        workloads::WorkloadRegistry::global();
    if (cli.get_bool("list-algos", false)) {
      for (const std::string& name : registry.names()) {
        std::cout << name << '\n';
      }
      return 0;
    }
    if (cli.get_bool("list-workloads", false)) {
      for (const std::string& name : workload_registry.names()) {
        std::cout << name << '\n';
      }
      return 0;
    }

    // Collect the requested workload specs ("all" = every registered
    // workload). With none, the graph comes from a file or stdin.
    std::vector<std::string> workload_specs;
    for (const std::string& value : cli.get_strings("workload")) {
      for (const std::string& item :
           workload_registry.split_spec_list(value)) {
        if (ascii_lower(item) == "all") {
          for (const std::string& name : workload_registry.names()) {
            workload_specs.push_back(name);
          }
        } else {
          workload_specs.push_back(item);
        }
      }
    }

    const int target = static_cast<int>(cli.get_int("size", 100));
    const double gran = cli.get_double("gran", 1.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    std::vector<Input> inputs;
    if (workload_specs.empty()) {
      graph::TaskGraph g = [&] {
        if (!cli.positional().empty()) {
          std::ifstream file(cli.positional()[0]);
          BSA_REQUIRE(file.good(),
                      "cannot open '" << cli.positional()[0] << "'");
          return graph::read_text(file);
        }
        return graph::read_text(std::cin);
      }();
      inputs.push_back({runtime::kExternalWorkload, std::move(g)});
    } else {
      BSA_REQUIRE(cli.positional().empty(),
                  "--workload and a graph file are mutually exclusive");
      for (const std::string& spec : workload_specs) {
        const auto workload = workload_registry.resolve(spec);
        // Overlapping requests ("--workload all --workload fft")
        // collapse to one input per canonical spec, mirroring --algo.
        bool duplicate = false;
        for (const Input& seen : inputs) {
          duplicate = duplicate || seen.workload == workload->spec();
        }
        if (duplicate) continue;
        inputs.push_back(
            {workload->spec(), workload->generate(target, gran, seed)});
      }
    }

    if (cli.get_bool("dot", false)) {
      for (const Input& input : inputs) {
        graph::write_dot(std::cout, input.g);
      }
      return 0;
    }

    const int procs = static_cast<int>(cli.get_int("procs", 8));
    const std::string topo_kind = cli.get_string("topology", "ring");
    net::Topology topo = [&] {
      if (topo_kind == "linear") return net::Topology::linear(procs);
      if (topo_kind == "star") return net::Topology::star(procs);
      return exp::make_topology(topo_kind, procs, seed);
    }();

    // Collect the requested registry specs: every --algo occurrence
    // (comma lists allowed, "all" = every registered algorithm), plus the
    // legacy boolean aliases --bsa/--dls/--eft/--mh.
    std::vector<std::string> specs;
    for (const std::string& value : cli.get_strings("algo")) {
      for (const std::string& item : registry.split_spec_list(value)) {
        if (ascii_lower(item) == "all") {
          for (const std::string& name : registry.names()) {
            specs.push_back(name);
          }
        } else {
          specs.push_back(item);
        }
      }
    }
    for (const char* alias : {"bsa", "dls", "eft", "mh"}) {
      if (cli.get_bool(alias, false)) specs.push_back(alias);
    }
    if (specs.empty()) specs.push_back("bsa");

    const bool print_counters = cli.get_bool("counters", false);
    std::unique_ptr<runtime::JsonlSink> jsonl;
    if (const auto out = cli.out_path()) {
      jsonl = std::make_unique<runtime::JsonlSink>(*out, /*append=*/true,
                                                   print_counters);
    }
    const bool want_export = cli.has("export") || cli.has("export-csv");
    runtime::ThreadPool pool(cli.threads(1));

    ObsState obs_state;
    obs_state.print_counters = print_counters;
    std::unique_ptr<obs::Tracer> tracer;
    if (cli.has("trace")) {
      tracer = std::make_unique<obs::Tracer>();
      tracer->set_thread_name(0, "main");
      for (int w = 0; w < pool.size(); ++w) {
        tracer->set_thread_name(static_cast<std::uint32_t>(w + 1),
                                "worker " + std::to_string(w));
      }
      obs_state.tracer = tracer.get();
    }
    std::unique_ptr<std::ofstream> decision_out;
    if (cli.has("decision-log")) {
      const std::string path = cli.get_string("decision-log", "");
      decision_out = std::make_unique<std::ofstream>(path, std::ios::trunc);
      BSA_REQUIRE(decision_out->good(),
                  "cannot open --decision-log file '" << path << "'");
      obs_state.decision_out = decision_out.get();
    }
    // Dedupe the spec list up front (by canonical form, keeping request
    // order) so the progress total matches the runs actually performed.
    std::vector<std::string> unique_specs;
    for (const std::string& spec : specs) {
      const std::string canonical = registry.canonical(spec);
      bool duplicate = false;
      for (const std::string& seen : unique_specs) {
        duplicate = duplicate || seen == canonical;
      }
      if (!duplicate) unique_specs.push_back(canonical);
    }
    const std::unique_ptr<obs::ProgressMeter> meter = obs::maybe_progress(
        cli.get_bool("progress", false), inputs.size() * unique_specs.size(),
        "bsa_tool");
    obs_state.meter = meter.get();

    std::optional<sched::Schedule> last;
    std::size_t row_index = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const bool is_final = i + 1 == inputs.size();
      schedule_input(cli, inputs[i], topo, topo_kind, unique_specs, pool,
                     jsonl.get(), &row_index, obs_state,
                     want_export && is_final ? &last : nullptr);
    }
    if (meter != nullptr) meter->finish();
    if (jsonl != nullptr) jsonl->flush();
    if (decision_out != nullptr) decision_out->flush();
    if (tracer != nullptr) {
      const std::string path = cli.get_string("trace", "");
      std::ofstream tf(path, std::ios::trunc);
      BSA_REQUIRE(tf.good(), "cannot open --trace file '" << path << "'");
      tracer->write_chrome_trace(tf);
      std::cout << "wrote " << tracer->event_count() << " trace events to "
                << path << " (load in Perfetto / chrome://tracing)\n";
    }

    if (cli.has("export")) {
      std::ofstream out(cli.get_string("export", ""));
      BSA_REQUIRE(out.good(), "cannot write --export file");
      sched::write_schedule_text(out, *last);
    }
    if (cli.has("export-csv")) {
      std::ofstream out(cli.get_string("export-csv", ""));
      BSA_REQUIRE(out.good(), "cannot write --export-csv file");
      sched::write_schedule_csv(out, *last);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
