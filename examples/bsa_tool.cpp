/// Command-line scheduling tool: read a task graph from a file (or
/// stdin) in the native text format, pick a topology and cost model on
/// the command line, schedule with any registered algorithm spec, and
/// print the result.
///
///   $ ./bsa_tool graph.tg --topology ring --procs 8 --algo bsa --gantt
///   $ ./bsa_tool graph.tg --algo bsa:gate=always,route=static --algo dls
///   $ cat graph.tg | ./bsa_tool --algo all --threads 3 --out runs.jsonl
///
/// Graph format (see graph::read_text):
///   task <cost> [name]
///   edge <src> <dst> <cost>
///
/// Flags:
///   --topology ring|hypercube|clique|random|linear|star  (default ring)
///   --procs N          processor count (default 8)
///   --algo SPEC[,SPEC...]  scheduler registry specs (default bsa;
///                      repeatable; "all" = every registered algorithm;
///                      variants like bsa:gate=always,route=static; a bad
///                      spec lists the registered names). --bsa/--dls/
///                      --eft/--mh boolean aliases also select algorithms.
///   --list-algos       print the registered algorithm names and exit
///   --het N / --link-het N   heterogeneity ranges U[1,N]  (default 1)
///   --per-pair         per-(task,processor) factors instead of speeds
///   --seed S           RNG seed
///   --threads N        run the requested algorithms concurrently on the
///                      experiment runtime's thread pool (0 = all cores)
///   --gantt            render an ASCII Gantt chart
///   --dot              print the graph in Graphviz DOT and exit
///   --stats            print workload statistics before scheduling
///   --export FILE      write the (last) schedule in text form to FILE
///   --export-csv FILE  write the (last) schedule as CSV event rows
///   --out FILE         append one JSONL metrics row per algorithm run
///                      (the file accretes across invocations)
///   --validate         run the full invariant checker and report

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "exp/experiment.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/gantt.hpp"
#include "sched/scheduler.hpp"
#include "sched/schedule_io.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"

namespace {

using namespace bsa;

void report(const std::string& name, const sched::Schedule& s,
            const net::HeterogeneousCostModel& cm, bool gantt,
            const std::optional<sched::ValidationReport>& validation) {
  std::cout << "--- " << name << " ---\n";
  sched::print_listing(std::cout, s);
  if (gantt) {
    std::cout << '\n';
    sched::print_gantt(std::cout, s, 96);
  }
  const auto metrics = sched::compute_metrics(s, cm);
  std::cout << "crossing messages: " << metrics.num_crossing_messages
            << ", total hops: " << metrics.total_hops
            << ", avg processor utilisation: "
            << metrics.avg_proc_utilization << '\n';
  if (validation.has_value()) {
    std::cout << "validation: " << validation->to_string() << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  try {
    const sched::SchedulerRegistry& registry =
        sched::SchedulerRegistry::global();
    if (cli.get_bool("list-algos", false)) {
      for (const std::string& name : registry.names()) {
        std::cout << name << '\n';
      }
      return 0;
    }

    graph::TaskGraph g = [&] {
      if (!cli.positional().empty()) {
        std::ifstream file(cli.positional()[0]);
        BSA_REQUIRE(file.good(),
                    "cannot open '" << cli.positional()[0] << "'");
        return graph::read_text(file);
      }
      return graph::read_text(std::cin);
    }();

    if (cli.get_bool("dot", false)) {
      graph::write_dot(std::cout, g);
      return 0;
    }

    const int procs = static_cast<int>(cli.get_int("procs", 8));
    const std::string topo_kind = cli.get_string("topology", "ring");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    net::Topology topo = [&] {
      if (topo_kind == "linear") return net::Topology::linear(procs);
      if (topo_kind == "star") return net::Topology::star(procs);
      return exp::make_topology(topo_kind, procs, seed);
    }();

    const int het = static_cast<int>(cli.get_int("het", 1));
    const int link_het = static_cast<int>(cli.get_int("link-het", 1));
    const auto cm =
        cli.get_bool("per-pair", false)
            ? net::HeterogeneousCostModel::uniform(g, topo, 1, het, 1,
                                                   link_het, seed)
            : net::HeterogeneousCostModel::uniform_processor_speeds(
                  g, topo, 1, het, 1, link_het, seed);

    std::cout << "graph: " << g.num_tasks() << " tasks, " << g.num_edges()
              << " messages, granularity " << g.granularity() << '\n'
              << "system: " << topo.name() << ", heterogeneity U[1," << het
              << "] exec / U[1," << link_het << "] links\n\n";
    if (cli.get_bool("stats", false)) {
      graph::print_stats(std::cout, graph::compute_stats(g));
      std::cout << '\n';
    }

    const bool gantt = cli.get_bool("gantt", false);
    const bool run_validate = cli.get_bool("validate", false);

    // Collect the requested registry specs: every --algo occurrence
    // (comma lists allowed, "all" = every registered algorithm), plus the
    // legacy boolean aliases --bsa/--dls/--eft/--mh.
    std::vector<std::string> specs;
    for (const std::string& value : cli.get_strings("algo")) {
      for (const std::string& item : registry.split_spec_list(value)) {
        if (sched::ascii_lower(item) == "all") {
          for (const std::string& name : registry.names()) {
            specs.push_back(name);
          }
        } else {
          specs.push_back(item);
        }
      }
    }
    for (const char* alias : {"bsa", "dls", "eft", "mh"}) {
      if (cli.get_bool(alias, false)) specs.push_back(alias);
    }
    if (specs.empty()) specs.push_back("bsa");

    struct Run {
      std::string spec;   ///< canonical registry spec
      std::string name;   ///< display label for the report
      std::unique_ptr<sched::Scheduler> scheduler;
      std::optional<sched::Schedule> schedule;
      double wall_ms = 0;
    };
    std::vector<Run> runs;
    for (const std::string& spec : specs) {
      // resolve() rejects unknown names/options with a message listing
      // the registered choices — surfaced via the catch block below.
      Run r;
      r.scheduler = registry.resolve(spec);
      r.spec = r.scheduler->spec();
      r.name = r.scheduler->display_label();
      // Overlapping requests ("--algo all --bsa") collapse to one run per
      // canonical spec so reports and JSONL rows aren't duplicated.
      bool duplicate = false;
      for (const Run& seen : runs) duplicate = duplicate || seen.spec == r.spec;
      if (!duplicate) runs.push_back(std::move(r));
    }

    // The graph, topology and cost model are immutable and scheduler
    // instances are stateless, so the requested algorithms can run
    // concurrently; reports stay in request order.
    runtime::ThreadPool pool(cli.threads(1));
    pool.parallel_for(runs.size(), 1, [&](std::size_t i) {
      Run& r = runs[i];
      const auto t0 = std::chrono::steady_clock::now();
      r.schedule = r.scheduler->run(g, topo, cm, seed).schedule;
      r.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    });

    std::unique_ptr<runtime::JsonlSink> jsonl;
    if (const auto out = cli.out_path()) {
      jsonl = std::make_unique<runtime::JsonlSink>(*out, /*append=*/true);
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      // Validate at most once per schedule; --validate prints the full
      // report and --out records the verdict.
      std::optional<sched::ValidationReport> validation;
      if (run_validate || jsonl != nullptr) {
        validation = sched::validate(*r.schedule, cm);
      }
      report(r.name, *r.schedule, cm, gantt,
             run_validate ? validation : std::nullopt);
      if (jsonl != nullptr) {
        runtime::ScenarioResult row;
        row.spec.index = i;
        row.spec.workload = runtime::WorkloadKind::kExternal;
        row.spec.size = g.num_tasks();
        row.spec.granularity = g.granularity();
        row.spec.topology = topo_kind;
        row.spec.procs = procs;
        row.spec.het_lo = 1;
        row.spec.het_hi = het;
        row.spec.link_het_lo = 1;
        row.spec.link_het_hi = link_het;
        row.spec.per_pair = cli.get_bool("per-pair", false);
        row.spec.algo = r.spec;
        row.spec.instance_seed = seed;
        row.schedule_length = r.schedule->makespan();
        row.wall_ms = r.wall_ms;
        row.valid = validation->ok();
        jsonl->consume(row);
      }
    }
    if (jsonl != nullptr) jsonl->flush();

    const sched::Schedule& last = *runs.back().schedule;
    if (cli.has("export")) {
      std::ofstream out(cli.get_string("export", ""));
      BSA_REQUIRE(out.good(), "cannot write --export file");
      sched::write_schedule_text(out, last);
    }
    if (cli.has("export-csv")) {
      std::ofstream out(cli.get_string("export-csv", ""));
      BSA_REQUIRE(out.good(), "cannot write --export-csv file");
      sched::write_schedule_csv(out, last);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
