/// Domain example: scheduling a Gaussian-elimination task graph — one of
/// the regular applications from the paper's evaluation — onto a
/// 16-processor hypercube, comparing BSA against DLS and the
/// contention-oblivious EFT baseline at three granularities.
///
///   $ ./gaussian_elimination [--dim 12] [--procs 16] [--seed 3]
///
/// Shows how communication granularity flips the ranking: contention
/// awareness matters most when messages are large relative to tasks.
/// Everything goes through the two registries: graphs come from
/// workload specs ("gauss:n=12,ccr=2") and schedules from scheduler
/// specs ("bsa", "dls", "eft") — see docs/SPECS.md for the grammar.

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/spec.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/scheduler.hpp"
#include "workloads/regular.hpp"
#include "workloads/workload_registry.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int dim = static_cast<int>(cli.get_int("dim", 12));
  const int procs = static_cast<int>(cli.get_int("procs", 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const sched::SchedulerRegistry& schedulers =
      sched::SchedulerRegistry::global();
  const workloads::WorkloadRegistry& workloads_reg =
      workloads::WorkloadRegistry::global();

  const auto topo = exp::make_topology("hypercube", procs, seed);
  std::cout << "Gaussian elimination, matrix dimension " << dim << " ("
            << workloads::gaussian_elimination_task_count(dim)
            << " tasks) on " << topo.name() << "\n\n";

  const std::vector<std::string> algos{"bsa", "dls", "eft"};
  std::vector<std::string> headers{"granularity"};
  for (const std::string& algo : algos) {
    headers.push_back(schedulers.display_label(algo));
  }
  headers.emplace_back("lower bound");
  TextTable table(headers);
  for (const double gran : {0.1, 1.0, 10.0}) {
    // CCR = 1/granularity; the workload spec pins structure and costs.
    const std::string spec = "gauss:n=" + std::to_string(dim) +
                             ",ccr=" + canonical_double(1.0 / gran);
    const auto g = workloads_reg.resolve(spec)->generate(
        /*target_tasks=*/dim, /*granularity=*/gran, seed);
    const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
        g, topo, 1, 50, 1, 50, derive_seed(seed, 5));
    auto& row = table.new_row().cell(gran, 1);
    for (const std::string& algo : algos) {
      row.cell(schedulers.resolve(algo)->run(g, topo, cm, seed).makespan(),
               1);
    }
    row.cell(sched::schedule_length_lower_bound(g, cm), 1);
  }
  table.print(std::cout);

  // Render the coarse-grained BSA schedule for a small instance.
  std::cout << "\nGantt of BSA on a small instance (dim 6, granularity 1):\n";
  const auto g_small =
      workloads_reg.resolve("gauss:n=6")->generate(6, 1.0, seed);
  const auto cm_small = net::HeterogeneousCostModel::uniform_processor_speeds(
      g_small, topo, 1, 8, 1, 4, derive_seed(seed, 6));
  const auto small_result =
      schedulers.resolve("bsa")->run(g_small, topo, cm_small, seed);
  sched::print_gantt(std::cout, small_result.schedule, 80);
  std::cout << "schedule length: " << small_result.makespan() << '\n';
  return 0;
}
