/// Domain example: scheduling a Gaussian-elimination task graph — one of
/// the regular applications from the paper's evaluation — onto a
/// 16-processor hypercube, comparing BSA against DLS and the
/// contention-oblivious EFT baseline at three granularities.
///
///   $ ./gaussian_elimination [--dim 12] [--procs 16] [--seed 3]
///
/// Shows how communication granularity flips the ranking: contention
/// awareness matters most when messages are large relative to tasks.

#include <iostream>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "workloads/regular.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int dim = static_cast<int>(cli.get_int("dim", 12));
  const int procs = static_cast<int>(cli.get_int("procs", 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  const auto topo = exp::make_topology("hypercube", procs, seed);
  std::cout << "Gaussian elimination, matrix dimension " << dim << " ("
            << workloads::gaussian_elimination_task_count(dim)
            << " tasks) on " << topo.name() << "\n\n";

  TextTable table({"granularity", "BSA", "DLS", "EFT (oblivious)",
                   "lower bound"});
  for (const double gran : {0.1, 1.0, 10.0}) {
    workloads::CostParams cp;
    cp.granularity = gran;
    cp.seed = seed;
    const auto g = workloads::gaussian_elimination(dim, cp);
    const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
        g, topo, 1, 50, 1, 50, derive_seed(seed, 5));
    const auto bsa_result = core::schedule_bsa(g, topo, cm);
    const auto dls_result = baselines::schedule_dls(g, topo, cm);
    const auto eft_result = baselines::schedule_eft_oblivious(g, topo, cm);
    table.new_row()
        .cell(gran, 1)
        .cell(bsa_result.schedule_length(), 1)
        .cell(dls_result.schedule_length(), 1)
        .cell(eft_result.schedule_length(), 1)
        .cell(sched::schedule_length_lower_bound(g, cm), 1);
  }
  table.print(std::cout);

  // Render the coarse-grained BSA schedule for a small instance.
  std::cout << "\nGantt of BSA on a small instance (dim 6, granularity 1):\n";
  workloads::CostParams small;
  small.granularity = 1.0;
  small.seed = seed;
  const auto g_small = workloads::gaussian_elimination(6, small);
  const auto cm_small = net::HeterogeneousCostModel::uniform_processor_speeds(
      g_small, topo, 1, 8, 1, 4, derive_seed(seed, 6));
  const auto small_result = core::schedule_bsa(g_small, topo, cm_small);
  sched::print_gantt(std::cout, small_result.schedule, 80);
  std::cout << "schedule length: " << small_result.schedule_length() << '\n';
  return 0;
}
