// bsa_served — the scheduling-as-a-service daemon.
//
// Listens on a local AF_UNIX socket, speaks the newline-delimited JSON
// protocol of docs/DESIGN_SERVE.md, batches concurrent schedule requests
// onto a thread pool and answers repeats from a sharded LRU cache whose
// hits are byte-identical to fresh runs. Pair it with bsa_loadgen (the
// client-side load generator) or serve::Client from C++.
//
// Runs in the foreground until a client sends {"op":"shutdown"} or the
// process receives SIGINT/SIGTERM; either way it drains queued requests,
// prints its serve.* counters and exits 0.

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kUsage = R"(bsa_served — scheduling request daemon

Usage: bsa_served [options]

Options:
  --socket PATH      unix socket path to listen on [bsa_served.sock]
  --threads N        evaluation pool workers, 0 = all hardware [0]
  --cache N          schedule-cache capacity in entries, 0 disables [4096]
  --shards N         cache lock shards [8]
  --max-batch N      most requests dispatched per batch round [64]
  --batch-wait-us N  straggler wait before dispatching a short batch [100]
  --max-queue N      pending-queue bound; requests past it get a typed
                     "overloaded" response, 0 sheds every miss [1024]
  --write-timeout-ms N  slow-client send deadline, 0 = unbounded [0]
  --fault SPEC       arm deterministic failpoints, e.g.
                     "read:short=3,prob=0.1,seed=42;batch:delay_us=500"
                     (grammar: docs/DESIGN_FAULT.md)
  --trace FILE       write a Chrome trace-event JSON of the serving spans
  --help             show this message

Stop it with Ctrl-C or a client {"op":"shutdown"} request; both drain
in-flight work first.
)";

// Self-pipe: the signal handler only writes one byte; the watcher thread
// does the actual stop() outside async-signal context.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (worst case
  // the pipe is already full because a signal is already pending).
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bsa::CliParser cli(argc, argv);
    if (cli.has("help")) {
      std::cout << kUsage;
      return 0;
    }

    bsa::serve::ServerOptions options;
    options.socket_path = cli.get_string("socket", options.socket_path);
    options.threads = cli.threads(0);
    options.cache_capacity = static_cast<std::size_t>(
        cli.get_uint64("cache", options.cache_capacity));
    options.cache_shards = static_cast<std::size_t>(
        cli.get_uint64("shards", options.cache_shards));
    options.max_batch =
        static_cast<std::size_t>(cli.get_uint64("max-batch", options.max_batch));
    options.batch_wait_us = static_cast<int>(
        cli.get_int("batch-wait-us", options.batch_wait_us));
    options.max_queue = static_cast<std::size_t>(
        cli.get_uint64("max-queue", options.max_queue));
    options.write_timeout_ms = static_cast<int>(
        cli.get_int("write-timeout-ms", options.write_timeout_ms));

    // A client that vanishes mid-response must surface as a failed write
    // (socket.cpp sends with MSG_NOSIGNAL, this covers any other fd).
    std::signal(SIGPIPE, SIG_IGN);
    if (cli.has("fault")) {
      bsa::fault::configure(cli.get_string("fault", ""));
      std::cout << "failpoints armed: " << bsa::fault::active_spec()
                << std::endl;
    }

    std::unique_ptr<bsa::obs::Tracer> tracer;
    if (cli.has("trace")) {
      tracer = std::make_unique<bsa::obs::Tracer>();
      tracer->set_thread_name(0, "serve");
      options.tracer = tracer.get();
    }

    bsa::serve::Server server(std::move(options));
    server.start();
    std::cout << "bsa_served listening on " << server.socket_path()
              << std::endl;

    BSA_REQUIRE(::pipe(g_signal_pipe) == 0, "pipe() failed");
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread signal_watcher([&server] {
      char byte = 0;
      if (::read(g_signal_pipe[0], &byte, 1) > 0) {
        std::cout << "signal received, shutting down" << std::endl;
      }
      server.stop();
    });

    server.wait();
    server.stop();
    // Unblock the watcher if shutdown came from a client request instead
    // of a signal.
    ::close(g_signal_pipe[1]);
    signal_watcher.join();
    ::close(g_signal_pipe[0]);

    for (const auto& [name, value] : server.counters()) {
      std::cout << name << " = " << value << "\n";
    }

    if (tracer != nullptr) {
      const std::string path = cli.get_string("trace", "");
      std::ofstream tf(path, std::ios::trunc);
      BSA_REQUIRE(tf.good(), "cannot open --trace file '" << path << "'");
      tracer->write_chrome_trace(tf);
      std::cout << "wrote " << tracer->event_count() << " trace events to "
                << path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bsa_served: " << e.what() << "\n";
    return 1;
  }
}
