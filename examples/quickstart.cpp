/// Quickstart: build a small task graph, describe a heterogeneous
/// 4-processor ring, run the BSA scheduler, and inspect the result.
///
///   $ ./quickstart
///
/// This walks through the library's primary API surface:
///   graph::TaskGraphBuilder -> net::Topology -> HeterogeneousCostModel
///   -> core::schedule_bsa -> sched::{validate, print_gantt, metrics}.

#include <iostream>

#include "core/bsa.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"

int main() {
  using namespace bsa;

  // 1. A parallel program: a fork-join diamond with a tail task.
  //    Task costs are *nominal* (their cost on the fastest machine);
  //    edge costs are nominal message volumes.
  graph::TaskGraphBuilder builder;
  const TaskId load = builder.add_task(20, "load");
  const TaskId left = builder.add_task(40, "left");
  const TaskId right = builder.add_task(40, "right");
  const TaskId join = builder.add_task(30, "join");
  const TaskId save = builder.add_task(10, "save");
  (void)builder.add_edge(load, left, 15);
  (void)builder.add_edge(load, right, 15);
  (void)builder.add_edge(left, join, 10);
  (void)builder.add_edge(right, join, 10);
  (void)builder.add_edge(join, save, 5);
  const graph::TaskGraph g = builder.build();

  // 2. The target system: four processors in a ring; processor speeds
  //    drawn uniformly from [1, 2] (1 = the reference machine).
  const net::Topology topo = net::Topology::ring(4);
  const auto costs = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, /*exec_lo=*/1, /*exec_hi=*/2, /*link_lo=*/1, /*link_hi=*/1,
      /*seed=*/7);

  // 3. Schedule with BSA (serialization onto the fastest-CP pivot, then
  //    bubble-up migration with incremental message routing).
  const core::BsaResult result = core::schedule_bsa(g, topo, costs);

  // 4. Inspect.
  std::cout << "schedule length: " << result.schedule_length() << "\n";
  std::cout << "first pivot: P" << (result.trace.first_pivot + 1) << "\n";
  std::cout << "migrations committed: " << result.trace.migrations.size()
            << "\n\n";
  sched::print_listing(std::cout, result.schedule);
  std::cout << '\n';
  sched::print_gantt(std::cout, result.schedule, 72);

  const auto report = sched::validate(result.schedule, costs);
  std::cout << "\nvalidation: " << report.to_string() << '\n';

  const auto metrics = sched::compute_metrics(result.schedule, costs);
  std::cout << "processor utilisation: " << metrics.avg_proc_utilization
            << ", crossing messages: " << metrics.num_crossing_messages
            << ", lower bound: " << metrics.lower_bound << '\n';
  return 0;
}
