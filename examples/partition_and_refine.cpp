/// Toolkit example: evaluating external mappings and polishing them.
///
///   $ ./partition_and_refine [--tasks 80] [--seed 4]
///
/// Demonstrates the assignment toolkit around the schedulers:
///  1. build a naive "layer-striped" mapping by hand (tasks striped over
///     processors in topological order — what a simple partitioner might
///     emit),
///  2. turn it into a feasible contention-aware schedule with
///     sched::schedule_from_assignment,
///  3. polish it with core::refine_schedule (single-task-move local
///     search),
///  4. compare against BSA and DLS on the same instance.

#include <iostream>

#include "baselines/dls.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "core/refine.hpp"
#include "graph/graph_stats.hpp"
#include "network/cost_model.hpp"
#include "sched/assignment.hpp"
#include "sched/metrics.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 80));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));

  workloads::RandomDagParams params;
  params.num_tasks = num_tasks;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::hypercube(4);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 20, 1, 10, derive_seed(seed, 1));

  std::cout << "workload:\n";
  graph::print_stats(std::cout, graph::compute_stats(g));
  std::cout << '\n';

  // 1. Naive striped mapping over the processors.
  std::vector<ProcId> striped(static_cast<std::size_t>(g.num_tasks()));
  int next = 0;
  for (const TaskId t : g.topological_order()) {
    striped[static_cast<std::size_t>(t)] =
        static_cast<ProcId>(next++ % topo.num_processors());
  }
  const auto striped_schedule =
      sched::schedule_from_assignment(g, topo, cm, striped);

  // 2/3. Refine the striped mapping.
  core::RefineOptions ropt;
  ropt.max_rounds = 2;
  const auto refined = core::refine_schedule(striped_schedule, cm, ropt);

  // 4. Reference algorithms.
  const auto bsa_result = core::schedule_bsa(g, topo, cm);
  const auto dls_result = baselines::schedule_dls(g, topo, cm);

  TextTable table({"schedule", "length", "speedup", "SLR"});
  auto add_row = [&](const std::string& name, const sched::Schedule& s) {
    const auto m = sched::compute_metrics(s, cm);
    table.new_row().cell(name).cell(m.makespan, 1).cell(m.speedup, 2).cell(
        m.slr, 2);
  };
  add_row("striped mapping", striped_schedule);
  add_row("striped + refine (" + std::to_string(refined.moves_applied) +
              " moves)",
          refined.schedule);
  add_row("BSA", bsa_result.schedule);
  add_row("DLS", dls_result.schedule);
  table.print(std::cout);
  std::cout << "\nSLR = schedule length / fastest-chain lower bound "
               "(1.0 is unbeatable)\n";
  return 0;
}
