#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/bsa.hpp"
#include "network/routing.hpp"
#include "paper_fixture.hpp"
#include "sched/event_sim.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::core {
namespace {

namespace pf = bsa::testing;

/// All routes of a schedule must equal the static route prescribed for
/// their endpoint processors.
void expect_routes_static(const sched::Schedule& s,
                          const net::Topology& topo,
                          RouteDiscipline discipline) {
  const auto& g = s.task_graph();
  const net::RoutingTable table(topo);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = s.route_of(e);
    if (route.empty()) continue;
    const ProcId from = s.proc_of(g.edge_src(e));
    const ProcId to = s.proc_of(g.edge_dst(e));
    std::vector<LinkId> expect =
        discipline == RouteDiscipline::kEcube
            ? net::ecube_route(topo, from, to)
            : table.route(from, to);
    ASSERT_EQ(route.size(), expect.size()) << "message " << e;
    for (std::size_t k = 0; k < route.size(); ++k) {
      EXPECT_EQ(route[k].link, expect[k]) << "message " << e << " hop " << k;
    }
  }
}

TEST(StaticRouting, ShortestPathOnPaperExample) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  BsaOptions opt;
  opt.routing = RouteDiscipline::kStaticShortestPath;
  opt.validate_each_step = true;
  const auto result = schedule_bsa(g, topo, cm, opt);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  expect_routes_static(result.schedule, topo,
                       RouteDiscipline::kStaticShortestPath);
}

TEST(StaticRouting, EcubeOnHypercube) {
  workloads::RandomDagParams p;
  p.num_tasks = 40;
  p.granularity = 1.0;
  p.seed = 5;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = net::Topology::hypercube(3);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 20, 1, 5, 6);
  BsaOptions opt;
  opt.routing = RouteDiscipline::kEcube;
  const auto result = schedule_bsa(g, topo, cm, opt);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  expect_routes_static(result.schedule, topo, RouteDiscipline::kEcube);
  const auto sim = sched::simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(sched::simulation_matches(result.schedule, sim));
}

TEST(StaticRouting, RoutesAreSingleHopOnClique) {
  workloads::RandomDagParams p;
  p.num_tasks = 30;
  p.seed = 9;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = net::Topology::clique(6);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 10, 1, 10, 2);
  BsaOptions opt;
  opt.routing = RouteDiscipline::kStaticShortestPath;
  const auto result = schedule_bsa(g, topo, cm, opt);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(result.schedule.route_of(e).size(), 1u);
  }
  EXPECT_TRUE(sched::validate(result.schedule, cm).ok());
}

class StaticRoutingProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(StaticRoutingProperty, ValidAcrossGranularities) {
  const auto [granularity, seed] = GetParam();
  workloads::RandomDagParams p;
  p.num_tasks = 40;
  p.granularity = granularity;
  p.seed = seed;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = net::Topology::hypercube(4);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 50, 1, 50, derive_seed(seed, 21));
  for (const auto discipline :
       {RouteDiscipline::kStaticShortestPath, RouteDiscipline::kEcube}) {
    BsaOptions opt;
    opt.seed = seed;
    opt.routing = discipline;
    const auto result = schedule_bsa(g, topo, cm, opt);
    const auto report = sched::validate(result.schedule, cm);
    ASSERT_TRUE(report.ok()) << report.to_string();
    expect_routes_static(result.schedule, topo, discipline);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticRoutingProperty,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(1u, 2u)));

TEST(StaticRouting, EcubeRejectsNonHypercube) {
  const auto g = pf::paper_task_graph();
  const auto topo = net::Topology::ring(6);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  BsaOptions opt;
  opt.routing = RouteDiscipline::kEcube;
  // A migration whose e-cube route needs a missing link throws; rings of
  // size != 2^d are not valid e-cube networks. (The algorithm may finish
  // without error when no migration needs an invalid route, so only
  // assert that *if* it throws, the error is the routing precondition.)
  try {
    const auto result = schedule_bsa(g, topo, cm, opt);
    EXPECT_TRUE(sched::validate(result.schedule, cm).ok());
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("hypercube"), std::string::npos);
  }
}

}  // namespace
}  // namespace bsa::core
