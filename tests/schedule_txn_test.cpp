#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "network/cost_model.hpp"
#include "sched/retime.hpp"
#include "sched/retime_context.hpp"
#include "sched/schedule.hpp"
#include "sched/schedule_io.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

/// \file schedule_txn_test.cpp
/// The transactional mutation journal (Schedule::Transaction):
///  * direct unit tests — randomized journaled mutation sequences roll
///    back bit-exactly (placements, order vectors, routes, link-booking
///    orders), transactions are reusable, commit keeps mutations, the
///    set_route unwind truncates the journal;
///  * RetimeContext::undo_migration leaves the context exactly consistent
///    with the rolled-back schedule (check_consistency);
///  * end-to-end properties — BSA with rollback=txn is bit-identical to
///    rollback=snapshot (the reference, unchanged from before the journal
///    existed) across topologies x routings x gate rules x policies, and
///    eval=pooled is bit-identical to eval=fresh.

namespace bsa {
namespace {

using core::BsaOptions;
using sched::Hop;
using sched::Schedule;

/// Bit-exact comparison including the parts schedule_to_text omits:
/// per-processor execution orders and link transmission orders.
std::string diff_schedules(const Schedule& a, const Schedule& b) {
  std::ostringstream os;
  if (sched::schedule_to_text(a) != sched::schedule_to_text(b)) {
    os << "schedule text differs";
    return os.str();
  }
  const auto& topo = a.topology();
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    if (a.tasks_on(p) != b.tasks_on(p)) {
      os << "processor " << p << " order differs";
      return os.str();
    }
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& ba = a.bookings_on(l);
    const auto& bb = b.bookings_on(l);
    if (ba.size() != bb.size()) {
      os << "link " << l << " booking count differs";
      return os.str();
    }
    for (std::size_t i = 0; i < ba.size(); ++i) {
      if (ba[i].edge != bb[i].edge || ba[i].hop_index != bb[i].hop_index ||
          ba[i].start != bb[i].start || ba[i].finish != bb[i].finish) {
        os << "link " << l << " booking " << i << " differs";
        return os.str();
      }
    }
  }
  return {};
}

// --- direct journal unit tests ----------------------------------------------

struct TxnFixture : ::testing::Test {
  graph::TaskGraph make_graph() {
    graph::TaskGraphBuilder b;
    const TaskId a = b.add_task(10, "A");
    const TaskId bb = b.add_task(10, "B");
    const TaskId c = b.add_task(10, "C");
    const TaskId d = b.add_task(10, "D");
    (void)b.add_edge(a, bb, 4);
    (void)b.add_edge(a, c, 4);
    (void)b.add_edge(bb, d, 4);
    (void)b.add_edge(c, d, 4);
    return b.build();
  }
  graph::TaskGraph g = make_graph();
  net::Topology topo = net::Topology::ring(3);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::homogeneous(g, topo);
  TaskId A = 0, B = 1, C = 2, D = 3;

  /// A small populated schedule with a cross-processor route.
  Schedule make_schedule() {
    Schedule s(g, topo);
    s.place_task(A, 0, 0, 10);
    s.place_task(C, 0, 10, 20);
    s.place_task(D, 0, 20, 30);
    const LinkId l01 = topo.link_between(0, 1);
    s.set_route(0, {Hop{l01, 10, 14}});
    s.place_task(B, 1, 14, 24);
    s.set_route(2, {Hop{l01, 24, 28}});
    return s;
  }
};

TEST_F(TxnFixture, RollbackRestoresEveryMutatorExactly) {
  Schedule s = make_schedule();
  const Schedule before = s;
  const LinkId l01 = topo.link_between(0, 1);
  const LinkId l12 = topo.link_between(1, 2);

  Schedule::Transaction txn;
  s.begin_transaction(txn);
  EXPECT_TRUE(s.in_transaction());

  // Exercise every mutator at least once.
  s.set_task_times(D, 25, 35);
  s.set_hop_times(0, 0, 11, 15);
  s.clear_route(2);            // kEraseHop
  s.unplace_task(B);           // kUnplaceTask
  s.clear_route(0);
  s.place_task(B, 2, 14, 24);  // kPlaceTask
  s.set_route(0, {Hop{l01, 10, 14}, Hop{l12, 14, 18}});  // kAppendHop x2
  s.append_hop(2, Hop{l12, 30, 34});
  EXPECT_GT(txn.size(), 0u);

  s.rollback_transaction();
  EXPECT_FALSE(s.in_transaction());
  EXPECT_EQ(txn.size(), 0u);
  EXPECT_TRUE(diff_schedules(s, before).empty())
      << diff_schedules(s, before);
}

TEST_F(TxnFixture, CommitKeepsMutationsAndTransactionIsReusable) {
  Schedule s = make_schedule();
  Schedule::Transaction txn;

  s.begin_transaction(txn);
  s.set_task_times(D, 25, 35);
  s.commit_transaction();
  EXPECT_DOUBLE_EQ(s.start_of(D), 25);

  // Reuse the same journal for a rolled-back episode.
  const Schedule before = s;
  s.begin_transaction(txn);
  s.unplace_task(D);
  s.place_task(D, 2, 40, 50);
  s.rollback_transaction();
  EXPECT_TRUE(diff_schedules(s, before).empty());
  EXPECT_DOUBLE_EQ(s.start_of(D), 25);
}

TEST_F(TxnFixture, UnplaceRollbackRestoresOrderPositionAmongTies) {
  // Two tasks with identical (start, finish) on one processor: re-placing
  // by time comparison could swap them, the journaled position must not.
  graph::TaskGraphBuilder b2;
  (void)b2.add_task(10);
  (void)b2.add_task(10);
  const graph::TaskGraph g2 = b2.build();
  Schedule s(g2, topo);
  s.place_task(0, 0, 0, 10);
  s.place_task(1, 0, 0, 10);  // tie: inserted after task 0
  const std::vector<TaskId> order_before = s.tasks_on(0);

  Schedule::Transaction txn;
  s.begin_transaction(txn);
  s.unplace_task(0);  // head of the tie group
  s.rollback_transaction();
  EXPECT_EQ(s.tasks_on(0), order_before);
}

TEST_F(TxnFixture, NormalizeOrdersJournalsWholeVectors) {
  Schedule s = make_schedule();
  // Skew task times so the processor order is no longer start-sorted,
  // then normalize inside a transaction and roll back.
  Schedule::Transaction txn;
  s.begin_transaction(txn);
  s.set_task_times(A, 22, 32);  // A now starts after C and D
  const Schedule skewed = s;    // copy carries no journal
  s.normalize_orders();
  EXPECT_NE(s.tasks_on(0), skewed.tasks_on(0));
  s.rollback_transaction();
  const Schedule before = make_schedule();
  EXPECT_TRUE(diff_schedules(s, before).empty());
}

TEST_F(TxnFixture, SetRouteUnwindTruncatesJournal) {
  Schedule s = make_schedule();
  const Schedule before = s;
  const LinkId l01 = topo.link_between(0, 1);
  Schedule::Transaction txn;
  s.begin_transaction(txn);
  // Second hop overlaps the existing booking of edge 0 at [10,14): the
  // strong-exception-safety unwind must also discard the first hop's
  // journal record.
  EXPECT_ANY_THROW(
      s.set_route(1, {Hop{l01, 0, 5}, Hop{l01, 8, 13}}));
  EXPECT_EQ(txn.size(), 0u);
  s.rollback_transaction();
  EXPECT_TRUE(diff_schedules(s, before).empty());
}

TEST_F(TxnFixture, RetimeWritesInsideTransactionRollBack) {
  Schedule s = make_schedule();
  const Schedule before = s;
  Schedule::Transaction txn;
  s.begin_transaction(txn);
  s.set_task_times(A, 5, 15);  // push A later; retime will ripple
  ASSERT_TRUE(sched::try_retime(s, cm, nullptr));
  s.rollback_transaction();
  EXPECT_TRUE(diff_schedules(s, before).empty());
}

TEST_F(TxnFixture, UndoMigrationLeavesContextConsistent) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 20);
  s.place_task(C, 0, 20, 30);
  s.place_task(D, 0, 30, 40);
  sched::RetimeContext ctx(s, cm);
  const Schedule before = s;

  // A BSA-style guarded migration of B to P1, rejected via rollback.
  Schedule::Transaction txn;
  ctx.begin_migration(B);
  s.begin_transaction(txn);
  const LinkId l01 = topo.link_between(0, 1);
  s.unplace_task(B);
  s.set_route(0, {Hop{l01, 10, 14}});
  s.place_task(B, 1, 14, 24);
  s.set_route(2, {Hop{l01, 24, 28}});
  ASSERT_TRUE(ctx.retime_migration(B, nullptr));
  s.rollback_transaction();
  ctx.undo_migration(B);

  EXPECT_TRUE(diff_schedules(s, before).empty());
  EXPECT_EQ(ctx.check_consistency(), "");
  EXPECT_EQ(ctx.stats().undos, 1);

  // The context must still retime future migrations exactly: migrate B
  // for real and compare against the full-rebuild reference.
  ctx.begin_migration(B);
  s.unplace_task(B);
  s.set_route(0, {Hop{l01, 10, 14}});
  s.place_task(B, 1, 14, 24);
  s.set_route(2, {Hop{l01, 24, 28}});
  Schedule reference = s;
  ASSERT_TRUE(sched::try_retime(reference, cm, nullptr));
  ASSERT_TRUE(ctx.retime_migration(B, nullptr));
  EXPECT_TRUE(diff_schedules(s, reference).empty());
}

TEST_F(TxnFixture, RandomizedMutationSequencesRollBackExactly) {
  // Random valid mutation bursts on a live schedule; every burst must
  // roll back bit-exactly. Exercises interleavings the directed tests
  // above cannot enumerate.
  workloads::RandomDagParams params;
  params.num_tasks = 24;
  params.seed = 321;
  const auto rg = workloads::random_layered_dag(params);
  const auto rtopo = exp::make_topology("ring", 6, 5);
  const auto rcm =
      exp::make_cost_model(rg, rtopo, 1, 30, 1, 30, false, 17);
  BsaOptions opt;
  opt.seed = 5;
  auto result = core::schedule_bsa(rg, rtopo, rcm, opt);
  Schedule s = std::move(result.schedule);

  Rng rng(99);
  Schedule::Transaction txn;
  for (int burst = 0; burst < 50; ++burst) {
    const Schedule before = s;
    s.begin_transaction(txn);
    const int ops = 1 + static_cast<int>(rng.index(6));
    for (int i = 0; i < ops; ++i) {
      const TaskId t = static_cast<TaskId>(
          rng.index(static_cast<std::size_t>(rg.num_tasks())));
      switch (rng.index(4)) {
        case 0: {  // displace a task and its routes
          if (!s.is_placed(t)) break;
          for (const EdgeId e : rg.in_edges(t)) s.clear_route(e);
          for (const EdgeId e : rg.out_edges(t)) s.clear_route(e);
          const Time st = s.start_of(t);
          const ProcId p = static_cast<ProcId>(
              rng.index(static_cast<std::size_t>(rtopo.num_processors())));
          s.unplace_task(t);
          const Time ready = st + static_cast<Time>(rng.index(40));
          const Time dur = rcm.exec_cost(t, p);
          const Time slot = s.earliest_task_slot(p, ready, dur);
          s.place_task(t, p, slot, slot + dur);
          break;
        }
        case 1: {  // clear one route
          const EdgeId e = static_cast<EdgeId>(
              rng.index(static_cast<std::size_t>(rg.num_edges())));
          s.clear_route(e);
          break;
        }
        case 2: {  // nudge times (valid but order-perturbing)
          if (!s.is_placed(t)) break;
          const Time st = s.start_of(t);
          const Time ft = s.finish_of(t);
          s.set_task_times(t, st + 1, ft + 1);
          break;
        }
        case 3:
          s.normalize_orders();
          break;
      }
    }
    s.rollback_transaction();
    const std::string diff = diff_schedules(s, before);
    ASSERT_TRUE(diff.empty()) << "burst " << burst << ": " << diff;
  }
}

// --- end-to-end rollback / eval mode equivalence ----------------------------

/// Run BSA under both rollback engines and both evaluation engines and
/// require all four schedules bit-identical (the snapshot+fresh combo is
/// the pre-journal reference implementation).
void expect_modes_agree(const graph::TaskGraph& g, const net::Topology& topo,
                        const net::HeterogeneousCostModel& cm, BsaOptions opt,
                        const std::string& label,
                        std::int64_t* total_rejections = nullptr) {
  opt.snapshot_rollback = true;
  opt.pooled_eval = false;
  const auto reference = core::schedule_bsa(g, topo, cm, opt);
  if (total_rejections != nullptr) {
    *total_rejections += reference.trace.rejected_migrations;
  }
  opt.snapshot_rollback = false;
  const auto txn_fresh = core::schedule_bsa(g, topo, cm, opt);
  opt.pooled_eval = true;
  const auto txn_pooled = core::schedule_bsa(g, topo, cm, opt);
  opt.snapshot_rollback = true;
  const auto snap_pooled = core::schedule_bsa(g, topo, cm, opt);

  for (const auto* r : {&txn_fresh, &txn_pooled, &snap_pooled}) {
    const std::string diff = diff_schedules(reference.schedule, r->schedule);
    EXPECT_TRUE(diff.empty()) << label << ": " << diff;
    EXPECT_EQ(reference.trace.migrations.size(), r->trace.migrations.size())
        << label;
    EXPECT_EQ(reference.trace.rejected_migrations,
              r->trace.rejected_migrations)
        << label;
  }
  EXPECT_TRUE(sched::validate(txn_pooled.schedule, cm).ok()) << label;
}

TEST(ScheduleTxnProperty, BitIdenticalAcrossTopologiesAndRoutings) {
  std::int64_t rejections = 0;
  int case_index = 0;
  const std::vector<std::string> kinds{"ring", "hypercube", "clique",
                                      "random"};
  for (const std::string& kind : kinds) {
    for (const int size : {25, 60}) {
      for (const auto routing : {core::RouteDiscipline::kIncremental,
                                 core::RouteDiscipline::kStaticShortestPath}) {
        const auto seed = derive_seed(
            4242, static_cast<std::uint64_t>(case_index), 11);
        workloads::RandomDagParams params;
        params.num_tasks = size;
        params.granularity = (case_index % 2) == 0 ? 0.5 : 2.0;
        params.seed = seed;
        const auto g = workloads::random_layered_dag(params);
        const auto topo = exp::make_topology(kind, 8, seed);
        const auto cm = exp::make_cost_model(g, topo, 1, 50, 1, 50,
                                             (case_index % 2) == 1,
                                             derive_seed(seed, 17));
        BsaOptions opt;
        opt.seed = seed;
        opt.routing = routing;
        opt.max_sweeps = 2;
        std::ostringstream label;
        label << kind << "/" << size << "/routing="
              << static_cast<int>(routing);
        expect_modes_agree(g, topo, cm, opt, label.str(), &rejections);
        ++case_index;
      }
    }
  }
  // The property is vacuous unless guarded rollbacks actually happened.
  EXPECT_GT(rejections, 0);
}

TEST(ScheduleTxnProperty, BitIdenticalAcrossGatePolicyAndPruneVariants) {
  const auto seed = derive_seed(77, 3);
  workloads::RandomDagParams params;
  params.num_tasks = 50;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("hypercube", 16, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 100, 1, 100, false,
                           derive_seed(seed, 17));
  for (const auto gate :
       {core::GateRule::kPaper, core::GateRule::kAlwaysConsider}) {
    for (const auto policy : {core::MigrationPolicy::kMakespanGuarded,
                              core::MigrationPolicy::kTaskGreedy}) {
      for (const bool prune : {false, true}) {
        for (const bool incremental_retime : {true, false}) {
          BsaOptions opt;
          opt.seed = seed;
          opt.gate = gate;
          opt.policy = policy;
          opt.prune_route_cycles = prune;
          opt.incremental_retime = incremental_retime;
          opt.max_sweeps = 3;
          std::ostringstream label;
          label << "gate=" << static_cast<int>(gate)
                << " policy=" << static_cast<int>(policy)
                << " prune=" << prune << " retime=" << incremental_retime;
          expect_modes_agree(g, topo, cm, opt, label.str());
        }
      }
    }
  }
}

TEST(ScheduleTxnProperty, BitIdenticalUnderEcubeAndAppendSlots) {
  const auto seed = derive_seed(13, 8);
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("hypercube", 8, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 50, 1, 50, false, derive_seed(seed, 17));
  for (const bool insertion : {true, false}) {
    BsaOptions opt;
    opt.seed = seed;
    opt.routing = core::RouteDiscipline::kEcube;
    opt.insertion_slots = insertion;
    opt.max_sweeps = 2;
    expect_modes_agree(g, topo, cm, opt,
                       insertion ? "ecube/insert" : "ecube/append");
  }
}

}  // namespace
}  // namespace bsa
