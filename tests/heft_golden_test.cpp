#include <gtest/gtest.h>

#include <vector>

#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/rank_schedulers.hpp"
#include "sched/validate.hpp"

/// Golden-value pin of the HEFT rank kernel on the canonical 10-task
/// reference graph of Topcuoglu, Hariri & Wu (IEEE TPDS 2002, Fig. 2 /
/// Table 1) — the example every HEFT implementation in the literature is
/// checked against. Three fully connected processors, explicit exec
/// matrix, unit link factor: the mean communication cost over links then
/// equals the edge weight c_ij exactly, so the upward ranks must
/// reproduce the published values. If the rank kernel (or the averaging
/// convention feeding it) drifts, these literals break loudly.

namespace bsa::sched {
namespace {

struct TopcuogluInstance {
  graph::TaskGraph g;
  net::Topology topo;
  net::HeterogeneousCostModel cm;
};

TopcuogluInstance make_topcuoglu() {
  graph::TaskGraphBuilder b;
  // Nominal task costs are never read by from_exec_matrix; use 1.
  for (int i = 0; i < 10; ++i) (void)b.add_task(1);
  const auto edge = [&](int src, int dst, Cost c) {
    (void)b.add_edge(src - 1, dst - 1, c);
  };
  edge(1, 2, 18);
  edge(1, 3, 12);
  edge(1, 4, 9);
  edge(1, 5, 11);
  edge(1, 6, 14);
  edge(2, 8, 19);
  edge(2, 9, 16);
  edge(3, 7, 23);
  edge(4, 8, 27);
  edge(4, 9, 23);
  edge(5, 9, 13);
  edge(6, 8, 15);
  edge(7, 10, 17);
  edge(8, 10, 11);
  edge(9, 10, 13);
  graph::TaskGraph g = b.build();
  net::Topology topo = net::Topology::clique(3);
  // Table 1 of the paper: w(t, p), row-major task x processor.
  const std::vector<Cost> exec = {
      14, 16, 9,   //
      13, 19, 18,  //
      11, 13, 19,  //
      13, 8,  17,  //
      12, 13, 10,  //
      13, 16, 9,   //
      7,  15, 11,  //
      5,  11, 14,  //
      18, 12, 20,  //
      21, 7,  16,  //
  };
  net::HeterogeneousCostModel cm = net::HeterogeneousCostModel::
      from_exec_matrix(g, topo, exec, /*link_factor=*/1);
  return {std::move(g), std::move(topo), std::move(cm)};
}

TEST(HeftGolden, UpwardRanksMatchTopcuogluTable) {
  const TopcuogluInstance in = make_topcuoglu();
  const std::vector<Cost> rank = heft_upward_ranks(in.g, in.cm);
  ASSERT_EQ(rank.size(), 10u);
  // Published rank_u values (exact thirds; the paper prints them rounded
  // to 3 decimals: 108.000, 77.000, 80.000, 80.000, 69.000, 63.333,
  // 42.667, 35.667, 44.333, 14.667).
  const std::vector<Cost> expected = {
      108.0,      77.0,      80.0,        80.0,      69.0,
      190.0 / 3,  128.0 / 3, 107.0 / 3,   133.0 / 3, 44.0 / 3,
  };
  for (std::size_t t = 0; t < expected.size(); ++t) {
    EXPECT_NEAR(rank[t], expected[t], 1e-9) << "T" << t + 1;
  }
}

TEST(HeftGolden, ScheduleOrderAndMakespanArePinned) {
  const TopcuogluInstance in = make_topcuoglu();
  const RankScheduleResult r = schedule_heft(in.g, in.topo, in.cm);
  EXPECT_TRUE(validate(r.schedule, in.cm).ok())
      << validate(r.schedule, in.cm).to_string();
  // Descending rank with the T3/T4 tie broken towards the smaller id —
  // the scheduling order the paper walks through (n1 n3 n4 n2 n5 n6 n9
  // n7 n8 n10).
  const std::vector<TaskId> expected_order = {0, 2, 3, 1, 4, 5, 8, 6, 7, 9};
  EXPECT_EQ(r.order, expected_order);
  // Contention-constrained makespan on the 3-processor clique. The
  // textbook (contention-free) HEFT schedule length for this example is
  // 80; ours is longer because messages book exclusive link slots
  // through the shared routing path (the paper's contention constraint).
  // Pinned so placement/routing behaviour can never silently drift.
  EXPECT_NEAR(r.schedule.makespan(), 99.0, 1e-9);
}

}  // namespace
}  // namespace bsa::sched
