#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "network/topology.hpp"

namespace bsa::net {
namespace {

TEST(Topology, RingStructure) {
  const Topology t = Topology::ring(16);
  EXPECT_EQ(t.num_processors(), 16);
  EXPECT_EQ(t.num_links(), 16);
  for (ProcId p = 0; p < 16; ++p) EXPECT_EQ(t.degree(p), 2);
  EXPECT_NE(t.link_between(0, 1), kInvalidLink);
  EXPECT_NE(t.link_between(15, 0), kInvalidLink);
  EXPECT_EQ(t.link_between(0, 2), kInvalidLink);
  EXPECT_EQ(t.name(), "ring-16");
}

TEST(Topology, RingOfTwoIsSingleLink) {
  const Topology t = Topology::ring(2);
  EXPECT_EQ(t.num_links(), 1);
  EXPECT_EQ(t.degree(0), 1);
}

TEST(Topology, HypercubeStructure) {
  const Topology t = Topology::hypercube(4);
  EXPECT_EQ(t.num_processors(), 16);
  EXPECT_EQ(t.num_links(), 32);  // m * d / 2
  for (ProcId p = 0; p < 16; ++p) EXPECT_EQ(t.degree(p), 4);
  // Neighbours differ in exactly one bit.
  for (ProcId p = 0; p < 16; ++p) {
    for (const ProcId q : t.neighbors(p)) {
      const unsigned diff = static_cast<unsigned>(p) ^ static_cast<unsigned>(q);
      EXPECT_EQ(diff & (diff - 1), 0u);
    }
  }
}

TEST(Topology, CliqueStructure) {
  const Topology t = Topology::clique(16);
  EXPECT_EQ(t.num_links(), 16 * 15 / 2);
  for (ProcId p = 0; p < 16; ++p) EXPECT_EQ(t.degree(p), 15);
  EXPECT_EQ(t.hop_distance(3, 11), 1);
}

TEST(Topology, RandomRespectsDegreeBounds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Topology t = Topology::random(16, 2, 8, seed);
    EXPECT_EQ(t.num_processors(), 16);
    for (ProcId p = 0; p < 16; ++p) {
      EXPECT_GE(t.degree(p), 2) << "seed " << seed;
      EXPECT_LE(t.degree(p), 8) << "seed " << seed;
    }
    // Connectivity: bfs reaches everyone (asserted inside bfs_order).
    EXPECT_EQ(t.bfs_order(0).size(), 16u);
  }
}

TEST(Topology, RandomIsSeedDeterministic) {
  const Topology a = Topology::random(16, 2, 8, 7);
  const Topology b = Topology::random(16, 2, 8, 7);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link_endpoints(l), b.link_endpoints(l));
  }
}

TEST(Topology, MeshAndTorus) {
  const Topology m = Topology::mesh(3, 4);
  EXPECT_EQ(m.num_processors(), 12);
  EXPECT_EQ(m.num_links(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(m.hop_distance(0, 11), 5);      // corner to corner

  const Topology t = Topology::torus(3, 3);
  EXPECT_EQ(t.num_processors(), 9);
  EXPECT_EQ(t.num_links(), 18);
  for (ProcId p = 0; p < 9; ++p) EXPECT_EQ(t.degree(p), 4);
}

TEST(Topology, StarAndLinear) {
  const Topology s = Topology::star(5);
  EXPECT_EQ(s.degree(0), 4);
  for (ProcId p = 1; p < 5; ++p) EXPECT_EQ(s.degree(p), 1);

  const Topology l = Topology::linear(4);
  EXPECT_EQ(l.num_links(), 3);
  EXPECT_EQ(l.hop_distance(0, 3), 3);
}

TEST(Topology, FromLinksValidation) {
  using P = std::pair<ProcId, ProcId>;
  const std::vector<P> self{{0, 0}};
  EXPECT_THROW((void)Topology::from_links(2, self), PreconditionError);
  const std::vector<P> dup{{0, 1}, {1, 0}};
  EXPECT_THROW((void)Topology::from_links(2, dup), PreconditionError);
  const std::vector<P> oob{{0, 5}};
  EXPECT_THROW((void)Topology::from_links(2, oob), PreconditionError);
  // Disconnected network rejected.
  const std::vector<P> split{{0, 1}, {2, 3}};
  EXPECT_THROW((void)Topology::from_links(4, split), InvariantError);
}

TEST(Topology, NeighborsSortedAndLinksParallel) {
  const Topology t = Topology::hypercube(3);
  for (ProcId p = 0; p < t.num_processors(); ++p) {
    const auto nbrs = t.neighbors(p);
    const auto links = t.links_of(p);
    ASSERT_EQ(nbrs.size(), links.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]);
      }
      EXPECT_EQ(t.opposite(links[i], p), nbrs[i]);
    }
  }
}

TEST(Topology, OppositeRejectsNonEndpoint) {
  const Topology t = Topology::ring(4);
  const LinkId l = t.link_between(0, 1);
  EXPECT_THROW((void)t.opposite(l, 2), PreconditionError);
}

TEST(Topology, BfsOrderStartsAtRootAndCoversAll) {
  const Topology t = Topology::hypercube(4);
  const auto order = t.bfs_order(5);
  ASSERT_EQ(order.size(), 16u);
  EXPECT_EQ(order[0], 5);
  const std::set<ProcId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 16u);
  // BFS property: hop distance is non-decreasing along the order.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(t.hop_distance(5, order[i]), t.hop_distance(5, order[i - 1]));
  }
}

TEST(Topology, HopDistanceOnRing) {
  const Topology t = Topology::ring(6);
  EXPECT_EQ(t.hop_distance(0, 3), 3);
  EXPECT_EQ(t.hop_distance(0, 5), 1);
  EXPECT_EQ(t.hop_distance(2, 2), 0);
}

}  // namespace
}  // namespace bsa::net
