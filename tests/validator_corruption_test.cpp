#include <gtest/gtest.h>

#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::sched {
namespace {

/// Failure injection: take a valid BSA schedule and corrupt it in a
/// targeted way; the validator must flag every corruption kind. This
/// guards the guard — a validator with a blind spot would silently bless
/// broken schedulers.

enum class Corruption : int {
  kShiftTaskEarlier = 0,    // precedence / arrival violation
  kShiftTaskLater,          // processor overlap with successor-in-order
  kStretchTask,             // duration != actual cost
  kShiftHopEarlier,         // hop before data available / link overlap
  kShrinkHop,               // hop duration != comm cost
  kCount,
};

/// Applies the corruption in place; returns false when the instance has
/// no applicable site.
bool corrupt(Corruption kind, const graph::TaskGraph& g,
             const net::Topology& topo, Schedule& s, Rng& rng) {
  switch (kind) {
    case Corruption::kShiftTaskEarlier: {
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (g.in_degree(t) == 0) continue;
        if (s.start_of(t) <= 0.5) continue;
        // Only a violation if the task currently starts exactly at one
        // of its constraints; shifting by 1 below the max arrival breaks
        // precedence whenever start == DRT.
        Time drt = 0;
        for (const EdgeId e : g.in_edges(t)) {
          drt = std::max(drt, s.arrival_of(e));
        }
        if (!time_eq(s.start_of(t), drt)) continue;
        s.set_task_times(t, s.start_of(t) - 1, s.finish_of(t) - 1);
        return true;
      }
      return false;
    }
    case Corruption::kShiftTaskLater: {
      for (ProcId p = 0; p < topo.num_processors(); ++p) {
        const auto& order = s.tasks_on(p);
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
          const TaskId a = order[i];
          const TaskId b = order[i + 1];
          if (time_eq(s.finish_of(a), s.start_of(b))) {
            s.set_task_times(a, s.start_of(a) + 1, s.finish_of(a) + 1);
            return true;
          }
        }
      }
      return false;
    }
    case Corruption::kStretchTask: {
      const auto t = static_cast<TaskId>(
          rng.index(static_cast<std::size_t>(g.num_tasks())));
      s.set_task_times(t, s.start_of(t), s.finish_of(t) + 3);
      return true;
    }
    case Corruption::kShiftHopEarlier: {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& route = s.route_of(e);
        if (route.empty()) continue;
        const Hop& h = route[0];
        // Breaking requires start == source finish (data availability).
        if (!time_eq(h.start, s.finish_of(g.edge_src(e)))) continue;
        if (h.start <= 0.5) continue;
        s.set_hop_times(e, 0, h.start - 1, h.finish - 1);
        return true;
      }
      return false;
    }
    case Corruption::kShrinkHop: {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& route = s.route_of(e);
        if (route.empty()) continue;
        const Hop& h = route.back();
        if (h.finish - h.start <= 1.5) continue;
        s.set_hop_times(e, static_cast<int>(route.size()) - 1, h.start,
                        h.finish - 1);
        return true;
      }
      return false;
    }
    case Corruption::kCount:
      break;
  }
  return false;
}

class FailureInjection
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FailureInjection, ValidatorCatchesCorruption) {
  const auto [kind_int, seed] = GetParam();
  const auto kind = static_cast<Corruption>(kind_int);

  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 0.5;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const net::Topology topo = net::Topology::hypercube(3);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 10, 1, 10, derive_seed(seed, 4));
  auto result = core::schedule_bsa(g, topo, cm);
  ASSERT_TRUE(validate(result.schedule, cm).ok());

  Rng rng(derive_seed(seed, 9));
  if (!corrupt(kind, g, topo, result.schedule, rng)) {
    GTEST_SKIP() << "corruption not applicable to this instance";
  }
  const auto report = validate(result.schedule, cm);
  EXPECT_FALSE(report.ok())
      << "validator missed corruption kind " << kind_int;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FailureInjection,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(Corruption::kCount)),
        ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace bsa::sched
