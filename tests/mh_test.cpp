#include <gtest/gtest.h>

#include "baselines/eft.hpp"
#include "baselines/mh.hpp"
#include "common/check.hpp"
#include "paper_fixture.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::baselines {
namespace {

namespace pf = bsa::testing;

TEST(Mh, ValidOnPaperExample) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto result = schedule_mh(g, topo, cm);
  EXPECT_TRUE(result.schedule.all_placed());
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(result.schedule_length(),
            sched::schedule_length_lower_bound(g, cm));
}

TEST(Mh, Deterministic) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto a = schedule_mh(g, topo, cm);
  const auto b = schedule_mh(g, topo, cm);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(a.schedule.start_of(t), b.schedule.start_of(t));
  }
}

TEST(Mh, SingleTaskFastestProcessor) {
  graph::TaskGraphBuilder b;
  (void)b.add_task(10);
  const auto g = b.build();
  const auto topo = net::Topology::ring(3);
  const std::vector<Cost> matrix{30, 10, 20};
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_mh(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(0), 1);
  EXPECT_DOUBLE_EQ(result.schedule_length(), 10);
}

TEST(Mh, ContentionAwareBeatsObliviousUnderPressure) {
  // At fine granularity the contention-aware MH should not lose badly to
  // its oblivious sibling on average (same priorities, better placement
  // information). Averaged over seeds for robustness.
  double mh_sum = 0;
  double dumb_sum = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    workloads::RandomDagParams p;
    p.num_tasks = 50;
    p.granularity = 0.2;
    p.seed = seed;
    const auto g = workloads::random_layered_dag(p);
    const auto topo = net::Topology::ring(8);
    const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
        g, topo, 1, 20, 1, 20, derive_seed(seed, 3));
    mh_sum += schedule_mh(g, topo, cm).schedule_length();
    // EFT shares the priority rule but decides blind to contention.
    dumb_sum += schedule_eft_oblivious(g, topo, cm).schedule_length();
  }
  EXPECT_LT(mh_sum, dumb_sum * 1.05);
}

class MhProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(MhProperty, ValidOnRandomInstances) {
  const auto [granularity, seed] = GetParam();
  workloads::RandomDagParams p;
  p.num_tasks = 40;
  p.granularity = granularity;
  p.seed = seed;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = net::Topology::random(8, 2, 5, seed);
  const auto cm = net::HeterogeneousCostModel::uniform(
      g, topo, 1, 50, 1, 50, derive_seed(seed, 41));
  const auto result = schedule_mh(g, topo, cm);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MhProperty,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(6u, 7u)));

}  // namespace
}  // namespace bsa::baselines
