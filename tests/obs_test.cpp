#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "exp/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/hooks.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/schedule_io.hpp"
#include "sched/scheduler.hpp"

namespace bsa::obs {
namespace {

// --- counter registry -------------------------------------------------------

TEST(Counters, RegistryInternsAndSnapshotsSortedByName) {
  Registry reg;
  Counter b = reg.counter("beta");
  Counter a = reg.counter("alpha");
  b.add(3);
  a.increment();
  a.increment();
  reg.add("gamma", 7);
  const CounterSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by name regardless of interning order.
  EXPECT_EQ(snap[0], (std::pair<std::string, std::int64_t>{"alpha", 2}));
  EXPECT_EQ(snap[1], (std::pair<std::string, std::int64_t>{"beta", 3}));
  EXPECT_EQ(snap[2], (std::pair<std::string, std::int64_t>{"gamma", 7}));
}

TEST(Counters, InterningIsIdempotent) {
  Registry reg;
  Counter first = reg.counter("x");
  Counter second = reg.counter("x");
  first.add(2);
  second.add(5);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(first.value(), 7);
  EXPECT_EQ(reg.snapshot()[0].second, 7);
}

TEST(Counters, HandlesStayValidAfterManyInterns) {
  // Slot addresses must survive registry growth (deque, not vector).
  Registry reg;
  Counter early = reg.counter("early");
  for (int i = 0; i < 200; ++i) reg.add("filler" + std::to_string(i), 1);
  early.add(42);
  EXPECT_EQ(early.value(), 42);
  for (const auto& [name, value] : reg.snapshot()) {
    if (name == "early") {
      EXPECT_EQ(value, 42);
    }
  }
}

TEST(Counters, EmptyHandleIgnoresEverything) {
  Counter c;
  c.add(5);
  c.increment();
  c.set(9);
  EXPECT_EQ(c.value(), 0);
}

TEST(Counters, MergeSumsAndResetZeroesKeepingHandles) {
  Registry reg;
  Counter a = reg.counter("a");
  a.add(10);
  reg.merge({{"a", 5}, {"b", 2}});
  EXPECT_EQ(a.value(), 15);
  EXPECT_EQ(reg.snapshot(),
            (CounterSnapshot{{"a", 15}, {"b", 2}}));
  reg.reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(a.value(), 0);
  a.increment();  // the handle is still wired to its slot
  EXPECT_EQ(reg.snapshot(), (CounterSnapshot{{"a", 1}, {"b", 0}}));
}

// --- tracer and spans -------------------------------------------------------

TEST(Trace, NullTracerSpanIsInert) {
  Span span(nullptr, "work", "test");
  span.arg("k", 1.0);
  span.close();  // must not crash, nothing to record into
}

TEST(Trace, SpanRecordsOneCompleteEventWithArgs) {
  Tracer tracer;
  {
    Span span(&tracer, "work", "test", 3);
    span.arg("index", 7.0);
  }
  ASSERT_EQ(tracer.event_count(), 1u);
  const TraceEvent e = tracer.sorted_events()[0];
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.cat, "test");
  EXPECT_EQ(e.ph, 'X');
  EXPECT_EQ(e.tid, 3u);
  EXPECT_GE(e.ts_us, 0.0);
  EXPECT_GE(e.dur_us, 0.0);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].first, "index");
  EXPECT_EQ(e.args[0].second, 7.0);
}

TEST(Trace, CloseIsIdempotent) {
  Tracer tracer;
  Span span(&tracer, "once", "test");
  span.close();
  span.close();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Trace, SortedEventsAreMonotonicEvenWhenRecordedOutOfOrder) {
  Tracer tracer;
  tracer.add_complete("late", "test", 100.0, 1.0, 0);
  tracer.add_complete("early", "test", 5.0, 1.0, 0);
  tracer.add_complete("mid", "test", 50.0, 1.0, 0);
  const auto events = tracer.sorted_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "mid");
  EXPECT_EQ(events[2].name, "late");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(Trace, ChromeTraceJsonHasMetadataFirstAndRequiredKeys) {
  Tracer tracer;
  tracer.set_thread_name(0, "main");
  tracer.add_complete("span", "test", 10.0, 2.0, 0, {{"n", 1.0}});
  tracer.add_instant("mark", "test", 0);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  const auto meta = json.find("\"ph\":\"M\"");
  const auto complete = json.find("\"ph\":\"X\"");
  const auto instant = json.find("\"ph\":\"i\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(complete, std::string::npos);
  ASSERT_NE(instant, std::string::npos);
  EXPECT_LT(meta, complete);  // thread_name metadata precedes spans
  EXPECT_NE(json.find("\"args\":{\"name\":\"main\"}"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

// --- decision log -----------------------------------------------------------

MigrationDecision sample_decision() {
  MigrationDecision d;
  d.sweep = 1;
  d.phase = 2;
  d.pivot = 3;
  d.task = 4;
  d.from = 0;
  d.to = 2;
  d.old_finish = 120.0;
  d.predicted_finish = 90.0;
  d.new_finish = 91.0;
  d.makespan_before = 500.0;
  d.makespan_after = 480.0;
  d.outcome = DecisionOutcome::kCommitted;
  return d;
}

TEST(DecisionLog, RowRoundTripsThroughParseJsonlRow) {
  const std::string line = decision_to_jsonl(sample_decision(), "bsa");
  const auto row = runtime::parse_jsonl_row(line);
  EXPECT_EQ(std::get<std::string>(row.at("event")), "migration");
  EXPECT_EQ(std::get<std::string>(row.at("algo")), "bsa");
  EXPECT_EQ(std::get<double>(row.at("sweep")), 1.0);
  EXPECT_EQ(std::get<double>(row.at("pivot")), 3.0);
  EXPECT_EQ(std::get<double>(row.at("task")), 4.0);
  EXPECT_EQ(std::get<double>(row.at("from")), 0.0);
  EXPECT_EQ(std::get<double>(row.at("to")), 2.0);
  EXPECT_EQ(std::get<double>(row.at("gain")), 30.0);
  EXPECT_EQ(std::get<double>(row.at("new_finish")), 91.0);
  EXPECT_EQ(std::get<std::string>(row.at("outcome")), "commit");
}

TEST(DecisionLog, NanFieldsSerialiseAsNull) {
  MigrationDecision d = sample_decision();
  d.to = -1;
  d.new_finish = std::nan("");
  d.makespan_before = std::nan("");
  d.makespan_after = std::nan("");
  d.outcome = DecisionOutcome::kRejectedNoGain;
  const auto row = runtime::parse_jsonl_row(decision_to_jsonl(d));
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(row.at("new_finish")));
  EXPECT_TRUE(
      std::holds_alternative<std::nullptr_t>(row.at("makespan_before")));
  EXPECT_EQ(std::get<std::string>(row.at("outcome")), "reject-no-gain");
  EXPECT_EQ(row.count("algo"), 0u);  // no label, no algo column
}

TEST(DecisionLog, OutcomeNamesAreStable) {
  EXPECT_STREQ(decision_outcome_name(DecisionOutcome::kCommitted), "commit");
  EXPECT_STREQ(decision_outcome_name(DecisionOutcome::kCommittedVip),
               "commit-vip");
  EXPECT_STREQ(decision_outcome_name(DecisionOutcome::kRejectedNoGain),
               "reject-no-gain");
  EXPECT_STREQ(decision_outcome_name(DecisionOutcome::kRejectedMakespanGuard),
               "reject-makespan-guard");
}

TEST(DecisionLog, JsonlSinkCountsRowsAndCollectorKeepsOrder) {
  std::ostringstream os;
  JsonlDecisionLog sink(os, "bsa");
  sink.record(sample_decision());
  sink.record(sample_decision());
  sink.flush();
  EXPECT_EQ(sink.rows_written(), 2u);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NO_THROW((void)runtime::parse_jsonl_row(line));
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  CollectingDecisionLog collector;
  MigrationDecision d = sample_decision();
  collector.record(d);
  d.task = 9;
  collector.record(d);
  ASSERT_EQ(collector.decisions().size(), 2u);
  EXPECT_EQ(collector.decisions()[0].task, 4);
  EXPECT_EQ(collector.decisions()[1].task, 9);
}

// --- BSA decision stream ----------------------------------------------------

runtime::ScenarioSet bsa_set() {
  runtime::ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {25};
  grid.granularities = {0.1, 1.0};
  grid.topologies = {"ring"};
  grid.algos = {"bsa"};
  grid.procs = 4;
  grid.seeds_per_cell = 2;
  grid.base_seed = 11;
  return runtime::ScenarioSet::from_grid(grid);
}

TEST(ObsHooks, ObservedRunMatchesPlainRunExactly) {
  // Observability must observe, never influence: the same scenario run
  // with a tracer and a decision log attached produces the identical
  // schedule, counters and validity.
  const runtime::ScenarioSet set = bsa_set();
  for (const runtime::ScenarioSpec& spec : set) {
    const runtime::ScenarioResult plain = runtime::evaluate_scenario(spec);
    Tracer tracer;
    CollectingDecisionLog decisions;
    Hooks hooks;
    hooks.tracer = &tracer;
    hooks.decision_log = &decisions;
    const runtime::ScenarioResult observed =
        runtime::evaluate_scenario(spec, hooks);
    EXPECT_EQ(observed.schedule_length, plain.schedule_length);
    EXPECT_EQ(observed.valid, plain.valid);
    EXPECT_EQ(observed.counters, plain.counters);
    EXPECT_GT(tracer.event_count(), 0u);
    // Every migration commit in the counters appears in the stream.
    std::int64_t commits = 0;
    for (const auto& [name, value] : plain.counters) {
      if (name == "bsa.migrations") commits = value;
    }
    std::int64_t logged_commits = 0;
    for (const MigrationDecision& d : decisions.decisions()) {
      if (d.outcome == DecisionOutcome::kCommitted ||
          d.outcome == DecisionOutcome::kCommittedVip) {
        ++logged_commits;
      }
    }
    EXPECT_EQ(logged_commits, commits) << "scenario " << spec.index;
  }
}

TEST(ObsHooks, CountersAreBitIdenticalAtAnyThreadCount) {
  const runtime::ScenarioSet set = bsa_set();
  const auto serial = runtime::SweepRunner({.threads = 1}).run(set);
  ASSERT_EQ(serial.size(), set.size());
  for (const auto& r : serial) {
    EXPECT_FALSE(r.counters.empty()) << "scenario " << r.spec.index;
  }
  for (const int threads : {2, 8}) {
    const auto parallel = runtime::SweepRunner({.threads = threads}).run(set);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].counters, serial[i].counters)
          << threads << " threads, scenario " << i;
    }
  }
}

TEST(ObsHooks, TracedSweepEmitsScenarioSpansPerWorkerTrack) {
  const runtime::ScenarioSet set = bsa_set();
  Tracer tracer;
  runtime::SweepOptions opts;
  opts.threads = 2;
  opts.tracer = &tracer;
  const auto results = runtime::SweepRunner(opts).run(set);
  ASSERT_EQ(results.size(), set.size());
  std::size_t scenario_spans = 0;
  for (const TraceEvent& e : tracer.sorted_events()) {
    if (e.name == "scenario" && e.cat == "sweep") ++scenario_spans;
    EXPECT_GE(e.ts_us, 0.0);
  }
  EXPECT_EQ(scenario_spans, set.size());
}

// --- progress meter ---------------------------------------------------------

TEST(Progress, RendersDoneTotalAndFinishesWithNewline) {
  std::ostringstream os;
  {
    ProgressMeter meter(10, "bench", &os, std::chrono::milliseconds(0));
    meter.update(3);
    meter.update(2);  // out-of-order report must not move backwards
    meter.update(7);
    meter.finish();
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("bench"), std::string::npos);
  EXPECT_NE(out.find("3/10"), std::string::npos);
  EXPECT_NE(out.find("7/10"), std::string::npos);
  EXPECT_EQ(out.find("2/10"), std::string::npos);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TEST(Progress, CallbackForwardsToUpdate) {
  std::ostringstream os;
  ProgressMeter meter(4, "x", &os, std::chrono::milliseconds(0));
  const auto cb = meter.callback();
  cb(2, 4);
  meter.finish();
  EXPECT_NE(os.str().find("2/4"), std::string::npos);
}

TEST(Progress, MaybeProgressIsNullWhenNotRequestedOrNoTty) {
  EXPECT_EQ(obs::maybe_progress(false, 10, "x"), nullptr);
  if (!stderr_is_tty()) {
    // In CI / redirected runs --progress must degrade to a no-op.
    EXPECT_EQ(obs::maybe_progress(true, 10, "x"), nullptr);
  }
}

// --- sink integration -------------------------------------------------------

TEST(Sinks, JsonlCounterColumnsAreOptInAndRoundTrip) {
  const runtime::ScenarioSet set = bsa_set();
  const runtime::ScenarioResult r = runtime::evaluate_scenario(set[0]);
  ASSERT_FALSE(r.counters.empty());
  const std::string plain = runtime::to_jsonl(r);
  EXPECT_EQ(plain.find("ctr:"), std::string::npos);
  EXPECT_EQ(plain, runtime::to_jsonl(r, false));

  const std::string with = runtime::to_jsonl(r, true);
  const auto row = runtime::parse_jsonl_row(with);
  for (const auto& [name, value] : r.counters) {
    const auto it = row.find("ctr:" + name);
    ASSERT_NE(it, row.end()) << name;
    EXPECT_EQ(std::get<double>(it->second), static_cast<double>(value));
  }
}

TEST(Sinks, BenchJsonCarriesPercentilesAndCounters) {
  runtime::BenchEntry e;
  e.label = "BSA/ring/100";
  e.runs = 8;
  e.mean_wall_ms = 1.5;
  e.mean_schedule_length = 321.0;
  e.p50_wall_ms = 1.25;
  e.p99_wall_ms = 4.5;
  e.counters = {{"bsa.migrations", 12}, {"bsa.pivots", 3}};
  std::ostringstream os;
  runtime::write_bench_json(os, "unit", 2, {e});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"mean_wall_ms\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50_wall_ms\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"p99_wall_ms\":4.5"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"bsa.migrations\":12,"
                      "\"bsa.pivots\":3}"),
            std::string::npos);
}

// --- percentiles ------------------------------------------------------------

TEST(Percentiles, LinearInterpolationAndMedianAgreement) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_EQ(percentile_of(xs, 100), 4.0);
  EXPECT_EQ(percentile_of(xs, 50), 2.5);
  EXPECT_EQ(percentile_of(xs, 25), 1.75);
  EXPECT_EQ(percentile_of(xs, 50), median_of(xs));
  EXPECT_EQ(percentile_of({7.0}, 99), 7.0);
}

TEST(Percentiles, RejectsEmptyInputAndBadRanks) {
  EXPECT_THROW((void)percentile_of({}, 50), PreconditionError);
  EXPECT_THROW((void)percentile_of({1.0}, -1), PreconditionError);
  EXPECT_THROW((void)percentile_of({1.0}, 101), PreconditionError);
}

}  // namespace
}  // namespace bsa::obs
