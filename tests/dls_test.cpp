#include <gtest/gtest.h>

#include "common/check.hpp"
#include "baselines/dls.hpp"
#include "paper_fixture.hpp"
#include "sched/event_sim.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::baselines {
namespace {

namespace pf = bsa::testing;

struct DlsPaperTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  net::HeterogeneousCostModel cm = pf::paper_cost_model(g, topo);
};

TEST_F(DlsPaperTest, ProducesValidSchedule) {
  const auto result = schedule_dls(g, topo, cm);
  EXPECT_TRUE(result.schedule.all_placed());
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(result.schedule_length(),
            sched::schedule_length_lower_bound(g, cm));
}

TEST_F(DlsPaperTest, StaticLevelsUseMedianExecCosts) {
  const auto result = schedule_dls(g, topo, cm);
  // SL*(T9) = median exec of T9 = 15.5 (no successors).
  EXPECT_DOUBLE_EQ(result.static_levels[pf::T9], 15.5);
  // SL*(T8) = median(T8) + SL*(T9) = (47+51)/2 ... medians: T8 row
  // {51,18,47,74} -> (47+51)/2 = 49; so 49 + 15.5 = 64.5.
  EXPECT_DOUBLE_EQ(result.static_levels[pf::T8], 64.5);
  // SL* decreases along edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GT(result.static_levels[g.edge_src(e)],
              result.static_levels[g.edge_dst(e)]);
  }
}

TEST_F(DlsPaperTest, Deterministic) {
  const auto a = schedule_dls(g, topo, cm);
  const auto b = schedule_dls(g, topo, cm);
  EXPECT_DOUBLE_EQ(a.schedule_length(), b.schedule_length());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(a.schedule.start_of(t), b.schedule.start_of(t));
  }
}

TEST_F(DlsPaperTest, SeededTieBreaksAreValidAndDeterministic) {
  // A non-zero seed switches the equal-dynamic-level tie order to a hash
  // shuffle; the schedule must stay valid and repeat for the same seed.
  DlsOptions opt;
  opt.seed = 7;
  const auto a = schedule_dls(g, topo, cm, opt);
  const auto b = schedule_dls(g, topo, cm, opt);
  EXPECT_TRUE(sched::validate(a.schedule, cm).ok());
  EXPECT_DOUBLE_EQ(a.schedule_length(), b.schedule_length());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
  }
  // seed == 0 is exactly the default deterministic order.
  DlsOptions zero;
  zero.seed = 0;
  const auto c = schedule_dls(g, topo, cm, zero);
  const auto d = schedule_dls(g, topo, cm);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(c.schedule.proc_of(t), d.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(c.schedule.start_of(t), d.schedule.start_of(t));
  }
}

TEST_F(DlsPaperTest, TimesAgreeWithEventSimulationModuloSlack) {
  // DLS uses append placement, so starts equal max(DA, TF) — execution
  // under recorded orders can only start tasks at or before those times.
  const auto result = schedule_dls(g, topo, cm);
  const auto sim = sched::simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_LE(sim.task_start[static_cast<std::size_t>(t)],
              result.schedule.start_of(t) + kTimeEpsilon);
  }
}

TEST(DlsSmall, SingleTaskPicksLargestDynamicLevel) {
  // DL = SL* - start + (median - exec): start 0 everywhere, so the
  // fastest processor (largest delta) wins.
  graph::TaskGraphBuilder b;
  (void)b.add_task(10);
  const auto g = b.build();
  const auto topo = net::Topology::ring(3);
  const std::vector<Cost> matrix{30, 10, 20};
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_dls(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(0), 1);
  EXPECT_DOUBLE_EQ(result.schedule_length(), 10);
}

TEST(DlsSmall, RespectsReadiness) {
  // Diamond: middle tasks only become ready after the source commits.
  graph::TaskGraphBuilder b;
  const TaskId s = b.add_task(10);
  const TaskId m1 = b.add_task(10);
  const TaskId m2 = b.add_task(10);
  const TaskId t = b.add_task(10);
  (void)b.add_edge(s, m1, 2);
  (void)b.add_edge(s, m2, 2);
  (void)b.add_edge(m1, t, 2);
  (void)b.add_edge(m2, t, 2);
  const auto g = b.build();
  const auto topo = net::Topology::clique(4);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  const auto result = schedule_dls(g, topo, cm);
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(result.schedule.start_of(m1), result.schedule.finish_of(s));
  EXPECT_GE(result.schedule.start_of(t),
            std::max(result.schedule.finish_of(m1),
                     result.schedule.finish_of(m2)));
}

TEST(DlsSmall, RoutesMultiHopMessages) {
  // Linear array forces multi-hop communication when tasks spread.
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(100);
  const TaskId c = b.add_task(100);
  const TaskId d = b.add_task(100);
  (void)b.add_edge(a, c, 1);
  (void)b.add_edge(a, d, 1);
  const auto g = b.build();
  const auto topo = net::Topology::linear(3);
  // Make the far processor extremely attractive for task d.
  std::vector<Cost> matrix{
      100, 400, 400,   // a prefers P0
      400, 100, 400,   // c prefers P1
      400, 400, 5,     // d strongly prefers P2
  };
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_dls(g, topo, cm);
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  if (result.schedule.proc_of(a) == 0 && result.schedule.proc_of(d) == 2) {
    const EdgeId e = g.find_edge(a, d);
    EXPECT_EQ(result.schedule.route_of(e).size(), 2u);
  }
}

class DlsProperty
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(DlsProperty, ValidOnRandomInstances) {
  const auto [n, granularity, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = n;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const net::Topology topologies[] = {net::Topology::ring(8),
                                      net::Topology::hypercube(3),
                                      net::Topology::clique(8)};
  for (const auto& topo : topologies) {
    const auto cm = net::HeterogeneousCostModel::uniform(
        g, topo, 1, 50, 1, 50, derive_seed(seed, 5));
    const auto result = schedule_dls(g, topo, cm);
    const auto report = sched::validate(result.schedule, cm);
    ASSERT_TRUE(report.ok()) << report.to_string();
    EXPECT_GE(result.schedule_length() + kTimeEpsilon,
              sched::schedule_length_lower_bound(g, cm));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DlsProperty,
    ::testing::Combine(::testing::Values(20, 50),
                       ::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace bsa::baselines
