// End-to-end tests of the scheduling-service daemon core: a real
// serve::Server on a unique temp AF_UNIX socket per test, driven through
// real client connections. Protocol-robustness cases (malformed JSON,
// unknown names, oversized lines, mid-request disconnects) assert the
// daemon answers with errors and keeps serving — it must never crash.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/client.hpp"
#include "serve/eval.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace bsa::serve {
namespace {

std::string unique_socket(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/bsa_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

ServerOptions small_options(const std::string& tag) {
  ServerOptions options;
  options.socket_path = unique_socket(tag);
  options.threads = 2;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  options.batch_wait_us = 0;
  return options;
}

Request small_request() {
  Request req;
  req.size = 20;
  req.procs = 4;
  req.seed = 3;
  return req;
}

TEST(ServeServer, PingStatsAndCounters) {
  Server server(small_options("ping"));
  server.start();
  auto client = Client::connect(server.socket_path());

  const Response pong = client.ping();
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.text("op"), "ping");

  const Response stats = client.stats();
  EXPECT_TRUE(stats.ok);
  EXPECT_GE(stats.number("ctr:serve.requests", -1), 1);
  EXPECT_GE(stats.number("ctr:serve.connections", -1), 1);
  server.stop();
}

TEST(ServeServer, ScheduleMatchesLocalEvaluationBitForBit) {
  Server server(small_options("sched"));
  server.start();
  auto client = Client::connect(server.socket_path());

  Request req = small_request();
  const Response resp = client.call(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_FALSE(resp.cached);
  EXPECT_GT(resp.makespan(), 0);

  // The daemon's payload must match an in-process evaluation of the same
  // canonical request — same schedule text, same makespan, same counters.
  Request local = small_request();
  (void)canonicalize(local);
  const Response fresh =
      parse_response(format_response(resp.id, false, 0, evaluate_request(local)));
  EXPECT_EQ(resp.schedule_text(), fresh.schedule_text());
  EXPECT_EQ(resp.makespan(), fresh.makespan());
  EXPECT_EQ(resp.payload.size(), fresh.payload.size());
  server.stop();
}

TEST(ServeServer, RepeatRequestIsCachedAndPayloadIdentical) {
  Server server(small_options("cache"));
  server.start();
  auto client = Client::connect(server.socket_path());

  const Response first = client.call(small_request());
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cached);

  const Response second = client.call(small_request());
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cached);
  // The payload (everything outside the envelope) is byte-derived from
  // the same cached string, so every field matches exactly.
  EXPECT_EQ(first.payload, second.payload);

  // cache:false bypasses the cache even when the entry is resident.
  Request uncached = small_request();
  uncached.use_cache = false;
  const Response third = client.call(uncached);
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_FALSE(third.cached);
  EXPECT_EQ(third.payload, first.payload);
  server.stop();
}

TEST(ServeServer, MalformedJsonGetsErrorAndConnectionSurvives) {
  Server server(small_options("badjson"));
  server.start();
  auto client = Client::connect(server.socket_path());

  Fd raw = connect_unix(server.socket_path());
  ASSERT_TRUE(write_all(raw, "this is not json\n"));
  LineReader reader(raw);
  std::string line;
  ASSERT_TRUE(reader.read_line(line, kMaxRequestBytes));
  const Response err = parse_response(line);
  EXPECT_FALSE(err.ok);
  EXPECT_FALSE(err.error.empty());

  // Same connection still serves valid requests afterwards.
  ASSERT_TRUE(write_all(raw, "{\"op\":\"ping\",\"id\":9}\n"));
  ASSERT_TRUE(reader.read_line(line, kMaxRequestBytes));
  const Response pong = parse_response(line);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, 9u);
  server.stop();
}

TEST(ServeServer, UnknownSpecNamesListValidChoices) {
  Server server(small_options("unknown"));
  server.start();
  auto client = Client::connect(server.socket_path());

  Request bad_algo = small_request();
  bad_algo.algo = "nosuch";
  const Response r1 = client.call(bad_algo);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("nosuch"), std::string::npos) << r1.error;
  EXPECT_NE(r1.error.find("bsa"), std::string::npos) << r1.error;

  Request bad_workload = small_request();
  bad_workload.workload = "nosuchload";
  const Response r2 = client.call(bad_workload);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("nosuchload"), std::string::npos) << r2.error;
  EXPECT_NE(r2.error.find("fft"), std::string::npos) << r2.error;

  Request bad_topo = small_request();
  bad_topo.topology = "torus";
  const Response r3 = client.call(bad_topo);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("torus"), std::string::npos) << r3.error;
  EXPECT_NE(r3.error.find("hypercube"), std::string::npos) << r3.error;

  // The daemon kept serving through all three rejections.
  EXPECT_TRUE(client.ping().ok);
  server.stop();
}

TEST(ServeServer, OversizedRequestAnsweredThenDropped) {
  Server server(small_options("oversize"));
  server.start();

  Fd raw = connect_unix(server.socket_path());
  // Exceed kMaxRequestBytes without ever sending a newline: the server
  // must answer with an error and close, not buffer forever or crash.
  const std::string chunk(1 << 16, 'x');
  for (int i = 0; i < 20; ++i) {
    if (!write_all(raw, chunk)) break;  // server may already have closed
  }
  LineReader reader(raw);
  std::string line;
  if (reader.read_line(line, kMaxRequestBytes)) {
    const Response err = parse_response(line);
    EXPECT_FALSE(err.ok);
    EXPECT_NE(err.error.find("exceeds"), std::string::npos) << err.error;
  }

  // Daemon still alive for new connections.
  auto client = Client::connect(server.socket_path());
  EXPECT_TRUE(client.ping().ok);
  server.stop();
}

TEST(ServeServer, MidRequestDisconnectLeavesServerServing) {
  Server server(small_options("disconnect"));
  server.start();
  {
    Fd raw = connect_unix(server.socket_path());
    // Half a request, no newline — then vanish.
    ASSERT_TRUE(write_all(raw, "{\"op\":\"sched"));
  }
  {
    // A full request whose response is never read — then vanish; the
    // daemon's write must not kill it (SIGPIPE) or wedge the batch.
    Fd raw = connect_unix(server.socket_path());
    ASSERT_TRUE(write_all(raw, request_to_json(small_request()) + "\n"));
  }
  auto client = Client::connect(server.socket_path());
  const Response resp = client.call(small_request());
  EXPECT_TRUE(resp.ok) << resp.error;
  server.stop();
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

TEST(ServeServer, DisconnectedSessionsReleaseFdsWhileRunning) {
  // Regression: session fds and threads used to be reclaimed only at
  // stop(), so a long-running daemon leaked one fd per past client until
  // accept() died with EMFILE. Churn connections and require the
  // process-wide fd count to return to its baseline while the server is
  // still serving.
  Server server(small_options("churn"));
  server.start();
  auto client = Client::connect(server.socket_path());
  ASSERT_TRUE(client.ping().ok);

  const std::size_t baseline = open_fd_count();
  for (int round = 0; round < 3; ++round) {
    {
      std::vector<Fd> conns;
      for (int i = 0; i < 16; ++i) {
        conns.push_back(connect_unix(server.socket_path()));
      }
    }  // all 16 clients vanish; their sessions must self-reap
    // Assert the count *returns* to baseline before the deadline rather
    // than re-sampling after the poll: a connection the server accepts
    // only after the client already closed bumps the count transiently,
    // and that late-accept blip is not a leak.
    bool settled = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (open_fd_count() <= baseline) {
        settled = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(settled) << "round " << round << ": fds never returned to "
                         << baseline << " (now " << open_fd_count() << ")";
  }
  // Still serving after all that churn.
  EXPECT_TRUE(client.ping().ok);
  server.stop();
}

TEST(ServeServer, MixedCacheFlagsInOneBatchStillPopulateCache) {
  // Regression: batch dedup kept only the first request's use_cache, so
  // a cache:false arrival racing ahead of a cache:true one for the same
  // key could leave the result uncached. Whatever the interleaving, once
  // both complete the entry must be resident.
  ServerOptions options = small_options("mixedcache");
  options.batch_wait_us = 2000;  // encourage both submits into one batch
  Server server(std::move(options));
  server.start();

  AsyncClient async(server.socket_path());
  Request no_cache = small_request();
  no_cache.use_cache = false;
  auto f1 = async.submit(no_cache);
  auto f2 = async.submit(small_request());  // use_cache defaults true
  ASSERT_TRUE(f1.get().ok);
  ASSERT_TRUE(f2.get().ok);

  auto client = Client::connect(server.socket_path());
  const Response repeat = client.call(small_request());
  ASSERT_TRUE(repeat.ok) << repeat.error;
  EXPECT_TRUE(repeat.cached);
  server.stop();
}

TEST(ServeServer, AsyncClientPipelinesAndBatchDedupes) {
  ServerOptions options = small_options("async");
  options.batch_wait_us = 2000;  // give concurrent submits a batch window
  Server server(std::move(options));
  server.start();

  AsyncClient client(server.socket_path());
  std::vector<std::future<Response>> futures;
  futures.reserve(16);
  for (int i = 0; i < 16; ++i) {
    Request req = small_request();
    req.seed = 100 + static_cast<std::uint64_t>(i % 4);  // 4 unique keys
    req.use_cache = false;  // force evaluation so in-batch dedupe is the
                            // only sharing mechanism
    futures.push_back(client.submit(req));
  }
  std::string schedule_for_seed_100;
  for (int i = 0; i < 16; ++i) {
    const Response resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(resp.ok) << resp.error;
    if (i % 4 == 0) {
      if (schedule_for_seed_100.empty()) {
        schedule_for_seed_100 = resp.schedule_text();
      } else {
        EXPECT_EQ(resp.schedule_text(), schedule_for_seed_100);
      }
    }
  }
  EXPECT_EQ(client.in_flight(), 0u);
  server.stop();
}

TEST(ServeServer, ShutdownOpStopsWaitAndAnswersFirst) {
  Server server(small_options("shutdown"));
  server.start();
  std::thread waiter([&server] {
    server.wait();
    server.stop();
  });
  auto client = Client::connect(server.socket_path());
  const Response ack = client.shutdown_server();
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.text("op"), "shutdown");
  waiter.join();
  // Socket file is gone after a clean stop.
  EXPECT_NE(::access(server.socket_path().c_str(), F_OK), 0);
}

TEST(ServeServer, CountersReflectTraffic) {
  Server server(small_options("counters"));
  server.start();
  auto client = Client::connect(server.socket_path());
  (void)client.call(small_request());
  (void)client.call(small_request());
  Request bad = small_request();
  bad.algo = "nosuch";
  (void)client.call(bad);
  server.stop();

  const obs::CounterSnapshot snapshot = server.counters();
  const auto value = [&snapshot](const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : snapshot) {
      if (n == name) return v;
    }
    return -1;
  };
  EXPECT_EQ(value("serve.requests"), 3);
  EXPECT_EQ(value("serve.cache.hits"), 1);
  EXPECT_GE(value("serve.cache.misses"), 1);
  EXPECT_EQ(value("serve.errors"), 1);
  EXPECT_GE(value("serve.batches"), 1);
  EXPECT_GE(value("serve.batch_size_hwm"), 1);
}

}  // namespace
}  // namespace bsa::serve
