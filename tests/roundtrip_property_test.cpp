#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "graph/graph_io.hpp"
#include "sched/schedule_io.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/regular.hpp"

namespace bsa {
namespace {

/// Round-trip properties over randomly generated instances: text
/// serialization of graphs and schedules must preserve every observable.

class GraphRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GraphRoundTrip, TextPreservesEverything) {
  const auto [n, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = n;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto h = graph::from_text(graph::to_text(g));
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(h.task_cost(t), g.task_cost(t));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_src(e), g.edge_src(e));
    EXPECT_EQ(h.edge_dst(e), g.edge_dst(e));
    EXPECT_DOUBLE_EQ(h.edge_cost(e), g.edge_cost(e));
  }
  EXPECT_EQ(h.topological_order(), g.topological_order());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphRoundTrip,
    ::testing::Combine(::testing::Values(10, 50, 150),
                       ::testing::Values(1u, 2u, 3u)));

class ScheduleRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ScheduleRoundTrip, TextPreservesValidityAndTimes) {
  const auto [granularity, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 50;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::random(8, 2, 5, seed);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 30, 1, 30, derive_seed(seed, 8));
  const auto result = core::schedule_bsa(g, topo, cm);

  const auto restored =
      sched::schedule_from_text(sched::schedule_to_text(result.schedule), g,
                                topo);
  ASSERT_TRUE(restored.all_placed());
  EXPECT_TRUE(sched::validate(restored, cm).ok());
  EXPECT_DOUBLE_EQ(restored.makespan(), result.schedule.makespan());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(restored.proc_of(t), result.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(restored.start_of(t), result.schedule.start_of(t));
  }
  // Link booking orders are reconstructed identically.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& a = result.schedule.bookings_on(l);
    const auto& b = restored.bookings_on(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].edge, b[i].edge);
      EXPECT_EQ(a[i].hop_index, b[i].hop_index);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleRoundTrip,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(4u, 5u)));

/// Regular generators also round-trip (they carry task names).
TEST(GraphRoundTrip, RegularGeneratorsKeepNames) {
  const auto g = workloads::gaussian_elimination(8);
  const auto h = graph::from_text(graph::to_text(g));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(h.task_name(t), g.task_name(t));
  }
}

}  // namespace
}  // namespace bsa
