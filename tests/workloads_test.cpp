#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/traversal.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/regular.hpp"

namespace bsa::workloads {
namespace {

TEST(GaussianElimination, TaskCountFormula) {
  // count(dim) = dim(dim+1)/2 - 1.
  EXPECT_EQ(gaussian_elimination_task_count(2), 2);
  EXPECT_EQ(gaussian_elimination_task_count(5), 14);
  EXPECT_EQ(gaussian_elimination_task_count(10), 54);
  const auto g = gaussian_elimination(10);
  EXPECT_EQ(g.num_tasks(), 54);
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(GaussianElimination, StructureIsCorrect) {
  const auto g = gaussian_elimination(4);
  // dim=4: steps k=1..3 with 4,3,2 tasks -> 9 tasks.
  EXPECT_EQ(g.num_tasks(), 9);
  // Entry = T1_1 (first pivot); exit = T3_4 (last update) and T3_3.
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.task_name(g.entry_tasks()[0]), "T1_1");
  // The pivot of step k feeds dim-k updates.
  EXPECT_EQ(g.out_degree(g.entry_tasks()[0]), 3);
  EXPECT_EQ(graph::graph_depth(g), 6);  // pivot/update alternation
}

TEST(GaussianElimination, DimForTargetsPaperSizes) {
  for (const int target : {50, 100, 200, 300, 500}) {
    const int dim = gaussian_elimination_dim_for(target);
    const int count = gaussian_elimination_task_count(dim);
    // Within one step of the target (steps are <= dim+1 tasks apart).
    EXPECT_LT(std::abs(count - target), 40) << "target " << target;
  }
}

TEST(LuDecomposition, TaskCountFormula) {
  // k=0: GETRF + 2 TRSM + 1 GEMM = 4; k=1: final GETRF = 1.
  EXPECT_EQ(lu_decomposition_task_count(2), 5);
  // T + T(T-1) + (T-1)T(2T-1)/6 for T=4: 4 + 12 + 14 = 30.
  EXPECT_EQ(lu_decomposition_task_count(4), 30);
  const auto g = lu_decomposition(4);
  EXPECT_EQ(g.num_tasks(), lu_decomposition_task_count(4));
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(LuDecomposition, GetrfChainIsSequential) {
  const auto g = lu_decomposition(4);
  // GETRF(k+1) must be a descendant of GETRF(k).
  TaskId getrf0 = kInvalidTask, getrf1 = kInvalidTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.task_name(t) == "GETRF0") getrf0 = t;
    if (g.task_name(t) == "GETRF1") getrf1 = t;
  }
  ASSERT_NE(getrf0, kInvalidTask);
  ASSERT_NE(getrf1, kInvalidTask);
  EXPECT_TRUE(graph::is_reachable(g, getrf0, getrf1));
}

TEST(Laplace, CountAndWavefrontStructure) {
  EXPECT_EQ(laplace_task_count(7), 49);
  const auto g = laplace(5);
  EXPECT_EQ(g.num_tasks(), 25);
  EXPECT_EQ(g.num_edges(), 2 * 5 * 4);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(graph::graph_depth(g), 9);  // 2*dim - 1
}

TEST(Mva, CountAndLayerStructure) {
  EXPECT_EQ(mva_task_count(6, 8), 54);
  const auto g = mean_value_analysis(3, 4);
  EXPECT_EQ(g.num_tasks(), 15);
  EXPECT_TRUE(g.is_weakly_connected());
  // Station tasks of level 0 are entries; last aggregator is the exit.
  EXPECT_EQ(g.entry_tasks().size(), 4u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(graph::graph_depth(g), 6);  // S,A alternating x3
}

TEST(Fft, ButterflyStructure) {
  EXPECT_EQ(fft_task_count(8), 32);  // 8 points x (3+1) rows
  const auto g = fft(4);
  EXPECT_EQ(g.num_tasks(), 12);
  // Interior tasks have exactly two successors (straight + butterfly).
  for (TaskId t = 0; t < 8; ++t) {
    EXPECT_EQ(g.out_degree(t), 2);
  }
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(ForkJoin, Structure) {
  EXPECT_EQ(fork_join_task_count(2, 3), 9);
  const auto g = fork_join(2, 3);
  EXPECT_EQ(g.num_tasks(), 9);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(graph::graph_depth(g), 5);  // J F J F J
}

TEST(RegularCosts, ExecCostsInRangeAndSeeded) {
  CostParams cp;
  cp.seed = 3;
  const auto a = gaussian_elimination(8, cp);
  const auto b = gaussian_elimination(8, cp);
  cp.seed = 4;
  const auto c = gaussian_elimination(8, cp);
  bool differs = false;
  for (TaskId t = 0; t < a.num_tasks(); ++t) {
    EXPECT_GE(a.task_cost(t), 100);
    EXPECT_LE(a.task_cost(t), 200);
    EXPECT_DOUBLE_EQ(a.task_cost(t), b.task_cost(t));
    if (a.task_cost(t) != c.task_cost(t)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RegularCosts, GranularityIsRealised) {
  for (const double gran : {0.1, 1.0, 10.0}) {
    CostParams cp;
    cp.granularity = gran;
    cp.seed = 5;
    const auto g = laplace(10, cp);
    // Measured granularity within ±30% of the request (comm costs are
    // jittered ±50% around the target mean).
    EXPECT_GT(g.granularity(), gran * 0.7) << gran;
    EXPECT_LT(g.granularity(), gran * 1.3) << gran;
  }
}

TEST(RegularGenerators, RejectBadParameters) {
  EXPECT_THROW((void)gaussian_elimination(1), PreconditionError);
  EXPECT_THROW((void)lu_decomposition(1), PreconditionError);
  EXPECT_THROW((void)laplace(0), PreconditionError);
  EXPECT_THROW((void)mean_value_analysis(0, 4), PreconditionError);
  EXPECT_THROW((void)fft(6), PreconditionError);  // not a power of two
  EXPECT_THROW((void)fork_join(0, 3), PreconditionError);
}

// --- random DAGs -------------------------------------------------------------

TEST(RandomDag, ExactSizeConnectedAcyclic) {
  for (const int n : {10, 50, 200}) {
    RandomDagParams p;
    p.num_tasks = n;
    p.seed = 7;
    const auto g = random_layered_dag(p);
    EXPECT_EQ(g.num_tasks(), n);
    EXPECT_TRUE(g.is_weakly_connected());
    // build() already guarantees acyclicity; topological order exists.
    EXPECT_EQ(g.topological_order().size(), static_cast<std::size_t>(n));
    EXPECT_GE(g.num_edges(), n - 1);
  }
}

TEST(RandomDag, SeedDeterminism) {
  RandomDagParams p;
  p.num_tasks = 60;
  p.seed = 11;
  const auto a = random_layered_dag(p);
  const auto b = random_layered_dag(p);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_src(e), b.edge_src(e));
    EXPECT_EQ(a.edge_dst(e), b.edge_dst(e));
    EXPECT_DOUBLE_EQ(a.edge_cost(e), b.edge_cost(e));
  }
  p.seed = 12;
  const auto c = random_layered_dag(p);
  EXPECT_TRUE(a.num_edges() != c.num_edges() ||
              a.edge_src(0) != c.edge_src(0) ||
              a.edge_cost(0) != c.edge_cost(0));
}

TEST(RandomDag, ExecCostsInPaperRange) {
  RandomDagParams p;
  p.num_tasks = 100;
  p.seed = 13;
  const auto g = random_layered_dag(p);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(g.task_cost(t), 100);
    EXPECT_LE(g.task_cost(t), 200);
  }
  EXPECT_NEAR(g.average_exec_cost(), 150, 15);
}

TEST(RandomDag, GranularityRealised) {
  for (const double gran : {0.1, 1.0, 10.0}) {
    RandomDagParams p;
    p.num_tasks = 150;
    p.granularity = gran;
    p.seed = 17;
    const auto g = random_layered_dag(p);
    EXPECT_GT(g.granularity(), gran * 0.7);
    EXPECT_LT(g.granularity(), gran * 1.4);
  }
}

TEST(RandomDag, IdsAreTopologicallyOrdered) {
  RandomDagParams p;
  p.num_tasks = 80;
  p.seed = 19;
  const auto g = random_layered_dag(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(g.edge_src(e), g.edge_dst(e));
  }
}

TEST(RandomDag, RejectsBadParameters) {
  RandomDagParams p;
  p.num_tasks = 1;
  EXPECT_THROW((void)random_layered_dag(p), PreconditionError);
  p.num_tasks = 10;
  p.granularity = 0;
  EXPECT_THROW((void)random_layered_dag(p), PreconditionError);
  p.granularity = 1;
  p.max_preds = 0;
  EXPECT_THROW((void)random_layered_dag(p), PreconditionError);
}

}  // namespace
}  // namespace bsa::workloads
