#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "network/cost_model.hpp"
#include "paper_fixture.hpp"

namespace bsa::net {
namespace {

namespace pf = bsa::testing;

TEST(CostModel, Table1MatrixIsVerbatim) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T1, 0), 39);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T1, 1), 7);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T1, 2), 2);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T5, 3), 12);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T9, 0), 8);
  EXPECT_DOUBLE_EQ(cm.exec_cost(pf::T8, 1), 18);
}

TEST(CostModel, HomogeneousLinksUseNominalCosts) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const EdgeId e17 = g.find_edge(pf::T1, pf::T7);
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(cm.comm_cost(e17, l), 100);
  }
}

TEST(CostModel, UniformFactorsWithinRange) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::hypercube(4);
  const auto cm =
      HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, /*seed=*/11);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    for (ProcId p = 0; p < topo.num_processors(); ++p) {
      const Cost c = cm.exec_cost(t, p);
      EXPECT_GE(c, g.task_cost(t) * 1);
      EXPECT_LE(c, g.task_cost(t) * 50);
      // Factor must be integral.
      const double factor = c / g.task_cost(t);
      EXPECT_DOUBLE_EQ(factor, std::floor(factor));
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const Cost c = cm.comm_cost(e, l);
      EXPECT_GE(c, g.edge_cost(e) * 1);
      EXPECT_LE(c, g.edge_cost(e) * 50);
    }
  }
}

TEST(CostModel, UniformIsSeedDeterministic) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::ring(8);
  const auto a = HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, 5);
  const auto b = HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, 5);
  const auto c = HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, 6);
  bool any_difference = false;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    for (ProcId p = 0; p < topo.num_processors(); ++p) {
      EXPECT_DOUBLE_EQ(a.exec_cost(t, p), b.exec_cost(t, p));
      if (a.exec_cost(t, p) != c.exec_cost(t, p)) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(CostModel, ExecAndCommStreamsIndependent) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::ring(4);
  // Same seed, different ranges must not alias streams: exec factors in
  // [1,1] while comm varies.
  const auto cm = HeterogeneousCostModel::uniform(g, topo, 1, 1, 2, 9, 3);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(cm.exec_cost(t, 0), g.task_cost(t));
  }
  const EdgeId e = 0;
  bool varied = false;
  Cost first = cm.comm_cost(e, 0);
  for (LinkId l = 1; l < topo.num_links(); ++l) {
    if (cm.comm_cost(e, l) != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(CostModel, HomogeneousIsNominal) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::ring(4);
  const auto cm = HeterogeneousCostModel::homogeneous(g, topo);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    for (ProcId p = 0; p < 4; ++p) {
      EXPECT_DOUBLE_EQ(cm.exec_cost(t, p), g.task_cost(t));
    }
  }
  EXPECT_DOUBLE_EQ(cm.min_exec_cost(pf::T5), 50);
  EXPECT_DOUBLE_EQ(cm.median_exec_cost(pf::T5), 50);
}

TEST(CostModel, MinAndMedianFromTable1) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  // T1 row: {39, 7, 2, 6} -> min 2, median (6+7)/2 = 6.5.
  EXPECT_DOUBLE_EQ(cm.min_exec_cost(pf::T1), 2);
  EXPECT_DOUBLE_EQ(cm.median_exec_cost(pf::T1), 6.5);
  // T9 row: {8, 16, 15, 20} -> min 8, median 15.5.
  EXPECT_DOUBLE_EQ(cm.min_exec_cost(pf::T9), 8);
  EXPECT_DOUBLE_EQ(cm.median_exec_cost(pf::T9), 15.5);
}

TEST(CostModel, ExecCostsOnMatchesExecCost) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  for (ProcId p = 0; p < 4; ++p) {
    const auto col = cm.exec_costs_on(p);
    ASSERT_EQ(col.size(), 9u);
    for (TaskId t = 0; t < 9; ++t) {
      EXPECT_DOUBLE_EQ(col[static_cast<std::size_t>(t)], cm.exec_cost(t, p));
    }
  }
}

TEST(CostModel, Validation) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  EXPECT_THROW((void)HeterogeneousCostModel::uniform(g, topo, 0, 5, 1, 1, 0),
               PreconditionError);
  EXPECT_THROW((void)HeterogeneousCostModel::uniform(g, topo, 5, 1, 1, 1, 0),
               PreconditionError);
  std::vector<Cost> wrong_size(10, 1);
  EXPECT_THROW(
      (void)HeterogeneousCostModel::from_exec_matrix(g, topo, wrong_size),
      PreconditionError);
  const auto cm = pf::paper_cost_model(g, topo);
  EXPECT_THROW((void)cm.exec_cost(99, 0), PreconditionError);
  EXPECT_THROW((void)cm.comm_cost(0, 99), PreconditionError);
}

TEST(CostModel, ProcessorSpeedModeUniformPerProcessor) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::ring(4);
  const auto cm = HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 50, 1, 50, 7);
  // Every task on one processor shares the same speed factor.
  for (ProcId p = 0; p < 4; ++p) {
    const Cost factor = cm.exec_cost(0, p) / g.task_cost(0);
    EXPECT_GE(factor, 1);
    EXPECT_LE(factor, 50);
    for (TaskId t = 1; t < g.num_tasks(); ++t) {
      EXPECT_DOUBLE_EQ(cm.exec_cost(t, p) / g.task_cost(t), factor);
    }
  }
  // Every message on one link shares the same factor.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Cost factor = cm.comm_cost(0, l) / g.edge_cost(0);
    for (EdgeId e = 1; e < g.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(cm.comm_cost(e, l) / g.edge_cost(e), factor);
    }
  }
}

TEST(CostModel, ProcessorSpeedModeSeedDeterministic) {
  const auto g = pf::paper_task_graph();
  const auto topo = Topology::ring(4);
  const auto a = HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 50, 1, 50, 7);
  const auto b = HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 50, 1, 50, 7);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(a.exec_cost(3, p), b.exec_cost(3, p));
  }
}

}  // namespace
}  // namespace bsa::net
