#include <gtest/gtest.h>

#include "common/check.hpp"
#include "paper_fixture.hpp"
#include "sched/schedule.hpp"

namespace bsa::sched {
namespace {

namespace pf = bsa::testing;

struct ScheduleTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  Schedule s{g, topo};
};

TEST_F(ScheduleTest, StartsEmpty) {
  EXPECT_EQ(s.num_placed(), 0);
  EXPECT_FALSE(s.all_placed());
  EXPECT_DOUBLE_EQ(s.makespan(), 0);
  EXPECT_FALSE(s.is_placed(pf::T1));
  EXPECT_THROW((void)s.proc_of(pf::T1), PreconditionError);
}

TEST_F(ScheduleTest, PlaceAndQuery) {
  s.place_task(pf::T1, 1, 0, 7);
  EXPECT_TRUE(s.is_placed(pf::T1));
  EXPECT_EQ(s.proc_of(pf::T1), 1);
  EXPECT_DOUBLE_EQ(s.start_of(pf::T1), 0);
  EXPECT_DOUBLE_EQ(s.finish_of(pf::T1), 7);
  EXPECT_EQ(s.num_placed(), 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 7);
  ASSERT_EQ(s.tasks_on(1).size(), 1u);
}

TEST_F(ScheduleTest, ProcessorOrderSortedByStart) {
  s.place_task(pf::T2, 0, 50, 71);
  s.place_task(pf::T1, 0, 0, 39);
  s.place_task(pf::T3, 0, 39, 54);
  const auto& order = s.tasks_on(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], pf::T1);
  EXPECT_EQ(order[1], pf::T3);
  EXPECT_EQ(order[2], pf::T2);
}

TEST_F(ScheduleTest, DoublePlacementRejected) {
  s.place_task(pf::T1, 0, 0, 39);
  EXPECT_THROW(s.place_task(pf::T1, 1, 0, 7), PreconditionError);
}

TEST_F(ScheduleTest, UnplaceRemovesFromOrder) {
  s.place_task(pf::T1, 0, 0, 39);
  s.place_task(pf::T2, 0, 39, 60);
  s.unplace_task(pf::T1);
  EXPECT_FALSE(s.is_placed(pf::T1));
  ASSERT_EQ(s.tasks_on(0).size(), 1u);
  EXPECT_EQ(s.tasks_on(0)[0], pf::T2);
  EXPECT_EQ(s.num_placed(), 1);
  EXPECT_THROW(s.unplace_task(pf::T1), PreconditionError);
}

TEST_F(ScheduleTest, SetTaskTimesKeepsProcessor) {
  s.place_task(pf::T1, 2, 0, 2);
  s.set_task_times(pf::T1, 5, 7);
  EXPECT_DOUBLE_EQ(s.start_of(pf::T1), 5);
  EXPECT_DOUBLE_EQ(s.finish_of(pf::T1), 7);
  EXPECT_EQ(s.proc_of(pf::T1), 2);
}

TEST_F(ScheduleTest, RouteBookkeeping) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const LinkId l01 = topo.link_between(0, 1);
  const LinkId l12 = topo.link_between(1, 2);
  s.place_task(pf::T1, 0, 0, 39);
  s.set_route(e12, {Hop{l01, 39, 79}, Hop{l12, 79, 119}});
  ASSERT_EQ(s.route_of(e12).size(), 2u);
  EXPECT_DOUBLE_EQ(s.arrival_of(e12), 119);
  ASSERT_EQ(s.bookings_on(l01).size(), 1u);
  EXPECT_EQ(s.bookings_on(l01)[0].edge, e12);
  EXPECT_EQ(s.bookings_on(l01)[0].hop_index, 0);
  ASSERT_EQ(s.bookings_on(l12).size(), 1u);
  EXPECT_EQ(s.bookings_on(l12)[0].hop_index, 1);

  s.clear_route(e12);
  EXPECT_TRUE(s.route_of(e12).empty());
  EXPECT_TRUE(s.bookings_on(l01).empty());
  EXPECT_TRUE(s.bookings_on(l12).empty());
}

TEST_F(ScheduleTest, ArrivalOfLocalMessageIsSourceFinish) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  s.place_task(pf::T1, 0, 0, 39);
  EXPECT_DOUBLE_EQ(s.arrival_of(e12), 39);
}

TEST_F(ScheduleTest, RouteValidation) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const LinkId l01 = topo.link_between(0, 1);
  // Non-contiguous hop times rejected.
  EXPECT_THROW(
      s.set_route(e12, {Hop{l01, 10, 20}, Hop{topo.link_between(1, 2), 15, 25}}),
      PreconditionError);
  // Double routing rejected.
  s.set_route(e12, {Hop{l01, 0, 40}});
  EXPECT_THROW(s.set_route(e12, {Hop{l01, 50, 90}}), PreconditionError);
}

TEST_F(ScheduleTest, LinkOverlapRejected) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const EdgeId e13 = g.find_edge(pf::T1, pf::T3);
  const LinkId l01 = topo.link_between(0, 1);
  s.set_route(e12, {Hop{l01, 0, 40}});
  EXPECT_THROW(s.set_route(e13, {Hop{l01, 30, 40}}), InvariantError);
  // Touching bookings are fine.
  EXPECT_NO_THROW(s.set_route(e13, {Hop{l01, 40, 50}}));
}

TEST_F(ScheduleTest, SetHopTimesUpdatesBooking) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const LinkId l01 = topo.link_between(0, 1);
  s.set_route(e12, {Hop{l01, 0, 40}});
  s.set_hop_times(e12, 0, 5, 45);
  EXPECT_DOUBLE_EQ(s.route_of(e12)[0].start, 5);
  EXPECT_DOUBLE_EQ(s.bookings_on(l01)[0].start, 5);
  EXPECT_DOUBLE_EQ(s.bookings_on(l01)[0].finish, 45);
  EXPECT_THROW(s.set_hop_times(e12, 3, 0, 1), PreconditionError);
}

TEST_F(ScheduleTest, SlotSearchOnProcessorsAndLinks) {
  s.place_task(pf::T1, 0, 0, 10);
  s.place_task(pf::T2, 0, 30, 50);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 0, 20), 10);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 0, 25), 50);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(1, 12, 99), 12);

  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const LinkId l01 = topo.link_between(0, 1);
  s.set_route(e12, {Hop{l01, 10, 20}});
  EXPECT_DOUBLE_EQ(s.earliest_link_slot(l01, 0, 10), 0);
  EXPECT_DOUBLE_EQ(s.earliest_link_slot(l01, 5, 10), 20);
}

TEST_F(ScheduleTest, AppendHopExtendsRoute) {
  const EdgeId e12 = g.find_edge(pf::T1, pf::T2);
  const LinkId l01 = topo.link_between(0, 1);
  const LinkId l12 = topo.link_between(1, 2);
  s.append_hop(e12, Hop{l01, 0, 40});
  s.append_hop(e12, Hop{l12, 40, 80});
  EXPECT_EQ(s.route_of(e12).size(), 2u);
  // Hop starting before the previous finished is rejected.
  EXPECT_THROW(s.append_hop(e12, Hop{l01, 70, 110}), PreconditionError);
}

TEST_F(ScheduleTest, NormalizeOrdersAfterManualTimeEdits) {
  s.place_task(pf::T1, 0, 0, 10);
  s.place_task(pf::T2, 0, 10, 30);
  // Swap times manually; order vector is stale until normalized.
  s.set_task_times(pf::T1, 40, 50);
  s.set_task_times(pf::T2, 0, 20);
  s.normalize_orders();
  const auto& order = s.tasks_on(0);
  EXPECT_EQ(order[0], pf::T2);
  EXPECT_EQ(order[1], pf::T1);
}

TEST_F(ScheduleTest, BusyViewsMatchBookings) {
  s.place_task(pf::T1, 0, 0, 10);
  s.place_task(pf::T2, 0, 15, 25);
  const auto busy = s.busy_of_proc(0);
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[0].finish, 10);
  EXPECT_DOUBLE_EQ(busy[1].start, 15);
  EXPECT_TRUE(is_well_formed(busy));
}

}  // namespace
}  // namespace bsa::sched
