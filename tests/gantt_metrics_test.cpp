#include <gtest/gtest.h>

#include "core/bsa.hpp"
#include "paper_fixture.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"

namespace bsa::sched {
namespace {

namespace pf = bsa::testing;

struct GanttMetricsTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  net::HeterogeneousCostModel cm = pf::paper_cost_model(g, topo);
};

TEST_F(GanttMetricsTest, ListingShowsAllRows) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const std::string listing = listing_to_string(result.schedule);
  EXPECT_NE(listing.find("schedule length"), std::string::npos);
  EXPECT_NE(listing.find("P1:"), std::string::npos);
  EXPECT_NE(listing.find("P4:"), std::string::npos);
  // Every task appears somewhere.
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_NE(listing.find(g.task_name(t) + "["), std::string::npos)
        << g.task_name(t);
  }
}

TEST_F(GanttMetricsTest, GanttHasProcessorRows) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const std::string gantt = gantt_to_string(result.schedule, 80);
  EXPECT_NE(gantt.find("P1"), std::string::npos);
  EXPECT_NE(gantt.find("P2"), std::string::npos);
  EXPECT_NE(gantt.find("t"), std::string::npos);
  EXPECT_THROW((void)gantt_to_string(result.schedule, 5), PreconditionError);
}

TEST_F(GanttMetricsTest, EmptyScheduleGantt) {
  Schedule s(g, topo);
  EXPECT_NE(gantt_to_string(s).find("empty"), std::string::npos);
}

TEST_F(GanttMetricsTest, MetricsAreConsistent) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const auto m = compute_metrics(result.schedule, cm);
  EXPECT_DOUBLE_EQ(m.makespan, result.schedule.makespan());
  EXPECT_GE(m.makespan, m.lower_bound);
  EXPECT_GT(m.avg_proc_utilization, 0);
  EXPECT_LE(m.avg_proc_utilization, 1.0 + 1e-9);
  EXPECT_GE(m.max_link_utilization, m.avg_link_utilization);
  EXPECT_GE(m.total_hops, m.num_crossing_messages);
}

TEST_F(GanttMetricsTest, LowerBoundIsMinExecChain) {
  // Chain of fastest costs: T1(2 on P3) -> T7(33 on P1) -> T9(8 on P1)
  // vs T1->T4->T8->T9: 2+14+18+8 = 42 vs T1+T2+T7+T9 = 2+21+33+8 = 64...
  // The bound maximises over chains with per-task minima.
  const Time lb = schedule_length_lower_bound(g, cm);
  // Hand computation: min exec costs are
  // T1=2,T2=21,T3=6,T4=14,T5=12,T6=15,T7=33,T8=18,T9=8.
  // Chains: T1+T2+T7+T9 = 64; T1+T2+T6+T9 = 46; T1+T7+T9 = 43;
  //         T1+T4+T8+T9 = 42; T1+T3+T8+T9 = 34; T1+T5 = 14.
  EXPECT_DOUBLE_EQ(lb, 64);
}

TEST_F(GanttMetricsTest, MetricsRequireCompleteSchedule) {
  Schedule s(g, topo);
  EXPECT_THROW((void)compute_metrics(s, cm), PreconditionError);
}

TEST_F(GanttMetricsTest, SerialScheduleHasNoCrossingMessages) {
  // All tasks on one processor: zero hops, zero link utilisation.
  Schedule s(g, topo);
  Time clock = 0;
  for (const TaskId t : g.topological_order()) {
    const Time dur = cm.exec_cost(t, 0);
    s.place_task(t, 0, clock, clock + dur);
    clock += dur;
  }
  const auto m = compute_metrics(s, cm);
  EXPECT_EQ(m.num_crossing_messages, 0);
  EXPECT_EQ(m.total_hops, 0);
  EXPECT_DOUBLE_EQ(m.total_link_busy, 0);
  EXPECT_DOUBLE_EQ(m.avg_proc_utilization, 0.25);  // one of four busy
}

}  // namespace
}  // namespace bsa::sched
