#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace bsa::serve {
namespace {

using IntCache = LruCache<int, std::string>;

TEST(LruCache, MissThenHitRoundTrip) {
  IntCache cache(4);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  const auto v = cache.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.size, 1);
}

TEST(LruCache, CapacityZeroDisablesEverything) {
  IntCache cache(0, 8);
  cache.put(1, "one");
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 0u);
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.misses, 1);  // the get; put and contains count nothing
  EXPECT_EQ(st.evictions, 0);
}

TEST(LruCache, CapacityOneKeepsOnlyTheNewest) {
  IntCache cache(1);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_FALSE(cache.contains(1));
  ASSERT_TRUE(cache.contains(2));
  EXPECT_EQ(*cache.get(2), "two");
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedNotOldestInsert) {
  IntCache cache(3);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(3, "three");
  // Touch 1 so 2 becomes the LRU entry despite being inserted later.
  ASSERT_TRUE(cache.get(1).has_value());
  cache.put(4, "four");
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruCache, OverwriteRefreshesRecencyAndValue) {
  IntCache cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(1, "uno");  // overwrite: 2 is now LRU
  cache.put(3, "three");
  EXPECT_FALSE(cache.contains(2));
  ASSERT_TRUE(cache.contains(1));
  EXPECT_EQ(*cache.get(1), "uno");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, CapacitySplitsExactlyAcrossShards) {
  // capacity 10 over 4 shards used to round up to 4 shards of 3 = 12
  // resident entries; the slices must instead sum to exactly 10, so even
  // a key mix that fills every shard can never exceed the total budget.
  LruCache<int, int> cache(10, 4);
  for (int k = 0; k < 1000; ++k) cache.put(k, k);
  EXPECT_LE(cache.size(), 10u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(LruCache, MoreShardsThanCapacityCollapse) {
  IntCache cache(2, 64);
  EXPECT_EQ(cache.shard_count(), 2u);
  IntCache one(1, 8);
  EXPECT_EQ(one.shard_count(), 1u);
  // Shard count never drops to zero even for a disabled cache.
  IntCache disabled(0, 8);
  EXPECT_GE(disabled.shard_count(), 1u);
}

TEST(LruCache, ShardedConcurrentHammerStaysConsistent) {
  // 8 threads x 4000 ops against a sharded cache: every get that hits
  // must return exactly the value written for that key, the entry count
  // must respect the total budget, and hits+misses must equal the number
  // of gets issued.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::size_t kCapacity = 64;
  LruCache<int, int> cache(kCapacity, 8);
  std::atomic<std::int64_t> observed_gets{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &observed_gets, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 96 keys over 64 slots (12 per shard vs 8 slots): every shard
        // churns, yet reuse distance is short enough that hits are
        // guaranteed under any interleaving.
        const int key = (t * 31 + i * 7) % 96;
        if (i % 3 == 0) {
          cache.put(key, key * 1000);
        } else {
          observed_gets.fetch_add(1, std::memory_order_relaxed);
          const auto v = cache.get(key);
          if (v.has_value()) {
            // The value is a pure function of the key, so a torn or
            // misrouted entry would show up right here.
            ASSERT_EQ(*v, key * 1000);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, observed_gets.load());
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GT(st.hits, 0);
  // Working set (96 keys) exceeds capacity, so eviction must have run.
  EXPECT_GT(st.evictions, 0);
}

}  // namespace
}  // namespace bsa::serve
