#include <gtest/gtest.h>

#include "common/check.hpp"
#include "baselines/eft.hpp"
#include "paper_fixture.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::baselines {
namespace {

namespace pf = bsa::testing;

TEST(Eft, ValidOnPaperExample) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto result = schedule_eft_oblivious(g, topo, cm);
  EXPECT_TRUE(result.schedule.all_placed());
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(result.schedule_length(),
            sched::schedule_length_lower_bound(g, cm));
}

TEST(Eft, Deterministic) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto a = schedule_eft_oblivious(g, topo, cm);
  const auto b = schedule_eft_oblivious(g, topo, cm);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
  }
}

TEST(Eft, SingleTaskFastestProcessor) {
  graph::TaskGraphBuilder b;
  (void)b.add_task(10);
  const auto g = b.build();
  const auto topo = net::Topology::ring(3);
  const std::vector<Cost> matrix{30, 10, 20};
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_eft_oblivious(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(0), 1);
}

class EftProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(EftProperty, ValidOnRandomInstances) {
  const auto [granularity, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::random(8, 2, 5, seed);
  const auto cm = net::HeterogeneousCostModel::uniform(
      g, topo, 1, 50, 1, 50, derive_seed(seed, 31));
  const auto result = schedule_eft_oblivious(g, topo, cm);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EftProperty,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(4u, 5u)));

}  // namespace
}  // namespace bsa::baselines
