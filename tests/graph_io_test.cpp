#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "graph/graph_io.hpp"
#include "paper_fixture.hpp"

namespace bsa::graph {
namespace {

using bsa::testing::paper_task_graph;

TEST(GraphIo, RoundTripPreservesStructure) {
  const TaskGraph g = paper_task_graph();
  const TaskGraph h = from_text(to_text(g));
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(h.task_cost(t), g.task_cost(t));
    EXPECT_EQ(h.task_name(t), g.task_name(t));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_src(e), g.edge_src(e));
    EXPECT_EQ(h.edge_dst(e), g.edge_dst(e));
    EXPECT_DOUBLE_EQ(h.edge_cost(e), g.edge_cost(e));
  }
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "task 10 alpha\n"
      "task 20\n"
      "edge 0 1 5\n";
  const TaskGraph g = from_text(text);
  EXPECT_EQ(g.num_tasks(), 2);
  EXPECT_EQ(g.task_name(0), "alpha");
  EXPECT_EQ(g.task_name(1), "T2");  // default name
  EXPECT_DOUBLE_EQ(g.edge_cost(0), 5);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text("bogus 1 2\n"), PreconditionError);
  EXPECT_THROW((void)from_text("task\n"), PreconditionError);
  EXPECT_THROW((void)from_text("task 5\nedge 0\n"), PreconditionError);
  EXPECT_THROW((void)from_text("task 5\nedge 0 7 1\n"), PreconditionError);
  EXPECT_THROW((void)from_text(""), PreconditionError);  // empty graph
}

TEST(GraphIo, RejectsCycleInFile) {
  const std::string text =
      "task 1\ntask 1\nedge 0 1 1\nedge 1 0 1\n";
  EXPECT_THROW((void)from_text(text), PreconditionError);
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  const TaskGraph g = paper_task_graph();
  const std::string dot = to_dot(g, "paper");
  EXPECT_NE(dot.find("digraph \"paper\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"T1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n6 [label=\"100\"]"), std::string::npos);
  EXPECT_NE(dot.find("n7 -> n8 [label=\"50\"]"), std::string::npos);
  // One line per node and edge.
  EXPECT_NE(dot.find("n8 [label=\"T9"), std::string::npos);
}

}  // namespace
}  // namespace bsa::graph
