#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <tuple>

#include "network/routing.hpp"
#include "network/topology.hpp"

namespace bsa::net {
namespace {

/// Structural properties every topology factory must satisfy: symmetry of
/// adjacency, consistency of link lookups, connectivity, BFS coverage and
/// routing-table sanity.

struct Factory {
  std::string name;
  std::function<Topology()> make;
};

std::vector<Factory> factories() {
  return {
      {"ring-5", [] { return Topology::ring(5); }},
      {"ring-16", [] { return Topology::ring(16); }},
      {"linear-7", [] { return Topology::linear(7); }},
      {"star-9", [] { return Topology::star(9); }},
      {"hypercube-8", [] { return Topology::hypercube(3); }},
      {"hypercube-16", [] { return Topology::hypercube(4); }},
      {"mesh-3x5", [] { return Topology::mesh(3, 5); }},
      {"torus-4x4", [] { return Topology::torus(4, 4); }},
      {"clique-10", [] { return Topology::clique(10); }},
      {"random-12", [] { return Topology::random(12, 2, 6, 3); }},
      {"random-16", [] { return Topology::random(16, 2, 8, 9); }},
  };
}

class TopologyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyProperty, StructurallySound) {
  const Factory f = factories()[GetParam()];
  const Topology t = f.make();
  const int m = t.num_processors();

  // Adjacency symmetric and consistent with link_between/opposite.
  std::size_t directed_pairs = 0;
  for (ProcId p = 0; p < m; ++p) {
    for (const ProcId q : t.neighbors(p)) {
      ++directed_pairs;
      const LinkId l = t.link_between(p, q);
      ASSERT_NE(l, kInvalidLink) << f.name;
      EXPECT_EQ(t.link_between(q, p), l) << f.name;
      EXPECT_EQ(t.opposite(l, p), q) << f.name;
      EXPECT_EQ(t.opposite(l, q), p) << f.name;
    }
  }
  EXPECT_EQ(directed_pairs, 2u * static_cast<std::size_t>(t.num_links()))
      << f.name;

  // Every link's endpoints list each other as neighbours.
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const auto [a, b] = t.link_endpoints(l);
    EXPECT_LT(a, b) << f.name;
    EXPECT_NE(t.link_between(a, b), kInvalidLink) << f.name;
  }

  // BFS covers everything exactly once from every root.
  for (ProcId root = 0; root < m; root += std::max(1, m / 3)) {
    const auto order = t.bfs_order(root);
    EXPECT_EQ(order.size(), static_cast<std::size_t>(m)) << f.name;
    const std::set<ProcId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size()) << f.name;
    EXPECT_EQ(order.front(), root) << f.name;
  }

  // Routing table: routes exist, have shortest length, and walk the
  // topology; distance is symmetric.
  const RoutingTable rt(t);
  for (ProcId a = 0; a < m; a += std::max(1, m / 4)) {
    for (ProcId b = 0; b < m; ++b) {
      EXPECT_EQ(rt.distance(a, b), t.hop_distance(a, b)) << f.name;
      EXPECT_EQ(rt.distance(a, b), rt.distance(b, a)) << f.name;
      ProcId cur = a;
      for (const LinkId l : rt.route(a, b)) cur = t.opposite(l, cur);
      EXPECT_EQ(cur, b) << f.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFactories, TopologyProperty,
                         ::testing::Range<std::size_t>(0, 11));

}  // namespace
}  // namespace bsa::net
