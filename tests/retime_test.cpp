#include <gtest/gtest.h>

#include "common/check.hpp"
#include "network/cost_model.hpp"
#include "sched/retime.hpp"
#include "sched/schedule.hpp"
#include "sched/validate.hpp"

namespace bsa::sched {
namespace {

/// Fork graph A -> {B, C} -> D over a triangle of processors.
struct RetimeTest : ::testing::Test {
  graph::TaskGraph make_graph() {
    graph::TaskGraphBuilder b;
    const TaskId a = b.add_task(10, "A");
    const TaskId bb = b.add_task(10, "B");
    const TaskId c = b.add_task(10, "C");
    const TaskId d = b.add_task(10, "D");
    (void)b.add_edge(a, bb, 4);   // e0
    (void)b.add_edge(a, c, 4);    // e1
    (void)b.add_edge(bb, d, 4);   // e2
    (void)b.add_edge(c, d, 4);    // e3
    return b.build();
  }
  graph::TaskGraph g = make_graph();
  net::Topology topo = net::Topology::ring(3);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::homogeneous(g, topo);
  TaskId A = 0, B = 1, C = 2, D = 3;
};

TEST_F(RetimeTest, NoOpOnTightSchedule) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 20);
  s.place_task(C, 0, 20, 30);
  s.place_task(D, 0, 30, 40);
  const Time mk = retime(s, cm);
  EXPECT_DOUBLE_EQ(mk, 40);
  EXPECT_DOUBLE_EQ(s.start_of(B), 10);
  EXPECT_DOUBLE_EQ(s.start_of(D), 30);
}

TEST_F(RetimeTest, BubblesUpAfterRemoval) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 20);
  s.place_task(C, 0, 20, 30);
  s.place_task(D, 0, 30, 40);
  // B migrates away conceptually: remove it and put it on P1.
  s.unplace_task(B);
  const LinkId l01 = topo.link_between(0, 1);
  s.set_route(0, {Hop{l01, 10, 14}});   // A->B
  s.place_task(B, 1, 14, 24);
  s.set_route(2, {Hop{l01, 24, 28}});   // B->D
  const Time mk = retime(s, cm);
  // C bubbles up to [10,20); D waits for B's message at 28.
  EXPECT_DOUBLE_EQ(s.start_of(C), 10);
  EXPECT_DOUBLE_EQ(s.start_of(D), 28);
  EXPECT_DOUBLE_EQ(mk, 38);
  EXPECT_TRUE(validate(s, cm).ok());
}

TEST_F(RetimeTest, PushesLateWhenHopDelayed) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(1, {Hop{l01, 10, 14}});  // A->C
  s.place_task(C, 1, 14, 24);
  s.place_task(B, 0, 10, 20);
  s.set_route(3, {Hop{l01, 24, 28}});  // C->D
  s.place_task(D, 0, 28, 38);
  // Delay A: its successors and messages must shift later.
  s.unplace_task(B);
  s.place_task(B, 0, 0, 10);  // B now first on P0 (no pred dependency on A)
  // B has pred A! Actually B depends on A, so this order is infeasible in
  // times; retime must detect the order cycle-free case and push B after A.
  const Time mk = retime(s, cm);
  EXPECT_GE(s.start_of(B), s.finish_of(A));
  EXPECT_TRUE(validate(s, cm).ok());
  EXPECT_GT(mk, 0);
}

TEST_F(RetimeTest, FailsOnOrderCycle) {
  // Two tasks on each of two processors ordered against precedence:
  // P0: [B, A], and message edges force A before B -> cycle via proc order.
  graph::TaskGraphBuilder b2;
  const TaskId x = b2.add_task(10);
  const TaskId y = b2.add_task(10);
  (void)b2.add_edge(x, y, 4);
  const graph::TaskGraph g2 = b2.build();
  const auto cm2 = net::HeterogeneousCostModel::homogeneous(g2, topo);
  Schedule s(g2, topo);
  // y placed earlier than x on the same processor: order says y then x,
  // but precedence says x before y.
  s.place_task(y, 0, 0, 10);
  s.place_task(x, 0, 10, 20);
  Time mk = 0;
  EXPECT_FALSE(try_retime(s, cm2, &mk));
  // Schedule untouched on failure.
  EXPECT_DOUBLE_EQ(s.start_of(y), 0);
  EXPECT_THROW((void)retime(s, cm2), InvariantError);
}

TEST_F(RetimeTest, ReplayRebuildsConsistentTimes) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(1, {Hop{l01, 10, 14}});  // A->C
  s.place_task(C, 1, 14, 24);
  s.place_task(B, 0, 10, 20);
  s.set_route(3, {Hop{l01, 24, 28}});  // C->D
  s.place_task(D, 0, 28, 38);
  const Time mk = replay_retime(s, cm);
  EXPECT_TRUE(validate(s, cm).ok());
  EXPECT_DOUBLE_EQ(mk, s.makespan());
  EXPECT_DOUBLE_EQ(mk, 38);
}

TEST_F(RetimeTest, ReplayRecoversFromInconsistentOrders) {
  // Same cycle scenario that try_retime rejects: replay re-derives orders
  // from scratch and succeeds.
  graph::TaskGraphBuilder b2;
  const TaskId x = b2.add_task(10);
  const TaskId y = b2.add_task(10);
  (void)b2.add_edge(x, y, 4);
  const graph::TaskGraph g2 = b2.build();
  const auto cm2 = net::HeterogeneousCostModel::homogeneous(g2, topo);
  Schedule s(g2, topo);
  s.place_task(y, 0, 0, 10);
  s.place_task(x, 0, 10, 20);
  const Time mk = replay_retime(s, cm2);
  EXPECT_TRUE(validate(s, cm2).ok());
  // Replay ignores the bad order: x runs [0,10), y follows at 10.
  EXPECT_DOUBLE_EQ(mk, 20);
  EXPECT_GE(s.start_of(y), s.finish_of(x));
}

TEST_F(RetimeTest, ReplayKeepsAssignment) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  const LinkId l12 = topo.link_between(1, 2);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 14}});                  // A->B to P1
  s.place_task(B, 1, 14, 24);
  s.set_route(1, {Hop{l01, 14, 18}, Hop{l12, 18, 22}});  // A->C to P2
  s.place_task(C, 2, 22, 32);
  s.set_route(2, {Hop{l01, 24, 28}});                  // B->D back to P0
  s.set_route(3, {Hop{l12, 32, 36}, Hop{l01, 36, 40}});  // C->D to P0
  s.place_task(D, 0, 40, 50);
  (void)replay_retime(s, cm);
  EXPECT_EQ(s.proc_of(A), 0);
  EXPECT_EQ(s.proc_of(B), 1);
  EXPECT_EQ(s.proc_of(C), 2);
  EXPECT_EQ(s.proc_of(D), 0);
  EXPECT_EQ(s.route_of(1).size(), 2u);  // link sequence preserved
  EXPECT_EQ(s.route_of(1)[0].link, l01);
  EXPECT_EQ(s.route_of(1)[1].link, l12);
  EXPECT_TRUE(validate(s, cm).ok());
}

TEST_F(RetimeTest, ReplayRequiresCompletePlacement) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  EXPECT_THROW((void)replay_retime(s, cm), PreconditionError);
}

TEST_F(RetimeTest, PartialScheduleRetimeAllowed) {
  Schedule s(g, topo);
  s.place_task(A, 0, 5, 15);  // slack before A
  const Time mk = retime(s, cm);
  EXPECT_DOUBLE_EQ(s.start_of(A), 0);  // pulled to time zero
  EXPECT_DOUBLE_EQ(mk, 10);
}

TEST_F(RetimeTest, RoutedMessageWithUnplacedDestination) {
  // A's message to B is already booked but B has not been placed yet
  // (mid-migration state): retime must re-time the hop chain without
  // touching the missing destination.
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 5, 15);             // slack: A bubbles up to 0
  s.set_route(0, {Hop{l01, 20, 24}});    // A->B, late slot
  Time mk = 0;
  ASSERT_TRUE(try_retime(s, cm, &mk));
  EXPECT_DOUBLE_EQ(s.start_of(A), 0);
  EXPECT_DOUBLE_EQ(s.route_of(0)[0].start, 10);  // hop follows A's finish
  EXPECT_DOUBLE_EQ(s.route_of(0)[0].finish, 14);
  EXPECT_FALSE(s.is_placed(B));
  EXPECT_DOUBLE_EQ(mk, 10);  // makespan counts placed tasks only
}

TEST_F(RetimeTest, UnplacedPredecessorImposesNoConstraint) {
  // B and C unplaced with empty routes: D is constrained only by the
  // processor order (nothing before it), so it bubbles to time zero.
  Schedule s(g, topo);
  s.place_task(D, 0, 30, 40);
  Time mk = 0;
  ASSERT_TRUE(try_retime(s, cm, &mk));
  EXPECT_DOUBLE_EQ(s.start_of(D), 0);
  EXPECT_DOUBLE_EQ(mk, 10);
}

}  // namespace
}  // namespace bsa::sched
