#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/bsa.hpp"
#include "network/cost_model.hpp"
#include "paper_fixture.hpp"
#include "sched/event_sim.hpp"
#include "sched/retime.hpp"
#include "sched/schedule.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::sched {
namespace {

namespace pf = bsa::testing;

TEST(EventSim, MatchesHandBuiltSchedule) {
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10, "A");
  const TaskId c = b.add_task(20, "C");
  (void)b.add_edge(a, c, 5);
  const graph::TaskGraph g = b.build();
  const net::Topology topo = net::Topology::ring(3);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(a, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.place_task(c, 1, 15, 35);
  const auto result = simulate_execution(s, cm);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_DOUBLE_EQ(result.makespan, 35);
  EXPECT_TRUE(simulation_matches(s, result));
}

TEST(EventSim, DetectsMismatchAfterSlack) {
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10, "A");
  const TaskId c = b.add_task(20, "C");
  (void)b.add_edge(a, c, 5);
  const graph::TaskGraph g = b.build();
  const net::Topology topo = net::Topology::ring(3);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  Schedule s(g, topo);
  s.place_task(a, 0, 0, 10);
  s.place_task(c, 0, 17, 37);  // 7 units of unforced slack
  const auto result = simulate_execution(s, cm);
  ASSERT_TRUE(result.completed);
  // Simulation starts c at 10, so recorded times do not match.
  EXPECT_DOUBLE_EQ(result.task_start[static_cast<std::size_t>(c)], 10);
  EXPECT_FALSE(simulation_matches(s, result));
}

TEST(EventSim, DetectsDeadlockFromBadOrders) {
  graph::TaskGraphBuilder b;
  const TaskId x = b.add_task(10);
  const TaskId y = b.add_task(10);
  (void)b.add_edge(x, y, 4);
  const graph::TaskGraph g = b.build();
  const net::Topology topo = net::Topology::ring(3);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  Schedule s(g, topo);
  s.place_task(y, 0, 0, 10);   // order y before x but y needs x's output
  s.place_task(x, 0, 10, 20);
  const auto result = simulate_execution(s, cm);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos);
}

TEST(EventSim, RequiresCompleteSchedule) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  Schedule s(g, topo);
  s.place_task(pf::T1, 0, 0, 39);
  EXPECT_THROW((void)simulate_execution(s, cm), PreconditionError);
}

TEST(EventSim, CrossChecksBsaOnPaperExample) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto result = core::schedule_bsa(g, topo, cm);
  const auto sim = simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(simulation_matches(result.schedule, sim))
      << "BSA schedule times disagree with independent execution";
  EXPECT_DOUBLE_EQ(sim.makespan, result.schedule.makespan());
}

TEST(EventSim, CrossChecksReplayOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    workloads::RandomDagParams params;
    params.num_tasks = 40;
    params.granularity = 1.0;
    params.seed = seed;
    const auto g = workloads::random_layered_dag(params);
    const auto topo = net::Topology::hypercube(3);
    const auto cm =
        net::HeterogeneousCostModel::uniform(g, topo, 1, 10, 1, 10, seed);
    const auto result = core::schedule_bsa(g, topo, cm);
    Schedule replayed = result.schedule;
    (void)replay_retime(replayed, cm);
    const auto sim = simulate_execution(replayed, cm);
    ASSERT_TRUE(sim.completed) << sim.error;
    EXPECT_TRUE(simulation_matches(replayed, sim)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bsa::sched
