#include <gtest/gtest.h>

#include "common/check.hpp"
#include "exp/experiment.hpp"
#include "sched/scheduler.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::exp {
namespace {

TEST(Experiment, TopologyFactory) {
  EXPECT_EQ(make_topology("ring", 16, 0).num_links(), 16);
  EXPECT_EQ(make_topology("hypercube", 16, 0).num_links(), 32);
  EXPECT_EQ(make_topology("clique", 16, 0).num_links(), 120);
  const auto r = make_topology("random", 16, 5);
  EXPECT_EQ(r.num_processors(), 16);
  EXPECT_THROW((void)make_topology("hypercube", 12, 0), PreconditionError);
  EXPECT_THROW((void)make_topology("grid", 16, 0), PreconditionError);
  EXPECT_EQ(paper_topologies().size(), 4u);
}

TEST(Experiment, RegularFactoryHitsTargetSizes) {
  for (const auto app :
       {RegularApp::kGaussianElimination, RegularApp::kLuDecomposition,
        RegularApp::kLaplace, RegularApp::kMeanValueAnalysis}) {
    const auto g = make_regular(app, 200, 1.0, 3);
    EXPECT_GT(g.num_tasks(), 120) << app_name(app);
    EXPECT_LT(g.num_tasks(), 280) << app_name(app);
    EXPECT_TRUE(g.is_weakly_connected());
  }
}

TEST(Experiment, RunAlgorithmProducesValidOutcomes) {
  workloads::RandomDagParams p;
  p.num_tasks = 30;
  p.seed = 2;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = make_topology("hypercube", 8, 0);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, 9);
  for (const std::string& spec :
       sched::SchedulerRegistry::global().names()) {
    const auto outcome = run_algorithm(spec, g, topo, cm, 1);
    EXPECT_TRUE(outcome.valid) << spec;
    EXPECT_GT(outcome.schedule_length, 0) << spec;
    EXPECT_GE(outcome.wall_ms, 0) << spec;
  }
}

TEST(Experiment, RunAlgorithmRejectsUnknownSpecs) {
  workloads::RandomDagParams p;
  p.num_tasks = 5;
  p.seed = 2;
  const auto g = workloads::random_layered_dag(p);
  const auto topo = make_topology("ring", 4, 0);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, 2, 1, 2, 9);
  EXPECT_THROW((void)run_algorithm("hneft", g, topo, cm, 1),
               PreconditionError);
}

TEST(Experiment, CellMean) {
  CellMean m;
  EXPECT_DOUBLE_EQ(m.mean(), 0);
  m.add(10);
  m.add(20);
  EXPECT_DOUBLE_EQ(m.mean(), 15);
  EXPECT_EQ(m.count, 2);
}

TEST(Experiment, PaperParameterLists) {
  EXPECT_EQ(paper_granularities().size(), 3u);
  const auto sizes = paper_sizes();
  EXPECT_GE(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 50);
  EXPECT_EQ(sizes.back(), 500);
}

}  // namespace
}  // namespace bsa::exp
