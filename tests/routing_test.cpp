#include <gtest/gtest.h>

#include "common/check.hpp"
#include "network/routing.hpp"

namespace bsa::net {
namespace {

TEST(RoutingTable, RoutesAreShortest) {
  const Topology t = Topology::hypercube(4);
  const RoutingTable rt(t);
  for (ProcId a = 0; a < 16; ++a) {
    for (ProcId b = 0; b < 16; ++b) {
      const auto route = rt.route(a, b);
      EXPECT_EQ(static_cast<int>(route.size()), t.hop_distance(a, b));
      EXPECT_EQ(rt.distance(a, b), t.hop_distance(a, b));
    }
  }
}

TEST(RoutingTable, RouteIsContiguousWalk) {
  const Topology t = Topology::random(12, 2, 5, 3);
  const RoutingTable rt(t);
  for (ProcId a = 0; a < 12; ++a) {
    for (ProcId b = 0; b < 12; ++b) {
      ProcId cur = a;
      for (const LinkId l : rt.route(a, b)) {
        cur = t.opposite(l, cur);
      }
      EXPECT_EQ(cur, b);
      const auto procs = rt.route_processors(a, b);
      EXPECT_EQ(procs.front(), a);
      EXPECT_EQ(procs.back(), b);
      EXPECT_EQ(procs.size(), rt.route(a, b).size() + 1);
    }
  }
}

TEST(RoutingTable, SelfRouteEmpty) {
  const Topology t = Topology::ring(5);
  const RoutingTable rt(t);
  EXPECT_TRUE(rt.route(2, 2).empty());
  EXPECT_EQ(rt.distance(2, 2), 0);
}

TEST(RoutingTable, Deterministic) {
  const Topology t = Topology::clique(8);
  const RoutingTable a(t), b(t);
  for (ProcId x = 0; x < 8; ++x) {
    for (ProcId y = 0; y < 8; ++y) {
      EXPECT_EQ(a.route(x, y), b.route(x, y));
    }
  }
}

TEST(RoutingTable, RejectsBadIds) {
  const Topology t = Topology::ring(4);
  const RoutingTable rt(t);
  EXPECT_THROW((void)rt.route(-1, 2), PreconditionError);
  EXPECT_THROW((void)rt.distance(0, 9), PreconditionError);
}

TEST(EcubeRoute, DimensionOrdered) {
  const Topology t = Topology::hypercube(4);
  // 0b0000 -> 0b1011: flips bit 0, then bit 1, then bit 3.
  const auto route = ecube_route(t, 0, 11);
  ASSERT_EQ(route.size(), 3u);
  ProcId cur = 0;
  const ProcId expected[] = {1, 3, 11};
  for (std::size_t i = 0; i < route.size(); ++i) {
    cur = t.opposite(route[i], cur);
    EXPECT_EQ(cur, expected[i]);
  }
}

TEST(EcubeRoute, MatchesHammingDistance) {
  const Topology t = Topology::hypercube(3);
  for (ProcId a = 0; a < 8; ++a) {
    for (ProcId b = 0; b < 8; ++b) {
      const auto route = ecube_route(t, a, b);
      EXPECT_EQ(static_cast<int>(route.size()),
                __builtin_popcount(static_cast<unsigned>(a) ^
                                   static_cast<unsigned>(b)));
    }
  }
}

TEST(EcubeRoute, RejectsNonHypercube) {
  const Topology t = Topology::ring(6);
  // 0 -> 3 requires flipping bits 0 and 1; link 1-3 does not exist in a
  // 6-ring.
  EXPECT_THROW((void)ecube_route(t, 0, 3), PreconditionError);
}

TEST(EcubeRoute, RejectsPowerOfTwoRingMidWalk) {
  // Processor count alone does not make a hypercube: the first bit-flip
  // hop (0-1) exists in an 8-ring, the second (1-5) does not — the error
  // must surface mid-walk, not only on the first hop.
  const Topology t = Topology::ring(8);
  EXPECT_NO_THROW((void)ecube_route(t, 0, 1));
  EXPECT_THROW((void)ecube_route(t, 0, 5), PreconditionError);
}

TEST(EcubeRoute, RejectsOutOfRangeEndpoints) {
  const Topology t = Topology::hypercube(3);  // 8 processors
  EXPECT_THROW((void)ecube_route(t, -1, 3), PreconditionError);
  EXPECT_THROW((void)ecube_route(t, 0, 8), PreconditionError);
}

TEST(EcubeRoute, WorksOnAnyTopologyContainingTheBitFlipWalk) {
  // A clique contains every bit-flip link, so the dimension-ordered walk
  // is well-defined even though the topology is not a hypercube.
  const Topology t = Topology::clique(4);
  const auto route = ecube_route(t, 0, 3);
  EXPECT_EQ(route.size(), 2u);  // flip bit 0 (0->1), then bit 1 (1->3)
}

}  // namespace
}  // namespace bsa::net
