#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "sched/event_sim.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::core {
namespace {

/// Property sweep over the experimental parameter space of the paper
/// (scaled down for test time): every BSA run must produce a complete,
/// valid schedule whose times agree with independent event simulation and
/// respect the fastest-chain lower bound.
class BsaProperty
    : public ::testing::TestWithParam<
          std::tuple<int, std::string, double, int, std::uint64_t>> {};

TEST_P(BsaProperty, ValidOnRandomInstances) {
  const auto [n, topo_kind, granularity, het_hi, seed] = GetParam();

  workloads::RandomDagParams params;
  params.num_tasks = n;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology(topo_kind, 8, seed);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, het_hi, 1, het_hi,
                                           derive_seed(seed, 99));

  BsaOptions opt;
  opt.seed = seed;
  const auto result = schedule_bsa(g, topo, cm, opt);

  ASSERT_TRUE(result.schedule.all_placed());
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();

  const auto sim = sched::simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(sched::simulation_matches(result.schedule, sim));

  EXPECT_GE(result.schedule_length() + kTimeEpsilon,
            sched::schedule_length_lower_bound(g, cm));
  // The serialization order must contain all tasks.
  EXPECT_EQ(result.trace.serialization.order.size(),
            static_cast<std::size_t>(g.num_tasks()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BsaProperty,
    ::testing::Combine(::testing::Values(24, 60),
                       ::testing::Values("ring", "hypercube", "clique",
                                         "random"),
                       ::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(10, 50),
                       ::testing::Values(1u, 2u)));

/// The ablation options must preserve validity on the same sweep (smaller
/// instance set).
class BsaOptionProperty
    : public ::testing::TestWithParam<
          std::tuple<bool, bool, bool, GateRule, std::uint64_t>> {};

TEST_P(BsaOptionProperty, VariantsValidOnRandomInstances) {
  const auto [insertion, prune, vip, gate, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 0.5;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::random(8, 2, 4, seed);
  const auto cm = net::HeterogeneousCostModel::uniform(
      g, topo, 1, 20, 1, 20, derive_seed(seed, 7));

  BsaOptions opt;
  opt.seed = seed;
  opt.insertion_slots = insertion;
  opt.prune_route_cycles = prune;
  opt.vip_rule = vip;
  opt.gate = gate;
  const auto result = schedule_bsa(g, topo, cm, opt);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  const auto sim = sched::simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
}

INSTANTIATE_TEST_SUITE_P(
    Options, BsaOptionProperty,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(GateRule::kPaper,
                                         GateRule::kAlwaysConsider),
                       ::testing::Values(11u, 12u)));

/// Determinism across repeated runs for a handful of configurations.
class BsaDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BsaDeterminism, RepeatedRunsIdentical) {
  const std::uint64_t seed = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 50;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::hypercube(3);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, seed);
  BsaOptions opt;
  opt.seed = seed;
  const auto a = schedule_bsa(g, topo, cm, opt);
  const auto b = schedule_bsa(g, topo, cm, opt);
  EXPECT_DOUBLE_EQ(a.schedule_length(), b.schedule_length());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsaDeterminism,
                         ::testing::Values(3u, 17u, 23u));

}  // namespace
}  // namespace bsa::core
