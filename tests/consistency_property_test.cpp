#include <gtest/gtest.h>

#include <tuple>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "baselines/mh.hpp"
#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "sched/event_sim.hpp"
#include "sched/metrics.hpp"
#include "sched/retime.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa {
namespace {

/// Cross-module consistency properties that must hold for the output of
/// *every* scheduler in the library:
///  * the schedule validates;
///  * after replay normalisation, the independent event simulator
///    reproduces the recorded times exactly;
///  * order-preserving re-timing of a replayed schedule is a fixed point
///    (no time changes);
///  * the makespan respects the fastest-chain lower bound.

enum class Which : int { kBsa = 0, kDls, kEft, kMh, kCount };

sched::Schedule run(Which which, const graph::TaskGraph& g,
                    const net::Topology& topo,
                    const net::HeterogeneousCostModel& cm,
                    std::uint64_t seed) {
  switch (which) {
    case Which::kBsa: {
      core::BsaOptions opt;
      opt.seed = seed;
      return core::schedule_bsa(g, topo, cm, opt).schedule;
    }
    case Which::kDls:
      return baselines::schedule_dls(g, topo, cm).schedule;
    case Which::kEft:
      return baselines::schedule_eft_oblivious(g, topo, cm).schedule;
    default:
      return baselines::schedule_mh(g, topo, cm).schedule;
  }
}

class SchedulerConsistency
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(SchedulerConsistency, AllInvariantsHold) {
  const auto [which_int, granularity, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 45;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::random(10, 2, 6, seed);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 30, 1, 30, derive_seed(seed, 50));

  sched::Schedule s =
      run(static_cast<Which>(which_int), g, topo, cm, seed);

  // 1. Validity.
  const auto report = sched::validate(s, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  // 2. Lower bound.
  EXPECT_GE(s.makespan() + kTimeEpsilon,
            sched::schedule_length_lower_bound(g, cm));

  // 3. Replay + simulation agreement.
  (void)sched::replay_retime(s, cm);
  const auto sim = sched::simulate_execution(s, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(sched::simulation_matches(s, sim));

  // 4. Re-timing the replayed schedule is a fixed point.
  std::vector<Time> starts(static_cast<std::size_t>(g.num_tasks()));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    starts[static_cast<std::size_t>(t)] = s.start_of(t);
  }
  Time mk = 0;
  ASSERT_TRUE(sched::try_retime(s, cm, &mk));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_NEAR(s.start_of(t), starts[static_cast<std::size_t>(t)], 1e-9)
        << "task " << t << " moved under retime after replay";
  }
  EXPECT_NEAR(mk, sim.makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerConsistency,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(Which::kCount)),
        ::testing::Values(0.1, 1.0, 10.0), ::testing::Values(3u, 4u)));

/// Guarded BSA migrations never increase the schedule length: the
/// recorded makespan-after sequence is non-increasing.
TEST(BsaTraceInvariants, GuardedMakespanMonotone) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    workloads::RandomDagParams params;
    params.num_tasks = 60;
    params.granularity = 0.5;
    params.seed = seed;
    const auto g = workloads::random_layered_dag(params);
    const auto topo = net::Topology::ring(8);
    const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
        g, topo, 1, 30, 1, 30, derive_seed(seed, 51));
    const auto result = core::schedule_bsa(g, topo, cm);
    Time previous = result.trace.initial_serial_length;
    for (const auto& m : result.trace.migrations) {
      EXPECT_LE(m.makespan_after, previous + kTimeEpsilon)
          << "migration of task " << m.task << " grew the schedule";
      previous = m.makespan_after;
    }
    EXPECT_DOUBLE_EQ(result.schedule_length(), previous);
  }
}

/// The guarded final schedule is never longer than the serial start.
TEST(BsaTraceInvariants, NeverWorseThanSerialization) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    workloads::RandomDagParams params;
    params.num_tasks = 50;
    params.granularity = 0.1;  // most adversarial regime
    params.seed = seed;
    const auto g = workloads::random_layered_dag(params);
    const auto topo = net::Topology::ring(8);
    const auto cm = net::HeterogeneousCostModel::uniform(
        g, topo, 1, 50, 1, 50, derive_seed(seed, 52));
    const auto result = core::schedule_bsa(g, topo, cm);
    EXPECT_LE(result.schedule_length(),
              result.trace.initial_serial_length + kTimeEpsilon);
  }
}

}  // namespace
}  // namespace bsa
