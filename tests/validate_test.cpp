#include <gtest/gtest.h>

#include "common/check.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sched/validate.hpp"

namespace bsa::sched {
namespace {

/// Two-task pipeline A(10) -5-> B(20) used to probe every invariant.
struct ValidateTest : ::testing::Test {
  graph::TaskGraph make_graph() {
    graph::TaskGraphBuilder b;
    const TaskId a = b.add_task(10, "A");
    const TaskId bb = b.add_task(20, "B");
    (void)b.add_edge(a, bb, 5);
    return b.build();
  }
  graph::TaskGraph g = make_graph();
  net::Topology topo = net::Topology::ring(3);  // triangle P0-P1-P2
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::homogeneous(g, topo);
  TaskId A = 0, B = 1;
};

TEST_F(ValidateTest, ValidSameProcessorSchedule) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 30);
  const auto report = validate(s, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.to_string(), "valid");
}

TEST_F(ValidateTest, ValidCrossProcessorSchedule) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.place_task(B, 1, 15, 35);
  EXPECT_TRUE(validate(s, cm).ok());
}

TEST_F(ValidateTest, DetectsUnplacedTask) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not placed"), std::string::npos);
}

TEST_F(ValidateTest, DetectsWrongDuration) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 12);  // should be 10
  s.place_task(B, 0, 12, 32);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("duration"), std::string::npos);
}

TEST_F(ValidateTest, DetectsProcessorOverlap) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 5, 25);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("overlap"), std::string::npos);
}

TEST_F(ValidateTest, DetectsPrecedenceViolationSameProc) {
  Schedule s(g, topo);
  s.place_task(B, 0, 0, 20);
  s.place_task(A, 0, 20, 30);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("precedence"), std::string::npos);
}

TEST_F(ValidateTest, DetectsMissingRoute) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 1, 15, 35);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("no route"), std::string::npos);
}

TEST_F(ValidateTest, DetectsRouteToWrongProcessor) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.place_task(B, 2, 15, 35);  // route ends at P1, task on P2
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("ends at"), std::string::npos);
}

TEST_F(ValidateTest, DetectsBrokenRouteWalk) {
  Schedule s(g, topo);
  const LinkId l12 = topo.link_between(1, 2);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l12, 10, 15}});  // link not incident to P0
  s.place_task(B, 2, 15, 35);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("route broken"), std::string::npos);
}

TEST_F(ValidateTest, DetectsHopBeforeDataAvailable) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 5, 10}});  // starts before A finishes
  s.place_task(B, 1, 15, 35);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("before its data"), std::string::npos);
}

TEST_F(ValidateTest, DetectsWrongHopDuration) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 18}});  // cost is 5, duration 8
  s.place_task(B, 1, 18, 38);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("comm cost"), std::string::npos);
}

TEST_F(ValidateTest, DetectsTaskBeforeMessageArrival) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.place_task(B, 1, 12, 32);  // starts before arrival at 15
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("arrives"), std::string::npos);
}

TEST_F(ValidateTest, DetectsSpuriousRouteForColocatedTasks) {
  Schedule s(g, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(A, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.place_task(B, 0, 15, 35);
  const auto report = validate(s, cm);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("co-located"), std::string::npos);
}

TEST_F(ValidateTest, DetectsLinkContention) {
  // Second graph with two parallel crossing messages.
  graph::TaskGraphBuilder b2;
  const TaskId a = b2.add_task(10);
  const TaskId c = b2.add_task(10);
  const TaskId d = b2.add_task(10);
  (void)b2.add_edge(a, c, 5);
  (void)b2.add_edge(a, d, 5);
  const graph::TaskGraph g2 = b2.build();
  const auto cm2 = net::HeterogeneousCostModel::homogeneous(g2, topo);
  Schedule s(g2, topo);
  const LinkId l01 = topo.link_between(0, 1);
  s.place_task(a, 0, 0, 10);
  s.set_route(0, {Hop{l01, 10, 15}});
  s.set_route(1, {Hop{l01, 15, 20}});
  // Force an overlap through the raw time setter (set_route would refuse).
  s.set_hop_times(1, 0, 12, 17);
  s.place_task(c, 1, 15, 25);
  s.place_task(d, 1, 25, 35);
  const auto report = validate(s, cm2);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("contention"), std::string::npos);
}

TEST_F(ValidateTest, CollectsMultipleIssues) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 12);   // wrong duration
  s.place_task(B, 1, 0, 20);   // no route + starts before pred finishes
  const auto report = validate(s, cm);
  EXPECT_GE(report.issues.size(), 2u);
}

}  // namespace
}  // namespace bsa::sched
