#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "paper_fixture.hpp"
#include "sched/event_sim.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"

namespace bsa::core {
namespace {

namespace pf = bsa::testing;

struct BsaPaperTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  net::HeterogeneousCostModel cm = pf::paper_cost_model(g, topo);
};

TEST_F(BsaPaperTest, ProducesValidSchedule) {
  BsaOptions opt;
  opt.validate_each_step = true;  // exercise the per-migration validator
  const auto result = schedule_bsa(g, topo, cm, opt);
  EXPECT_TRUE(result.schedule.all_placed());
  const auto report = sched::validate(result.schedule, cm);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(BsaPaperTest, TraceMatchesPaperAnalytics) {
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_EQ(result.trace.first_pivot, 1);  // P2
  ASSERT_EQ(result.trace.pivot_cp_lengths.size(), 4u);
  EXPECT_DOUBLE_EQ(result.trace.pivot_cp_lengths[0], 240);
  EXPECT_DOUBLE_EQ(result.trace.pivot_cp_lengths[1], 226);
  EXPECT_DOUBLE_EQ(result.trace.pivot_cp_lengths[2], 235);
  EXPECT_DOUBLE_EQ(result.trace.pivot_cp_lengths[3], 260);
  // Serial injection = sum of exec costs on P2 = 7+50+28+14+42+20+43+18+16.
  EXPECT_DOUBLE_EQ(result.trace.initial_serial_length, 238);
  // BFS pivot order from P2 over the ring P1-P2-P3-P4.
  const std::vector<ProcId> expect_pivots{1, 0, 2, 3};
  EXPECT_EQ(result.trace.pivot_sequence, expect_pivots);
}

TEST_F(BsaPaperTest, ImprovesOnSerialSchedule) {
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_LT(result.schedule_length(), result.trace.initial_serial_length);
  EXPECT_GE(result.schedule_length(),
            sched::schedule_length_lower_bound(g, cm));
  EXPECT_FALSE(result.trace.migrations.empty());
}

TEST_F(BsaPaperTest, EntryCpTaskStaysOnPivot) {
  // §2.4: "T1, being the first CP task, does not migrate".
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(pf::T1), 1);
  for (const Migration& m : result.trace.migrations) {
    EXPECT_NE(m.task, pf::T1);
  }
}

TEST_F(BsaPaperTest, MigrationsAreAlwaysToNeighbours) {
  const auto result = schedule_bsa(g, topo, cm);
  for (const Migration& m : result.trace.migrations) {
    EXPECT_NE(topo.link_between(m.from, m.to), kInvalidLink)
        << "migration " << m.task << " jumped " << m.from << "->" << m.to;
    EXPECT_GE(m.phase, 0);
    EXPECT_LT(m.phase, static_cast<int>(result.trace.pivot_sequence.size()));
    EXPECT_EQ(result.trace.pivot_sequence[static_cast<std::size_t>(m.phase)],
              m.from);
  }
}

TEST_F(BsaPaperTest, DeterministicAcrossRuns) {
  const auto a = schedule_bsa(g, topo, cm);
  const auto b = schedule_bsa(g, topo, cm);
  EXPECT_DOUBLE_EQ(a.schedule_length(), b.schedule_length());
  ASSERT_EQ(a.trace.migrations.size(), b.trace.migrations.size());
  for (std::size_t i = 0; i < a.trace.migrations.size(); ++i) {
    EXPECT_EQ(a.trace.migrations[i].task, b.trace.migrations[i].task);
    EXPECT_EQ(a.trace.migrations[i].to, b.trace.migrations[i].to);
  }
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.schedule.proc_of(t), b.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(a.schedule.start_of(t), b.schedule.start_of(t));
  }
}

TEST_F(BsaPaperTest, TimesAgreeWithEventSimulation) {
  const auto result = schedule_bsa(g, topo, cm);
  const auto sim = sched::simulate_execution(result.schedule, cm);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(sched::simulation_matches(result.schedule, sim));
}

TEST_F(BsaPaperTest, AblationVariantsStayValid) {
  for (const bool insertion : {true, false}) {
    for (const bool prune : {true, false}) {
      for (const bool vip : {true, false}) {
        for (const GateRule gate :
             {GateRule::kPaper, GateRule::kAlwaysConsider}) {
          BsaOptions opt;
          opt.insertion_slots = insertion;
          opt.prune_route_cycles = prune;
          opt.vip_rule = vip;
          opt.gate = gate;
          const auto result = schedule_bsa(g, topo, cm, opt);
          const auto report = sched::validate(result.schedule, cm);
          EXPECT_TRUE(report.ok())
              << "insertion=" << insertion << " prune=" << prune
              << " vip=" << vip << ": " << report.to_string();
        }
      }
    }
  }
}

TEST_F(BsaPaperTest, PrunedRoutesNeverRevisitProcessors) {
  BsaOptions opt;
  opt.prune_route_cycles = true;
  const auto result = schedule_bsa(g, topo, cm, opt);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = result.schedule.route_of(e);
    if (route.empty()) continue;
    std::vector<ProcId> walk{result.schedule.proc_of(g.edge_src(e))};
    for (const auto& hop : route) {
      walk.push_back(topo.opposite(hop.link, walk.back()));
    }
    std::vector<ProcId> sorted = walk;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "route of message " << e << " revisits a processor";
  }
}

// --- small targeted scenarios ------------------------------------------------

TEST(BsaSmall, SingleTaskGoesToFastestProcessor) {
  graph::TaskGraphBuilder b;
  (void)b.add_task(10);
  const auto g = b.build();
  const auto topo = net::Topology::ring(3);
  const std::vector<Cost> matrix{30, 10, 20};
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(0), 1);
  EXPECT_DOUBLE_EQ(result.schedule_length(), 10);
}

TEST(BsaSmall, ExpensiveCommunicationKeepsChainTogether) {
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId c = b.add_task(10);
  (void)b.add_edge(a, c, 1000);
  const auto g = b.build();
  const auto topo = net::Topology::ring(2);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_EQ(result.schedule.proc_of(a), result.schedule.proc_of(c));
  EXPECT_DOUBLE_EQ(result.schedule_length(), 20);
}

TEST(BsaSmall, IndependentTasksSpreadAcrossProcessors) {
  graph::TaskGraphBuilder b;
  const TaskId s = b.add_task(1);
  const TaskId x = b.add_task(100);
  const TaskId y = b.add_task(100);
  (void)b.add_edge(s, x, 1);
  (void)b.add_edge(s, y, 1);
  const auto g = b.build();
  const auto topo = net::Topology::ring(2);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  const auto result = schedule_bsa(g, topo, cm);
  // Serial length is 201; parallelising x/y caps it near 102.
  EXPECT_LT(result.schedule_length(), 201);
  EXPECT_NE(result.schedule.proc_of(x), result.schedule.proc_of(y));
}

TEST(BsaSmall, SingleProcessorDegeneratesToSerialOrder) {
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId c = b.add_task(20);
  (void)b.add_edge(a, c, 5);
  const auto g = b.build();
  const auto topo = net::Topology::from_links(1, {}, "solo");
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  const auto result = schedule_bsa(g, topo, cm);
  EXPECT_DOUBLE_EQ(result.schedule_length(), 30);
  EXPECT_TRUE(result.trace.migrations.empty());
}

TEST(BsaSmall, RejectsMismatchedCostModel) {
  graph::TaskGraphBuilder b;
  (void)b.add_task(10);
  const auto g = b.build();
  const auto topo2 = net::Topology::ring(2);
  const auto topo3 = net::Topology::ring(3);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo2);
  EXPECT_THROW((void)schedule_bsa(g, topo3, cm), PreconditionError);
}

// Reference reimplementation of the original O(n^2) prune loop: rebuild
// the whole processor walk after every single cut. prune_link_walk's
// single forward pass must pin its output exactly.
void prune_walk_reference(const net::Topology& topo,
                          std::vector<LinkId>& links, ProcId origin) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<ProcId> walk{origin};
    for (const LinkId l : links) {
      walk.push_back(topo.opposite(l, walk.back()));
    }
    std::vector<int> first_pos(
        static_cast<std::size_t>(topo.num_processors()), -1);
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const auto pi = static_cast<std::size_t>(walk[i]);
      if (first_pos[pi] < 0) {
        first_pos[pi] = static_cast<int>(i);
        continue;
      }
      const auto from = static_cast<std::ptrdiff_t>(first_pos[pi]);
      links.erase(links.begin() + from,
                  links.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
      break;
    }
  }
}

TEST(PruneLinkWalk, MatchesReferenceOnDirectedCases) {
  const auto topo = net::Topology::clique(6);
  const auto link = [&](ProcId a, ProcId b) { return topo.link_between(a, b); };
  const std::vector<std::vector<LinkId>> cases{
      // No loop / single hop: untouched.
      {},
      {link(0, 1)},
      // Simple loop 0-1-2-1: cut back to the first visit of 1.
      {link(0, 1), link(1, 2), link(2, 1)},
      // Nested multi-loop 0-1-2-3-2-1-4: both loops collapse to 0-1-4.
      {link(0, 1), link(1, 2), link(2, 3), link(3, 2), link(2, 1),
       link(1, 4)},
      // Walk returning to the origin collapses entirely.
      {link(0, 1), link(1, 0)},
      {link(0, 1), link(1, 2), link(2, 1), link(1, 0)},
      // Loop at the origin followed by a fresh tail.
      {link(0, 1), link(1, 0), link(0, 2), link(2, 3)},
      // Two disjoint loops in one walk: 0-1-2-1-3-4-3-5 -> 0-1-3-5.
      {link(0, 1), link(1, 2), link(2, 1), link(1, 3), link(3, 4),
       link(4, 3), link(3, 5)},
  };
  const std::vector<std::vector<LinkId>> expected{
      {},
      {link(0, 1)},
      {link(0, 1)},
      {link(0, 1), link(1, 4)},
      {},
      {},
      {link(0, 2), link(2, 3)},
      {link(0, 1), link(1, 3), link(3, 5)},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::vector<LinkId> fast = cases[i];
    std::vector<LinkId> slow = cases[i];
    prune_link_walk(topo, fast, 0);
    prune_walk_reference(topo, slow, 0);
    EXPECT_EQ(fast, slow) << "case " << i;
    EXPECT_EQ(fast, expected[i]) << "case " << i;
  }
}

TEST(PruneLinkWalk, MatchesReferenceOnRandomMultiLoopWalks) {
  // Random walks revisit processors constantly on small topologies —
  // exactly the multi-loop inputs where the old loop went quadratic.
  for (const int procs : {4, 6, 9}) {
    const auto topo = net::Topology::ring(procs);
    Rng rng(derive_seed(2027, static_cast<std::uint64_t>(procs)));
    for (int iter = 0; iter < 200; ++iter) {
      const auto origin = static_cast<ProcId>(
          rng.index(static_cast<std::size_t>(procs)));
      std::vector<LinkId> walk;
      ProcId cur = origin;
      const int len = 1 + static_cast<int>(rng.index(30));
      for (int i = 0; i < len; ++i) {
        const auto& nbrs = topo.neighbors(cur);
        const ProcId next = nbrs[rng.index(nbrs.size())];
        walk.push_back(topo.link_between(cur, next));
        cur = next;
      }
      std::vector<LinkId> fast = walk;
      std::vector<LinkId> slow = walk;
      prune_link_walk(topo, fast, origin);
      prune_walk_reference(topo, slow, origin);
      ASSERT_EQ(fast, slow) << "procs=" << procs << " iter=" << iter;
      // The pruned walk must be loop-free: no processor revisited.
      std::vector<int> seen(static_cast<std::size_t>(procs), 0);
      ProcId p = origin;
      seen[static_cast<std::size_t>(p)] = 1;
      for (const LinkId l : fast) {
        p = topo.opposite(l, p);
        ASSERT_EQ(seen[static_cast<std::size_t>(p)], 0);
        seen[static_cast<std::size_t>(p)] = 1;
      }
    }
  }
}

TEST(BsaSmall, HeterogeneityExploitedOnClique) {
  // Fast processor P2 for everything; with cheap communication BSA should
  // shift the chain towards it.
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(100);
  const TaskId c = b.add_task(100);
  const TaskId d = b.add_task(100);
  (void)b.add_edge(a, c, 1);
  (void)b.add_edge(c, d, 1);
  const auto g = b.build();
  const auto topo = net::Topology::clique(3);
  // P2 runs everything in 10; others in 100.
  std::vector<Cost> matrix{100, 100, 10, 100, 100, 10, 100, 100, 10};
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto result = schedule_bsa(g, topo, cm);
  // Pivot selection alone puts the whole chain on P2: length 30.
  EXPECT_DOUBLE_EQ(result.schedule_length(), 30);
  EXPECT_EQ(result.schedule.proc_of(a), 2);
  EXPECT_EQ(result.schedule.proc_of(d), 2);
}

}  // namespace
}  // namespace bsa::core
