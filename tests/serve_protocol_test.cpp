#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"

namespace bsa::serve {
namespace {

TEST(ServeProtocol, DefaultsMatchBsaToolSingleRun) {
  const Request req = parse_request("{\"op\":\"schedule\"}");
  EXPECT_EQ(req.workload, "random");
  EXPECT_EQ(req.algo, "bsa");
  EXPECT_EQ(req.topology, "ring");
  EXPECT_EQ(req.size, 100);
  EXPECT_EQ(req.gran, 1.0);
  EXPECT_EQ(req.procs, 8);
  EXPECT_EQ(req.het, 1);
  EXPECT_EQ(req.link_het, 1);
  EXPECT_FALSE(req.per_pair);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_TRUE(req.use_cache);
  EXPECT_FALSE(req.validate);
}

TEST(ServeProtocol, RequestJsonRoundTrips) {
  Request req;
  req.id = 42;
  req.workload = "fft:points=64";
  req.algo = "dls";
  req.topology = "hypercube";
  req.size = 30;
  req.gran = 2.5;
  req.procs = 16;
  req.per_pair = true;
  req.seed = 7;
  req.use_cache = false;
  req.validate = true;
  const Request back = parse_request(request_to_json(req));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.workload, req.workload);
  EXPECT_EQ(back.algo, req.algo);
  EXPECT_EQ(back.topology, req.topology);
  EXPECT_EQ(back.size, req.size);
  EXPECT_EQ(back.gran, req.gran);
  EXPECT_EQ(back.procs, req.procs);
  EXPECT_EQ(back.per_pair, req.per_pair);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.use_cache, req.use_cache);
  EXPECT_EQ(back.validate, req.validate);
}

TEST(ServeProtocol, MalformedJsonThrows) {
  EXPECT_THROW(parse_request("not json at all"), PreconditionError);
  EXPECT_THROW(parse_request("{\"op\":\"schedule\""), PreconditionError);
  EXPECT_THROW(parse_request(""), PreconditionError);
}

TEST(ServeProtocol, UnknownKeysRejectedListingAccepted) {
  try {
    (void)parse_request("{\"op\":\"schedule\",\"workloda\":\"fft\"}");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("workloda"), std::string::npos) << msg;
    EXPECT_NE(msg.find("workload"), std::string::npos) << msg;
    EXPECT_NE(msg.find("topology"), std::string::npos) << msg;
  }
}

TEST(ServeProtocol, UnknownOpRejectedListingOps) {
  try {
    (void)parse_request("{\"op\":\"frobnicate\"}");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("schedule, ping, stats, shutdown"), std::string::npos)
        << msg;
  }
}

TEST(ServeProtocol, NumericFieldValidation) {
  EXPECT_THROW(parse_request("{\"size\":0}"), PreconditionError);
  EXPECT_THROW(parse_request("{\"size\":2.5}"), PreconditionError);
  EXPECT_THROW(parse_request("{\"gran\":0}"), PreconditionError);
  EXPECT_THROW(parse_request("{\"procs\":-1}"), PreconditionError);
  EXPECT_THROW(parse_request("{\"seed\":-3}"), PreconditionError);
  EXPECT_THROW(parse_request("{\"per_pair\":\"yes\"}"), PreconditionError);
}

TEST(ServeProtocol, CanonicalizeNormalisesSpecsAndBuildsExactKey) {
  Request a;
  a.workload = "FFT:points=64";  // registry canonicalises case
  a.algo = "bsa";
  a.topology = "hypercube";
  a.seed = 5;
  const std::string key_a = canonicalize(a);
  EXPECT_EQ(a.workload, "fft:points=64");

  // A differently-spelled but equivalent request collides to the same key.
  Request b = parse_request(
      "{\"workload\":\"fft:points=64\",\"topology\":\"HYPERCUBE\","
      "\"seed\":5,\"gran\":1.0}");
  EXPECT_EQ(canonicalize(b), key_a);

  // Every result-affecting field separates the key — including validate,
  // which changes the payload bytes.
  Request c = a;
  c.seed = 6;
  EXPECT_NE(canonicalize(c), key_a);
  Request d = a;
  d.validate = true;
  EXPECT_NE(canonicalize(d), key_a);
  // ...but the envelope-only id does not.
  Request e = a;
  e.id = 999;
  EXPECT_EQ(canonicalize(e), key_a);
}

TEST(ServeProtocol, CanonicalizeUnknownNamesListChoices) {
  Request bad_algo;
  bad_algo.algo = "nosuch";
  try {
    (void)canonicalize(bad_algo);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("nosuch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bsa"), std::string::npos) << msg;
  }
  Request bad_topo;
  bad_topo.topology = "torus";
  try {
    (void)canonicalize(bad_topo);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("torus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hypercube"), std::string::npos) << msg;
  }
}

TEST(ServeProtocol, ResponseFormatParseRoundTrip) {
  const std::string line = format_response(
      7, true, 123.5, "\"makespan\":440,\"schedule\":\"task 0 1 0 10\"");
  const Response resp = parse_response(line);
  EXPECT_EQ(resp.id, 7u);
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.cached);
  EXPECT_DOUBLE_EQ(resp.server_us, 123.5);
  EXPECT_TRUE(resp.error.empty());
  EXPECT_DOUBLE_EQ(resp.makespan(), 440);
  EXPECT_EQ(resp.schedule_text(), "task 0 1 0 10");
  // Envelope fields are not part of the payload map.
  EXPECT_EQ(resp.payload.count("id"), 0u);
  EXPECT_EQ(resp.payload.count("ok"), 0u);
}

TEST(ServeProtocol, ErrorResponseRoundTrip) {
  const Response resp =
      parse_response(format_error(3, "unknown algorithm \"x\""));
  EXPECT_EQ(resp.id, 3u);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, "unknown algorithm \"x\"");
  // The legacy 2-arg form defaults to the `internal` code.
  EXPECT_EQ(resp.code, error_code::kInternal);
  EXPECT_EQ(resp.retry_after_ms, 0);
}

TEST(ServeProtocol, TypedErrorRoundTripCarriesCodeAndHint) {
  const Response shed = parse_response(
      format_error(9, error_code::kOverloaded, "server overloaded", 25));
  EXPECT_EQ(shed.id, 9u);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, error_code::kOverloaded);
  EXPECT_EQ(shed.error, "server overloaded");
  EXPECT_EQ(shed.retry_after_ms, 25);

  // retry_after_ms is only emitted when it carries information.
  const std::string bad =
      format_error(4, error_code::kBadRequest, "unknown key \"siez\"");
  EXPECT_EQ(bad.find("retry_after_ms"), std::string::npos);
  const Response resp = parse_response(bad);
  EXPECT_EQ(resp.code, error_code::kBadRequest);
  EXPECT_EQ(resp.retry_after_ms, 0);
}

}  // namespace
}  // namespace bsa::serve
