#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/levels.hpp"
#include "paper_fixture.hpp"

namespace bsa::graph {
namespace {

namespace pf = bsa::testing;
using pf::paper_task_graph;

TEST(Levels, NominalLevelsOfPaperGraph) {
  const TaskGraph g = paper_task_graph();
  const LevelSets levels = compute_levels(g);

  // CP = T1 -> T7 -> T9 with length 20+100+40+60+10 = 230.
  EXPECT_DOUBLE_EQ(levels.cp_length, 230);

  // Hand-computed t-levels.
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T1], 0);
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T2], 60);    // 20+40
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T7], 120);   // 20+100 via direct edge
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T6], 100);   // 20+40+30+10
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T8], 80);    // via T4: 20+10+40+10
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T9], 220);   // via T7
  EXPECT_DOUBLE_EQ(levels.t_level[pf::T5], 30);

  // Hand-computed b-levels.
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T9], 10);
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T7], 110);   // 40+60+10
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T6], 100);   // 40+50+10
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T8], 100);   // 40+50+10 (tie with T6)
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T4], 150);   // 40+10+100
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T3], 140);   // 30+10+100
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T2], 150);   // 30+10+110
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T1], 230);
  EXPECT_DOUBLE_EQ(levels.b_level[pf::T5], 50);
}

TEST(Levels, CriticalPathMembership) {
  const TaskGraph g = paper_task_graph();
  const LevelSets levels = compute_levels(g);
  EXPECT_TRUE(levels.on_critical_path(pf::T1));
  EXPECT_TRUE(levels.on_critical_path(pf::T7));
  EXPECT_TRUE(levels.on_critical_path(pf::T9));
  EXPECT_FALSE(levels.on_critical_path(pf::T2));
  EXPECT_FALSE(levels.on_critical_path(pf::T5));
  EXPECT_FALSE(levels.on_critical_path(pf::T8));
}

TEST(Levels, ExtractNominalCriticalPath) {
  const TaskGraph g = paper_task_graph();
  Rng rng(0);
  const auto cp = extract_critical_path(g, rng);
  const std::vector<TaskId> expect{pf::T1, pf::T7, pf::T9};
  EXPECT_EQ(cp, expect);
}

TEST(Levels, SingleTask) {
  TaskGraphBuilder b;
  (void)b.add_task(42);
  const TaskGraph g = b.build();
  const LevelSets levels = compute_levels(g);
  EXPECT_DOUBLE_EQ(levels.cp_length, 42);
  EXPECT_DOUBLE_EQ(levels.t_level[0], 0);
  EXPECT_DOUBLE_EQ(levels.b_level[0], 42);
}

TEST(Levels, TieBrokenTowardsLargerExecSum) {
  // Two parallel 2-task chains of equal total length 30; the upper chain
  // has exec sum 20, the lower 28 (comm shorter). Definition 1 requires
  // the larger exec-cost CP.
  TaskGraphBuilder b;
  const TaskId s = b.add_task(1);
  const TaskId a1 = b.add_task(10);
  const TaskId a2 = b.add_task(10);
  const TaskId b1 = b.add_task(14);
  const TaskId b2 = b.add_task(14);
  const TaskId t = b.add_task(1);
  (void)b.add_edge(s, a1, 2);
  (void)b.add_edge(a1, a2, 8);
  (void)b.add_edge(a2, t, 1);
  (void)b.add_edge(s, b1, 1);
  (void)b.add_edge(b1, b2, 1);
  (void)b.add_edge(b2, t, 1);
  const TaskGraph g = b.build();
  const LevelSets levels = compute_levels(g);
  // Both chains total 1+2+10+8+10+1+1 = 33 = 1+1+14+1+14+1+1.
  EXPECT_DOUBLE_EQ(levels.cp_length, 33);
  Rng rng(1);
  std::vector<Cost> exec(6), comm(6);
  for (TaskId i = 0; i < 6; ++i) exec[static_cast<std::size_t>(i)] = g.task_cost(i);
  for (EdgeId e = 0; e < 6; ++e) comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  const auto cp = extract_critical_path(g, exec, comm, levels, rng);
  const std::vector<TaskId> expect{s, b1, b2, t};
  EXPECT_EQ(cp, expect);
}

TEST(Levels, CustomCostVectors) {
  const TaskGraph g = paper_task_graph();
  // All-zero comm: CP length = longest exec chain.
  std::vector<Cost> exec(9), comm(12, 0);
  for (TaskId t = 0; t < 9; ++t) exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  const LevelSets levels = compute_levels(g, exec, comm);
  // Longest exec chain: T1+T2+T7+T9 = 100 vs T1+T4+T8+T9 = 110.
  EXPECT_DOUBLE_EQ(levels.cp_length, 110);
}

TEST(Levels, RejectsMismatchedSpans) {
  const TaskGraph g = paper_task_graph();
  std::vector<Cost> bad_exec(3), comm(12);
  EXPECT_THROW((void)compute_levels(g, bad_exec, comm), PreconditionError);
}

TEST(PathHelpers, ExecCostAndLength) {
  const TaskGraph g = paper_task_graph();
  std::vector<Cost> exec(9), comm(12);
  for (TaskId t = 0; t < 9; ++t) exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  for (EdgeId e = 0; e < 12; ++e) comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  const std::vector<TaskId> path{pf::T1, pf::T7, pf::T9};
  EXPECT_DOUBLE_EQ(path_exec_cost(path, exec), 70);
  EXPECT_DOUBLE_EQ(path_length(g, path, exec, comm), 230);
  const std::vector<TaskId> broken{pf::T1, pf::T9};
  EXPECT_THROW((void)path_length(g, broken, exec, comm), PreconditionError);
}

TEST(Levels, AllCpEntriesConsidered) {
  // Diamond where both middle tasks are on equal CPs through a common
  // entry/exit; extraction must return one complete path.
  TaskGraphBuilder b;
  const TaskId s = b.add_task(5);
  const TaskId m1 = b.add_task(10);
  const TaskId m2 = b.add_task(10);
  const TaskId t = b.add_task(5);
  (void)b.add_edge(s, m1, 3);
  (void)b.add_edge(s, m2, 3);
  (void)b.add_edge(m1, t, 3);
  (void)b.add_edge(m2, t, 3);
  const TaskGraph g = b.build();
  const LevelSets levels = compute_levels(g);
  EXPECT_DOUBLE_EQ(levels.cp_length, 26);
  Rng rng(3);
  const auto cp = extract_critical_path(g, rng);
  ASSERT_EQ(cp.size(), 3u);  // s -> one middle task -> t
  EXPECT_EQ(cp.front(), s);
  EXPECT_EQ(cp.back(), t);
  EXPECT_TRUE(cp[1] == m1 || cp[1] == m2);
}

}  // namespace
}  // namespace bsa::graph
