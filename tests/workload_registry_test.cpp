#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/spec.hpp"
#include "exp/experiment.hpp"
#include "graph/graph_io.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/scheduler.hpp"
#include "workloads/regular.hpp"
#include "workloads/workload_registry.hpp"

namespace bsa::workloads {
namespace {

/// what() of the PreconditionError thrown by `fn`, or "" when it throws
/// nothing (callers assert on substrings of the message).
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

const WorkloadRegistry& reg() { return WorkloadRegistry::global(); }

graph::TaskGraph gen(const std::string& spec, int target = 60,
                     double gran = 1.0, std::uint64_t seed = 3) {
  return reg().resolve(spec)->generate(target, gran, seed);
}

// --- names and grammar -------------------------------------------------------

TEST(WorkloadRegistry, ListsAtLeastEightBuiltinsInRegistrationOrder) {
  const std::vector<std::string> names = reg().names();
  ASSERT_GE(names.size(), 8u);  // PR acceptance: >= 8 registered workloads
  const std::vector<std::string> expected{
      "cholesky", "fft",      "forkjoin", "gauss", "laplace", "lu",
      "mva",      "pipeline", "random",   "sp",    "stencil"};
  EXPECT_EQ(names, expected);
}

TEST(WorkloadRegistry, SharesTheSpecGrammarWithSchedulers) {
  // Same parser as scheduler specs, workload-flavoured messages.
  EXPECT_THROW((void)bsa::parse_spec("", "workload"), PreconditionError);
  EXPECT_THROW((void)bsa::parse_spec("fft:", "workload"), PreconditionError);
  EXPECT_THROW((void)bsa::parse_spec("fft:points", "workload"),
               PreconditionError);
  EXPECT_THROW((void)bsa::parse_spec("fft:points=8,points=16", "workload"),
               PreconditionError);
  const std::string msg = error_message(
      [] { (void)bsa::parse_spec(":points=8", "workload"); });
  EXPECT_NE(msg.find("workload spec"), std::string::npos) << msg;

  const ParsedSpec p =
      bsa::parse_spec("  FFT : Points = 64 , CCR = 0.5 ", "workload");
  EXPECT_EQ(p.name, "fft");
  ASSERT_EQ(p.options.size(), 2u);
  EXPECT_EQ(p.options[0].first, "points");
  EXPECT_EQ(p.options[0].second, "64");
}

// --- canonicalisation --------------------------------------------------------

TEST(WorkloadRegistry, CanonicalLowercasesSortsAndDropsNoOpOptions) {
  EXPECT_EQ(reg().canonical("FFT"), "fft");
  EXPECT_EQ(reg().canonical("Random"), "random");
  // Non-default options sort by key with canonical value spellings.
  EXPECT_EQ(reg().canonical("fft:points=64,ccr=0.50"),
            "fft:ccr=0.5,points=64");
  EXPECT_EQ(reg().canonical("stencil:iters=2,rows=8,cols=8"),
            "stencil:cols=8,iters=2,rows=8");
  // Pinning a constant-default structure option is a no-op and
  // canonicalises away (scaled options like points/depth never do).
  EXPECT_EQ(reg().canonical("mva:stations=8"), "mva");
  EXPECT_EQ(reg().canonical("forkjoin:width=4"), "forkjoin");
  EXPECT_EQ(reg().canonical("pipeline:width=4,stages=10"),
            "pipeline:stages=10");
  EXPECT_EQ(reg().canonical("stencil:iters=4"), "stencil");
  EXPECT_EQ(reg().canonical("gauss:ccr=2.0"), "gauss:ccr=2");
}

TEST(WorkloadRegistry, CanonicalIsIdempotent) {
  for (const std::string spec :
       {"fft", "fft:points=64,ccr=0.5", "forkjoin:width=8,depth=5",
        "sp:depth=6,seed=3", "stencil:rows=8,cols=8,iters=4",
        "pipeline:stages=10,width=4", "gauss:n=12", "random:n=100",
        "mva:levels=4,stations=6", "cholesky:tiles=5", "lu:tiles=4",
        "laplace:n=9"}) {
    const std::string canonical = reg().canonical(spec);
    EXPECT_EQ(reg().canonical(canonical), canonical) << spec;
  }
}

TEST(WorkloadRegistry, DisplayLabelsUseTheFamilyNameForDefaults) {
  EXPECT_EQ(reg().display_label("fft"), "FFT butterfly");
  EXPECT_EQ(reg().display_label("sp"), "Series-parallel");
  EXPECT_EQ(reg().display_label("fft:points=64"), "fft:points=64");
}

// --- rejection with helpful messages -----------------------------------------

TEST(WorkloadRegistry, UnknownNameListsRegisteredNames) {
  const std::string msg =
      error_message([] { (void)reg().resolve("butterfly"); });
  EXPECT_NE(msg.find("unknown workload 'butterfly'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("cholesky, fft, forkjoin, gauss, laplace, lu, mva, "
                     "pipeline, random, sp, stencil"),
            std::string::npos)
      << msg;
}

TEST(WorkloadRegistry, UnknownOptionListsValidOptions) {
  const std::string msg =
      error_message([] { (void)reg().resolve("fft:pionts=8"); });
  EXPECT_NE(msg.find("unknown option 'pionts'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ccr"), std::string::npos) << msg;
  EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
}

TEST(WorkloadRegistry, BadValuesAreRejectedWithChoices) {
  // Non-power-of-two FFT sizes fail at resolve time, not generate time.
  const std::string msg =
      error_message([] { (void)reg().resolve("fft:points=63"); });
  EXPECT_NE(msg.find("power of two"), std::string::npos) << msg;
  EXPECT_THROW((void)reg().resolve("fft:points=1"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("sp:depth=0"), PreconditionError);
  // Documented structure bounds fail at resolve time, not mid-sweep.
  EXPECT_THROW((void)reg().resolve("sp:depth=15"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("pipeline:stages=1"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("pipeline:stages=1,width=2"),
               PreconditionError);
  EXPECT_NO_THROW((void)reg().resolve("pipeline:stages=1,width=1"));
  EXPECT_NO_THROW((void)reg().resolve("sp:depth=14"));
  // A single stencil sweep over > 1 cell would be edgeless/disconnected.
  EXPECT_THROW((void)reg().resolve("stencil:iters=1"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("stencil:rows=3,cols=3,iters=1"),
               PreconditionError);
  EXPECT_NO_THROW((void)reg().resolve("stencil:rows=1,cols=1,iters=1"));
  // Unbounded structure options cannot request runaway graphs.
  EXPECT_THROW((void)reg().resolve("sp:branch=33"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("sp:branch=1000000"), PreconditionError);
  EXPECT_NO_THROW((void)reg().resolve("sp:branch=32"));
  // Oversized pinned dimensions fail the 64-bit size guard instead of
  // overflowing int inside the count helpers.
  EXPECT_THROW((void)gen("stencil:rows=100000,cols=100000,iters=2"),
               PreconditionError);
  EXPECT_THROW((void)gen("pipeline:stages=1000000,width=1000"),
               PreconditionError);
  EXPECT_THROW((void)reg().resolve("sp:branch=1"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("stencil:rows=0"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("gauss:n=1"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("random:n=abc"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("fft:ccr=0"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("fft:ccr=-2"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("fft:ccr=nan"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("fft:seed=-1"), PreconditionError);
}

TEST(WorkloadRegistry, LocalInstanceRejectsDuplicateAndMalformedEntries) {
  WorkloadRegistry local;
  register_builtin_workloads(local);
  EXPECT_EQ(local.names().size(), 11u);
  WorkloadRegistry::Entry dup;
  dup.name = "fft";
  dup.factory = [](const SpecOptions&) -> std::unique_ptr<Workload> {
    return nullptr;
  };
  EXPECT_THROW(local.add(dup), PreconditionError);
  WorkloadRegistry::Entry bad;
  bad.name = "Not:Canonical";
  bad.factory = dup.factory;
  EXPECT_THROW(local.add(bad), PreconditionError);
}

// --- spec list splitting -----------------------------------------------------

TEST(WorkloadRegistry, SplitSpecListKeepsVariantOptionsAttached) {
  EXPECT_EQ(reg().split_spec_list("fft,sp"),
            (std::vector<std::string>{"fft", "sp"}));
  EXPECT_EQ(reg().split_spec_list("fft:points=8,ccr=2,sp:depth=4,random"),
            (std::vector<std::string>{"fft:points=8,ccr=2", "sp:depth=4",
                                      "random"}));
}

// --- structural invariants ---------------------------------------------------

TEST(WorkloadGenerators, KnownParamsYieldExactNodeAndEdgeCounts) {
  struct Expectation {
    const char* spec;
    int tasks;
    int edges;
  };
  const Expectation table[] = {
      // fft: points*(log2+1) tasks; 2*points edges per stage boundary.
      {"fft:points=8", 32, 48},
      // forkjoin: depth*(width+1) + 1 tasks; 2*width edges per stage.
      {"forkjoin:depth=3,width=4", 16, 24},
      // gauss: n(n+1)/2 - 1 tasks; pivot fan-outs + per-column chains.
      {"gauss:n=6", 20, 29},
      // laplace: n^2 wavefront; 2n(n-1) edges.
      {"laplace:n=4", 16, 24},
      // stencil 3x4, 2 iters: 24 tasks; 12 self + 2*(3*3 + 2*4) = 46.
      {"stencil:rows=3,cols=4,iters=2", 24, 46},
      // pipeline: stages*width tasks; (2*width - 1) edges per boundary.
      {"pipeline:stages=3,width=2", 6, 6},
      // mva 2 levels x 3 stations: 8 tasks; 3 stations->agg per level
      // plus agg->station fan-out between levels.
      {"mva:levels=2,stations=3", 8, 9},
      // lu tiles=3: 9 + 4 + 1 tasks.
      {"lu:tiles=3", 14, 21},
      // cholesky tiles=3: 6 + 3 + 1 tasks.
      {"cholesky:tiles=3", 10, 12},
      // random: exact task count.
      {"random:n=40", 40, -1},
  };
  for (const Expectation& e : table) {
    const graph::TaskGraph g = gen(e.spec);
    EXPECT_EQ(g.num_tasks(), e.tasks) << e.spec;
    if (e.edges >= 0) {
      EXPECT_EQ(g.num_edges(), e.edges) << e.spec;
    }
    EXPECT_TRUE(g.is_weakly_connected()) << e.spec;
  }
  // Predicted counts match the *_task_count helpers the adapters use.
  EXPECT_EQ(fft_task_count(8), 32);
  EXPECT_EQ(fork_join_task_count(3, 4), 16);
  EXPECT_EQ(stencil_2d_task_count(3, 4, 2), 24);
  EXPECT_EQ(pipeline_task_count(3, 2), 6);
  EXPECT_EQ(cholesky_task_count(3), 10);
}

TEST(WorkloadGenerators, TaskIdsAreTopologicallyOrdered) {
  // DAG-ness itself is enforced by TaskGraphBuilder::build; these
  // generators additionally emit ids in topological order (LU/Cholesky
  // interleave steps and are exempt — build() orders them internally).
  for (const std::string spec :
       {"fft:points=8", "forkjoin:depth=3,width=4", "gauss:n=6",
        "laplace:n=4", "stencil:rows=3,cols=4,iters=3",
        "pipeline:stages=4,width=3", "mva:levels=3,stations=4",
        "sp:depth=5", "random:n=50"}) {
    const graph::TaskGraph g = gen(spec);
    for (EdgeId e = 0; e < static_cast<EdgeId>(g.num_edges()); ++e) {
      ASSERT_LT(g.edge_src(e), g.edge_dst(e)) << spec << " edge " << e;
    }
  }
}

TEST(WorkloadGenerators, EveryRegisteredDefaultScalesToTheTarget) {
  for (const std::string& name : reg().names()) {
    const graph::TaskGraph g = gen(name, /*target=*/60);
    // Discrete structure parameters cannot hit 60 exactly; sp grows in
    // ~2.5x jumps and is the loosest.
    EXPECT_GE(g.num_tasks(), 20) << name;
    EXPECT_LE(g.num_tasks(), 180) << name;
    EXPECT_TRUE(g.is_weakly_connected()) << name;
    // A pinned structure ignores the target axis entirely.
  }
  EXPECT_EQ(gen("fft:points=8", /*target=*/500).num_tasks(), 32);
  EXPECT_EQ(gen("gauss:n=6", /*target=*/500).num_tasks(), 20);
}

// --- determinism -------------------------------------------------------------

TEST(WorkloadRegistry, RepeatedResolvesYieldBitIdenticalGraphs) {
  for (const std::string& name : reg().names()) {
    const std::string a = graph::to_text(gen(name, 60, 0.5, 11));
    const std::string b = graph::to_text(gen(name, 60, 0.5, 11));
    EXPECT_EQ(a, b) << name;
    // The workload instance itself is reusable and pure.
    const auto w = reg().resolve(name);
    EXPECT_EQ(graph::to_text(w->generate(60, 0.5, 11)), a) << name;
    // Different seeds change the costs (and, for random structures, the
    // shape).
    EXPECT_NE(graph::to_text(w->generate(60, 0.5, 12)), a) << name;
  }
}

TEST(WorkloadRegistry, GenerationIsBitIdenticalAcrossThreadCounts) {
  // One shared Workload instance, hammered concurrently: every thread
  // must see the same bytes (the sweep runtime relies on this).
  const auto w = reg().resolve("sp:depth=5");
  const std::string reference = graph::to_text(w->generate(60, 1.0, 7));
  for (const int threads : {2, 8}) {
    std::vector<std::string> texts(16);
    runtime::ThreadPool pool(threads);
    pool.parallel_for(texts.size(), 1, [&](std::size_t i) {
      texts[i] = graph::to_text(w->generate(60, 1.0, 7));
    });
    for (const std::string& t : texts) EXPECT_EQ(t, reference);
  }
}

TEST(WorkloadRegistry, PinnedCcrAndSeedOverrideTheCallerAxes) {
  // ccr=10 => granularity 0.1 regardless of the caller's axis value.
  const graph::TaskGraph fine = gen("fft:points=16,ccr=10", 60, 1.0, 3);
  EXPECT_LT(fine.granularity(), 0.2);
  const graph::TaskGraph coarse = gen("fft:points=16,ccr=0.1", 60, 1.0, 3);
  EXPECT_GT(coarse.granularity(), 5.0);
  // A pinned seed makes the caller seed irrelevant.
  EXPECT_EQ(graph::to_text(gen("sp:depth=4,seed=5", 60, 1.0, 1)),
            graph::to_text(gen("sp:depth=4,seed=5", 60, 1.0, 99)));
}

// --- equivalence with the pre-registry instance factory ----------------------

TEST(WorkloadRegistry, AdaptersReproduceTheLegacyFactoryBitIdentically) {
  // The fig3-6 byte-identity guarantee: the specs fig_common enumerates
  // must hand the sweep the exact graphs exp::make_instance built.
  const std::vector<std::string> regular{"gauss", "lu", "laplace"};
  for (const std::uint64_t seed : {1ULL, 2026ULL}) {
    for (const int size : {50, 150}) {
      for (const double gran : {0.1, 1.0, 10.0}) {
        for (std::size_t app = 0; app < regular.size(); ++app) {
          EXPECT_EQ(
              graph::to_text(gen(regular[app], size, gran, seed)),
              graph::to_text(exp::make_instance(true, static_cast<int>(app),
                                                size, gran, seed)))
              << regular[app] << " size " << size;
        }
        EXPECT_EQ(graph::to_text(gen("random", size, gran, seed)),
                  graph::to_text(
                      exp::make_instance(false, 0, size, gran, seed)));
      }
    }
  }
}

// --- sweep integration -------------------------------------------------------

TEST(WorkloadRegistry, ScenarioGridEnumeratesWorkloadCrossProducts) {
  runtime::ScenarioGrid grid;
  grid.workloads = {"FFT:points=16", "sp:depth=3", "random"};
  grid.sizes = {20};
  grid.granularities = {1.0};
  grid.topologies = {"ring"};
  grid.algos = {"bsa", "dls"};
  grid.procs = 4;
  grid.seeds_per_cell = 1;
  grid.base_seed = 3;
  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  ASSERT_EQ(set.size(), 6u);  // 3 workloads x 2 algos
  EXPECT_EQ(set[0].workload, "fft:points=16");  // canonicalised
  EXPECT_EQ(set[2].workload, "sp:depth=3");
  EXPECT_EQ(set[4].workload, "random");
  const auto results = runtime::SweepRunner({.threads = 2}).run(set);
  ASSERT_EQ(results.size(), set.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.valid) << r.spec.workload << " / " << r.spec.algo;
    EXPECT_GT(r.schedule_length, 0) << r.spec.workload;
  }
  EXPECT_EQ(runtime::workload_family(set[0].workload), "fft");
}

TEST(WorkloadRegistry, FromGridRejectsBadWorkloadSpecsUpFront) {
  runtime::ScenarioGrid grid;
  grid.workloads = {"random", "no-such-workload"};
  grid.sizes = {10};
  grid.topologies = {"ring"};
  grid.algos = {"bsa"};
  EXPECT_THROW((void)runtime::ScenarioSet::from_grid(grid),
               PreconditionError);
}

TEST(WorkloadRegistry, ExternalRowsCannotBeEvaluated) {
  runtime::ScenarioSpec spec;
  spec.workload = runtime::kExternalWorkload;
  EXPECT_THROW((void)runtime::evaluate_scenario(spec), PreconditionError);
}

// --- docs/SPECS.md stays in sync ---------------------------------------------

/// Every spec inside the ```specs-workload / ```specs-scheduler fenced
/// blocks of docs/SPECS.md must resolve against its registry (PR
/// acceptance criterion — the reference doc cannot rot).
TEST(SpecsDoc, EveryDocumentedSpecResolves) {
  const std::string path = std::string(BSA_SOURCE_DIR) + "/docs/SPECS.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  enum class Block { kNone, kWorkload, kScheduler };
  Block block = Block::kNone;
  int workload_specs = 0, scheduler_specs = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("```specs-workload", 0) == 0) {
      block = Block::kWorkload;
      continue;
    }
    if (line.rfind("```specs-scheduler", 0) == 0) {
      block = Block::kScheduler;
      continue;
    }
    if (line.rfind("```", 0) == 0) {
      block = Block::kNone;
      continue;
    }
    if (block == Block::kNone || line.empty()) continue;
    if (block == Block::kWorkload) {
      EXPECT_NO_THROW((void)reg().canonical(line)) << "workload: " << line;
      ++workload_specs;
    } else {
      EXPECT_NO_THROW(
          (void)sched::SchedulerRegistry::global().canonical(line))
          << "scheduler: " << line;
      ++scheduler_specs;
    }
  }
  // The doc must actually document specs (guards against renamed fences).
  EXPECT_GE(workload_specs, 11);
  EXPECT_GE(scheduler_specs, 4);
}

}  // namespace
}  // namespace bsa::workloads
