#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace bsa::runtime {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7,
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, 16, [](std::size_t) { FAIL() << "body ran"; });
  pool.wait();
}

TEST(ThreadPool, OversubscribedManyMoreChunksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(5000, 1, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 5000L * 4999 / 2);
}

TEST(ThreadPool, StartupShutdownWithNoWork) {
  for (int threads : {1, 2, 16}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    pool.wait();  // nothing in flight
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), default_thread_count());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 4,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, 2, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RejectsZeroChunk) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(5, 0, [](std::size_t) {}),
               PreconditionError);
}

// --- scenario enumeration ---------------------------------------------------

ScenarioGrid small_grid() {
  ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {20, 30};
  grid.granularities = {0.1, 1.0};
  grid.topologies = {"ring", "clique"};
  grid.algos = {"dls", "bsa"};
  grid.procs = 4;
  grid.seeds_per_cell = 2;
  grid.base_seed = 7;
  return grid;
}

TEST(ScenarioSet, EnumeratesTheFullCrossProduct) {
  const ScenarioSet set = ScenarioSet::from_grid(small_grid());
  // 2 topologies x 1 range x 2 sizes x 2 granularities x 2 reps x 2 algos.
  EXPECT_EQ(set.size(), 32u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].index, i);
  }
}

TEST(ScenarioSet, InstanceSeedsIgnoreAlgoTopologyAndRange) {
  ScenarioGrid grid = small_grid();
  grid.het_highs = {10, 100};
  const ScenarioSet set = ScenarioSet::from_grid(grid);
  // Group by cell coordinates; every (topology, range, algo) combination
  // of a cell must share the instance seed.
  for (const ScenarioSpec& a : set) {
    for (const ScenarioSpec& b : set) {
      if (a.size == b.size && a.granularity == b.granularity &&
          a.workload == b.workload && a.rep == b.rep) {
        EXPECT_EQ(a.instance_seed, b.instance_seed);
      }
    }
  }
}

TEST(ScenarioSet, RegularSuiteEnumeratesThreeApps) {
  ScenarioGrid grid = small_grid();
  grid.workloads = {"gauss", "lu", "laplace"};
  grid.sizes = {30};
  grid.granularities = {1.0};
  grid.topologies = {"ring"};
  grid.algos = {"bsa"};
  grid.seeds_per_cell = 1;
  const ScenarioSet set = ScenarioSet::from_grid(grid);
  EXPECT_EQ(set.size(), exp::paper_regular_apps().size());
}

TEST(ScenarioSet, RejectsEmptyAxes) {
  ScenarioGrid grid = small_grid();
  grid.algos.clear();
  EXPECT_THROW((void)ScenarioSet::from_grid(grid), PreconditionError);
}

TEST(ScenarioSet, LegacySeedModeDerivesFromReplicateOnly) {
  ScenarioGrid grid = small_grid();
  grid.sizes = {20};
  grid.granularities = {1.0};
  grid.seed_mode = SeedMode::kLegacySequential;
  const ScenarioSet set = ScenarioSet::from_grid(grid);
  for (const ScenarioSpec& s : set) {
    EXPECT_EQ(s.instance_seed,
              derive_seed(grid.base_seed, static_cast<std::uint64_t>(s.rep)));
  }
  // Grid mode must differ (this is what silently shifted fig7 once).
  ScenarioGrid coord = grid;
  coord.seed_mode = SeedMode::kGridCoordinates;
  const ScenarioSet grid_set = ScenarioSet::from_grid(coord);
  EXPECT_NE(grid_set[0].instance_seed, set[0].instance_seed);
  EXPECT_STREQ(seed_mode_name(SeedMode::kLegacySequential), "legacy");
  EXPECT_STREQ(seed_mode_name(SeedMode::kGridCoordinates), "grid");
}

TEST(ScenarioSet, LegacySeedModeRejectsMultiCellAxes) {
  // Legacy seeds would silently correlate cells that differ only in
  // size, granularity or app; from_grid must refuse.
  ScenarioGrid grid = small_grid();  // two sizes, two granularities
  grid.seed_mode = SeedMode::kLegacySequential;
  EXPECT_THROW((void)ScenarioSet::from_grid(grid), PreconditionError);
  ScenarioGrid apps = small_grid();
  apps.sizes = {20};
  apps.granularities = {1.0};
  apps.workloads = {"gauss", "lu", "laplace"};  // three paper apps
  apps.seed_mode = SeedMode::kLegacySequential;
  EXPECT_THROW((void)ScenarioSet::from_grid(apps), PreconditionError);
}

/// Figure 7 seed-compatibility regression: a legacy-mode grid sweep must
/// reproduce, number for number, the pre-runtime serial fig7 driver
/// (ten-graphs loop with derive_seed(base_seed, i) instance seeds).
TEST(ScenarioSet, LegacySeedModeReproducesSerialFig7Driver) {
  const std::uint64_t base_seed = 2026;
  const int num_graphs = 2;
  const int num_tasks = 25;
  const std::vector<int> ranges{10, 50};

  ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {num_tasks};
  grid.granularities = {1.0};
  grid.topologies = {"hypercube"};
  grid.algos = {"dls", "bsa"};
  grid.procs = 16;
  grid.het_highs = ranges;
  grid.seeds_per_cell = num_graphs;
  grid.base_seed = base_seed;
  grid.seed_mode = SeedMode::kLegacySequential;
  const ScenarioSet set = ScenarioSet::from_grid(grid);
  const auto results = SweepRunner({.threads = 1}).run(set);

  // The serial driver, replicated verbatim.
  const auto topo = exp::make_topology("hypercube", 16, base_seed);
  std::size_t cursor = 0;
  for (const int hi : ranges) {
    for (int i = 0; i < num_graphs; ++i) {
      const std::uint64_t seed =
          derive_seed(base_seed, static_cast<std::uint64_t>(i));
      const auto g = exp::make_instance(false, 0, num_tasks, 1.0, seed);
      const auto cm = exp::make_cost_model(g, topo, 1, hi, 1, hi, false,
                                           derive_seed(seed, 17));
      const Time dls =
          exp::run_algorithm("dls", g, topo, cm, seed).schedule_length;
      const Time bsa =
          exp::run_algorithm("bsa", g, topo, cm, seed).schedule_length;
      // Enumeration order within a cell is (rep, algo) with DLS first.
      ASSERT_LT(cursor + 1, results.size());
      EXPECT_EQ(results[cursor].spec.algo, "dls");
      EXPECT_EQ(results[cursor].spec.het_hi, hi);
      EXPECT_EQ(results[cursor].schedule_length, dls)
          << "hi=" << hi << " rep=" << i;
      EXPECT_EQ(results[cursor + 1].spec.algo, "bsa");
      EXPECT_EQ(results[cursor + 1].schedule_length, bsa)
          << "hi=" << hi << " rep=" << i;
      cursor += 2;
    }
  }
  EXPECT_EQ(cursor, results.size());
}

// --- sweep determinism ------------------------------------------------------

std::vector<double> lengths_of(const std::vector<ScenarioResult>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) {
    out.push_back(static_cast<double>(r.schedule_length));
  }
  return out;
}

TEST(SweepRunner, ResultsAreBitIdenticalAtAnyThreadCount) {
  const ScenarioSet set = ScenarioSet::from_grid(small_grid());
  const auto serial = SweepRunner({.threads = 1}).run(set);
  ASSERT_EQ(serial.size(), set.size());
  for (const auto& r : serial) {
    EXPECT_TRUE(r.valid) << "scenario " << r.spec.index;
    EXPECT_GT(r.schedule_length, 0);
  }
  for (const int threads : {2, 8}) {
    const auto parallel = SweepRunner({.threads = threads}).run(set);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    EXPECT_EQ(lengths_of(parallel), lengths_of(serial))
        << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].spec.index, i);
      EXPECT_EQ(parallel[i].valid, serial[i].valid);
    }
  }
}

TEST(SweepRunner, JsonlOutputIsByteIdenticalModuloTimings) {
  const ScenarioSet set = ScenarioSet::from_grid(small_grid());
  auto render = [&set](int threads) {
    std::ostringstream os;
    JsonlSink sink(os);
    (void)SweepRunner({.threads = threads}).run(set, &sink);
    // Blank out the only non-deterministic field.
    std::string text = os.str();
    std::string out;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
      const auto at = line.find("\"wall_ms\":");
      const auto comma = line.find(',', at);
      out += line.substr(0, at) + line.substr(comma) + "\n";
    }
    return out;
  };
  const std::string serial = render(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(render(2), serial);
  EXPECT_EQ(render(8), serial);
}

TEST(SweepRunner, EmptySetYieldsNoResultsAndNoSinkRows) {
  // A grid cannot be empty by construction; exercise the runner's empty
  // path directly with a default ScenarioSet.
  const ScenarioSet set;
  std::ostringstream os;
  JsonlSink sink(os);
  const auto results = SweepRunner({.threads = 4}).run(set, &sink);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(sink.rows_written(), 0u);
  EXPECT_TRUE(os.str().empty());
}

// --- sinks ------------------------------------------------------------------

ScenarioResult sample_result() {
  ScenarioResult r;
  r.spec.index = 3;
  r.spec.workload = "random";
  r.spec.size = 120;
  r.spec.granularity = 0.1;
  r.spec.topology = "hypercube";
  r.spec.procs = 16;
  r.spec.het_lo = 1;
  r.spec.het_hi = 50;
  r.spec.link_het_lo = 1;
  r.spec.link_het_hi = 25;
  r.spec.per_pair = true;
  r.spec.algo = "bsa";
  r.spec.rep = 2;
  r.spec.instance_seed = 123456789;
  r.schedule_length = 6510.25;
  r.wall_ms = 1.5;
  r.valid = true;
  return r;
}

TEST(JsonlSink, RoundTripsEveryField) {
  const ScenarioResult r = sample_result();
  const auto row = parse_jsonl_row(to_jsonl(r));
  EXPECT_EQ(std::get<double>(row.at("index")), 3);
  EXPECT_EQ(std::get<std::string>(row.at("workload")), "random");
  EXPECT_EQ(std::get<double>(row.at("size")), 120);
  EXPECT_EQ(std::get<double>(row.at("granularity")), 0.1);
  EXPECT_EQ(std::get<std::string>(row.at("topology")), "hypercube");
  EXPECT_EQ(std::get<double>(row.at("procs")), 16);
  EXPECT_EQ(std::get<double>(row.at("het_hi")), 50);
  EXPECT_EQ(std::get<double>(row.at("link_het_hi")), 25);
  EXPECT_EQ(std::get<bool>(row.at("per_pair")), true);
  EXPECT_EQ(std::get<std::string>(row.at("algo")), "bsa");
  EXPECT_EQ(std::get<double>(row.at("rep")), 2);
  EXPECT_EQ(std::get<double>(row.at("seed")), 123456789);
  EXPECT_EQ(std::get<double>(row.at("schedule_length")), 6510.25);
  EXPECT_EQ(std::get<double>(row.at("wall_ms")), 1.5);
  EXPECT_EQ(std::get<bool>(row.at("valid")), true);
}

TEST(JsonlSink, StreamSinkWritesOneLinePerRow) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.consume(sample_result());
  sink.consume(sample_result());
  sink.flush();
  EXPECT_EQ(sink.rows_written(), 2u);
  std::istringstream lines(os.str());
  int parsed = 0;
  for (std::string line; std::getline(lines, line);) {
    EXPECT_NO_THROW((void)parse_jsonl_row(line));
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(JsonlSink, EscapesStringsAndRejectsMalformedRows) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  const auto row = parse_jsonl_row("{\"k\":\"a\\\"b\\nc\",\"n\":null}");
  EXPECT_EQ(std::get<std::string>(row.at("k")), "a\"b\nc");
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(row.at("n")));
  EXPECT_THROW((void)parse_jsonl_row("{\"k\":1"), PreconditionError);
  EXPECT_THROW((void)parse_jsonl_row("{\"k\":1} trailing"),
               PreconditionError);
  EXPECT_THROW((void)parse_jsonl_row("[1,2]"), PreconditionError);
  EXPECT_TRUE(parse_jsonl_row("{}").empty());
  EXPECT_THROW((void)parse_jsonl_row("{} trailing"), PreconditionError);
  // \u escapes: valid ASCII round-trips; malformed hex is rejected with
  // the documented error type, never silently misparsed.
  EXPECT_EQ(std::get<std::string>(
                parse_jsonl_row("{\"k\":\"\\u0041\"}").at("k")),
            "A");
  EXPECT_THROW((void)parse_jsonl_row("{\"k\":\"\\u00g1\"}"),
               PreconditionError);
  EXPECT_THROW((void)parse_jsonl_row("{\"k\":\"\\uzzzz\"}"),
               PreconditionError);
  EXPECT_THROW((void)parse_jsonl_row("{\"k\":\"\\u00e9\"}"),
               PreconditionError);  // non-ASCII unsupported
}

TEST(JsonlSink, ControlCharactersNeverCorruptALine) {
  // Every control character must escape into a single-line, parseable
  // representation and round-trip exactly.
  for (int c = 0; c < 0x20; ++c) {
    const std::string raw{'x', static_cast<char>(c), 'y'};
    const std::string escaped = json_escape(raw);
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << "char " << c;
    EXPECT_EQ(escaped.find('\r'), std::string::npos) << "char " << c;
    const auto row = parse_jsonl_row("{\"k\":\"" + escaped + "\"}");
    EXPECT_EQ(std::get<std::string>(row.at("k")), raw) << "char " << c;
  }
  EXPECT_EQ(json_escape("\x01"), "\\u0001");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  EXPECT_EQ(json_escape("\n\t\r"), "\\n\\t\\r");
}

TEST(JsonlSink, HostileTopologyNameRoundTripsThroughARow) {
  ScenarioResult r = sample_result();
  r.spec.topology = "evil\"\\\n\t\x01\x1fname";
  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // still one JSONL line
  const auto row = parse_jsonl_row(line);
  EXPECT_EQ(std::get<std::string>(row.at("topology")), r.spec.topology);
}

TEST(JsonlSink, AppendModeAccretesAcrossSinks) {
  const std::string path = testing::TempDir() + "/bsa_jsonl_append.jsonl";
  {
    JsonlSink sink(path);  // truncating open resets any previous content
    sink.consume(sample_result());
    sink.flush();
  }
  {
    JsonlSink sink(path, /*append=*/true);
    sink.consume(sample_result());
    sink.flush();
  }
  std::ifstream in(path);
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    EXPECT_NO_THROW((void)parse_jsonl_row(line));
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(JsonNumber, FormatsIntegersCleanlyAndRoundTripsDoubles) {
  EXPECT_EQ(json_number(42), "42");
  EXPECT_EQ(json_number(-3), "-3");
  const double v = 0.1 + 0.2;
  const auto row = parse_jsonl_row("{\"v\":" + json_number(v) + "}");
  EXPECT_EQ(std::get<double>(row.at("v")), v);
  // JSON has no inf/nan literals; non-finite metrics (e.g. the
  // granularity of an edge-free graph) must not corrupt the line.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(json_number(inf), "null");
  EXPECT_EQ(json_number(-inf), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
  ScenarioResult r = sample_result();
  r.spec.granularity = inf;
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(
      parse_jsonl_row(to_jsonl(r)).at("granularity")));
}

TEST(Sinks, CollectingAndTeeFanOut) {
  CollectingSink a, b;
  TeeSink tee({&a, &b});
  tee.consume(sample_result());
  tee.flush();
  ASSERT_EQ(a.rows().size(), 1u);
  ASSERT_EQ(b.rows().size(), 1u);
  EXPECT_EQ(a.rows()[0].spec.index, 3u);
}

TEST(BenchJson, WritesParseableReport) {
  std::ostringstream os;
  write_bench_json(os, "runtime", 4,
                   {{"BSA/ring/100", 3, 12.5, 6510.0},
                    {"DLS/ring/100", 3, 11.0, 7000.0}});
  const std::string text = os.str();
  EXPECT_NE(text.find("\"bench\":\"runtime\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"BSA/ring/100\""), std::string::npos);
  EXPECT_NE(text.find("\"mean_wall_ms\":12.5"), std::string::npos);
}

}  // namespace
}  // namespace bsa::runtime
