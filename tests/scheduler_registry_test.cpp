#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "baselines/mh.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/schedule_io.hpp"
#include "sched/scheduler.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::sched {
namespace {

/// what() of the PreconditionError thrown by `fn`, or "" when it throws
/// nothing (callers assert on substrings of the message).
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

const SchedulerRegistry& reg() { return SchedulerRegistry::global(); }

// --- spec grammar -----------------------------------------------------------

TEST(SpecGrammar, ParsesNamesAndOptions) {
  const ParsedSpec plain = parse_spec("bsa");
  EXPECT_EQ(plain.name, "bsa");
  EXPECT_TRUE(plain.options.empty());

  const ParsedSpec variant = parse_spec("bsa:gate=always,route=static");
  EXPECT_EQ(variant.name, "bsa");
  ASSERT_EQ(variant.options.size(), 2u);
  EXPECT_EQ(variant.options[0].first, "gate");
  EXPECT_EQ(variant.options[0].second, "always");
  EXPECT_EQ(variant.options[1].first, "route");
  EXPECT_EQ(variant.options[1].second, "static");
}

TEST(SpecGrammar, IsCaseInsensitiveAndTrimsWhitespace) {
  const ParsedSpec p = parse_spec("  BSA : Gate = Always , SWEEPS = 4 ");
  EXPECT_EQ(p.name, "bsa");
  ASSERT_EQ(p.options.size(), 2u);
  EXPECT_EQ(p.options[0].first, "gate");
  EXPECT_EQ(p.options[0].second, "always");
  EXPECT_EQ(p.options[1].first, "sweeps");
  EXPECT_EQ(p.options[1].second, "4");
}

TEST(SpecGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_spec(""), PreconditionError);
  EXPECT_THROW((void)parse_spec("   "), PreconditionError);
  EXPECT_THROW((void)parse_spec(":gate=always"), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:"), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:gate"), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:gate="), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:=always"), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:gate=always,"), PreconditionError);
  EXPECT_THROW((void)parse_spec("bsa:gate=always,gate=paper"),
               PreconditionError);
}

// --- canonicalization -------------------------------------------------------

TEST(Registry, CanonicalDropsDefaultsLowercasesAndSortsKeys) {
  EXPECT_EQ(reg().canonical("BSA"), "bsa");
  EXPECT_EQ(reg().canonical("Dls"), "dls");
  // Options spelled at their defaults canonicalise away entirely.
  EXPECT_EQ(reg().canonical("bsa:route=incremental,gate=paper,vip=on"),
            "bsa");
  EXPECT_EQ(reg().canonical("dls:seed=0"), "dls");
  // Non-default options sort by key with canonical value spellings.
  EXPECT_EQ(reg().canonical("bsa:route=STATIC,gate=always"),
            "bsa:gate=always,route=static");
  EXPECT_EQ(reg().canonical("bsa:vip=false,sweeps=4"),
            "bsa:sweeps=4,vip=off");
  // SA: defaults drop, doubles take their canonical spelling.
  EXPECT_EQ(reg().canonical("sa:init=heft,iters=100,temp0=0.05"), "sa");
  EXPECT_EQ(reg().canonical("SA:temp0=0.10,init=PEFT"),
            "sa:init=peft,temp0=0.1");
}

TEST(Registry, CanonicalIsIdempotent) {
  for (const std::string spec :
       {"bsa", "dls", "eft", "mh", "heft", "peft", "sa",
        "bsa:gate=always,route=static",
        "bsa:policy=greedy,prune=on,retime=rebuild,serial=blevel,"
        "slots=append,sweeps=3,vip=off",
        "bsa:seed=42", "dls:seed=7",
        "sa:init=bsa,iters=32,seed=9,temp0=0.2"}) {
    const std::string canonical = reg().canonical(spec);
    EXPECT_EQ(reg().canonical(canonical), canonical) << spec;
  }
}

TEST(Registry, DisplayLabelsComeFromOneTable) {
  EXPECT_EQ(reg().display_label("bsa"), "BSA");
  EXPECT_EQ(reg().display_label("dls"), "DLS");
  EXPECT_EQ(reg().display_label("eft"), "EFT (oblivious)");
  EXPECT_EQ(reg().display_label("mh"), "MH");
  EXPECT_EQ(reg().display_label("heft"), "HEFT");
  EXPECT_EQ(reg().display_label("peft"), "PEFT");
  EXPECT_EQ(reg().display_label("sa"), "SA");
  // A variant is labelled by its canonical spec, not the family name.
  EXPECT_EQ(reg().display_label("bsa:gate=always"), "bsa:gate=always");
  EXPECT_EQ(reg().display_label("sa:iters=0"), "sa:iters=0");
}

TEST(Registry, NamesListsBuiltinsInRegistrationOrder) {
  const std::vector<std::string> names = reg().names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "bsa");
  EXPECT_EQ(names[1], "dls");
  EXPECT_EQ(names[2], "eft");
  EXPECT_EQ(names[3], "mh");
  EXPECT_EQ(names[4], "heft");
  EXPECT_EQ(names[5], "peft");
  EXPECT_EQ(names[6], "sa");
}

// --- rejection with helpful messages ----------------------------------------

TEST(Registry, UnknownNameListsRegisteredNames) {
  const std::string msg =
      error_message([] { (void)reg().resolve("hneft"); });
  EXPECT_NE(msg.find("unknown scheduler 'hneft'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bsa, dls, eft, mh, heft, peft, sa"), std::string::npos)
      << msg;
}

TEST(Registry, UnknownOptionListsValidOptions) {
  const std::string msg =
      error_message([] { (void)reg().resolve("bsa:gaet=always"); });
  EXPECT_NE(msg.find("unknown option 'gaet'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("gate"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sweeps"), std::string::npos) << msg;
  // An algorithm without options says so instead of listing nothing.
  const std::string none =
      error_message([] { (void)reg().resolve("eft:seed=1"); });
  EXPECT_NE(none.find("(none)"), std::string::npos) << none;
}

TEST(Registry, BadValueListsValidChoices) {
  const std::string msg =
      error_message([] { (void)reg().resolve("bsa:gate=sometimes"); });
  EXPECT_NE(msg.find("'gate'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("paper"), std::string::npos) << msg;
  EXPECT_NE(msg.find("always"), std::string::npos) << msg;
  EXPECT_THROW((void)reg().resolve("bsa:sweeps=0"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("bsa:sweeps=abc"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("bsa:vip=maybe"), PreconditionError);
  EXPECT_THROW((void)reg().resolve("dls:seed=-3"), PreconditionError);
}

TEST(Registry, LocalInstanceRejectsDuplicateAndMalformedRegistrations) {
  SchedulerRegistry local;
  register_builtin_schedulers(local);
  EXPECT_EQ(local.names().size(), 7u);
  SchedulerRegistry::Entry dup;
  dup.name = "bsa";
  dup.factory = [](const SpecOptions&) -> std::unique_ptr<Scheduler> {
    return nullptr;
  };
  EXPECT_THROW(local.add(dup), PreconditionError);
  SchedulerRegistry::Entry bad;
  bad.name = "Not:Canonical";
  bad.factory = dup.factory;
  EXPECT_THROW(local.add(bad), PreconditionError);
}

// --- spec list splitting ----------------------------------------------------

TEST(Registry, SplitSpecListKeepsVariantOptionsAttached) {
  EXPECT_EQ(reg().split_spec_list("bsa,dls"),
            (std::vector<std::string>{"bsa", "dls"}));
  // The commas inside a variant's option list do not split the list.
  EXPECT_EQ(reg().split_spec_list("bsa:gate=always,route=static,dls"),
            (std::vector<std::string>{"bsa:gate=always,route=static", "dls"}));
  EXPECT_EQ(reg().split_spec_list("dls:seed=7,bsa:sweeps=2,vip=off,eft"),
            (std::vector<std::string>{"dls:seed=7", "bsa:sweeps=2,vip=off",
                                      "eft"}));
}

// --- behavioural equivalence with the legacy enum dispatch ------------------

struct Instance {
  graph::TaskGraph g;
  net::Topology topo;
  net::HeterogeneousCostModel cm;
};

Instance make_instance(const std::string& topo_kind, std::uint64_t seed) {
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 1.0;
  params.seed = seed;
  graph::TaskGraph g = workloads::random_layered_dag(params);
  net::Topology topo = exp::make_topology(topo_kind, 8, seed);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::uniform_processor_speeds(
          g, topo, 1, 50, 1, 50, derive_seed(seed, 17));
  return {std::move(g), std::move(topo), std::move(cm)};
}

/// Every registered default spec must reproduce the legacy enum path's
/// schedule bit-identically (compared via the full text serialization —
/// placements, hop bookings and times).
TEST(Registry, DefaultSpecsMatchLegacyDispatchBitIdentically) {
  for (const std::string topo_kind : {"ring", "hypercube"}) {
    for (const std::uint64_t seed : {1ULL, 2026ULL}) {
      const Instance in = make_instance(topo_kind, seed);
      const auto legacy = [&](const std::string& name) -> Schedule {
        if (name == "bsa") {
          core::BsaOptions opt;
          opt.seed = seed;
          return core::schedule_bsa(in.g, in.topo, in.cm, opt).schedule;
        }
        if (name == "dls") {
          return baselines::schedule_dls(in.g, in.topo, in.cm).schedule;
        }
        if (name == "eft") {
          return baselines::schedule_eft_oblivious(in.g, in.topo, in.cm)
              .schedule;
        }
        return baselines::schedule_mh(in.g, in.topo, in.cm).schedule;
      };
      for (const std::string name : {"bsa", "dls", "eft", "mh"}) {
        const SchedulerResult result =
            reg().resolve(name)->run(in.g, in.topo, in.cm, seed);
        EXPECT_EQ(schedule_to_text(result.schedule),
                  schedule_to_text(legacy(name)))
            << name << " on " << topo_kind << " seed " << seed;
      }
    }
  }
}

TEST(Registry, ResultCarriesPhaseTimesAndCounters) {
  const Instance in = make_instance("ring", 7);
  const SchedulerResult r = reg().resolve("bsa")->run(in.g, in.topo, in.cm, 7);
  ASSERT_FALSE(r.phase_ms.empty());
  EXPECT_EQ(r.phase_ms[0].first, "schedule");
  EXPECT_GE(r.total_ms(), 0.0);
  EXPECT_EQ(r.makespan(), r.schedule.makespan());
  bool has_migrations = false;
  for (const auto& [key, _] : r.counters) {
    has_migrations = has_migrations || key == "bsa.migrations";
  }
  EXPECT_TRUE(has_migrations);
  // Counter snapshots are sorted by name — the deterministic flush order.
  EXPECT_TRUE(std::is_sorted(
      r.counters.begin(), r.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(Registry, VariantOptionsReachTheAlgorithm) {
  const Instance in = make_instance("hypercube", 5);
  // retime=rebuild is proven bit-identical to the default engine.
  const auto incremental = reg().resolve("bsa")->run(in.g, in.topo, in.cm, 5);
  const auto rebuild =
      reg().resolve("bsa:retime=rebuild")->run(in.g, in.topo, in.cm, 5);
  EXPECT_EQ(schedule_to_text(incremental.schedule),
            schedule_to_text(rebuild.schedule));
  // A pinned seed overrides the caller seed: pinning the caller's value
  // must reproduce it exactly.
  const auto pinned =
      reg().resolve("bsa:seed=5")->run(in.g, in.topo, in.cm, 999);
  EXPECT_EQ(schedule_to_text(pinned.schedule),
            schedule_to_text(incremental.schedule));
  // Structural variants still produce valid, complete schedules.
  for (const std::string spec :
       {"bsa:gate=always", "bsa:policy=greedy", "bsa:serial=blevel",
        "bsa:slots=append", "bsa:sweeps=2", "bsa:route=static",
        "bsa:vip=off,prune=on"}) {
    const auto r = reg().resolve(spec)->run(in.g, in.topo, in.cm, 5);
    EXPECT_GT(r.makespan(), 0) << spec;
  }
}

TEST(Registry, DlsSeedOptionRandomisesTieBreaksDeterministically) {
  const Instance in = make_instance("ring", 11);
  // Default stays the legacy deterministic tie-break.
  const auto plain = reg().resolve("dls")->run(in.g, in.topo, in.cm, 11);
  EXPECT_EQ(schedule_to_text(plain.schedule),
            schedule_to_text(
                baselines::schedule_dls(in.g, in.topo, in.cm).schedule));
  // A pinned seed is deterministic: same spec, same schedule.
  const auto a = reg().resolve("dls:seed=7")->run(in.g, in.topo, in.cm, 11);
  const auto b = reg().resolve("dls:seed=7")->run(in.g, in.topo, in.cm, 42);
  EXPECT_EQ(schedule_to_text(a.schedule), schedule_to_text(b.schedule));
  // And wired through DlsOptions, not ignored.
  baselines::DlsOptions opt;
  opt.seed = 7;
  EXPECT_EQ(schedule_to_text(a.schedule),
            schedule_to_text(
                baselines::schedule_dls(in.g, in.topo, in.cm, opt).schedule));
}

// --- sweep integration ------------------------------------------------------

/// Acceptance: a ScenarioGrid can enumerate several BSA variant specs in
/// one sweep; specs are canonicalised and results stay per-variant.
TEST(Registry, ScenarioGridEnumeratesVariantCrossProducts) {
  runtime::ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {20};
  grid.granularities = {1.0};
  grid.topologies = {"ring"};
  grid.algos = {"DLS", "bsa", "bsa:gate=always,route=static",
                "bsa:sweeps=2"};
  grid.procs = 4;
  grid.seeds_per_cell = 2;
  grid.base_seed = 3;
  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  ASSERT_EQ(set.size(), 8u);  // 2 reps x 4 specs
  EXPECT_EQ(set[0].algo, "dls");  // canonicalised
  EXPECT_EQ(set[2].algo, "bsa:gate=always,route=static");
  const auto results = runtime::SweepRunner({.threads = 2}).run(set);
  ASSERT_EQ(results.size(), set.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.valid) << r.spec.algo;
    EXPECT_GT(r.schedule_length, 0) << r.spec.algo;
  }
  // The default-BSA scenarios must match a direct registry run with the
  // same derived seeds (the sweep changes nothing about dispatch).
  const graph::TaskGraph g =
      exp::make_instance(false, 0, 20, 1.0, set[1].instance_seed);
  const net::Topology topo =
      exp::make_topology("ring", 4, set[1].topology_seed);
  const net::HeterogeneousCostModel cm = exp::make_cost_model(
      g, topo, 1, 50, 1, 50, false, derive_seed(set[1].instance_seed, 17));
  const auto direct_run =
      reg().resolve("bsa")->run(g, topo, cm, set[1].algo_seed);
  EXPECT_EQ(results[1].schedule_length, direct_run.makespan());
}

TEST(Registry, FromGridRejectsBadSpecsUpFront) {
  runtime::ScenarioGrid grid;
  grid.sizes = {10};
  grid.topologies = {"ring"};
  grid.algos = {"bsa", "no-such-algo"};
  EXPECT_THROW((void)runtime::ScenarioSet::from_grid(grid),
               PreconditionError);
}

}  // namespace
}  // namespace bsa::sched
