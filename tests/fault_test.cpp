// Unit tests of the deterministic failpoint registry (src/fault/): spec
// grammar and canonical form, trigger arithmetic, seeded-probability
// determinism, thread-count invariance of the firing schedule, counter
// snapshots, and the zero-cost-off contract.

#include "fault/failpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/counters.hpp"

namespace bsa::fault {
namespace {

/// Failpoints are process-global; every test leaves them cleared.
struct FaultGuard {
  FaultGuard() { clear(); }
  ~FaultGuard() { clear(); }
};

std::vector<bool> firing_pattern(SiteId site, int arrivals) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(arrivals));
  for (int i = 0; i < arrivals; ++i) fired.push_back(evaluate(site).fired());
  return fired;
}

TEST(Fault, UnconfiguredIsFreeAndNeverFires) {
  FaultGuard guard;
  EXPECT_FALSE(enabled());
  EXPECT_TRUE(active_spec().empty());
  const Action a = check(SiteId::kRead);
  EXPECT_EQ(a.kind, Action::Kind::kNone);
  EXPECT_FALSE(a.fired());
  EXPECT_TRUE(counters().empty());
}

TEST(Fault, SpecParsesCaseInsensitivelyAndCanonicalises) {
  FaultGuard guard;
  configure("  READ: Short = 3 , prob=0.25, seed=42 ;"
            "accept:errno=EMFILE, every=7 ; batch:delay_us=500,after=100 ");
  EXPECT_TRUE(enabled());
  // Entries sorted by site name, options in fixed order, defaults elided.
  EXPECT_EQ(active_spec(),
            "accept:errno=emfile,every=7;batch:delay_us=500,after=100;"
            "read:short=3,prob=0.25,seed=42");
  // configure(active_spec()) is a fixed point.
  const std::string canon = active_spec();
  configure(canon);
  EXPECT_EQ(active_spec(), canon);
}

TEST(Fault, NumericErrnoAndDefaultsCanonicalise) {
  FaultGuard guard;
  configure("write:errno=32");  // EPIPE by value
  EXPECT_EQ(active_spec(), "write:errno=epipe");
  configure("read:short,every=1,after=0,prob=1");
  EXPECT_EQ(active_spec(), "read:short,prob=1");
  configure("");
  EXPECT_FALSE(enabled());
}

TEST(Fault, BadSpecsThrowListingChoices) {
  FaultGuard guard;
  EXPECT_THROW(configure("bogus:fail"), PreconditionError);
  EXPECT_THROW(configure("read"), PreconditionError);           // no action
  EXPECT_THROW(configure("read:after=3"), PreconditionError);   // no action
  EXPECT_THROW(configure("read:short,torn"), PreconditionError);  // two
  EXPECT_THROW(configure("read:errno=nope"), PreconditionError);
  EXPECT_THROW(configure("read:short,prob=1.5"), PreconditionError);
  EXPECT_THROW(configure("read:short,every=0"), PreconditionError);
  EXPECT_THROW(configure("read:fail;read:fail"), PreconditionError);
  EXPECT_THROW(configure("read:bogus=1"), PreconditionError);
  EXPECT_THROW(configure("read:disconnect=2"), PreconditionError);
  // times needs a deterministic trigger — prob would make the cutoff
  // depend on thread interleaving.
  EXPECT_THROW(configure("read:fail,prob=0.5,times=3"), PreconditionError);
  try {
    configure("nowhere:fail");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("accept"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pool"), std::string::npos);
  }
  // A failed configure leaves the previous configuration armed.
  configure("eval:fail");
  EXPECT_THROW(configure("nowhere:fail"), PreconditionError);
  EXPECT_EQ(active_spec(), "eval:fail");
}

TEST(Fault, AfterEveryTimesArithmetic) {
  FaultGuard guard;
  configure("eval:fail,after=2,every=3");
  // Arrival n fires iff n > after and (n - after) % every == 0.
  const std::vector<bool> fired = firing_pattern(SiteId::kEval, 12);
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(fired[static_cast<std::size_t>(n - 1)],
              n > 2 && (n - 2) % 3 == 0)
        << "arrival " << n;
  }

  configure("eval:fail,every=2,times=2");
  const std::vector<bool> capped = firing_pattern(SiteId::kEval, 10);
  int fires = 0;
  for (int n = 1; n <= 10; ++n) {
    if (capped[static_cast<std::size_t>(n - 1)]) {
      ++fires;
      EXPECT_TRUE(n == 2 || n == 4) << "arrival " << n;
    }
  }
  EXPECT_EQ(fires, 2);
}

TEST(Fault, ActionCarriesItsParameters) {
  FaultGuard guard;
  configure("write:torn=17");
  const Action torn = check(SiteId::kWrite);
  EXPECT_EQ(torn.kind, Action::Kind::kTorn);
  EXPECT_EQ(torn.short_bytes, 17);

  configure("read:errno=econnreset");
  const Action err = check(SiteId::kRead);
  EXPECT_EQ(err.kind, Action::Kind::kErrno);
  EXPECT_EQ(err.err, ECONNRESET);

  configure("batch:delay_us=250");
  const Action delay = check(SiteId::kBatch);
  EXPECT_EQ(delay.kind, Action::Kind::kDelay);
  EXPECT_EQ(delay.delay_us, 250);
  maybe_delay(delay);  // must not throw

  configure("eval:fail");
  const Action fail = check(SiteId::kEval);
  EXPECT_THROW(throw_if_fail(fail, "eval"), InvariantError);
}

TEST(Fault, SeededProbabilityReplaysIdentically) {
  FaultGuard guard;
  configure("read:short,prob=0.3,seed=42");
  const std::vector<bool> first = firing_pattern(SiteId::kRead, 200);
  configure("read:short,prob=0.3,seed=42");  // resets the ordinal counter
  const std::vector<bool> second = firing_pattern(SiteId::kRead, 200);
  EXPECT_EQ(first, second);

  configure("read:short,prob=0.3,seed=43");
  const std::vector<bool> other_seed = firing_pattern(SiteId::kRead, 200);
  EXPECT_NE(first, other_seed);

  // The draw is per-ordinal, so the fire count is exact for a spec, not
  // merely expected: rerunning can never change it.
  int fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 200);
}

TEST(Fault, FiringScheduleIsThreadCountInvariant) {
  FaultGuard guard;
  constexpr int kArrivals = 1200;
  const std::string spec = "pool:delay_us=1,prob=0.4,seed=9";

  const auto total_fires = [&](int threads) {
    configure(spec);
    std::atomic<int> fires{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < kArrivals / threads; ++i) {
          if (evaluate(SiteId::kPool).fired()) {
            fires.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    return fires.load();
  };

  // Whether arrival ordinal n fires is a pure function of (spec, n), so
  // the total over a fixed number of arrivals cannot depend on how many
  // threads produced them.
  const int solo = total_fires(1);
  EXPECT_EQ(solo, total_fires(2));
  EXPECT_EQ(solo, total_fires(4));

  // Counter snapshots agree too.
  configure(spec);
  (void)total_fires;  // counters reset by configure
  for (int i = 0; i < 100; ++i) (void)evaluate(SiteId::kPool);
  const obs::CounterSnapshot snap = counters();
  EXPECT_EQ(obs::snapshot_value(snap, "fault.pool.checks", -1), 100);
  EXPECT_GE(obs::snapshot_value(snap, "fault.pool.fires", -1), 0);
}

TEST(Fault, CountersTrackChecksAndFires) {
  FaultGuard guard;
  configure("eval:fail,every=4");
  for (int i = 0; i < 20; ++i) (void)check(SiteId::kEval);
  const obs::CounterSnapshot snap = counters();
  EXPECT_EQ(obs::snapshot_value(snap, "fault.eval.checks", -1), 20);
  EXPECT_EQ(obs::snapshot_value(snap, "fault.eval.fires", -1), 5);
  // Unconfigured, untouched sites stay out of the snapshot.
  EXPECT_EQ(obs::snapshot_value(snap, "fault.accept.checks", -7), -7);

  clear();
  EXPECT_FALSE(enabled());
  EXPECT_TRUE(counters().empty());
}

}  // namespace
}  // namespace bsa::fault
