#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_stats.hpp"
#include "paper_fixture.hpp"
#include "workloads/regular.hpp"

namespace bsa::graph {
namespace {

namespace pf = bsa::testing;

TEST(GraphStats, PaperGraphNumbers) {
  const auto g = pf::paper_task_graph();
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_tasks, 9);
  EXPECT_EQ(s.num_edges, 12);
  EXPECT_EQ(s.depth, 4);
  // Levels: {T1}, {T2,T3,T4,T5}, {T6,T7,T8}, {T9} -> width 4.
  EXPECT_EQ(s.max_width, 4);
  EXPECT_DOUBLE_EQ(s.total_exec, 300);
  // 40+10+10+10+100+10+10+10+10+50+60+50 = 370.
  EXPECT_DOUBLE_EQ(s.total_comm, 370);
  EXPECT_DOUBLE_EQ(s.cp_length, 230);
  EXPECT_NEAR(s.parallelism, 300.0 / 230.0, 1e-12);
  EXPECT_NEAR(s.ccr, 370.0 / 300.0, 1e-12);
  EXPECT_EQ(s.max_in_degree, 3);   // T9
  EXPECT_EQ(s.max_out_degree, 5);  // T1
}

TEST(GraphStats, ChainHasWidthOne) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId c = b.add_task(10);
  const TaskId d = b.add_task(10);
  (void)b.add_edge(a, c, 5);
  (void)b.add_edge(c, d, 5);
  const auto s = compute_stats(b.build());
  EXPECT_EQ(s.max_width, 1);
  EXPECT_EQ(s.depth, 3);
  EXPECT_DOUBLE_EQ(s.cp_length, 40);
}

TEST(GraphStats, ForkJoinWidthEqualsWidthParameter) {
  const auto g = workloads::fork_join(2, 6);
  const auto s = compute_stats(g);
  EXPECT_EQ(s.max_width, 6);
  EXPECT_EQ(s.depth, 5);
}

TEST(GraphStats, PrintRendersAllFields) {
  const auto s = compute_stats(pf::paper_task_graph());
  std::ostringstream os;
  print_stats(os, s);
  const std::string text = os.str();
  EXPECT_NE(text.find("tasks: 9"), std::string::npos);
  EXPECT_NE(text.find("critical path: 230"), std::string::npos);
  EXPECT_NE(text.find("granularity"), std::string::npos);
}

}  // namespace
}  // namespace bsa::graph
