#include <gtest/gtest.h>

#include "core/bsa.hpp"
#include "core/serialization.hpp"
#include "graph/traversal.hpp"
#include "paper_fixture.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::core {
namespace {

namespace pf = bsa::testing;

TEST(Serialization, PaperNominalOrderExact) {
  const auto g = pf::paper_task_graph();
  Rng rng(0);
  const auto result = serialize(g, rng);
  // §2.2: "The final serialized list is {T1,T2,T7,T4,T3,T8,T6,T9,T5}".
  const std::vector<TaskId> expect{pf::T1, pf::T2, pf::T7, pf::T4, pf::T3,
                                   pf::T8, pf::T6, pf::T9, pf::T5};
  EXPECT_EQ(result.order, expect);
}

TEST(Serialization, PaperNominalClassification) {
  const auto g = pf::paper_task_graph();
  Rng rng(0);
  const auto result = serialize(g, rng);
  EXPECT_EQ(result.task_class[pf::T1], TaskClass::kCriticalPath);
  EXPECT_EQ(result.task_class[pf::T7], TaskClass::kCriticalPath);
  EXPECT_EQ(result.task_class[pf::T9], TaskClass::kCriticalPath);
  // In-branch: ancestors of CP tasks.
  EXPECT_EQ(result.task_class[pf::T2], TaskClass::kInBranch);
  EXPECT_EQ(result.task_class[pf::T3], TaskClass::kInBranch);
  EXPECT_EQ(result.task_class[pf::T4], TaskClass::kInBranch);
  EXPECT_EQ(result.task_class[pf::T6], TaskClass::kInBranch);
  EXPECT_EQ(result.task_class[pf::T8], TaskClass::kInBranch);
  // "The only OB task, T5".
  EXPECT_EQ(result.task_class[pf::T5], TaskClass::kOutBranch);
}

TEST(Serialization, PaperPivotOrderOnP2) {
  // With Table 1 costs on P2 the CP ties at 226 between {T1,T7,T9} and
  // {T1,T2,T7,T9}; the larger-exec-sum rule selects the latter, giving
  // {T1,T2,T7,T6,T3,T4,T8,T9,T5} — the paper prints the same multiset
  // with T6/T7 transposed (see DESIGN.md §4). Crucially T3 now precedes
  // T4 (reversed vs the nominal order) because P2 flips their b-levels.
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  Rng rng(0);
  const auto exec = cm.exec_costs_on(1);  // P2
  const auto result = serialize(g, exec, cm.nominal_comm_costs(), rng);
  const std::vector<TaskId> expect{pf::T1, pf::T2, pf::T7, pf::T6, pf::T3,
                                   pf::T4, pf::T8, pf::T9, pf::T5};
  EXPECT_EQ(result.order, expect);
  EXPECT_DOUBLE_EQ(result.levels.cp_length, 226);
}

TEST(Serialization, OrderIsAlwaysTopological) {
  const auto g = pf::paper_task_graph();
  Rng rng(1);
  const auto result = serialize(g, rng);
  EXPECT_TRUE(graph::is_topological_order(g, result.order));
}

TEST(Serialization, CpTasksAppearInPathOrder) {
  const auto g = pf::paper_task_graph();
  Rng rng(0);
  const auto result = serialize(g, rng);
  std::vector<int> pos(9);
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    pos[static_cast<std::size_t>(result.order[i])] = static_cast<int>(i);
  }
  for (std::size_t i = 1; i < result.critical_path.size(); ++i) {
    EXPECT_LT(pos[static_cast<std::size_t>(result.critical_path[i - 1])],
              pos[static_cast<std::size_t>(result.critical_path[i])]);
  }
}

TEST(Serialization, ObTasksLastInDescendingBLevel) {
  // Graph with two OB sinks of different b-levels.
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId cp2 = b.add_task(50);
  const TaskId ob_small = b.add_task(5);
  const TaskId ob_large = b.add_task(30);
  (void)b.add_edge(a, cp2, 100);
  (void)b.add_edge(a, ob_small, 1);
  (void)b.add_edge(a, ob_large, 1);
  const auto g = b.build();
  Rng rng(0);
  const auto result = serialize(g, rng);
  ASSERT_EQ(result.order.size(), 4u);
  EXPECT_EQ(result.order[0], a);
  EXPECT_EQ(result.order[1], cp2);
  EXPECT_EQ(result.order[2], ob_large);  // b-level 30 > 5
  EXPECT_EQ(result.order[3], ob_small);
  EXPECT_EQ(result.task_class[static_cast<std::size_t>(ob_large)],
            TaskClass::kOutBranch);
}

TEST(Serialization, SingleTaskGraph) {
  graph::TaskGraphBuilder b;
  (void)b.add_task(5);
  const auto g = b.build();
  Rng rng(0);
  const auto result = serialize(g, rng);
  ASSERT_EQ(result.order.size(), 1u);
  EXPECT_EQ(result.task_class[0], TaskClass::kCriticalPath);
}

TEST(Serialization, IndependentTasksAllClassified) {
  // Star: one source feeding independent sinks; CP goes through the
  // heaviest branch, others are OB.
  graph::TaskGraphBuilder b;
  const TaskId s = b.add_task(10);
  for (int i = 0; i < 5; ++i) {
    const TaskId t = b.add_task(10 + i);
    (void)b.add_edge(s, t, 2);
  }
  const auto g = b.build();
  Rng rng(0);
  const auto result = serialize(g, rng);
  EXPECT_EQ(result.order.size(), 6u);
  int cp = 0, ib = 0, ob = 0;
  for (const auto c : result.task_class) {
    if (c == TaskClass::kCriticalPath) ++cp;
    if (c == TaskClass::kInBranch) ++ib;
    if (c == TaskClass::kOutBranch) ++ob;
  }
  EXPECT_EQ(cp, 2);
  EXPECT_EQ(ib, 0);
  EXPECT_EQ(ob, 4);
}

// Property sweep: serialization of random graphs is a permutation and a
// topological order, and CP tasks hold the earliest feasible positions.
class SerializationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SerializationProperty, ValidOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = n;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  Rng rng(seed);
  const auto result = serialize(g, rng);
  EXPECT_TRUE(graph::is_topological_order(g, result.order));
  // Every CP task must be classified kCriticalPath.
  for (const TaskId t : result.critical_path) {
    EXPECT_EQ(result.task_class[static_cast<std::size_t>(t)],
              TaskClass::kCriticalPath);
  }
  // IB tasks are ancestors of some CP task.
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (result.task_class[static_cast<std::size_t>(t)] != TaskClass::kInBranch)
      continue;
    bool is_ancestor = false;
    const auto desc = graph::descendant_mask(g, t);
    for (const TaskId c : result.critical_path) {
      if (desc[static_cast<std::size_t>(c)]) {
        is_ancestor = true;
        break;
      }
    }
    EXPECT_TRUE(is_ancestor) << "IB task " << t << " has no CP descendant";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationProperty,
    ::testing::Combine(::testing::Values(10, 30, 60, 120),
                       ::testing::Values(1u, 2u, 3u)));

// --- b-level ablation variant ------------------------------------------------

TEST(SerializationByBlevel, TopologicalAndComplete) {
  const auto g = pf::paper_task_graph();
  Rng rng(0);
  std::vector<Cost> exec(9), comm(12);
  for (TaskId t = 0; t < 9; ++t) exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  for (EdgeId e = 0; e < 12; ++e) comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  const auto result = serialize_by_blevel(g, exec, comm, rng);
  EXPECT_TRUE(graph::is_topological_order(g, result.order));
  EXPECT_EQ(result.order.size(), 9u);
  // Nominal b-levels: T1=230, T2=T4=150 (t-level 60 vs 30, so T4 first),
  // T3=140, T7=110, T6=T8=100 (t-level 100 vs 80, so T8 first), T5=50,
  // T9=10.
  const std::vector<TaskId> expect{pf::T1, pf::T4, pf::T2, pf::T3, pf::T7,
                                   pf::T8, pf::T6, pf::T5, pf::T9};
  EXPECT_EQ(result.order, expect);
}

TEST(SerializationByBlevel, DiffersFromCpIbObOnPaperGraph) {
  const auto g = pf::paper_task_graph();
  Rng rng_a(0);
  Rng rng_b(0);
  const auto cp_order = serialize(g, rng_a).order;
  std::vector<Cost> exec(9), comm(12);
  for (TaskId t = 0; t < 9; ++t) exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  for (EdgeId e = 0; e < 12; ++e) comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  const auto bl_order = serialize_by_blevel(g, exec, comm, rng_b).order;
  EXPECT_NE(cp_order, bl_order);
}

TEST(SerializationByBlevel, BsaRunsValidWithIt) {
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  BsaOptions opt;
  opt.serialization = SerializationRule::kBLevel;
  const auto result = schedule_bsa(g, topo, cm, opt);
  EXPECT_TRUE(result.schedule.all_placed());
}

}  // namespace
}  // namespace bsa::core
