#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/bsa.hpp"
#include "graph/traversal.hpp"
#include "network/cost_model.hpp"
#include "sched/validate.hpp"
#include "workloads/regular.hpp"

namespace bsa::workloads {
namespace {

TEST(Cholesky, TaskCountFormula) {
  // tiles=2: k=0: POTRF + TRSM + SYRK = 3; k=1: POTRF = 1 -> 4.
  EXPECT_EQ(cholesky_task_count(2), 4);
  // tiles=4: k=0: 1+3+3+3=10, k=1: 1+2+2+1=6, k=2: 1+1+1+0=3, k=3: 1 -> 20.
  EXPECT_EQ(cholesky_task_count(4), 20);
  const auto g = cholesky(4);
  EXPECT_EQ(g.num_tasks(), 20);
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(Cholesky, PotrfChainSequential) {
  const auto g = cholesky(5);
  TaskId p0 = kInvalidTask, p4 = kInvalidTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.task_name(t) == "POTRF0") p0 = t;
    if (g.task_name(t) == "POTRF4") p4 = t;
  }
  ASSERT_NE(p0, kInvalidTask);
  ASSERT_NE(p4, kInvalidTask);
  EXPECT_TRUE(graph::is_reachable(g, p0, p4));
  // POTRF0 is the unique entry.
  ASSERT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks()[0], p0);
}

TEST(Stencil, CountAndStructure) {
  EXPECT_EQ(stencil_1d_task_count(4, 6), 24);
  const auto g = stencil_1d(3, 5);
  EXPECT_EQ(g.num_tasks(), 15);
  // Interior cell feeds 3 neighbours in the next step.
  // Edges: per step pair: 3*cells - 2 (boundaries lose one each).
  EXPECT_EQ(g.num_edges(), 2 * (3 * 5 - 2));
  EXPECT_EQ(graph::graph_depth(g), 3);
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(Trees, CountsAndShape) {
  EXPECT_EQ(tree_task_count(3, 2), 7);
  EXPECT_EQ(tree_task_count(1, 5), 1);
  const auto out = out_tree(3, 2);
  EXPECT_EQ(out.num_tasks(), 7);
  EXPECT_EQ(out.entry_tasks().size(), 1u);
  EXPECT_EQ(out.exit_tasks().size(), 4u);  // leaves
  const auto in = in_tree(3, 2);
  EXPECT_EQ(in.num_tasks(), 7);
  EXPECT_EQ(in.entry_tasks().size(), 4u);
  EXPECT_EQ(in.exit_tasks().size(), 1u);  // root
  EXPECT_EQ(graph::graph_depth(in), 3);
}

TEST(Trees, RejectBadParameters) {
  EXPECT_THROW((void)out_tree(0, 2), PreconditionError);
  EXPECT_THROW((void)in_tree(2, 0), PreconditionError);
  EXPECT_THROW((void)cholesky(1), PreconditionError);
  EXPECT_THROW((void)stencil_1d(0, 3), PreconditionError);
}

/// All the extra generators must be schedulable end to end.
class ExtraWorkloadSchedulable
    : public ::testing::TestWithParam<int> {};

TEST_P(ExtraWorkloadSchedulable, BsaProducesValidSchedules) {
  const int which = GetParam();
  CostParams cp;
  cp.seed = 5;
  const graph::TaskGraph g = [&] {
    switch (which) {
      case 0:
        return cholesky(5, cp);
      case 1:
        return stencil_1d(4, 8, cp);
      case 2:
        return out_tree(4, 2, cp);
      case 3:
        return in_tree(4, 2, cp);
      default:
        return fft(8, cp);
    }
  }();
  const auto topo = net::Topology::hypercube(3);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 10, 1, 10, 3);
  const auto result = core::schedule_bsa(g, topo, cm);
  const auto report = sched::validate(result.schedule, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ExtraWorkloadSchedulable,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace bsa::workloads
