#include <gtest/gtest.h>

#include "core/pivot.hpp"
#include "paper_fixture.hpp"

namespace bsa::core {
namespace {

namespace pf = bsa::testing;

TEST(Pivot, PaperCpLengthsExact) {
  // §2.2: "The CP lengths are 240, 226, 235, and 260, respectively."
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto sel = select_first_pivot(g, topo, cm);
  ASSERT_EQ(sel.cp_length_by_proc.size(), 4u);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[0], 240);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[1], 226);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[2], 235);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[3], 260);
}

TEST(Pivot, PaperPivotIsP2) {
  // "Thus, the first pivot processor is P2."
  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);
  const auto sel = select_first_pivot(g, topo, cm);
  EXPECT_EQ(sel.pivot, 1);  // 0-based P2
}

TEST(Pivot, HomogeneousSystemPicksFirstProcessor) {
  const auto g = pf::paper_task_graph();
  const auto topo = net::Topology::ring(4);
  const auto cm = net::HeterogeneousCostModel::homogeneous(g, topo);
  const auto sel = select_first_pivot(g, topo, cm);
  EXPECT_EQ(sel.pivot, 0);  // all equal, tie towards smaller id
  for (const Cost c : sel.cp_length_by_proc) EXPECT_DOUBLE_EQ(c, 230);
}

TEST(Pivot, UniformlyFastProcessorWins) {
  // One processor twice as fast as the rest for every task.
  const auto g = pf::paper_task_graph();
  const auto topo = net::Topology::ring(3);
  std::vector<Cost> matrix(9u * 3u);
  for (TaskId t = 0; t < 9; ++t) {
    for (ProcId p = 0; p < 3; ++p) {
      const Cost nominal = g.task_cost(t);
      matrix[static_cast<std::size_t>(t) * 3 + static_cast<std::size_t>(p)] =
          p == 2 ? nominal : nominal * 2;
    }
  }
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto sel = select_first_pivot(g, topo, cm);
  EXPECT_EQ(sel.pivot, 2);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[2], 230);
  // Slower processors have longer CPs (exec doubled along the CP).
  EXPECT_GT(sel.cp_length_by_proc[0], 230);
}

TEST(Pivot, CpLengthUsesActualExecAndNominalComm) {
  // Single-edge graph: pivot CP length = exec(a,p)+comm+exec(b,p).
  graph::TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId c = b.add_task(10);
  (void)b.add_edge(a, c, 7);
  const auto g = b.build();
  const auto topo = net::Topology::ring(2);
  const std::vector<Cost> matrix{10, 30, 10, 30};  // P0 nominal, P1 3x
  const auto cm =
      net::HeterogeneousCostModel::from_exec_matrix(g, topo, matrix);
  const auto sel = select_first_pivot(g, topo, cm);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[0], 27);
  EXPECT_DOUBLE_EQ(sel.cp_length_by_proc[1], 67);
  EXPECT_EQ(sel.pivot, 0);
}

}  // namespace
}  // namespace bsa::core
