#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "exp/experiment.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/schedule_io.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "workloads/workload_registry.hpp"

/// Cross-registry scheduler-conformance harness: every registered
/// scheduler spec (default and variant) x a sampled grid of workload
/// specs x topologies must
///  * produce a sched::validate()-clean complete schedule,
///  * round-trip to its canonical spec, with repeated resolves
///    bit-identical,
///  * be bit-identical under the sweep runtime at 1/2/8 threads,
/// and the SA refiner must be a monotone never-worse-than-init
/// refinement whose move sequence replays bit-identically by seed.
/// Nothing here is scheduler-specific: a newly registered algorithm is
/// covered automatically because the spec list starts from
/// SchedulerRegistry::global().names().

namespace bsa::sched {
namespace {

const SchedulerRegistry& reg() { return SchedulerRegistry::global(); }

/// Every registered default spec plus hand-picked non-default variants
/// (at least one per optioned algorithm, covering the sa: grammar).
std::vector<std::string> conformance_specs() {
  std::vector<std::string> specs = reg().names();
  specs.insert(specs.end(), {
                               "bsa:gate=always,route=static",
                               "bsa:policy=greedy,sweeps=2",
                               "dls:seed=7",
                               "sa:iters=0",
                               "sa:init=peft,iters=40,seed=3",
                               "sa:init=bsa,iters=25,temp0=0.2",
                           });
  return specs;
}

/// Sampled workload-spec grid: one irregular, one pinned-structure
/// variant, and three regular families with different shapes.
const std::vector<std::string> kWorkloads = {
    "random", "fft", "forkjoin:width=5", "stencil", "sp:seed=2",
};

const std::vector<std::string> kTopologies = {"ring", "hypercube"};

struct Instance {
  graph::TaskGraph g;
  net::Topology topo;
  net::HeterogeneousCostModel cm;
};

Instance make_instance(const std::string& workload,
                       const std::string& topo_kind, std::uint64_t seed) {
  graph::TaskGraph g = workloads::WorkloadRegistry::global()
                           .resolve(workload)
                           ->generate(/*target_tasks=*/22,
                                      /*granularity=*/1.0, seed);
  net::Topology topo = exp::make_topology(topo_kind, 8, seed);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::uniform_processor_speeds(
          g, topo, 1, 50, 1, 50, derive_seed(seed, 17));
  return {std::move(g), std::move(topo), std::move(cm)};
}

TEST(Conformance, EverySpecValidatesOnEveryWorkloadAndTopology) {
  for (const std::string& spec : conformance_specs()) {
    const std::unique_ptr<Scheduler> s = reg().resolve(spec);
    for (const std::string& workload : kWorkloads) {
      for (const std::string& topo_kind : kTopologies) {
        const Instance in = make_instance(workload, topo_kind, 5);
        const SchedulerResult r = s->run(in.g, in.topo, in.cm, 11);
        EXPECT_TRUE(r.schedule.all_placed())
            << spec << " / " << workload << " / " << topo_kind;
        const ValidationReport report = validate(r.schedule, in.cm);
        EXPECT_TRUE(report.ok()) << spec << " / " << workload << " / "
                                 << topo_kind << ": " << report.to_string();
        EXPECT_GT(r.makespan(), 0) << spec;
      }
    }
  }
}

TEST(Conformance, CanonicalSpecRoundTripsAndResolvesReproducibly) {
  const Instance in = make_instance("random", "ring", 5);
  for (const std::string& spec : conformance_specs()) {
    const std::unique_ptr<Scheduler> a = reg().resolve(spec);
    const std::string canonical = a->spec();
    // The canonical form is a fixed point of canonicalisation and
    // resolves to an instance with the same canonical spec.
    EXPECT_EQ(reg().canonical(spec), canonical) << spec;
    EXPECT_EQ(reg().canonical(canonical), canonical) << spec;
    const std::unique_ptr<Scheduler> b = reg().resolve(canonical);
    EXPECT_EQ(b->spec(), canonical) << spec;
    // Repeated resolves are bit-identical run for run.
    EXPECT_EQ(schedule_to_text(a->run(in.g, in.topo, in.cm, 7).schedule),
              schedule_to_text(b->run(in.g, in.topo, in.cm, 7).schedule))
        << spec;
  }
}

TEST(Conformance, SweepResultsBitIdenticalAtAnyThreadCount) {
  runtime::ScenarioGrid grid;
  grid.workloads = {"random", "fft"};
  grid.sizes = {20};
  grid.granularities = {1.0};
  grid.topologies = {"ring"};
  grid.algos = conformance_specs();
  grid.procs = 8;
  grid.seeds_per_cell = 2;
  grid.base_seed = 9;
  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);

  const auto lengths = [&](int threads) {
    std::vector<std::pair<std::string, Time>> out;
    for (const runtime::ScenarioResult& r :
         runtime::SweepRunner({.threads = threads}).run(set)) {
      EXPECT_TRUE(r.valid) << r.spec.algo;
      out.emplace_back(r.spec.algo, r.schedule_length);
    }
    return out;
  };
  const auto serial = lengths(1);
  EXPECT_EQ(serial, lengths(2));
  EXPECT_EQ(serial, lengths(8));
}

// --- SA refinement contracts ------------------------------------------------

TEST(Conformance, SaNeverWorseThanItsInitScheduler) {
  for (const std::string init : {"heft", "peft", "bsa"}) {
    for (const std::string& workload : kWorkloads) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const Instance in = make_instance(workload, "ring", seed);
        const Time base =
            reg().resolve(init)->run(in.g, in.topo, in.cm, seed).makespan();
        const std::string spec = "sa:init=" + init + ",iters=60";
        const Time refined =
            reg().resolve(spec)->run(in.g, in.topo, in.cm, seed).makespan();
        EXPECT_TRUE(time_le(refined, base))
            << spec << " / " << workload << " seed " << seed << ": "
            << refined << " vs init " << base;
      }
    }
  }
}

TEST(Conformance, SaWithZeroItersIsBitIdenticalToItsInit) {
  for (const std::string init : {"heft", "peft", "bsa"}) {
    for (const std::string& topo_kind : kTopologies) {
      const Instance in = make_instance("random", topo_kind, 13);
      const auto plain = reg().resolve(init)->run(in.g, in.topo, in.cm, 13);
      const auto frozen = reg()
                              .resolve("sa:init=" + init + ",iters=0")
                              ->run(in.g, in.topo, in.cm, 13);
      EXPECT_EQ(schedule_to_text(frozen.schedule),
                schedule_to_text(plain.schedule))
          << init << " / " << topo_kind;
    }
  }
}

TEST(Conformance, SaMoveSequenceReplaysBitIdenticallyBySeed) {
  const Instance in = make_instance("random", "ring", 21);
  // Same seed, two fresh resolves: identical schedule AND identical
  // move-stream counters (proposed/accepted/...), i.e. the whole
  // trajectory replays, not just the endpoint.
  const auto a =
      reg().resolve("sa:iters=80,seed=4")->run(in.g, in.topo, in.cm, 1);
  const auto b =
      reg().resolve("sa:iters=80,seed=4")->run(in.g, in.topo, in.cm, 999);
  EXPECT_EQ(schedule_to_text(a.schedule), schedule_to_text(b.schedule));
  EXPECT_EQ(a.counters, b.counters);
  // The pinned seed overrides the caller seed; an unpinned run with the
  // same effective seed matches too.
  const auto c = reg().resolve("sa:iters=80")->run(in.g, in.topo, in.cm, 4);
  EXPECT_EQ(schedule_to_text(a.schedule), schedule_to_text(c.schedule));
  // SA exposes its move-loop counters.
  bool has_proposed = false;
  std::int64_t proposed = 0, accepted = 0;
  for (const auto& [key, value] : a.counters) {
    if (key == "sa.proposed") {
      has_proposed = true;
      proposed = value;
    }
    if (key == "sa.accepted") accepted = value;
  }
  ASSERT_TRUE(has_proposed);
  EXPECT_EQ(proposed, 80);
  EXPECT_LE(accepted, proposed);
}

}  // namespace
}  // namespace bsa::sched
