#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/bsa.hpp"
#include "paper_fixture.hpp"
#include "sched/schedule_io.hpp"
#include "sched/validate.hpp"

namespace bsa::sched {
namespace {

namespace pf = bsa::testing;

struct ScheduleIoTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  net::HeterogeneousCostModel cm = pf::paper_cost_model(g, topo);
};

TEST_F(ScheduleIoTest, RoundTripBsaSchedule) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const Schedule restored =
      schedule_from_text(schedule_to_text(result.schedule), g, topo);
  ASSERT_TRUE(restored.all_placed());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(restored.proc_of(t), result.schedule.proc_of(t));
    EXPECT_DOUBLE_EQ(restored.start_of(t), result.schedule.start_of(t));
    EXPECT_DOUBLE_EQ(restored.finish_of(t), result.schedule.finish_of(t));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& a = result.schedule.route_of(e);
    const auto& b = restored.route_of(e);
    ASSERT_EQ(a.size(), b.size()) << "message " << e;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].link, b[k].link);
      EXPECT_DOUBLE_EQ(a[k].start, b[k].start);
    }
  }
  EXPECT_TRUE(validate(restored, cm).ok());
}

TEST_F(ScheduleIoTest, PartialScheduleSerialises) {
  Schedule s(g, topo);
  s.place_task(pf::T1, 0, 0, 39);
  const Schedule restored = schedule_from_text(schedule_to_text(s), g, topo);
  EXPECT_EQ(restored.num_placed(), 1);
  EXPECT_DOUBLE_EQ(restored.finish_of(pf::T1), 39);
}

TEST_F(ScheduleIoTest, RejectsMalformedInput) {
  EXPECT_THROW((void)schedule_from_text("task 0\n", g, topo),
               PreconditionError);
  EXPECT_THROW((void)schedule_from_text("bogus 1 2 3 4\n", g, topo),
               PreconditionError);
  EXPECT_THROW((void)schedule_from_text("task 99 0 0 1\n", g, topo),
               PreconditionError);
  EXPECT_THROW((void)schedule_from_text("hop 0 99 0 1\n", g, topo),
               PreconditionError);
}

TEST_F(ScheduleIoTest, CsvContainsAllEvents) {
  const auto result = core::schedule_bsa(g, topo, cm);
  std::ostringstream os;
  write_schedule_csv(os, result.schedule);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,who,where,start,finish"), std::string::npos);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_NE(csv.find("task," + g.task_name(t) + ","), std::string::npos);
  }
  // At least one hop row for a crossing message.
  EXPECT_NE(csv.find("hop,"), std::string::npos);
}

TEST_F(ScheduleIoTest, DotShowsAssignments) {
  const auto result = core::schedule_bsa(g, topo, cm);
  std::ostringstream os;
  write_schedule_dot(os, result.schedule, "demo");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("T1"), std::string::npos);
  // Unplaced tasks render grey.
  Schedule partial(g, topo);
  partial.place_task(pf::T1, 0, 0, 39);
  std::ostringstream os2;
  write_schedule_dot(os2, partial);
  EXPECT_NE(os2.str().find("(unplaced)"), std::string::npos);
}

}  // namespace
}  // namespace bsa::sched
