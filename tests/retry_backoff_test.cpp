// Client-resilience tests: the Backoff schedule's determinism and cap,
// idempotency gating, and RetryingClient against a dead socket and a
// deliberately overloaded server — all with an injected fake clock, so
// the whole retry schedule runs in microseconds of real time.

#include "serve/retry.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace bsa::serve {
namespace {

std::string unique_socket(const std::string& tag) {
  static int counter = 0;
  return "/tmp/bsa_retry_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter++) + ".sock";
}

/// Fail connects to missing sockets fast — the defaults would spend 5s
/// per attempt waiting for a daemon that will never appear.
ClientOptions fast_fail_options() {
  ClientOptions options;
  options.connect_timeout_ms = 20;
  return options;
}

RetryPolicy no_jitter_policy() {
  RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 1000.0;
  policy.jitter = 0.0;
  return policy;
}

TEST(Backoff, NoJitterIsExactGeometricWithCap) {
  Backoff backoff(no_jitter_policy());
  const std::vector<double> expect = {10,  20,  40,  80,   160,
                                      320, 640, 1000, 1000, 1000};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), expect[i]) << "step " << i;
  }
  EXPECT_EQ(backoff.steps(), 10);
}

TEST(Backoff, JitteredScheduleReplaysFromSeed) {
  RetryPolicy policy;
  policy.jitter = 0.5;
  policy.seed = 99;
  Backoff a(policy);
  Backoff b(policy);
  bool any_jittered = false;
  for (int i = 0; i < 8; ++i) {
    const double da = a.next_delay_ms();
    EXPECT_DOUBLE_EQ(da, b.next_delay_ms()) << "step " << i;
    const double nominal =
        std::min(policy.base_delay_ms * std::pow(policy.multiplier, i),
                 policy.max_delay_ms);
    EXPECT_GE(da, nominal * (1.0 - policy.jitter));
    EXPECT_LE(da, nominal * (1.0 + policy.jitter));
    if (da != nominal) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);

  RetryPolicy other = policy;
  other.seed = 100;
  Backoff c(other);
  Backoff fresh(policy);
  bool any_differs = false;
  for (int i = 0; i < 8; ++i) {
    if (fresh.next_delay_ms() != c.next_delay_ms()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Retry, IdempotencyTaxonomy) {
  EXPECT_TRUE(idempotent_op("schedule"));
  EXPECT_TRUE(idempotent_op("ping"));
  EXPECT_TRUE(idempotent_op("stats"));
  EXPECT_FALSE(idempotent_op("shutdown"));
}

TEST(Retry, DeadSocketRetriesThenSurfacesTheError) {
  std::vector<double> sleeps;
  RetryPolicy policy = no_jitter_policy();
  policy.max_attempts = 4;
  RetryingClient client(unique_socket("nosuch"), fast_fail_options(), policy,
                        [&](double ms) { sleeps.push_back(ms); });
  Request req;
  req.op = "ping";
  EXPECT_THROW((void)client.call(req), PreconditionError);
  // 4 attempts = 3 retries, each preceded by one backoff pause.
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_DOUBLE_EQ(sleeps[0], 10);
  EXPECT_DOUBLE_EQ(sleeps[1], 20);
  EXPECT_DOUBLE_EQ(sleeps[2], 40);
  EXPECT_EQ(client.retries_used(), 3);
}

TEST(Retry, BudgetBoundsRetriesAcrossCalls) {
  std::vector<double> sleeps;
  RetryPolicy policy = no_jitter_policy();
  policy.max_attempts = 10;
  policy.retry_budget = 2;
  RetryingClient client(unique_socket("budget"), fast_fail_options(), policy,
                        [&](double ms) { sleeps.push_back(ms); });
  Request req;
  req.op = "ping";
  EXPECT_THROW((void)client.call(req), PreconditionError);
  EXPECT_EQ(client.retries_used(), 2);
  EXPECT_EQ(sleeps.size(), 2u);
  // The budget is spent: the next call fails fast with no new pauses.
  EXPECT_THROW((void)client.call(req), PreconditionError);
  EXPECT_EQ(client.retries_used(), 2);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST(Retry, ShutdownIsNeverRetried) {
  std::vector<double> sleeps;
  RetryingClient client(unique_socket("noshut"), fast_fail_options(),
                        no_jitter_policy(),
                        [&](double ms) { sleeps.push_back(ms); });
  Request req;
  req.op = "shutdown";
  EXPECT_THROW((void)client.call(req), PreconditionError);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(client.retries_used(), 0);
}

TEST(Retry, OverloadedServerHintDrivesThePause) {
  ServerOptions options;
  options.socket_path = unique_socket("overload");
  options.threads = 2;
  options.cache_capacity = 0;  // every schedule request is a miss
  options.max_queue = 0;       // ...and every miss is shed
  options.batch_wait_us = 0;
  Server server(std::move(options));
  server.start();

  std::vector<double> sleeps;
  RetryPolicy policy = no_jitter_policy();
  policy.max_attempts = 3;
  RetryingClient client(server.socket_path(), ClientOptions{}, policy,
                        [&](double ms) { sleeps.push_back(ms); });
  Request req;
  req.size = 20;
  req.procs = 4;
  const Response resp = client.call(req);

  // Retries were attempted, then the typed overload surfaced to the
  // caller once the attempts ran out — never an exception, never silence.
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, error_code::kOverloaded);
  EXPECT_GT(resp.retry_after_ms, 0);
  ASSERT_EQ(sleeps.size(), 2u);
  for (const double ms : sleeps) {
    EXPECT_GE(ms, static_cast<double>(resp.retry_after_ms));
  }
  EXPECT_EQ(client.retries_used(), 2);

  // Pings bypass the dispatcher queue, so a shedding server still
  // answers them first try.
  Request ping;
  ping.op = "ping";
  const Response pong = client.call(ping);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(client.retries_used(), 2);

  server.stop();
}

}  // namespace
}  // namespace bsa::serve
