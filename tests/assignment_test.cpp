#include <gtest/gtest.h>

#include <tuple>

#include "common/check.hpp"
#include "core/bsa.hpp"
#include "core/refine.hpp"
#include "paper_fixture.hpp"
#include "sched/assignment.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::sched {
namespace {

namespace pf = bsa::testing;

struct AssignmentTest : ::testing::Test {
  graph::TaskGraph g = pf::paper_task_graph();
  net::Topology topo = pf::paper_ring();
  net::HeterogeneousCostModel cm = pf::paper_cost_model(g, topo);
};

TEST_F(AssignmentTest, AllOnOneProcessorIsSerial) {
  std::vector<ProcId> assignment(9, 1);  // everything on P2
  const Schedule s = schedule_from_assignment(g, topo, cm, assignment);
  EXPECT_TRUE(validate(s, cm).ok());
  // Serial length = sum of exec costs on P2 = 238; list order may differ
  // from the BSA serialization but the total is identical.
  EXPECT_DOUBLE_EQ(s.makespan(), 238);
  EXPECT_EQ(compute_metrics(s, cm).num_crossing_messages, 0);
}

TEST_F(AssignmentTest, CrossingMessagesGetRoutes) {
  std::vector<ProcId> assignment(9, 1);
  assignment[static_cast<std::size_t>(pf::T3)] = 0;  // T3 on P1
  assignment[static_cast<std::size_t>(pf::T4)] = 2;  // T4 on P3
  const Schedule s = schedule_from_assignment(g, topo, cm, assignment);
  const auto report = validate(s, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  // T1->T3 crosses P2->P1 (one hop), T3->T8 crosses back.
  EXPECT_FALSE(s.route_of(g.find_edge(pf::T1, pf::T3)).empty());
  EXPECT_FALSE(s.route_of(g.find_edge(pf::T3, pf::T8)).empty());
}

TEST_F(AssignmentTest, MultiHopRoutesOnRing) {
  std::vector<ProcId> assignment(9, 1);
  assignment[static_cast<std::size_t>(pf::T5)] = 3;  // P4: two hops from P2
  const Schedule s = schedule_from_assignment(g, topo, cm, assignment);
  EXPECT_TRUE(validate(s, cm).ok());
  EXPECT_EQ(s.route_of(g.find_edge(pf::T1, pf::T5)).size(), 2u);
}

TEST_F(AssignmentTest, RejectsBadInput) {
  std::vector<ProcId> wrong_size(5, 0);
  EXPECT_THROW((void)schedule_from_assignment(g, topo, cm, wrong_size),
               PreconditionError);
  std::vector<ProcId> bad_proc(9, 9);
  EXPECT_THROW((void)schedule_from_assignment(g, topo, cm, bad_proc),
               PreconditionError);
}

TEST_F(AssignmentTest, AssignmentOfRoundTrips) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const auto assignment = assignment_of(result.schedule);
  const Schedule rebuilt = schedule_from_assignment(g, topo, cm, assignment);
  EXPECT_TRUE(validate(rebuilt, cm).ok());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(rebuilt.proc_of(t), result.schedule.proc_of(t));
  }
}

class AssignmentProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(AssignmentProperty, RandomAssignmentsAreSchedulable) {
  const auto [granularity, seed] = GetParam();
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = granularity;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = net::Topology::random(8, 2, 5, seed);
  const auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 20, 1, 20, derive_seed(seed, 2));
  Rng rng(derive_seed(seed, 30));
  std::vector<ProcId> assignment(static_cast<std::size_t>(g.num_tasks()));
  for (auto& p : assignment) {
    p = static_cast<ProcId>(rng.index(
        static_cast<std::size_t>(topo.num_processors())));
  }
  const Schedule s = schedule_from_assignment(g, topo, cm, assignment);
  const auto report = validate(s, cm);
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(s.makespan(), schedule_length_lower_bound(g, cm));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssignmentProperty,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(1u, 2u)));

// --- refinement ---------------------------------------------------------------

TEST_F(AssignmentTest, RefineNeverWorsens) {
  const auto result = core::schedule_bsa(g, topo, cm);
  const auto refined = core::refine_schedule(result.schedule, cm);
  EXPECT_LE(refined.final_length, refined.initial_length + kTimeEpsilon);
  EXPECT_TRUE(validate(refined.schedule, cm).ok());
  EXPECT_DOUBLE_EQ(refined.schedule.makespan(), refined.final_length);
}

TEST_F(AssignmentTest, RefineImprovesBadAssignment) {
  // Start from everything on the slowest reasonable processor; local
  // search must find improvements.
  std::vector<ProcId> assignment(9, 3);  // P4 is slow for most tasks
  const Schedule start = schedule_from_assignment(g, topo, cm, assignment);
  const auto refined = core::refine_schedule(start, cm);
  EXPECT_LT(refined.final_length, start.makespan());
  EXPECT_GT(refined.moves_applied, 0);
  EXPECT_TRUE(validate(refined.schedule, cm).ok());
}

TEST_F(AssignmentTest, RefineCandidateLimitRespected) {
  const auto result = core::schedule_bsa(g, topo, cm);
  core::RefineOptions opt;
  opt.max_rounds = 1;
  opt.candidates_per_task = 2;
  const auto refined = core::refine_schedule(result.schedule, cm, opt);
  // At most (candidates-1 non-original) * tasks evaluations, bounded by
  // candidates*tasks regardless.
  EXPECT_LE(refined.candidates_evaluated, 2 * g.num_tasks());
  EXPECT_TRUE(validate(refined.schedule, cm).ok());
}

TEST_F(AssignmentTest, RefineRequiresCompleteSchedule) {
  Schedule s(g, topo);
  s.place_task(pf::T1, 0, 0, 39);
  EXPECT_THROW((void)core::refine_schedule(s, cm), PreconditionError);
}

}  // namespace
}  // namespace bsa::sched
