// Chaos suite for the scheduling service: deterministic failpoints
// (src/fault/) armed against a real in-process serve::Server, asserting
// the robustness invariants of docs/DESIGN_FAULT.md — every accepted
// request gets exactly one typed response, the daemon never crashes or
// deadlocks, degraded paths stay byte-correct, and clients surface
// failures as typed errors/timeouts instead of hanging.
//
// Failpoints are process-global, so read/write-site specs fire for BOTH
// the server's sessions and the test's own client I/O; tests that need a
// server-only fault use the accept/batch/eval/cache sites, which only
// server code reaches.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fault/failpoint.hpp"
#include "obs/counters.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

namespace bsa::serve {
namespace {

/// Every test leaves the process-global registry cleared, pass or fail.
struct FaultGuard {
  FaultGuard() { fault::clear(); }
  ~FaultGuard() { fault::clear(); }
};

std::string unique_socket(const std::string& tag) {
  static int counter = 0;
  return "/tmp/bsa_chaos_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter++) + ".sock";
}

ServerOptions small_options(const std::string& tag) {
  ServerOptions options;
  options.socket_path = unique_socket(tag);
  options.threads = 2;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  options.batch_wait_us = 0;
  return options;
}

Request small_request(std::uint64_t seed) {
  Request req;
  req.size = 20;
  req.procs = 4;
  req.seed = seed;
  return req;
}

TEST(Chaos, EvalFaultsYieldExactlyOneTypedResponseEach) {
  FaultGuard guard;
  Server server(small_options("eval"));
  server.start();
  // One client, sequential calls: eval arrivals are ordinals 1..12, so
  // every=3 fires on exactly 4 of them — the error count is exact, not
  // statistical.
  fault::configure("eval:fail,every=3");
  auto client = Client::connect(server.socket_path());
  int ok = 0;
  int failed = 0;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    const Response resp = client.call(small_request(100 + i));
    if (resp.ok) {
      ++ok;
      EXPECT_GT(resp.makespan(), 0);
    } else {
      ++failed;
      EXPECT_EQ(resp.code, error_code::kInternal);
      EXPECT_NE(resp.error.find("injected fault"), std::string::npos);
      EXPECT_NE(resp.error.find("eval"), std::string::npos);
    }
  }
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(failed, 4);
  const obs::CounterSnapshot snap = server.counters();
  EXPECT_EQ(obs::snapshot_value(snap, "serve.errors", -1), 4);
  EXPECT_EQ(obs::snapshot_value(snap, "fault.eval.fires", -1), 4);

  // Clearing the spec restores full service on the same connection.
  fault::clear();
  const Response healthy = client.call(small_request(999));
  EXPECT_TRUE(healthy.ok);
  server.stop();
}

TEST(Chaos, PoisonedBatchRoundAnswersEveryRequest) {
  FaultGuard guard;
  Server server(small_options("batch"));
  server.start();
  fault::configure("batch:fail");  // every dispatcher round is poisoned
  auto client = Client::connect(server.socket_path());

  // Pipeline 6 distinct-seed requests; however the dispatcher groups
  // them into rounds, every id must come back exactly once, typed.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ids.push_back(client.send(small_request(200 + i)));
  }
  std::vector<std::uint64_t> answered;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Response resp = client.recv();
    answered.push_back(resp.id);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, error_code::kInternal);
    EXPECT_NE(resp.error.find("batch"), std::string::npos);
  }
  std::sort(answered.begin(), answered.end());
  EXPECT_EQ(answered, ids);

  fault::clear();
  EXPECT_TRUE(client.call(small_request(201)).ok);  // same key, now fine
  server.stop();
}

TEST(Chaos, CacheFaultDegradesToUncachedButIdenticalAnswers) {
  FaultGuard guard;
  Server server(small_options("cache"));
  server.start();
  fault::configure("cache:fail");  // every cache put is dropped
  auto client = Client::connect(server.socket_path());

  const Response first = client.call(small_request(7));
  const Response second = client.call(small_request(7));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  // The put was suppressed, so the repeat is a miss...
  EXPECT_FALSE(first.cached);
  EXPECT_FALSE(second.cached);
  // ...but determinism makes the recomputed payload byte-identical.
  EXPECT_EQ(first.schedule_text(), second.schedule_text());
  EXPECT_DOUBLE_EQ(first.makespan(), second.makespan());

  fault::clear();
  (void)client.call(small_request(7));  // now populates
  const Response hit = client.call(small_request(7));
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.schedule_text(), first.schedule_text());
  server.stop();
}

TEST(Chaos, OverloadShedIsTypedWithRetryAfterHint) {
  ServerOptions options = small_options("shed");
  options.max_queue = 0;  // shed every cache miss
  Server server(std::move(options));
  server.start();
  auto client = Client::connect(server.socket_path());

  const Response shed = client.call(small_request(1));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, error_code::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0);
  // Pings bypass the dispatcher queue and still work under shedding.
  EXPECT_TRUE(client.ping().ok);
  EXPECT_GT(obs::snapshot_value(server.counters(), "serve.overloads", -1), 0);
  server.stop();
}

// SIGPIPE regression: writing to a peer that already closed must report
// false, not kill the process (socket.cpp sends with MSG_NOSIGNAL).
TEST(Chaos, WriteAfterPeerCloseReturnsCleanError) {
  const std::string path = unique_socket("sigpipe");
  Fd listener = listen_unix(path);
  Fd client_end = connect_unix(path, 1000);
  Fd server_end = accept_unix(listener);
  ASSERT_TRUE(server_end.valid());

  client_end.reset();  // peer vanishes
  // The first sends may land in the kernel buffer; keep pushing until
  // the broken pipe surfaces. If SIGPIPE were not suppressed this loop
  // would kill the test binary instead of returning false.
  const std::string frame(64 * 1024, 'x');
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_all(server_end, frame);
  }
  EXPECT_TRUE(failed);
  ::unlink(path.c_str());
}

TEST(Chaos, StalledServerSurfacesAsClientTimeout) {
  FaultGuard guard;
  Server server(small_options("stall"));
  server.start();
  // Every evaluation stalls 500ms; the client's read deadline is 100ms.
  fault::configure("eval:delay_us=500000");
  ClientOptions copts;
  copts.read_timeout_ms = 100;
  auto client = Client::connect(server.socket_path(), copts);
  EXPECT_THROW((void)client.call(small_request(1)), TimeoutError);
  fault::clear();
  server.stop();  // drains the stalled round; must not deadlock
}

TEST(Chaos, AsyncClientDeadlineExpiresOverdueFuture) {
  FaultGuard guard;
  Server server(small_options("async"));
  server.start();
  fault::configure("eval:delay_us=400000");
  AsyncClient client(server.socket_path());
  std::future<Response> slow = client.submit(small_request(1), 50);
  EXPECT_THROW((void)slow.get(), TimeoutError);
  fault::clear();
  // The connection is still usable for later requests.
  std::future<Response> fine = client.submit(small_request(2), 5000);
  EXPECT_TRUE(fine.get().ok);
  server.stop();
}

TEST(Chaos, RetryingClientAbsorbsSocketChaos) {
  FaultGuard guard;
  Server server(small_options("socket"));
  server.start();
  // read/write sites fire for both sides of the in-process pair: short
  // reads exercise reassembly everywhere, and every 13th read anywhere
  // dies with ECONNRESET — sometimes killing the server's session,
  // sometimes the client's own recv. RetryingClient must absorb both.
  fault::configure("read:errno=econnreset,every=13;write:short=7,every=3");
  ClientOptions copts;
  copts.read_timeout_ms = 2000;
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.retry_budget = 1 << 20;
  policy.base_delay_ms = 1;  // schedule is fake-slept anyway
  RetryingClient client(server.socket_path(), copts, policy,
                        [](double) { /* no real sleeping */ });
  int answered = 0;
  for (std::uint64_t i = 1; i <= 30; ++i) {
    const Response resp = client.call(small_request(300 + i));
    EXPECT_TRUE(resp.ok) << "request " << i << ": " << resp.error;
    if (resp.ok) ++answered;
  }
  EXPECT_EQ(answered, 30);  // zero unanswered — the chaos invariant
  fault::clear();
  server.stop();
}

TEST(Chaos, ShutdownDrainsQueuedWorkUnderBatchDelay) {
  FaultGuard guard;
  Server server(small_options("drain"));
  server.start();
  fault::configure("batch:delay_us=100000");  // 100ms per round
  AsyncClient client(server.socket_path());
  // Queue real work, then ask for shutdown on the same session — the
  // requests were sent first, so they are queued before stop begins and
  // every one must still be answered (drain-then-answer).
  std::vector<std::future<Response>> work;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    work.push_back(client.submit(small_request(400 + i)));
  }
  Request bye;
  bye.op = "shutdown";
  std::future<Response> ack = client.submit(bye);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Response resp = work[i].get();
    EXPECT_TRUE(resp.ok) << "queued request " << i << ": " << resp.error;
  }
  EXPECT_TRUE(ack.get().ok);
  server.wait();
  server.stop();
}

}  // namespace
}  // namespace bsa::serve
