#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workload_registry.hpp"

/// \file audit_test.cpp
/// The BSA_AUDIT backstop: when auditing is on, every built-in scheduler
/// adapter feeds its result through sched::validate() via audit_result()
/// and throws InvariantError on any violation. The compile option only
/// flips the default; these tests drive the runtime switch so the
/// behaviour is covered in every build configuration.

namespace bsa::sched {
namespace {

/// Restores the process-wide audit flag on scope exit.
class AuditGuard {
 public:
  explicit AuditGuard(bool on) : previous_(audit_enabled()) { set_audit(on); }
  ~AuditGuard() { set_audit(previous_); }
  AuditGuard(const AuditGuard&) = delete;
  AuditGuard& operator=(const AuditGuard&) = delete;

 private:
  bool previous_;
};

struct AuditTest : ::testing::Test {
  graph::TaskGraph g = workloads::WorkloadRegistry::global()
                           .resolve("forkjoin:width=4,depth=3")
                           ->generate(/*target_tasks=*/40, 1.0, 11);
  net::Topology topo = net::Topology::ring(3);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::homogeneous(g, topo);

  /// A schedule violating task-duration and placement invariants.
  Schedule corrupted() const {
    Schedule s(g, topo);
    s.place_task(0, 0, 0, 1);  // wrong duration, successors unplaced
    return s;
  }
};

TEST_F(AuditTest, EveryAdapterPassesWhenAuditIsOn) {
  AuditGuard guard(true);
  for (const std::string& name : SchedulerRegistry::global().names()) {
    EXPECT_NO_THROW({
      const auto result =
          SchedulerRegistry::global().resolve(name)->run(g, topo, cm, 3);
      (void)result;
    }) << name;
  }
}

TEST_F(AuditTest, AuditResultThrowsOnInvalidSchedule) {
  AuditGuard guard(true);
  const Schedule bad = corrupted();
  try {
    audit_result(bad, cm, "bsa:test");
    FAIL() << "audit_result accepted an invalid schedule";
  } catch (const InvariantError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("audit"), std::string::npos) << what;
    EXPECT_NE(what.find("bsa:test"), std::string::npos) << what;
    EXPECT_NE(what.find("not placed"), std::string::npos) << what;
  }
}

TEST_F(AuditTest, AuditResultIsANoOpWhenDisabled) {
  AuditGuard guard(false);
  const Schedule bad = corrupted();
  EXPECT_NO_THROW(audit_result(bad, cm, "bsa:test"));
}

TEST_F(AuditTest, RuntimeSwitchRoundTrips) {
  const bool before = audit_enabled();
  {
    AuditGuard guard(!before);
    EXPECT_EQ(audit_enabled(), !before);
  }
  EXPECT_EQ(audit_enabled(), before);
}

}  // namespace
}  // namespace bsa::sched
