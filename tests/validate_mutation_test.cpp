#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "workloads/workload_registry.hpp"

/// \file validate_mutation_test.cpp
/// Mutation tests for sched::validate(): take a *known-good* schedule
/// produced by a real algorithm on a real workload, corrupt exactly one
/// invariant at a time, and assert the validator reports that corruption.
/// validate() is the dynamic backstop of the static-analysis wall (the
/// BSA_AUDIT option routes every scheduler run through it), so the
/// validator itself needs negative-path proof against realistic
/// schedules, not just hand-built two-task examples (validate_test.cpp).

namespace bsa::sched {

/// Reaches the private route/booking state the public mutators keep
/// consistent by construction (declared friend in schedule.hpp).
struct ScheduleTestPeer {
  static std::vector<LinkBooking>& bookings(Schedule& s, LinkId l) {
    return s.link_bookings_[static_cast<std::size_t>(l)];
  }
  static std::vector<Hop>& route(Schedule& s, EdgeId e) {
    return s.routes_[static_cast<std::size_t>(e)];
  }
};

namespace {

class ValidateMutationTest : public ::testing::Test {
 protected:
  // A communication-heavy FFT on a small ring: every invariant class
  // (multi-task processors, multi-booking links, multi-hop routes) is
  // exercised by the resulting schedule.
  ValidateMutationTest()
      : g_(workloads::WorkloadRegistry::global()
               .resolve("fft:points=16,ccr=2")
               ->generate(/*target_tasks=*/40, /*granularity=*/1.0,
                          /*seed=*/7)),
        topo_(net::Topology::ring(3)),
        cm_(net::HeterogeneousCostModel::homogeneous(g_, topo_)),
        good_(SchedulerRegistry::global().resolve("bsa")
                  ->run(g_, topo_, cm_, /*seed=*/7)
                  .schedule) {}

  void SetUp() override {
    ASSERT_TRUE(validate(good_, cm_).ok())
        << validate(good_, cm_).to_string();
  }

  /// Asserts the corrupted schedule fails validation with an issue
  /// containing `needle`.
  void expect_issue(const Schedule& s, const std::string& needle) {
    const ValidationReport report = validate(s, cm_);
    EXPECT_FALSE(report.ok())
        << "corruption went undetected (expected: " << needle << ")";
    EXPECT_NE(report.to_string().find(needle), std::string::npos)
        << "expected an issue containing '" << needle << "', got:\n"
        << report.to_string();
  }

  /// First processor hosting at least two tasks.
  ProcId busy_proc() const {
    for (ProcId p = 0; p < topo_.num_processors(); ++p) {
      if (good_.tasks_on(p).size() >= 2) return p;
    }
    ADD_FAILURE() << "fixture schedule has no processor with two tasks";
    return 0;
  }

  /// First link carrying at least two bookings.
  LinkId busy_link() const {
    for (LinkId l = 0; l < topo_.num_links(); ++l) {
      if (good_.bookings_on(l).size() >= 2) return l;
    }
    ADD_FAILURE() << "fixture schedule has no link with two bookings";
    return 0;
  }

  /// First message with a non-empty route.
  EdgeId routed_edge() const {
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      if (!good_.route_of(e).empty()) return e;
    }
    ADD_FAILURE() << "fixture schedule has no routed message";
    return 0;
  }

  graph::TaskGraph g_;
  net::Topology topo_;
  net::HeterogeneousCostModel cm_;
  Schedule good_;
};

TEST_F(ValidateMutationTest, DetectsProcessorOverlap) {
  Schedule s = good_;
  const ProcId p = busy_proc();
  const TaskId a = s.tasks_on(p)[0];
  const TaskId b = s.tasks_on(p)[1];
  const Time dur = s.finish_of(b) - s.start_of(b);
  // Slide b on top of a, keeping b's duration so only exclusivity breaks.
  s.set_task_times(b, s.start_of(a), s.start_of(a) + dur);
  expect_issue(s, "overlap");
}

TEST_F(ValidateMutationTest, DetectsLinkOverlap) {
  Schedule s = good_;
  const LinkId l = busy_link();
  const LinkBooking first = s.bookings_on(l)[0];
  const LinkBooking second = s.bookings_on(l)[1];
  const Time dur = second.finish - second.start;
  // Slide the second transmission on top of the first, duration kept.
  s.set_hop_times(second.edge, second.hop_index, first.start,
                  first.start + dur);
  expect_issue(s, "contention");
}

TEST_F(ValidateMutationTest, DetectsBrokenRouteContiguity) {
  Schedule s = good_;
  const EdgeId e = routed_edge();
  const ProcId ps = s.proc_of(s.task_graph().edge_src(e));
  // A link not incident to the source processor breaks the walk.
  LinkId stray = kInvalidLink;
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    const auto [a, b] = topo_.link_endpoints(l);
    if (a != ps && b != ps) {
      stray = l;
      break;
    }
  }
  ASSERT_NE(stray, kInvalidLink);
  s.clear_route(e);
  // Far past the makespan so the stray link's interval is free and the
  // only new violation class is the broken walk (plus late arrival).
  const Time start = s.makespan() + 100;
  s.set_route(e, {Hop{stray, start, start + cm_.comm_cost(e, stray)}});
  expect_issue(s, "route broken");
}

TEST_F(ValidateMutationTest, DetectsWrongFinishTime) {
  Schedule s = good_;
  const TaskId t = s.tasks_on(busy_proc())[0];
  s.set_task_times(t, s.start_of(t), s.finish_of(t) + 3);
  expect_issue(s, "duration");
}

TEST_F(ValidateMutationTest, DetectsMissingRoute) {
  Schedule s = good_;
  s.clear_route(routed_edge());
  expect_issue(s, "no route");
}

TEST_F(ValidateMutationTest, DetectsBookingRouteTimeMismatch) {
  Schedule s = good_;
  const LinkId l = busy_link();
  // Perturb the booking only; the route keeps the original times.
  ScheduleTestPeer::bookings(s, l)[0].start += 1;
  expect_issue(s, "disagrees");
}

TEST_F(ValidateMutationTest, DetectsBookingForMissingHop) {
  Schedule s = good_;
  const LinkId l = busy_link();
  LinkBooking& b = ScheduleTestPeer::bookings(s, l)[0];
  b.hop_index =
      static_cast<int>(s.route_of(b.edge).size());  // one past the end
  expect_issue(s, "missing hop");
}

TEST_F(ValidateMutationTest, DetectsBookingCountMismatch) {
  Schedule s = good_;
  const LinkId l = busy_link();
  // Drop one booking; its hop stays in the route, so the global
  // hop/booking reconciliation must flag the difference.
  ScheduleTestPeer::bookings(s, l).pop_back();
  expect_issue(s, "booking count");
}

TEST_F(ValidateMutationTest, DetectsRouteWithoutBooking) {
  Schedule s = good_;
  const EdgeId e = routed_edge();
  // Grow the route behind the bookings' back: hop count disagrees.
  std::vector<Hop>& route = ScheduleTestPeer::route(s, e);
  const Hop last = route.back();
  route.push_back(Hop{last.link, last.finish, last.finish + 1});
  expect_issue(s, "booking count");
}

// The known-good fixture stays valid for every registered algorithm, so
// the corruptions above are the only reason any of these tests can fail.
TEST_F(ValidateMutationTest, AllRegisteredAlgorithmsProduceValidSchedules) {
  for (const std::string& name : SchedulerRegistry::global().names()) {
    const auto result =
        SchedulerRegistry::global().resolve(name)->run(g_, topo_, cm_, 7);
    const ValidationReport report = validate(result.schedule, cm_);
    EXPECT_TRUE(report.ok()) << name << ": " << report.to_string();
  }
}

}  // namespace
}  // namespace bsa::sched
