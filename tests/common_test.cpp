#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace bsa {
namespace {

// --- time comparisons -------------------------------------------------------

TEST(TimeCompare, EqualWithinTolerance) {
  EXPECT_TRUE(time_eq(1.0, 1.0));
  EXPECT_TRUE(time_eq(1.0, 1.0 + 0.5 * kTimeEpsilon));
  EXPECT_FALSE(time_eq(1.0, 1.1));
}

TEST(TimeCompare, StrictLess) {
  EXPECT_TRUE(time_lt(1.0, 2.0));
  EXPECT_FALSE(time_lt(1.0, 1.0));
  EXPECT_FALSE(time_lt(2.0, 1.0));
  EXPECT_FALSE(time_lt(1.0, 1.0 + 0.5 * kTimeEpsilon));
}

TEST(TimeCompare, LessOrEqual) {
  EXPECT_TRUE(time_le(1.0, 1.0));
  EXPECT_TRUE(time_le(1.0, 2.0));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

// --- check macros -----------------------------------------------------------

TEST(Check, RequireThrowsPrecondition) {
  EXPECT_THROW(BSA_REQUIRE(false, "boom " << 42), PreconditionError);
  EXPECT_NO_THROW(BSA_REQUIRE(true, "fine"));
}

TEST(Check, AssertThrowsInvariant) {
  EXPECT_THROW(BSA_ASSERT(false, "bug"), InvariantError);
  EXPECT_NO_THROW(BSA_ASSERT(true, "ok"));
}

TEST(Check, MessageContainsContext) {
  try {
    BSA_REQUIRE(1 == 2, "value was " << 7);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("value was 7"), std::string::npos);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  const auto x = a.uniform_int(0, 1000000);
  EXPECT_EQ(x, b.uniform_int(0, 1000000));
  // Different seeds should (overwhelmingly) differ on the first draw.
  EXPECT_NE(x, c.uniform_int(0, 1000000));
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformRealBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.5, 1.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(3);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) seen[rng.index(4)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, RejectsBadRanges) {
  Rng rng(4);
  EXPECT_THROW((void)rng.uniform_int(3, 2), PreconditionError);
  EXPECT_THROW((void)rng.index(0), PreconditionError);
  EXPECT_THROW((void)rng.bernoulli(1.5), PreconditionError);
}

TEST(HashedUniform, DeterministicAndInRange) {
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto v = hashed_uniform_int(99, key, 1, 50);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
    EXPECT_EQ(v, hashed_uniform_int(99, key, 1, 50));
  }
}

TEST(HashedUniform, CoversFullRange) {
  bool low = false, high = false;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const auto v = hashed_uniform_int(5, key, 1, 10);
    if (v == 1) low = true;
    if (v == 10) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(DeriveSeed, DistinctStreams) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(1, 0, 1));
  EXPECT_NE(derive_seed(1, 0, 0, 0), derive_seed(1, 0, 0, 1));
  EXPECT_EQ(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 4));
}

// --- stats --------------------------------------------------------------------

TEST(Stats, AccumulatorBasics) {
  StatAccumulator acc;
  for (const double v : {2.0, 4.0, 6.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
}

TEST(Stats, EmptyAccumulator) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Stats, MeanOf) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4, 1, 3, 2}), 2.5);
  EXPECT_THROW((void)median_of({}), PreconditionError);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean_of(std::vector<double>{1, 4}), 2.0);
  EXPECT_THROW((void)geometric_mean_of(std::vector<double>{1, -1}),
               PreconditionError);
}

// --- table ---------------------------------------------------------------------

TEST(Table, AlignedOutput) {
  TextTable t({"name", "value"});
  t.new_row().cell("x").cell(1.25, 2);
  t.new_row().cell("longer").cell(static_cast<long long>(42));
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("-+-"), std::string::npos);
}

TEST(Table, CsvOutputAndEscaping) {
  TextTable t({"a", "b"});
  t.new_row().cell("plain").cell("needs,quote");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nplain,\"needs,quote\"\n");
  EXPECT_EQ(csv_escape("with \"q\""), "\"with \"\"q\"\"\"");
}

TEST(Table, RowDisciplineEnforced) {
  TextTable t({"only"});
  EXPECT_THROW(t.cell("no row yet"), PreconditionError);
  t.new_row().cell("ok");
  EXPECT_THROW(t.cell("too many"), PreconditionError);
}

// --- cli ------------------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  // Note: a bare `--flag` followed by a non-flag token consumes it as the
  // flag's value, so boolean flags go last or use `--flag=true`.
  const char* argv[] = {"prog",     "--alpha=3", "--beta", "7",
                        "pos1",     "--flag",    "--gamma=x y"};
  CliParser cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("gamma", ""), "x y");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program_name(), "prog");
}

TEST(Cli, DefaultsAndErrors) {
  const char* argv[] = {"prog", "--n=abc"};
  CliParser cli(2, argv);
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_THROW((void)cli.get_int("n", 0), PreconditionError);
}

TEST(Cli, RepeatedFlagsCollectInOrderAndScalarsUseTheLast) {
  const char* argv[] = {"prog", "--algo=a", "--algo", "b", "--algo=c"};
  CliParser cli(5, argv);
  EXPECT_EQ(cli.get_strings("algo"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(cli.get_string("algo", ""), "c");
  EXPECT_TRUE(cli.get_strings("missing").empty());
}

TEST(Cli, SharedLiteralParsers) {
  // The free parsers back both CliParser and the scheduler registry's
  // SpecOptions; whole-string matches only.
  EXPECT_EQ(parse_bool_literal("on"), true);
  EXPECT_EQ(parse_bool_literal("no"), false);
  EXPECT_EQ(parse_bool_literal("maybe"), std::nullopt);
  EXPECT_EQ(parse_int_literal("-42"), -42);
  EXPECT_EQ(parse_int_literal("12x"), std::nullopt);
  EXPECT_EQ(parse_int_literal("9223372036854775808"), std::nullopt);
  EXPECT_EQ(parse_uint64_literal("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parse_uint64_literal("-1"), std::nullopt);
  EXPECT_EQ(parse_uint64_literal(""), std::nullopt);
}

TEST(Cli, BooleanParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  CliParser cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, IntRejectsTrailingJunkAndEmpty) {
  const char* argv[] = {"prog", "--a=12x", "--b=", "--c=0x10", "--d=-7"};
  CliParser cli(5, argv);
  EXPECT_THROW((void)cli.get_int("a", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_int("b", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_int("c", 0), PreconditionError);  // base 10 only
  EXPECT_EQ(cli.get_int("d", 0), -7);
}

TEST(Cli, IntRejectsOutOfRangeInsteadOfClamping) {
  // One past INT64_MAX, far past, and one below INT64_MIN: strtoll would
  // silently clamp all three to LLONG_MAX / LLONG_MIN.
  const char* argv[] = {"prog", "--a=9223372036854775808",
                        "--b=999999999999999999999999999999",
                        "--c=-9223372036854775809",
                        "--ok=9223372036854775807"};
  CliParser cli(5, argv);
  EXPECT_THROW((void)cli.get_int("a", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_int("b", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_int("c", 0), PreconditionError);
  EXPECT_EQ(cli.get_int("ok", 0), std::numeric_limits<std::int64_t>::max());
}

TEST(Cli, Uint64ParsesFullRangeAndFallsBack) {
  const char* argv[] = {"prog", "--max=18446744073709551615", "--zero=0"};
  CliParser cli(3, argv);
  EXPECT_EQ(cli.get_uint64("max", 0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(cli.get_uint64("zero", 7), 0u);
  EXPECT_EQ(cli.get_uint64("absent", 42), 42u);
}

TEST(Cli, Uint64RejectsOutOfRangeInsteadOfClamping) {
  // One past UINT64_MAX and far past: strtoull would clamp both to
  // ULLONG_MAX. Negatives also reject — strtoull's silent wraparound
  // ("-1" -> UINT64_MAX) is exactly the bug parse_uint64_literal blocks.
  const char* argv[] = {"prog", "--a=18446744073709551616",
                        "--b=999999999999999999999999999999", "--c=-1"};
  CliParser cli(4, argv);
  EXPECT_THROW((void)cli.get_uint64("a", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_uint64("b", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_uint64("c", 0), PreconditionError);
}

TEST(Cli, Uint64RejectsTrailingJunkAndEmpty) {
  const char* argv[] = {"prog", "--a=12x", "--b=", "--c=0x10"};
  CliParser cli(4, argv);
  EXPECT_THROW((void)cli.get_uint64("a", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_uint64("b", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_uint64("c", 0), PreconditionError);
}

TEST(Cli, DoubleRejectsOverflowAndJunk) {
  const char* argv[] = {"prog", "--a=1e999", "--b=-1e999", "--c=1.5ms",
                        "--tiny=1e-999"};
  CliParser cli(5, argv);
  EXPECT_THROW((void)cli.get_double("a", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_double("b", 0), PreconditionError);
  EXPECT_THROW((void)cli.get_double("c", 0), PreconditionError);
  // Underflow denormalises towards zero — accepted, not an error.
  EXPECT_NEAR(cli.get_double("tiny", 1.0), 0.0, 1e-300);
}

TEST(Cli, ThreadsRejectsOutOfIntRange) {
  const char* argv[] = {"prog", "--threads=4294967296"};
  CliParser cli(2, argv);
  EXPECT_THROW((void)cli.threads(1), PreconditionError);
}

}  // namespace
}  // namespace bsa
