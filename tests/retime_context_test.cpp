#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/bsa.hpp"
#include "core/refine.hpp"
#include "exp/experiment.hpp"
#include "network/cost_model.hpp"
#include "sched/retime.hpp"
#include "sched/retime_context.hpp"
#include "sched/schedule.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"

namespace bsa {
namespace {

using core::BsaOptions;
using sched::Hop;
using sched::RetimeContext;
using sched::Schedule;

/// Bit-exact schedule comparison: placements, per-processor orders,
/// routes (hop links and times) and link-booking orders. Returns a
/// description of the first difference, empty when identical.
std::string diff_schedules(const Schedule& a, const Schedule& b) {
  std::ostringstream os;
  const auto& g = a.task_graph();
  const auto& topo = a.topology();
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (a.is_placed(t) != b.is_placed(t)) {
      os << "task " << t << " placement presence differs";
      return os.str();
    }
    if (!a.is_placed(t)) continue;
    if (a.proc_of(t) != b.proc_of(t) || a.start_of(t) != b.start_of(t) ||
        a.finish_of(t) != b.finish_of(t)) {
      os << "task " << t << ": (" << a.proc_of(t) << "," << a.start_of(t)
         << "," << a.finish_of(t) << ") vs (" << b.proc_of(t) << ","
         << b.start_of(t) << "," << b.finish_of(t) << ")";
      return os.str();
    }
  }
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    if (a.tasks_on(p) != b.tasks_on(p)) {
      os << "processor " << p << " order differs";
      return os.str();
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ra = a.route_of(e);
    const auto& rb = b.route_of(e);
    if (ra.size() != rb.size()) {
      os << "edge " << e << " route length " << ra.size() << " vs "
         << rb.size();
      return os.str();
    }
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k].link != rb[k].link || ra[k].start != rb[k].start ||
          ra[k].finish != rb[k].finish) {
        os << "edge " << e << " hop " << k << " differs";
        return os.str();
      }
    }
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& ba = a.bookings_on(l);
    const auto& bb = b.bookings_on(l);
    if (ba.size() != bb.size()) {
      os << "link " << l << " booking count differs";
      return os.str();
    }
    for (std::size_t i = 0; i < ba.size(); ++i) {
      if (ba[i].edge != bb[i].edge || ba[i].hop_index != bb[i].hop_index ||
          ba[i].start != bb[i].start || ba[i].finish != bb[i].finish) {
        os << "link " << l << " booking " << i << " differs";
        return os.str();
      }
    }
  }
  return {};
}

/// Run BSA twice — incremental re-timing vs full-rebuild reference — and
/// require bit-identical schedules.
void expect_engines_agree(const graph::TaskGraph& g, const net::Topology& topo,
                          const net::HeterogeneousCostModel& cm,
                          BsaOptions opt, const std::string& label) {
  opt.incremental_retime = true;
  const auto inc = core::schedule_bsa(g, topo, cm, opt);
  opt.incremental_retime = false;
  const auto full = core::schedule_bsa(g, topo, cm, opt);
  const std::string diff = diff_schedules(inc.schedule, full.schedule);
  EXPECT_TRUE(diff.empty()) << label << ": " << diff;
  EXPECT_EQ(inc.trace.migrations.size(), full.trace.migrations.size())
      << label;
  EXPECT_TRUE(sched::validate(inc.schedule, cm).ok()) << label;
}

TEST(RetimeContextProperty, BitIdenticalToFullRebuildOnRandomScenarios) {
  const std::vector<std::string> topologies{"ring", "hypercube", "clique",
                                            "random"};
  int case_index = 0;
  for (const std::string& kind : topologies) {
    for (const int size : {20, 45, 80}) {
      for (const bool per_pair : {false, true}) {
        const auto seed = derive_seed(
            2026, static_cast<std::uint64_t>(case_index), 77);
        workloads::RandomDagParams params;
        params.num_tasks = size;
        params.granularity = per_pair ? 0.5 : 2.0;
        params.seed = seed;
        const auto g = workloads::random_layered_dag(params);
        const auto topo = exp::make_topology(kind, 8, seed);
        const auto cm = exp::make_cost_model(g, topo, 1, 50, 1, 50, per_pair,
                                             derive_seed(seed, 17));
        BsaOptions opt;
        opt.seed = seed;
        std::ostringstream label;
        label << kind << "/" << size << (per_pair ? "/per-pair" : "/per-proc");
        expect_engines_agree(g, topo, cm, opt, label.str());
        ++case_index;
      }
    }
  }
}

TEST(RetimeContextProperty, BitIdenticalAcrossOptionVariants) {
  const auto seed = derive_seed(99, 5);
  workloads::RandomDagParams params;
  params.num_tasks = 60;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("hypercube", 16, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 100, 1, 100, false, derive_seed(seed, 17));

  for (const auto policy : {core::MigrationPolicy::kMakespanGuarded,
                            core::MigrationPolicy::kTaskGreedy}) {
    for (const auto gate :
         {core::GateRule::kPaper, core::GateRule::kAlwaysConsider}) {
      for (const bool insertion : {true, false}) {
        BsaOptions opt;
        opt.seed = seed;
        opt.policy = policy;
        opt.gate = gate;
        opt.insertion_slots = insertion;
        opt.max_sweeps = 3;
        std::ostringstream label;
        label << "policy=" << static_cast<int>(policy)
              << " gate=" << static_cast<int>(gate)
              << " insertion=" << insertion;
        expect_engines_agree(g, topo, cm, opt, label.str());
      }
    }
  }
}

TEST(RetimeContextProperty, BitIdenticalUnderStaticRouting) {
  const auto seed = derive_seed(7, 3);
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("hypercube", 8, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 50, 1, 50, false, derive_seed(seed, 17));
  for (const auto routing : {core::RouteDiscipline::kStaticShortestPath,
                             core::RouteDiscipline::kEcube,
                             core::RouteDiscipline::kIncremental}) {
    BsaOptions opt;
    opt.seed = seed;
    opt.routing = routing;
    opt.prune_route_cycles =
        routing == core::RouteDiscipline::kIncremental;
    expect_engines_agree(g, topo, cm, opt,
                         "routing=" +
                             std::to_string(static_cast<int>(routing)));
  }
}

// --- direct context unit tests ----------------------------------------------

struct RetimeContextFixture : ::testing::Test {
  graph::TaskGraph make_graph() {
    graph::TaskGraphBuilder b;
    const TaskId a = b.add_task(10, "A");
    const TaskId bb = b.add_task(10, "B");
    const TaskId c = b.add_task(10, "C");
    const TaskId d = b.add_task(10, "D");
    (void)b.add_edge(a, bb, 4);
    (void)b.add_edge(a, c, 4);
    (void)b.add_edge(bb, d, 4);
    (void)b.add_edge(c, d, 4);
    return b.build();
  }
  graph::TaskGraph g = make_graph();
  net::Topology topo = net::Topology::ring(3);
  net::HeterogeneousCostModel cm =
      net::HeterogeneousCostModel::homogeneous(g, topo);
  TaskId A = 0, B = 1, C = 2, D = 3;
};

TEST_F(RetimeContextFixture, FullRetimeMatchesReference) {
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 20);
  s.place_task(C, 0, 20, 30);
  s.place_task(D, 0, 30, 40);
  s.unplace_task(B);
  const LinkId l01 = topo.link_between(0, 1);
  s.set_route(0, {Hop{l01, 10, 14}});
  s.place_task(B, 1, 14, 24);
  s.set_route(2, {Hop{l01, 24, 28}});

  Schedule reference = s;
  Time mk_ref = 0;
  ASSERT_TRUE(sched::try_retime(reference, cm, &mk_ref));

  RetimeContext ctx(s, cm);
  Time mk = 0;
  ASSERT_TRUE(ctx.retime_full(&mk));
  EXPECT_DOUBLE_EQ(mk, mk_ref);
  EXPECT_TRUE(diff_schedules(s, reference).empty());
  EXPECT_EQ(ctx.stats().node_count, 4 + 2);  // 4 tasks, 2 booked hops
}

TEST_F(RetimeContextFixture, FullRetimeDetectsOrderCycle) {
  graph::TaskGraphBuilder b2;
  const TaskId x = b2.add_task(10);
  const TaskId y = b2.add_task(10);
  (void)b2.add_edge(x, y, 4);
  const graph::TaskGraph g2 = b2.build();
  const auto cm2 = net::HeterogeneousCostModel::homogeneous(g2, topo);
  Schedule s(g2, topo);
  s.place_task(y, 0, 0, 10);
  s.place_task(x, 0, 10, 20);
  RetimeContext ctx(s, cm2);
  Time mk = 0;
  EXPECT_FALSE(ctx.retime_full(&mk));
  // Schedule untouched on failure.
  EXPECT_DOUBLE_EQ(s.start_of(y), 0);
}

TEST_F(RetimeContextFixture, MigrationDeltaMatchesReference) {
  // Serial schedule on P0, then migrate B to P1 the way BSA commits it.
  Schedule s(g, topo);
  s.place_task(A, 0, 0, 10);
  s.place_task(B, 0, 10, 20);
  s.place_task(C, 0, 20, 30);
  s.place_task(D, 0, 30, 40);
  RetimeContext ctx(s, cm);

  ctx.begin_migration(B);
  const LinkId l01 = topo.link_between(0, 1);
  s.unplace_task(B);
  s.set_route(0, {Hop{l01, 10, 14}});  // A->B crosses to P1
  s.place_task(B, 1, 14, 24);
  s.set_route(2, {Hop{l01, 24, 28}});  // B->D back to P0

  Schedule reference = s;
  Time mk_ref = 0;
  ASSERT_TRUE(sched::try_retime(reference, cm, &mk_ref));

  Time mk = 0;
  ASSERT_TRUE(ctx.retime_migration(B, &mk));
  EXPECT_DOUBLE_EQ(mk, mk_ref);
  EXPECT_TRUE(diff_schedules(s, reference).empty());
  EXPECT_EQ(ctx.stats().migrations, 1);
  EXPECT_GT(ctx.stats().nodes_recomputed, 0);
}

// --- refine on the context ----------------------------------------------------

TEST(RefineRetimeDelta, ValidMonotoneAndDeterministic) {
  const auto seed = derive_seed(11, 4);
  workloads::RandomDagParams params;
  params.num_tasks = 40;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("hypercube", 8, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 50, 1, 50, false, derive_seed(seed, 17));
  BsaOptions bsa_opt;
  bsa_opt.seed = seed;
  const auto base = core::schedule_bsa(g, topo, cm, bsa_opt);

  core::RefineOptions opt;
  opt.move_eval = core::MoveEval::kRetimeDelta;
  opt.max_rounds = 2;
  const auto a = core::refine_schedule(base.schedule, cm, opt);
  const auto b = core::refine_schedule(base.schedule, cm, opt);

  EXPECT_TRUE(sched::validate(a.schedule, cm).ok());
  EXPECT_LE(a.final_length, a.initial_length);
  EXPECT_DOUBLE_EQ(a.schedule.makespan(), a.final_length);
  EXPECT_GT(a.candidates_evaluated, 0);
  // Deterministic: identical schedules across runs.
  EXPECT_TRUE(diff_schedules(a.schedule, b.schedule).empty());
  EXPECT_EQ(a.moves_applied, b.moves_applied);
}

TEST(RefineRetimeDelta, BothEvaluationModesImproveOrKeepAPoorSchedule) {
  // EFT-oblivious schedules leave headroom; both engines must close some
  // of it without ever making the schedule worse.
  const auto seed = derive_seed(23, 9);
  workloads::RandomDagParams params;
  params.num_tasks = 30;
  params.granularity = 1.0;
  params.seed = seed;
  const auto g = workloads::random_layered_dag(params);
  const auto topo = exp::make_topology("ring", 8, seed);
  const auto cm =
      exp::make_cost_model(g, topo, 1, 50, 1, 50, false, derive_seed(seed, 17));
  BsaOptions bsa_opt;
  bsa_opt.seed = seed;
  const auto base = core::schedule_bsa(g, topo, cm, bsa_opt);
  for (const auto eval :
       {core::MoveEval::kRelist, core::MoveEval::kRetimeDelta}) {
    core::RefineOptions opt;
    opt.move_eval = eval;
    const auto r = core::refine_schedule(base.schedule, cm, opt);
    EXPECT_TRUE(sched::validate(r.schedule, cm).ok());
    EXPECT_LE(r.final_length, base.schedule.makespan());
  }
}

}  // namespace
}  // namespace bsa
