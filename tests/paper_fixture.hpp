#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"

/// \file paper_fixture.hpp
/// The worked example of the paper (Figure 1 + Table 1 + the 4-processor
/// ring of Figure 2), reconstructed as documented in DESIGN.md §4:
///
///  * nominal execution costs T1..T9 = 20,30,30,40,50,40,40,40,10;
///  * edges: c12=40, c13=10, c14=10, c15=10, c17=100, c26=10, c27=10,
///    c38=10, c48=10, c69=50, c79=60, c89=50;
///  * Table 1 actual execution costs on processors P1..P4;
///  * ring P1-P2-P3-P4-P1 with homogeneous links (h' = 1).
///
/// This reconstruction reproduces the paper's analytic quantities exactly:
/// nominal CP {T1,T7,T9}, nominal serial order {T1,T2,T7,T4,T3,T8,T6,T9,T5},
/// per-processor CP lengths {240,226,235,260}, and first pivot P2.

namespace bsa::testing {

// 0-based task ids for the paper's 1-based names.
inline constexpr TaskId T1 = 0, T2 = 1, T3 = 2, T4 = 3, T5 = 4, T6 = 5,
                        T7 = 6, T8 = 7, T9 = 8;

inline graph::TaskGraph paper_task_graph() {
  graph::TaskGraphBuilder b;
  const Cost exec[9] = {20, 30, 30, 40, 50, 40, 40, 40, 10};
  for (int i = 0; i < 9; ++i) {
    (void)b.add_task(exec[i], "T" + std::to_string(i + 1));
  }
  (void)b.add_edge(T1, T2, 40);
  (void)b.add_edge(T1, T3, 10);
  (void)b.add_edge(T1, T4, 10);
  (void)b.add_edge(T1, T5, 10);
  (void)b.add_edge(T1, T7, 100);
  (void)b.add_edge(T2, T6, 10);
  (void)b.add_edge(T2, T7, 10);
  (void)b.add_edge(T3, T8, 10);
  (void)b.add_edge(T4, T8, 10);
  (void)b.add_edge(T6, T9, 50);
  (void)b.add_edge(T7, T9, 60);
  (void)b.add_edge(T8, T9, 50);
  return b.build();
}

/// Ring P1-P2-P3-P4 (0-based ids 0..3).
inline net::Topology paper_ring() { return net::Topology::ring(4); }

/// Table 1: actual execution cost of each task on P1..P4.
inline std::vector<Cost> paper_exec_matrix() {
  return {
      // P1, P2, P3, P4
      39, 7,  2,  6,   // T1
      21, 50, 57, 56,  // T2
      15, 28, 39, 6,   // T3
      54, 14, 16, 55,  // T4
      45, 42, 97, 12,  // T5
      15, 20, 57, 78,  // T6
      33, 43, 51, 60,  // T7
      51, 18, 47, 74,  // T8
      8,  16, 15, 20,  // T9
  };
}

inline net::HeterogeneousCostModel paper_cost_model(
    const graph::TaskGraph& g, const net::Topology& topo) {
  return net::HeterogeneousCostModel::from_exec_matrix(
      g, topo, paper_exec_matrix(), /*link_factor=*/1);
}

}  // namespace bsa::testing
