#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/task_graph.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"
#include "sched/timeline.hpp"

namespace bsa::sched {
namespace {

TEST(EarliestFit, EmptyTimeline) {
  EXPECT_DOUBLE_EQ(earliest_fit({}, 0, 10), 0);
  EXPECT_DOUBLE_EQ(earliest_fit({}, 7, 10), 7);
  EXPECT_DOUBLE_EQ(earliest_fit({}, -5, 10), 0);  // clamped to zero
}

TEST(EarliestFit, FitsBeforeFirstBooking) {
  const std::vector<Interval> busy{{20, 30}};
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 10), 0);
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 5, 10), 5);
  // Does not fit before: pushed after the booking.
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 15, 10), 30);
}

TEST(EarliestFit, FitsInMiddleGap) {
  const std::vector<Interval> busy{{0, 10}, {25, 40}};
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 15), 10);
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 16), 40);  // gap too small
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 12, 10), 12);
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 18, 5), 18);  // fits [18,23)
}

TEST(EarliestFit, ExactFitUsesGapBoundary) {
  const std::vector<Interval> busy{{0, 10}, {20, 30}};
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 10), 10);  // exactly fills gap
}

TEST(EarliestFit, ReadyInsideBooking) {
  const std::vector<Interval> busy{{0, 10}, {10, 20}};
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 5, 1), 20);
}

TEST(EarliestFit, ZeroDuration) {
  const std::vector<Interval> busy{{0, 10}};
  // Zero-length request fits at the boundary.
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 0), 0);
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 4, 0), 10);
  EXPECT_THROW((void)earliest_fit(busy, 0, -1), PreconditionError);
}

TEST(EarliestFit, AppendsAfterLast) {
  const std::vector<Interval> busy{{0, 10}, {10, 20}, {20, 35}};
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 0, 5), 35);
  EXPECT_DOUBLE_EQ(earliest_fit(busy, 50, 5), 50);
}

TEST(InsertInterval, KeepsSortedOrder) {
  std::vector<Interval> busy{{0, 10}, {30, 40}};
  insert_interval(busy, {15, 20});
  ASSERT_EQ(busy.size(), 3u);
  EXPECT_DOUBLE_EQ(busy[1].start, 15);
  EXPECT_TRUE(is_well_formed(busy));
}

TEST(InsertInterval, RejectsOverlap) {
  std::vector<Interval> busy{{0, 10}, {30, 40}};
  EXPECT_THROW(insert_interval(busy, {5, 12}), InvariantError);
  EXPECT_THROW(insert_interval(busy, {25, 31}), InvariantError);
  // Touching is allowed.
  EXPECT_NO_THROW(insert_interval(busy, {10, 30}));
}

TEST(IntervalsOverlap, Cases) {
  EXPECT_TRUE(intervals_overlap({0, 10}, {5, 15}));
  EXPECT_TRUE(intervals_overlap({5, 15}, {0, 10}));
  EXPECT_FALSE(intervals_overlap({0, 10}, {10, 20}));  // touching
  EXPECT_FALSE(intervals_overlap({0, 10}, {20, 30}));
  EXPECT_FALSE(intervals_overlap({5, 5}, {0, 10}));  // empty interval
}

TEST(MergeBusy, Merges) {
  const std::vector<Interval> a{{0, 5}, {20, 25}};
  const std::vector<Interval> b{{7, 9}, {30, 31}};
  const auto merged = merge_busy(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(is_well_formed(merged));
  EXPECT_DOUBLE_EQ(merged[1].start, 7);
}

TEST(IsWellFormed, DetectsProblems) {
  EXPECT_TRUE(is_well_formed({}));
  EXPECT_TRUE(is_well_formed(std::vector<Interval>{{0, 1}, {1, 2}}));
  EXPECT_FALSE(is_well_formed(std::vector<Interval>{{1, 2}, {0, 1}}));
  EXPECT_FALSE(is_well_formed(std::vector<Interval>{{0, 5}, {4, 6}}));
  EXPECT_FALSE(is_well_formed(std::vector<Interval>{{3, 2}}));
}

// --- SlotIndex ---------------------------------------------------------------

TEST(SlotIndex, EmptyAndBasics) {
  SlotIndex idx;
  idx.build({});
  EXPECT_TRUE(idx.built());
  EXPECT_DOUBLE_EQ(idx.query(0, 10), 0);
  EXPECT_DOUBLE_EQ(idx.query(7, 10), 7);
  EXPECT_DOUBLE_EQ(idx.query(-5, 10), 0);  // clamped like earliest_fit

  const std::vector<Interval> busy{{5, 10}, {12, 20}, {30, 35}};
  idx.build(busy);
  for (const Time ready : {0.0, 3.0, 5.0, 11.0, 20.0, 36.0}) {
    for (const Time dur : {0.0, 1.0, 2.0, 5.0, 10.0, 100.0}) {
      EXPECT_DOUBLE_EQ(idx.query(ready, dur), earliest_fit(busy, ready, dur))
          << "ready=" << ready << " dur=" << dur;
    }
  }
  idx.reset();
  EXPECT_FALSE(idx.built());
}

TEST(SlotIndex, TouchingIntervalsAndZeroDurations) {
  const std::vector<Interval> busy{{0, 4}, {4, 8}, {8, 8}, {10, 12}};
  SlotIndex idx;
  idx.build(busy);
  for (const Time ready : {0.0, 4.0, 8.0, 9.0, 12.5}) {
    for (const Time dur : {0.0, 1.0, 2.0, 3.0}) {
      EXPECT_DOUBLE_EQ(idx.query(ready, dur), earliest_fit(busy, ready, dur))
          << "ready=" << ready << " dur=" << dur;
    }
  }
}

/// Property: SlotIndex answers exactly match the linear scan on random
/// timelines (integral and fractional), across a sweep of queries.
TEST(SlotIndex, MatchesLinearScanOnRandomTimelines) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const bool fractional = round % 3 == 0;
    std::vector<Interval> busy;
    Time cursor = 0;
    const int intervals = static_cast<int>(rng.index(20));
    for (int i = 0; i < intervals; ++i) {
      // Gaps of zero are allowed (touching intervals).
      const Time gap = fractional ? rng.uniform_real(0.0, 7.0)
                                  : static_cast<Time>(rng.index(7));
      const Time len = fractional ? rng.uniform_real(0.0, 9.0)
                                  : static_cast<Time>(rng.index(9));
      cursor += gap;
      busy.push_back(Interval{cursor, cursor + len});
      cursor += len;
    }
    SlotIndex idx;
    idx.build(busy);
    for (int q = 0; q < 50; ++q) {
      const Time ready = fractional
                             ? rng.uniform_real(-2.0, cursor + 5.0)
                             : static_cast<Time>(rng.index(60)) - 2;
      const Time dur = fractional ? rng.uniform_real(0.0, 12.0)
                                  : static_cast<Time>(rng.index(12));
      const Time expected = earliest_fit(busy, ready, dur);
      const Time got = idx.query(ready, dur);
      ASSERT_EQ(got, expected) << "round=" << round << " ready=" << ready
                               << " dur=" << dur;
    }
  }
}

TEST(SlotIndex, RejectsNegativeDuration) {
  SlotIndex idx;
  idx.build({});
  EXPECT_THROW((void)idx.query(0, -1), PreconditionError);
}

// --- Schedule-level insertion edge cases ------------------------------------
//
// HEFT-style placement exercises earliest_task_slot in corners BSA's
// serial-injection order never reaches: slots *before* the first booking
// on a processor (a high-rank task arriving after a low-rank one was
// committed), zero-length tasks, and equal-time ties in the processor
// execution order.

/// Four independent tasks — placement machinery only.
graph::TaskGraph four_tasks() {
  graph::TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) (void)b.add_task(1);
  return b.build();
}

TEST(ScheduleSlots, InsertsBeforeFirstBooking) {
  const graph::TaskGraph g = four_tasks();
  const net::Topology topo = net::Topology::clique(2);
  Schedule s(g, topo);
  s.place_task(0, 0, 20, 30);
  // The idle prefix [0, 20) is a real slot, not dead time.
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 0, 10), 0);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 5, 10), 5);
  // Too late to fit before: pushed past the booking.
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 15, 10), 30);
  // Committing into the prefix re-sorts the execution order by time.
  s.place_task(1, 0, 0, 10);
  EXPECT_EQ(s.tasks_on(0), (std::vector<TaskId>{1, 0}));
}

TEST(ScheduleSlots, ZeroLengthTasksFitAtBoundaries) {
  const graph::TaskGraph g = four_tasks();
  const net::Topology topo = net::Topology::clique(2);
  Schedule s(g, topo);
  s.place_task(0, 0, 0, 10);
  s.place_task(1, 0, 10, 20);
  // A zero-length request inside a booking lands on the next boundary,
  // even a zero-width one between two touching bookings.
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 5, 0), 10);
  // At a boundary it fits exactly there; past the last booking it sits
  // at the ready time.
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 0, 0), 0);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 25, 0), 25);
  // And committing one keeps the timeline well-formed for later queries.
  s.place_task(2, 0, 10, 10);
  EXPECT_DOUBLE_EQ(s.earliest_task_slot(0, 0, 5), 20);
}

TEST(ScheduleSlots, EqualTimeTieOrderingIsDeterministic) {
  const graph::TaskGraph g = four_tasks();
  const net::Topology topo = net::Topology::clique(2);
  Schedule s(g, topo);
  s.place_task(0, 1, 10, 20);
  // A zero-length task at the same start sorts before the longer one
  // (order is by (start, finish)), independent of insertion order.
  s.place_task(1, 1, 10, 10);
  EXPECT_EQ(s.tasks_on(1), (std::vector<TaskId>{1, 0}));
  // Equal (start, finish): the earlier insertion keeps its position.
  s.place_task(2, 1, 10, 10);
  EXPECT_EQ(s.tasks_on(1), (std::vector<TaskId>{1, 2, 0}));
}

}  // namespace
}  // namespace bsa::sched
