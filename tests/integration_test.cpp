#include <gtest/gtest.h>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "graph/graph_io.hpp"
#include "sched/event_sim.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/retime.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/regular.hpp"

namespace bsa {
namespace {

/// End-to-end flows across modules: generate -> serialize to text ->
/// parse -> schedule with all algorithms -> validate/cross-check.
TEST(Integration, RoundTripThenScheduleAllAlgorithms) {
  workloads::CostParams cp;
  cp.granularity = 1.0;
  cp.seed = 21;
  const auto original = workloads::gaussian_elimination(10, cp);
  const auto g = graph::from_text(graph::to_text(original));
  const auto topo = net::Topology::hypercube(3);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50, 22);

  const auto bsa_result = core::schedule_bsa(g, topo, cm);
  const auto dls_result = baselines::schedule_dls(g, topo, cm);
  const auto eft_result = baselines::schedule_eft_oblivious(g, topo, cm);

  for (const sched::Schedule* s :
       {&bsa_result.schedule, &dls_result.schedule, &eft_result.schedule}) {
    const auto report = sched::validate(*s, cm);
    ASSERT_TRUE(report.ok()) << report.to_string();
    EXPECT_GE(s->makespan(), sched::schedule_length_lower_bound(g, cm));
  }
  // Gantt/listing render without error for all of them.
  EXPECT_FALSE(sched::gantt_to_string(bsa_result.schedule).empty());
  EXPECT_FALSE(sched::listing_to_string(dls_result.schedule).empty());
}

/// The headline claim of the paper, shrunk to test size: on a
/// low-connectivity topology with fine-grained communication, BSA's
/// contention-aware incremental routing should on average beat DLS.
/// Averaged over several seeds to keep the test robust rather than
/// asserting any single-instance win.
TEST(Integration, BsaBeatsDlsOnAverageOnFineGrainedRing) {
  double bsa_sum = 0;
  double dls_sum = 0;
  const int kSeeds = 6;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    workloads::RandomDagParams p;
    p.num_tasks = 60;
    p.granularity = 0.1;  // fine grained: contention dominates
    p.seed = seed;
    const auto g = workloads::random_layered_dag(p);
    const auto topo = net::Topology::ring(8);
    const auto cm = net::HeterogeneousCostModel::uniform(
        g, topo, 1, 50, 1, 50, derive_seed(seed, 77));
    bsa_sum += core::schedule_bsa(g, topo, cm).schedule_length();
    dls_sum += baselines::schedule_dls(g, topo, cm).schedule_length();
  }
  EXPECT_LT(bsa_sum, dls_sum)
      << "BSA mean " << bsa_sum / kSeeds << " vs DLS mean "
      << dls_sum / kSeeds;
}

/// Connectivity claim: both algorithms should produce shorter schedules
/// on a clique than on a ring (same instances).
TEST(Integration, HigherConnectivityShortensSchedules) {
  double ring_sum = 0;
  double clique_sum = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    workloads::RandomDagParams p;
    p.num_tasks = 50;
    p.granularity = 0.5;
    p.seed = seed;
    const auto g = workloads::random_layered_dag(p);
    const auto ring = net::Topology::ring(8);
    const auto clique = net::Topology::clique(8);
    // Note: the same uniform factors cannot be reused across topologies
    // with different link counts; use exec-focused comparison with
    // homogeneous links.
    const auto cm_ring = net::HeterogeneousCostModel::uniform(
        g, ring, 1, 50, 1, 1, derive_seed(seed, 5));
    const auto cm_clique = net::HeterogeneousCostModel::uniform(
        g, clique, 1, 50, 1, 1, derive_seed(seed, 5));
    ring_sum += core::schedule_bsa(g, ring, cm_ring).schedule_length();
    clique_sum += core::schedule_bsa(g, clique, cm_clique).schedule_length();
  }
  EXPECT_LE(clique_sum, ring_sum * 1.05);
}

/// Granularity claim: schedules get sharply longer as granularity drops.
TEST(Integration, FineGranularityInflatesScheduleLength) {
  workloads::CostParams coarse;
  coarse.granularity = 10.0;
  coarse.seed = 31;
  workloads::CostParams fine;
  fine.granularity = 0.1;
  fine.seed = 31;
  const auto g_coarse = workloads::laplace(8, coarse);
  const auto g_fine = workloads::laplace(8, fine);
  const auto topo = net::Topology::ring(8);
  const auto cm_coarse = net::HeterogeneousCostModel::uniform(
      g_coarse, topo, 1, 10, 1, 10, 3);
  const auto cm_fine =
      net::HeterogeneousCostModel::uniform(g_fine, topo, 1, 10, 1, 10, 3);
  const auto sl_coarse =
      core::schedule_bsa(g_coarse, topo, cm_coarse).schedule_length();
  const auto sl_fine =
      core::schedule_bsa(g_fine, topo, cm_fine).schedule_length();
  EXPECT_GT(sl_fine, sl_coarse);
}

/// All three algorithms agree with the independent event simulator after
/// a replay normalisation (BSA natively; DLS/EFT after replay, since
/// their append placement can leave forced slack).
TEST(Integration, ReplayNormalisationIsUniversal) {
  workloads::CostParams cp;
  cp.seed = 41;
  const auto g = workloads::fft(16, cp);
  const auto topo = net::Topology::hypercube(4);
  const auto cm =
      net::HeterogeneousCostModel::uniform(g, topo, 1, 20, 1, 20, 42);
  auto schedules = {
      core::schedule_bsa(g, topo, cm).schedule,
      baselines::schedule_dls(g, topo, cm).schedule,
      baselines::schedule_eft_oblivious(g, topo, cm).schedule,
  };
  for (sched::Schedule s : schedules) {
    (void)sched::replay_retime(s, cm);
    const auto sim = sched::simulate_execution(s, cm);
    ASSERT_TRUE(sim.completed) << sim.error;
    EXPECT_TRUE(sched::simulation_matches(s, sim));
    EXPECT_TRUE(sched::validate(s, cm).ok());
  }
}

}  // namespace
}  // namespace bsa
