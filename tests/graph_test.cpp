#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/task_graph.hpp"
#include "graph/traversal.hpp"
#include "paper_fixture.hpp"

namespace bsa::graph {
namespace {

using bsa::testing::paper_task_graph;
namespace pf = bsa::testing;

TaskGraph chain3() {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(10);
  const TaskId c = b.add_task(20);
  const TaskId d = b.add_task(30);
  (void)b.add_edge(a, c, 5);
  (void)b.add_edge(c, d, 6);
  return b.build();
}

TEST(TaskGraphBuilder, BasicConstruction) {
  const TaskGraph g = chain3();
  EXPECT_EQ(g.num_tasks(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.task_cost(0), 10);
  EXPECT_DOUBLE_EQ(g.edge_cost(0), 5);
  EXPECT_EQ(g.edge_src(1), 1);
  EXPECT_EQ(g.edge_dst(1), 2);
}

TEST(TaskGraphBuilder, DefaultNamesArePaperStyle) {
  const TaskGraph g = chain3();
  EXPECT_EQ(g.task_name(0), "T1");
  EXPECT_EQ(g.task_name(2), "T3");
}

TEST(TaskGraphBuilder, RejectsSelfLoop) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  EXPECT_THROW((void)b.add_edge(a, a, 1), PreconditionError);
}

TEST(TaskGraphBuilder, RejectsDuplicateEdge) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  const TaskId c = b.add_task(1);
  (void)b.add_edge(a, c, 1);
  EXPECT_THROW((void)b.add_edge(a, c, 2), PreconditionError);
}

TEST(TaskGraphBuilder, RejectsUnknownEndpointsAndNegativeCosts) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  EXPECT_THROW((void)b.add_edge(a, 5, 1), PreconditionError);
  EXPECT_THROW((void)b.add_edge(7, a, 1), PreconditionError);
  EXPECT_THROW((void)b.add_task(-1), PreconditionError);
  const TaskId c = b.add_task(1);
  EXPECT_THROW((void)b.add_edge(a, c, -3), PreconditionError);
}

TEST(TaskGraphBuilder, DetectsCycle) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  const TaskId c = b.add_task(1);
  const TaskId d = b.add_task(1);
  (void)b.add_edge(a, c, 1);
  (void)b.add_edge(c, d, 1);
  (void)b.add_edge(d, a, 1);
  EXPECT_THROW((void)b.build(), PreconditionError);
}

TEST(TaskGraphBuilder, RejectsEmptyGraph) {
  TaskGraphBuilder b;
  EXPECT_THROW((void)b.build(), PreconditionError);
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = paper_task_graph();
  ASSERT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks()[0], pf::T1);
  // T5 is a sink (OB task) and T9 is the CP exit.
  ASSERT_EQ(g.exit_tasks().size(), 2u);
  EXPECT_EQ(g.exit_tasks()[0], pf::T5);
  EXPECT_EQ(g.exit_tasks()[1], pf::T9);
}

TEST(TaskGraph, DegreesAndFindEdge) {
  const TaskGraph g = paper_task_graph();
  EXPECT_EQ(g.out_degree(pf::T1), 5);
  EXPECT_EQ(g.in_degree(pf::T9), 3);
  const EdgeId e = g.find_edge(pf::T1, pf::T7);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_DOUBLE_EQ(g.edge_cost(e), 100);
  EXPECT_EQ(g.find_edge(pf::T5, pf::T9), kInvalidEdge);
}

TEST(TaskGraph, TopologicalOrderIsValid) {
  const TaskGraph g = paper_task_graph();
  EXPECT_TRUE(is_topological_order(g, g.topological_order()));
}

TEST(TaskGraph, TotalsAndGranularity) {
  const TaskGraph g = chain3();
  EXPECT_DOUBLE_EQ(g.total_exec_cost(), 60);
  EXPECT_DOUBLE_EQ(g.total_comm_cost(), 11);
  EXPECT_DOUBLE_EQ(g.average_exec_cost(), 20);
  EXPECT_DOUBLE_EQ(g.average_comm_cost(), 5.5);
  EXPECT_NEAR(g.granularity(), 20 / 5.5, 1e-12);
}

TEST(TaskGraph, GranularityWithoutEdges) {
  TaskGraphBuilder b;
  (void)b.add_task(5);
  const TaskGraph g = b.build();
  EXPECT_EQ(g.granularity(), kInfiniteTime);
}

TEST(TaskGraph, WeakConnectivity) {
  EXPECT_TRUE(paper_task_graph().is_weakly_connected());
  TaskGraphBuilder b;
  (void)b.add_task(1);
  (void)b.add_task(1);
  EXPECT_FALSE(b.build().is_weakly_connected());
}

TEST(TaskGraph, IdRangeChecks) {
  const TaskGraph g = chain3();
  EXPECT_THROW((void)g.task_cost(99), PreconditionError);
  EXPECT_THROW((void)g.edge_cost(-1), PreconditionError);
  EXPECT_THROW((void)g.in_edges(17), PreconditionError);
}

// --- traversal ---------------------------------------------------------------

TEST(Traversal, AncestorMask) {
  const TaskGraph g = paper_task_graph();
  const auto mask = ancestor_mask(g, pf::T9);
  // Ancestors of T9: everything except T5 and T9 itself.
  EXPECT_TRUE(mask[pf::T1]);
  EXPECT_TRUE(mask[pf::T8]);
  EXPECT_TRUE(mask[pf::T3]);
  EXPECT_FALSE(mask[pf::T5]);
  EXPECT_FALSE(mask[pf::T9]);
}

TEST(Traversal, DescendantMask) {
  const TaskGraph g = paper_task_graph();
  const auto mask = descendant_mask(g, pf::T2);
  EXPECT_TRUE(mask[pf::T6]);
  EXPECT_TRUE(mask[pf::T7]);
  EXPECT_TRUE(mask[pf::T9]);
  EXPECT_FALSE(mask[pf::T3]);
  EXPECT_FALSE(mask[pf::T2]);
}

TEST(Traversal, Reachability) {
  const TaskGraph g = paper_task_graph();
  EXPECT_TRUE(is_reachable(g, pf::T1, pf::T9));
  EXPECT_FALSE(is_reachable(g, pf::T5, pf::T9));
  EXPECT_FALSE(is_reachable(g, pf::T9, pf::T1));
}

TEST(Traversal, TopologicalOrderChecker) {
  const TaskGraph g = chain3();
  EXPECT_TRUE(is_topological_order(g, {0, 1, 2}));
  EXPECT_FALSE(is_topological_order(g, {1, 0, 2}));  // violates 0->1
  EXPECT_FALSE(is_topological_order(g, {0, 1}));     // missing task
  EXPECT_FALSE(is_topological_order(g, {0, 1, 1})); // duplicate
}

TEST(Traversal, GraphDepth) {
  EXPECT_EQ(graph_depth(chain3()), 3);
  // Paper graph: T1 -> T2 -> T7 -> T9 and T1 -> {T3,T4} -> T8 -> T9 are
  // 4-hop chains.
  EXPECT_EQ(graph_depth(paper_task_graph()), 4);
}

}  // namespace
}  // namespace bsa::graph
