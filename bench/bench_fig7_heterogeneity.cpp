/// Reproduces Figure 7 of the paper: effect of the heterogeneity range.
/// Ten 500-task random graphs (granularity 1.0) are scheduled by BSA and
/// DLS on the 16-processor hypercube while the heterogeneity factor range
/// sweeps over U[1,10], U[1,50], U[1,100], U[1,200]. The sweep runs on
/// the parallel experiment runtime; the same ten graphs are reused for
/// every range. Graph seeds use the legacy sequential derivation
/// (derive_seed(base_seed, i), the pre-runtime serial driver's formula),
/// so the table matches the original serial driver for the same --seed;
/// pass --seed-mode grid for coordinate-derived seeds instead.
///
/// Expected shape (paper §3): both algorithms produce longer schedules as
/// the range grows (more slow processors), but BSA's schedule lengths
/// grow more slowly than DLS's — BSA adapts better to highly
/// heterogeneous systems.
///
/// Flags: --full (10 graphs of 500 tasks as in the paper; default is a
///        quicker 4 graphs of 250 tasks), --graphs N, --tasks N,
///        --per-pair, --csv, --seed S, --seed-mode legacy|grid,
///        --threads/--jobs N (0 = all cores), --out FILE (stream
///        per-scenario JSONL rows), --progress (live stderr meter).

#include <exception>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/progress.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/scheduler.hpp"

int main(int argc, char** argv) try {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const int num_graphs = static_cast<int>(cli.get_int("graphs", full ? 10 : 4));
  const int num_tasks = static_cast<int>(cli.get_int("tasks", full ? 500 : 250));

  runtime::ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {num_tasks};
  grid.granularities = {1.0};
  grid.topologies = {"hypercube"};
  grid.algos = {"dls", "bsa"};
  grid.procs = 16;
  grid.het_highs = {10, 50, 100, 200};
  grid.per_pair = cli.get_bool("per-pair", false);
  grid.seeds_per_cell = num_graphs;
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const std::string seed_mode = cli.get_string("seed-mode", "legacy");
  if (seed_mode == "legacy") {
    grid.seed_mode = runtime::SeedMode::kLegacySequential;
  } else if (seed_mode == "grid") {
    grid.seed_mode = runtime::SeedMode::kGridCoordinates;
  } else {
    std::cerr << "--seed-mode expects 'legacy' or 'grid', got '" << seed_mode
              << "'\n";
    return 1;
  }

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  const std::unique_ptr<obs::ProgressMeter> meter = obs::maybe_progress(
      cli.get_bool("progress", false), set.size(), "Figure 7");
  runtime::SweepOptions sweep_opts;
  sweep_opts.threads = cli.threads(1);
  if (meter != nullptr) sweep_opts.progress = meter->callback();
  runtime::SweepRunner runner(sweep_opts);

  std::cout << "=== Figure 7: effect of heterogeneity range ===\n"
            << num_graphs << " random graphs of " << num_tasks
            << " tasks, granularity 1.0, 16-processor hypercube, factors "
            << (grid.per_pair ? "per (task,processor) pair" : "per processor")
            << ", " << runtime::seed_mode_name(grid.seed_mode)
            << " seeds, " << set.size() << " scenarios on "
            << runner.threads() << " thread(s)\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const auto results = runner.run(set, jsonl.get());
  if (meter != nullptr) meter->finish();

  // canonical spec -> heterogeneity range -> accumulator; display labels
  // come from the registry (single source of truth, no local name table).
  const auto& registry = sched::SchedulerRegistry::global();
  std::map<std::string, std::map<int, exp::CellMean>> by_algo;
  for (const runtime::ScenarioResult& r : results) {
    by_algo[r.spec.algo][r.spec.het_hi].add(r.schedule_length);
  }
  const std::string dls_label = registry.display_label(grid.algos[0]);
  const std::string bsa_label = registry.display_label(grid.algos[1]);

  TextTable table({"heterogeneity range", dls_label, bsa_label,
                   bsa_label + "/" + dls_label});
  for (const auto& [hi, dls_mean] : by_algo.at(grid.algos[0])) {
    const double dls = dls_mean.mean();
    const double bsa = by_algo.at(grid.algos[1]).at(hi).mean();
    table.new_row()
        .cell("[1, " + std::to_string(hi) + "]")
        .cell(dls, 1)
        .cell(bsa, 1)
        .cell(dls > 0 ? bsa / dls : 0.0, 3);
  }
  if (cli.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\npaper expectation: both rows grow with the range; BSA "
               "grows more slowly (smaller BSA/DLS at larger ranges)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
