/// Reproduces Figure 7 of the paper: effect of the heterogeneity range.
/// Ten 500-task random graphs (granularity 1.0) are scheduled by BSA and
/// DLS on the 16-processor hypercube while the heterogeneity factor range
/// sweeps over U[1,10], U[1,50], U[1,100], U[1,200].
///
/// Expected shape (paper §3): both algorithms produce longer schedules as
/// the range grows (more slow processors), but BSA's schedule lengths
/// grow more slowly than DLS's — BSA adapts better to highly
/// heterogeneous systems.
///
/// Flags: --full (10 graphs of 500 tasks as in the paper; default is a
///        quicker 4 graphs of 250 tasks), --graphs N, --tasks N,
///        --per-pair, --csv, --seed S.

#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const int num_graphs = static_cast<int>(cli.get_int("graphs", full ? 10 : 4));
  const int num_tasks = static_cast<int>(cli.get_int("tasks", full ? 500 : 250));
  const bool per_pair = cli.get_bool("per-pair", false);
  const bool csv = cli.get_bool("csv", false);
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  const auto topo = exp::make_topology("hypercube", 16, base_seed);
  const std::vector<int> ranges{10, 50, 100, 200};

  std::cout << "=== Figure 7: effect of heterogeneity range ===\n"
            << num_graphs << " random graphs of " << num_tasks
            << " tasks, granularity 1.0, 16-processor hypercube, factors "
            << (per_pair ? "per (task,processor) pair" : "per processor")
            << "\n\n";

  TextTable table({"heterogeneity range", "DLS", "BSA", "BSA/DLS"});
  for (const int hi : ranges) {
    exp::CellMean dls_mean, bsa_mean;
    for (int i = 0; i < num_graphs; ++i) {
      workloads::RandomDagParams params;
      params.num_tasks = num_tasks;
      params.granularity = 1.0;
      params.seed = derive_seed(base_seed, static_cast<std::uint64_t>(i));
      const auto g = workloads::random_layered_dag(params);
      const auto cm_seed = derive_seed(params.seed, 17);
      const auto cm =
          per_pair ? net::HeterogeneousCostModel::uniform(g, topo, 1, hi, 1,
                                                          hi, cm_seed)
                   : net::HeterogeneousCostModel::uniform_processor_speeds(
                         g, topo, 1, hi, 1, hi, cm_seed);
      dls_mean.add(
          exp::run_algorithm(exp::Algo::kDls, g, topo, cm, params.seed)
              .schedule_length);
      bsa_mean.add(
          exp::run_algorithm(exp::Algo::kBsa, g, topo, cm, params.seed)
              .schedule_length);
    }
    table.new_row()
        .cell("[1, " + std::to_string(hi) + "]")
        .cell(dls_mean.mean(), 1)
        .cell(bsa_mean.mean(), 1)
        .cell(dls_mean.mean() > 0 ? bsa_mean.mean() / dls_mean.mean() : 0.0,
              3);
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\npaper expectation: both rows grow with the range; BSA "
               "grows more slowly (smaller BSA/DLS at larger ranges)\n";
  return 0;
}
