#include "fig_common.hpp"

#include <iostream>
#include <map>
#include <ostream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "workloads/random_dag.hpp"

namespace bsa::bench {
namespace {

net::HeterogeneousCostModel make_costs(const SweepConfig& cfg,
                                       const graph::TaskGraph& g,
                                       const net::Topology& topo,
                                       std::uint64_t seed) {
  if (cfg.per_pair) {
    return net::HeterogeneousCostModel::uniform(g, topo, cfg.het_lo,
                                                cfg.het_hi, cfg.het_lo,
                                                cfg.het_hi, seed);
  }
  return net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, cfg.het_lo, cfg.het_hi, cfg.het_lo, cfg.het_hi, seed);
}

graph::TaskGraph make_instance(const SweepConfig& cfg, bool regular,
                               int app_index, int size, double granularity,
                               std::uint64_t seed) {
  if (regular) {
    return exp::make_regular(exp::paper_regular_apps()[
                                 static_cast<std::size_t>(app_index)],
                             size, granularity, seed);
  }
  workloads::RandomDagParams params;
  params.num_tasks = size;
  params.granularity = granularity;
  params.seed = seed;
  (void)cfg;
  return workloads::random_layered_dag(params);
}

}  // namespace

void apply_cli(const CliParser& cli, SweepConfig* config) {
  BSA_REQUIRE(config != nullptr, "null config");
  if (cli.get_bool("full", false) || exp::full_benchmarks_requested()) {
    config->sizes = {50, 100, 150, 200, 250, 300, 350, 400, 450, 500};
    config->seeds_per_cell = 3;
  }
  config->procs = static_cast<int>(cli.get_int("procs", config->procs));
  config->seeds_per_cell =
      static_cast<int>(cli.get_int("seeds", config->seeds_per_cell));
  config->per_pair = cli.get_bool("per-pair", config->per_pair);
  config->include_eft = cli.get_bool("eft", config->include_eft);
  config->print_csv = cli.get_bool("csv", config->print_csv);
  config->base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed",
                                             static_cast<std::int64_t>(
                                                 config->base_seed)));
}

void run_and_print(const SweepConfig& cfg, const std::string& figure_name,
                   std::ostream& os) {
  BSA_REQUIRE(!cfg.sizes.empty() && !cfg.granularities.empty(),
              "empty sweep axes");
  const int num_apps =
      cfg.regular_suite ? static_cast<int>(exp::paper_regular_apps().size())
                        : 1;

  os << "=== " << figure_name << ": average schedule lengths, "
     << (cfg.regular_suite ? "regular" : "random") << " graphs, x-axis = "
     << (cfg.x_axis_granularity ? "granularity" : "graph size") << " ===\n";
  os << "suite: sizes {";
  for (std::size_t i = 0; i < cfg.sizes.size(); ++i) {
    os << (i ? "," : "") << cfg.sizes[i];
  }
  os << "} granularities {";
  for (std::size_t i = 0; i < cfg.granularities.size(); ++i) {
    os << (i ? "," : "") << cfg.granularities[i];
  }
  os << "} " << cfg.procs << " processors, heterogeneity U[" << cfg.het_lo
     << "," << cfg.het_hi << "] "
     << (cfg.per_pair ? "per (task,processor) pair" : "per processor")
     << ", " << cfg.seeds_per_cell << " seed(s)/cell\n\n";

  for (const std::string& kind : exp::paper_topologies()) {
    const net::Topology topo =
        exp::make_topology(kind, cfg.procs, cfg.base_seed);

    // x value -> per-algorithm accumulator.
    std::map<double, exp::CellMean> dls_cells, bsa_cells, eft_cells;
    bool all_valid = true;

    for (const int size : cfg.sizes) {
      for (const double gran : cfg.granularities) {
        for (int app = 0; app < num_apps; ++app) {
          for (int rep = 0; rep < cfg.seeds_per_cell; ++rep) {
            const std::uint64_t seed = derive_seed(
                cfg.base_seed,
                static_cast<std::uint64_t>(size) * 1000 +
                    static_cast<std::uint64_t>(gran * 10),
                static_cast<std::uint64_t>(app),
                static_cast<std::uint64_t>(rep));
            const auto g = make_instance(cfg, cfg.regular_suite, app, size,
                                         gran, seed);
            const auto cm = make_costs(cfg, g, topo, derive_seed(seed, 17));
            const double x = cfg.x_axis_granularity
                                 ? gran
                                 : static_cast<double>(size);
            const auto dls = exp::run_algorithm(exp::Algo::kDls, g, topo, cm,
                                                seed);
            const auto bsa = exp::run_algorithm(exp::Algo::kBsa, g, topo, cm,
                                                seed);
            all_valid = all_valid && dls.valid && bsa.valid;
            dls_cells[x].add(dls.schedule_length);
            bsa_cells[x].add(bsa.schedule_length);
            if (cfg.include_eft) {
              const auto eft = exp::run_algorithm(exp::Algo::kEft, g, topo,
                                                  cm, seed);
              all_valid = all_valid && eft.valid;
              eft_cells[x].add(eft.schedule_length);
            }
          }
        }
      }
    }

    std::vector<std::string> headers{
        cfg.x_axis_granularity ? "granularity" : "graph size", "DLS", "BSA",
        "BSA/DLS"};
    if (cfg.include_eft) headers.push_back("EFT (oblivious)");
    TextTable table(headers);
    for (const auto& [x, dls_cell] : dls_cells) {
      table.new_row();
      if (cfg.x_axis_granularity) {
        table.cell(x, 1);
      } else {
        table.cell(static_cast<long long>(x));
      }
      const double dls_mean = dls_cell.mean();
      const double bsa_mean = bsa_cells[x].mean();
      table.cell(dls_mean, 1);
      table.cell(bsa_mean, 1);
      table.cell(dls_mean > 0 ? bsa_mean / dls_mean : 0.0, 3);
      if (cfg.include_eft) table.cell(eft_cells[x].mean(), 1);
    }
    os << "-- " << topo.name() << " (" << topo.num_links() << " links) --\n";
    if (cfg.print_csv) {
      table.print_csv(os);
    } else {
      table.print(os);
    }
    os << (all_valid ? "all schedules validated OK"
                     : "WARNING: some schedules failed validation")
       << "\n\n";
  }
}

}  // namespace bsa::bench
