#include "fig_common.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/scheduler.hpp"

namespace bsa::bench {
namespace {

runtime::ScenarioGrid make_grid(const SweepConfig& cfg) {
  runtime::ScenarioGrid grid;
  // The regular suite's workload order (GE, LU, Laplace) matches the
  // pre-registry paper_regular_apps() enumeration, so instance seeds —
  // which derive from the workload's grid position — are unchanged and
  // the fig3-6 tables stay byte-identical.
  grid.workloads = cfg.regular_suite
                       ? std::vector<std::string>{"gauss", "lu", "laplace"}
                       : std::vector<std::string>{"random"};
  grid.sizes = cfg.sizes;
  grid.granularities = cfg.granularities;
  grid.topologies = exp::paper_topologies();
  grid.algos = cfg.algos;
  grid.procs = cfg.procs;
  grid.het_lo = cfg.het_lo;
  grid.het_highs = {cfg.het_hi};
  grid.per_pair = cfg.per_pair;
  grid.seeds_per_cell = cfg.seeds_per_cell;
  grid.base_seed = cfg.base_seed;
  return grid;
}

}  // namespace

void apply_cli(const CliParser& cli, SweepConfig* config) {
  BSA_REQUIRE(config != nullptr, "null config");
  if (cli.get_bool("full", false) || exp::full_benchmarks_requested()) {
    config->sizes = {50, 100, 150, 200, 250, 300, 350, 400, 450, 500};
    config->seeds_per_cell = 3;
  }
  config->procs = static_cast<int>(cli.get_int("procs", config->procs));
  config->seeds_per_cell =
      static_cast<int>(cli.get_int("seeds", config->seeds_per_cell));
  config->per_pair = cli.get_bool("per-pair", config->per_pair);
  const sched::SchedulerRegistry& registry = sched::SchedulerRegistry::global();
  if (cli.has("algo")) {
    config->algos.clear();
    // Repeatable: every --algo occurrence contributes its comma list.
    for (const std::string& value : cli.get_strings("algo")) {
      for (const std::string& spec : registry.split_spec_list(value)) {
        config->algos.push_back(spec);
      }
    }
  }
  // Legacy alias for the pre-registry boolean column toggle; skip when an
  // EFT column is already requested so scenarios aren't evaluated twice.
  if (cli.get_bool("eft", false)) {
    bool present = false;
    for (const std::string& spec : config->algos) {
      present = present || registry.canonical(spec) == "eft";
    }
    if (!present) config->algos.push_back("eft");
  }
  config->print_csv = cli.get_bool("csv", config->print_csv);
  config->base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed",
                                             static_cast<std::int64_t>(
                                                 config->base_seed)));
  config->threads = cli.threads(config->threads);
  config->out_path = cli.out_path().value_or(config->out_path);
  config->progress = cli.get_bool("progress", config->progress);
  config->trace_path = cli.get_string("trace", config->trace_path);
}

void run_and_print(const SweepConfig& cfg, const std::string& figure_name,
                   std::ostream& os) {
  BSA_REQUIRE(!cfg.sizes.empty() && !cfg.granularities.empty(),
              "empty sweep axes");
  BSA_REQUIRE(!cfg.algos.empty(), "no scheduler specs configured");

  // Canonical spec per column — the single source of truth shared with
  // the scenario enumeration and the JSONL sink — plus a display label
  // from the registry (the old hand-written name tables are gone).
  const sched::SchedulerRegistry& registry = sched::SchedulerRegistry::global();
  std::vector<std::string> columns, labels;
  for (const std::string& spec : cfg.algos) {
    columns.push_back(registry.canonical(spec));
    labels.push_back(registry.display_label(spec));
  }

  const runtime::ScenarioSet set =
      runtime::ScenarioSet::from_grid(make_grid(cfg));
  std::unique_ptr<obs::Tracer> tracer;
  if (!cfg.trace_path.empty()) tracer = std::make_unique<obs::Tracer>();
  const std::unique_ptr<obs::ProgressMeter> meter =
      obs::maybe_progress(cfg.progress, set.size(), figure_name);
  runtime::SweepOptions sweep_opts;
  sweep_opts.threads = cfg.threads;
  sweep_opts.tracer = tracer.get();
  if (meter != nullptr) sweep_opts.progress = meter->callback();
  runtime::SweepRunner runner(sweep_opts);

  os << "=== " << figure_name << ": average schedule lengths, "
     << (cfg.regular_suite ? "regular" : "random") << " graphs, x-axis = "
     << (cfg.x_axis_granularity ? "granularity" : "graph size") << " ===\n";
  os << "suite: sizes {";
  for (std::size_t i = 0; i < cfg.sizes.size(); ++i) {
    os << (i ? "," : "") << cfg.sizes[i];
  }
  os << "} granularities {";
  for (std::size_t i = 0; i < cfg.granularities.size(); ++i) {
    os << (i ? "," : "") << cfg.granularities[i];
  }
  os << "} " << cfg.procs << " processors, heterogeneity U[" << cfg.het_lo
     << "," << cfg.het_hi << "] "
     << (cfg.per_pair ? "per (task,processor) pair" : "per processor")
     << ", " << cfg.seeds_per_cell << " seed(s)/cell, " << set.size()
     << " scenarios on " << runner.threads() << " thread(s)\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (!cfg.out_path.empty()) {
    jsonl = std::make_unique<runtime::JsonlSink>(cfg.out_path);
  }
  const std::vector<runtime::ScenarioResult> results =
      runner.run(set, jsonl.get());
  if (meter != nullptr) meter->finish();

  // topology -> canonical spec -> x value -> accumulator. Results arrive
  // in enumeration order, so aggregation is deterministic too.
  struct Cells {
    std::map<std::string, std::map<double, exp::CellMean>> by_algo;
    bool all_valid = true;
  };
  std::map<std::string, Cells> per_topology;
  for (const runtime::ScenarioResult& r : results) {
    Cells& cells = per_topology[r.spec.topology];
    cells.by_algo[r.spec.algo][r.spec.x_value(cfg.x_axis_granularity)].add(
        r.schedule_length);
    cells.all_valid = cells.all_valid && r.valid;
  }

  for (const std::string& kind : exp::paper_topologies()) {
    const net::Topology topo =
        exp::make_topology(kind, cfg.procs, cfg.base_seed);
    const Cells& cells = per_topology.at(kind);

    std::vector<std::string> headers{
        cfg.x_axis_granularity ? "granularity" : "graph size"};
    headers.push_back(labels[0]);
    if (columns.size() >= 2) {
      headers.push_back(labels[1]);
      headers.push_back(labels[1] + "/" + labels[0]);
      for (std::size_t a = 2; a < columns.size(); ++a) {
        headers.push_back(labels[a]);
      }
    }
    TextTable table(headers);
    for (const auto& [x, first_cell] : cells.by_algo.at(columns[0])) {
      table.new_row();
      if (cfg.x_axis_granularity) {
        table.cell(x, 1);
      } else {
        table.cell(static_cast<long long>(x));
      }
      const double first_mean = first_cell.mean();
      table.cell(first_mean, 1);
      if (columns.size() >= 2) {
        const double second_mean = cells.by_algo.at(columns[1]).at(x).mean();
        table.cell(second_mean, 1);
        table.cell(first_mean > 0 ? second_mean / first_mean : 0.0, 3);
        for (std::size_t a = 2; a < columns.size(); ++a) {
          table.cell(cells.by_algo.at(columns[a]).at(x).mean(), 1);
        }
      }
    }
    os << "-- " << topo.name() << " (" << topo.num_links() << " links) --\n";
    if (cfg.print_csv) {
      table.print_csv(os);
    } else {
      table.print(os);
    }
    os << (cells.all_valid ? "all schedules validated OK"
                           : "WARNING: some schedules failed validation")
       << "\n\n";
  }
  if (jsonl != nullptr) {
    os << "wrote " << jsonl->rows_written() << " JSONL rows to "
       << cfg.out_path << "\n";
  }
  if (tracer != nullptr) {
    std::ofstream tf(cfg.trace_path, std::ios::trunc);
    BSA_REQUIRE(tf.good(), "cannot open trace file '" << cfg.trace_path << "'");
    tracer->write_chrome_trace(tf);
    os << "wrote " << tracer->event_count() << " trace events to "
       << cfg.trace_path << " (load in Perfetto / chrome://tracing)\n";
  }
}

int run_figure_bench(const CliParser& cli, SweepConfig config,
                     const std::string& figure_name) {
  try {
    apply_cli(cli, &config);
    run_and_print(config, figure_name, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace bsa::bench
