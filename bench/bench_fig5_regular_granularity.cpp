/// Reproduces Figure 5 of the paper: average schedule lengths of BSA and
/// DLS on the regular suite as a function of granularity (0.1, 1, 10),
/// for the four 16-processor topologies, averaged over graph sizes.
///
/// Expected shape (paper §3): schedule lengths rise sharply as
/// granularity drops; BSA's advantage over DLS is largest at granularity
/// 0.1 where message scheduling dominates; topology matters less than on
/// the size axis.
///
/// Flags: --full, --seeds N, --procs N, --per-pair, --eft, --csv, --seed S,
///        --threads/--jobs N (parallel runtime; 0 = all cores), --out FILE
///        (stream per-scenario JSONL rows).

#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const bsa::CliParser cli(argc, argv);
  bsa::bench::SweepConfig cfg;
  cfg.regular_suite = true;
  cfg.x_axis_granularity = true;
  cfg.sizes = bsa::exp::paper_sizes();
  cfg.granularities = bsa::exp::paper_granularities();
  return bsa::bench::run_figure_bench(cli, cfg, "Figure 5");
}
