/// Four-algorithm comparison (extension beyond the paper's BSA-vs-DLS):
/// BSA, DLS (Sih & Lee), MH (El-Rewini & Lewis style) and the
/// contention-oblivious EFT, across granularities and topologies on the
/// random suite. Quantifies how much of BSA's advantage comes from
/// contention-aware *decisions* (MH and DLS both route with contention;
/// EFT does not).
///
/// Flags: --tasks N, --seeds N, --per-pair, --seed S, --csv.

#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "sched/scheduler.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 100));
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bool per_pair = cli.get_bool("per-pair", false);
  const bool csv = cli.get_bool("csv", false);
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  std::cout << "=== scheduler comparison: BSA vs DLS vs MH vs EFT ===\n"
            << num_tasks << "-task random graphs, " << seeds
            << " seed(s) per cell\n\n";

  const std::vector<std::string> specs{"bsa", "dls", "mh", "eft"};
  std::vector<std::string> labels;
  for (const std::string& s : specs) {
    labels.push_back(sched::SchedulerRegistry::global().display_label(s));
  }

  for (const std::string& kind : exp::paper_topologies()) {
    const auto topo = exp::make_topology(kind, 16, base_seed);
    TextTable table({"granularity", labels[0], labels[1], labels[2],
                     labels[3], "best"});
    for (const double gran : {0.1, 1.0, 10.0}) {
      exp::CellMean means[4];
      for (int rep = 0; rep < seeds; ++rep) {
        workloads::RandomDagParams params;
        params.num_tasks = num_tasks;
        params.granularity = gran;
        params.seed = derive_seed(base_seed, static_cast<std::uint64_t>(rep),
                                  static_cast<std::uint64_t>(gran * 10));
        const auto g = workloads::random_layered_dag(params);
        const auto cm_seed = derive_seed(params.seed, 17);
        const auto cm =
            per_pair
                ? net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50,
                                                       cm_seed)
                : net::HeterogeneousCostModel::uniform_processor_speeds(
                      g, topo, 1, 50, 1, 50, cm_seed);
        for (int a = 0; a < 4; ++a) {
          means[a].add(exp::run_algorithm(specs[static_cast<std::size_t>(a)],
                                          g, topo, cm, params.seed)
                           .schedule_length);
        }
      }
      int best = 0;
      for (int a = 1; a < 4; ++a) {
        if (means[a].mean() < means[best].mean()) best = a;
      }
      table.new_row().cell(gran, 1);
      for (int a = 0; a < 4; ++a) table.cell(means[a].mean(), 1);
      table.cell(labels[static_cast<std::size_t>(best)]);
    }
    std::cout << "-- " << topo.name() << " --\n";
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << '\n';
  }
  return 0;
}
