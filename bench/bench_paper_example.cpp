/// Reproduces the paper's worked example (§2.2-2.4, Figure 1, Table 1,
/// Figure 2): the 9-task graph on the 4-processor heterogeneous ring.
///
/// Prints paper-vs-measured for every analytic quantity — the nominal
/// critical path and serial order, the per-processor CP lengths
/// (240/226/235/260), the selected pivot (P2), the serial order under
/// P2's actual costs — followed by BSA's migration trace, the final
/// Gantt chart in the style of Figure 2, and the BSA/DLS comparison.
///
/// Figure 1's exact edge weights are not recoverable from the published
/// scan; DESIGN.md §4 documents the reconstruction used here, which
/// matches all of the paper's recoverable numbers. The final schedule
/// length therefore need not equal the paper's 138 exactly.

#include <iostream>

#include "baselines/dls.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "core/serialization.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "../tests/paper_fixture.hpp"

int main() {
  using namespace bsa;
  namespace pf = bsa::testing;

  const auto g = pf::paper_task_graph();
  const auto topo = pf::paper_ring();
  const auto cm = pf::paper_cost_model(g, topo);

  std::cout << "=== Paper worked example (Figure 1 + Table 1 + Figure 2) "
               "===\n\n";

  // Nominal serialization.
  Rng rng(0);
  const auto nominal = core::serialize(g, rng);
  std::cout << "nominal critical path (paper: T1 T7 T9):        ";
  for (const TaskId t : nominal.critical_path) {
    std::cout << g.task_name(t) << ' ';
  }
  std::cout << "\nnominal serial order (paper: T1 T2 T7 T4 T3 T8 T6 T9 T5): ";
  for (const TaskId t : nominal.order) std::cout << g.task_name(t) << ' ';
  std::cout << "\n\n";

  // BSA run with full trace.
  const auto result = core::schedule_bsa(g, topo, cm);

  TextTable cps({"processor", "CP length (measured)", "CP length (paper)"});
  const char* paper_cp[] = {"240", "226", "235", "260"};
  for (ProcId p = 0; p < 4; ++p) {
    cps.new_row()
        .cell("P" + std::to_string(p + 1))
        .cell(result.trace.pivot_cp_lengths[static_cast<std::size_t>(p)], 0)
        .cell(paper_cp[p]);
  }
  cps.print(std::cout);
  std::cout << "first pivot: P" << (result.trace.first_pivot + 1)
            << " (paper: P2)\n\n";

  std::cout << "serial order on pivot (paper prints T1 T2 T6 T7 T3 T4 T8 T9 "
               "T5; see DESIGN.md on the T6/T7 tie): ";
  for (const TaskId t : result.trace.serialization.order) {
    std::cout << g.task_name(t) << ' ';
  }
  std::cout << "\ninitial serial schedule length: "
            << result.trace.initial_serial_length << "\n\n";

  std::cout << "migrations (paper narrative: T3,T4,T7(,T8,T9) leave the "
               "pivot in phase 1; T3 moves on in phase 2):\n";
  for (const auto& m : result.trace.migrations) {
    std::cout << "  phase " << m.phase << ": " << g.task_name(m.task) << " P"
              << (m.from + 1) << " -> P" << (m.to + 1) << ", finish "
              << m.old_finish << " -> " << m.new_finish
              << (m.via_vip_rule ? " (VIP rule)" : "")
              << ", schedule length " << m.makespan_after << '\n';
  }

  std::cout << "\nfinal BSA schedule (paper's Figure 2(b) reports 138 with "
               "its unrecoverable edge weights):\n";
  sched::print_listing(std::cout, result.schedule);
  std::cout << '\n';
  sched::print_gantt(std::cout, result.schedule, 96);

  const auto report = sched::validate(result.schedule, cm);
  std::cout << "\nvalidation: " << report.to_string() << '\n';

  const auto dls = baselines::schedule_dls(g, topo, cm);
  std::cout << "BSA schedule length: " << result.schedule_length()
            << "  |  DLS schedule length: " << dls.schedule_length()
            << "  |  lower bound: "
            << sched::schedule_length_lower_bound(g, cm) << '\n';
  return 0;
}
