/// Scheduling-service latency/throughput benchmark: an in-process
/// serve::Server on a temp socket, hammered through real AF_UNIX client
/// connections in two phases.
///
///   cold — every request carries a distinct seed, so each one misses
///          the schedule cache and pays for a full BSA run;
///   hot  — requests are drawn from a small hot set that the cold phase
///          of the same keys warmed, so (almost) every one is a cache
///          hit answered inline on the session thread.
///
/// The hot/cold p50 gap is the whole point of the daemon's cache; both
/// phases land in BENCH_serve.json (the repo's BENCH_*.json trajectory
/// schema) with client-side p50/p99 wall latency and the daemon's
/// serve.* counters.
///
/// Flags: --requests N per phase, --hot-keys N, --conns N, --window N,
/// --threads N (daemon pool), --size N, --out FILE, --fault SPEC
/// (arm failpoints — docs/DESIGN_FAULT.md; typed error responses are
/// then tolerated and tallied instead of fatal). With no --fault the
/// output is byte-identical to a build without the fault layer, which
/// is how CI pins the zero-cost-when-off contract.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fault/failpoint.hpp"
#include "runtime/result_sink.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::vector<double> latencies_us;
  std::uint64_t cache_hits = 0;
  std::uint64_t errors = 0;  ///< typed error responses (chaos runs only)
  double wall_s = 0;
};

/// Seed for request i of a phase: the hot phase cycles a small set, the
/// cold phase never repeats.
std::uint64_t phase_seed(bool hot, std::uint64_t i, std::uint64_t hot_keys) {
  return hot ? 1 + i % hot_keys : 1000000 + i;
}

PhaseResult run_phase(const std::string& socket, bool hot,
                      std::uint64_t requests, std::uint64_t hot_keys,
                      int conns, int window, int size) {
  PhaseResult result;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(conns));
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(conns), 0);
  std::vector<std::uint64_t> errs(static_cast<std::size_t>(conns), 0);
  std::vector<std::thread> workers;
  const Clock::time_point t0 = Clock::now();
  for (int w = 0; w < conns; ++w) {
    const std::uint64_t lo =
        requests * static_cast<std::uint64_t>(w) /
        static_cast<std::uint64_t>(conns);
    const std::uint64_t hi =
        requests * (static_cast<std::uint64_t>(w) + 1) /
        static_cast<std::uint64_t>(conns);
    workers.emplace_back([&, w, lo, hi] {
      auto client = bsa::serve::Client::connect(socket);
      std::map<std::uint64_t, Clock::time_point> in_flight;
      std::uint64_t next = lo;
      while (next < hi || !in_flight.empty()) {
        while (next < hi &&
               in_flight.size() < static_cast<std::size_t>(window)) {
          bsa::serve::Request req;
          req.size = size;
          req.seed = phase_seed(hot, next, hot_keys);
          in_flight.emplace(client.send(req), Clock::now());
          ++next;
        }
        const bsa::serve::Response resp = client.recv();
        const auto it = in_flight.find(resp.id);
        BSA_REQUIRE(it != in_flight.end(),
                    "response for unknown id " << resp.id);
        // Under an armed fault spec, typed errors are the experiment;
        // without one they are a bench bug.
        BSA_REQUIRE(resp.ok || bsa::fault::enabled(),
                    "server error: " << resp.error);
        if (!resp.ok) ++errs[static_cast<std::size_t>(w)];
        lat[static_cast<std::size_t>(w)].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      it->second)
                .count());
        if (resp.cached) ++hits[static_cast<std::size_t>(w)];
        in_flight.erase(it);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (int w = 0; w < conns; ++w) {
    auto& v = lat[static_cast<std::size_t>(w)];
    result.latencies_us.insert(result.latencies_us.end(), v.begin(), v.end());
    result.cache_hits += hits[static_cast<std::size_t>(w)];
    result.errors += errs[static_cast<std::size_t>(w)];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsa;
  try {
    const CliParser cli(argc, argv);
    const std::uint64_t requests = cli.get_uint64("requests", 400);
    const std::uint64_t hot_keys = cli.get_uint64("hot-keys", 16);
    const int conns = static_cast<int>(cli.get_int("conns", 4));
    const int window = static_cast<int>(cli.get_int("window", 8));
    const int size = static_cast<int>(cli.get_int("size", 50));
    BSA_REQUIRE(requests > 0 && hot_keys > 0 && conns > 0 && window > 0,
                "counts must be positive");

    if (cli.has("fault")) {
      fault::configure(cli.get_string("fault", ""));
      std::cout << "failpoints armed: " << fault::active_spec() << "\n";
    }

    const int threads = cli.threads(0);
    serve::ServerOptions options;
    options.socket_path =
        "bsa_bench_serve." + std::to_string(::getpid()) + ".sock";
    options.threads = threads;
    bsa::serve::Server server(std::move(options));
    server.start();

    std::cout << "=== scheduling-service latency: cold misses vs hot "
                 "cache hits ===\n"
              << requests << " requests per phase, " << conns
              << " connections x window " << window << ", " << size
              << "-task random/bsa/ring requests, hot set " << hot_keys
              << " keys\n\n";

    // Warm the hot set so the hot phase measures pure cache-hit latency.
    {
      auto client = serve::Client::connect(server.socket_path());
      for (std::uint64_t k = 0; k < hot_keys; ++k) {
        serve::Request req;
        req.size = size;
        req.seed = phase_seed(true, k, hot_keys);
        const serve::Response resp = client.call(req);
        BSA_REQUIRE(resp.ok || fault::enabled(),
                    "warmup failed: " << resp.error);
      }
    }

    const PhaseResult cold = run_phase(server.socket_path(), false, requests,
                                       hot_keys, conns, window, size);
    const PhaseResult hot = run_phase(server.socket_path(), true, requests,
                                      hot_keys, conns, window, size);
    const obs::CounterSnapshot counters = server.counters();
    server.stop();

    TextTable table({"phase", "requests", "cache hits", "p50 us", "p99 us",
                     "k req/s"});
    std::vector<runtime::BenchEntry> entries;
    for (const auto& [name, phase] :
         std::vector<std::pair<std::string, const PhaseResult*>>{
             {"serve/cold", &cold}, {"serve/hot", &hot}}) {
      StatAccumulator wall;
      for (const double us : phase->latencies_us) wall.add(us / 1000.0);
      const double p50 = percentile_of(phase->latencies_us, 50) / 1000.0;
      const double p99 = percentile_of(phase->latencies_us, 99) / 1000.0;
      table.new_row()
          .cell(name)
          .cell(static_cast<long long>(phase->latencies_us.size()))
          .cell(static_cast<long long>(phase->cache_hits))
          .cell(p50 * 1000.0, 1)
          .cell(p99 * 1000.0, 1)
          .cell(static_cast<double>(phase->latencies_us.size()) /
                    phase->wall_s / 1000.0,
                2);
      runtime::BenchEntry e;
      e.label = name;
      e.runs = phase->latencies_us.size();
      e.mean_wall_ms = wall.mean();
      e.p50_wall_ms = p50;
      e.p99_wall_ms = p99;
      e.counters = counters;
      entries.push_back(std::move(e));
    }
    table.print(std::cout);

    if (fault::enabled()) {
      std::cout << "\nchaos: cold errors=" << cold.errors
                << " hot errors=" << hot.errors << "\n";
    }
    const double cold_p50 = percentile_of(cold.latencies_us, 50);
    const double hot_p50 = percentile_of(hot.latencies_us, 50);
    BSA_REQUIRE(hot.cache_hits > 0 || fault::enabled(),
                "hot phase produced no cache hits");
    std::cout << "\nhot-set p50 speedup: "
              << (hot_p50 > 0 ? cold_p50 / hot_p50 : 0) << "x ("
              << cold_p50 << "us cold vs " << hot_p50 << "us hot)\n";

    const std::string report_path =
        cli.get_string("out", "BENCH_serve.json");
    std::ofstream report(report_path, std::ios::trunc);
    BSA_REQUIRE(report.good(), "cannot write " << report_path);
    runtime::write_bench_json(report, "serve", threads, entries);
    std::cout << "wrote " << entries.size() << " entries to " << report_path
              << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
    return 1;
  }
}
