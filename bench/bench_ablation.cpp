/// Ablation study of BSA's design choices (DESIGN.md §3).
///
/// Since the unified scheduler registry, every ablation variant is just a
/// spec string ("bsa:policy=greedy", "bsa:route=static", ...), so this
/// bench is a plain ScenarioGrid over BSA variant specs evaluated on the
/// parallel sweep runtime — no bespoke option-tweaking loops. For each
/// variant the mean schedule length over a random-graph suite (three
/// granularities on ring and hypercube) is reported.
///
///   * "bsa"                 makespan-guarded default
///   * "bsa:policy=greedy"   literal task-greedy migration
///   * "bsa:gate=always"     always-consider migration gate
///   * "bsa:vip=off"         VIP rule off
///   * "bsa:slots=append"    append-only slot search
///   * "bsa:prune=on"        route-cycle pruning on
///   * "bsa:sweeps=4"        four pivot sweeps
///   * "bsa:serial=blevel"   plain b-level serialization
///   * "bsa:route=static"    static shortest-path re-routing
///
/// Flags: --tasks N, --seeds N, --per-pair, --seed S, --algo spec[,...]
///        (override the variant list), --threads/--jobs N, --out FILE,
///        --progress (live stderr meter).

#include <exception>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/progress.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/scheduler.hpp"

int main(int argc, char** argv) try {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 80));
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));

  std::vector<std::string> variants{
      "bsa",           "bsa:policy=greedy", "bsa:gate=always",
      "bsa:vip=off",   "bsa:slots=append",  "bsa:prune=on",
      "bsa:sweeps=4",  "bsa:serial=blevel", "bsa:route=static",
  };
  if (cli.has("algo")) {
    variants.clear();
    for (const std::string& value : cli.get_strings("algo")) {
      for (const std::string& spec :
           sched::SchedulerRegistry::global().split_spec_list(value)) {
        variants.push_back(spec);
      }
    }
  }

  runtime::ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = {num_tasks};
  grid.granularities = {0.1, 1.0, 10.0};
  grid.topologies = {"ring", "hypercube"};
  grid.algos = variants;
  grid.procs = 16;
  grid.het_highs = {50};
  grid.per_pair = cli.get_bool("per-pair", false);
  grid.seeds_per_cell = seeds;
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  const std::unique_ptr<obs::ProgressMeter> meter = obs::maybe_progress(
      cli.get_bool("progress", false), set.size(), "ablation");
  runtime::SweepOptions sweep_opts;
  sweep_opts.threads = cli.threads(1);
  if (meter != nullptr) sweep_opts.progress = meter->callback();
  runtime::SweepRunner runner(sweep_opts);

  std::cout << "=== BSA design-choice ablation (registry variant grid) ===\n"
            << num_tasks << "-task random graphs, " << seeds
            << " seed(s), granularities {0.1, 1, 10}, " << set.size()
            << " scenarios on " << runner.threads() << " thread(s)\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const auto results = runner.run(set, jsonl.get());
  if (meter != nullptr) meter->finish();

  // topology -> canonical spec -> granularity -> mean schedule length.
  std::map<std::string, std::map<std::string, std::map<double, exp::CellMean>>>
      cells;
  for (const runtime::ScenarioResult& r : results) {
    cells[r.spec.topology][r.spec.algo][r.spec.granularity].add(
        r.schedule_length);
  }

  // Canonical spec per variant, preserving the requested row order (the
  // aggregation map above is keyed by canonical spec already).
  std::vector<std::string> rows;
  for (const std::string& v : variants) {
    rows.push_back(sched::SchedulerRegistry::global().canonical(v));
  }

  for (const std::string& topo_kind : grid.topologies) {
    const auto topo = exp::make_topology(topo_kind, grid.procs,
                                         grid.base_seed);
    TextTable table({"variant", "gran 0.1", "gran 1.0", "gran 10.0"});
    for (const std::string& row : rows) {
      table.new_row().cell(row);
      for (const double gran : grid.granularities) {
        table.cell(cells.at(topo_kind).at(row).at(gran).mean(), 1);
      }
    }
    std::cout << "-- " << topo.name() << " --\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected: policy=greedy blows up at granularity 0.1 (the\n"
               "makespan guard is what delivers contention awareness);\n"
               "extra sweeps help mainly at coarse granularity on the ring.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
