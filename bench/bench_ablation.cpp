/// Ablation study of BSA's design choices (DESIGN.md §3).
///
/// For each interpretation knob the bench reports mean schedule lengths
/// over a random-graph suite (three granularities on ring and hypercube):
///
///   * MigrationPolicy: makespan-guarded (default) vs literal task-greedy
///   * GateRule: paper gate vs always-consider
///   * VIP rule: on vs off
///   * Slot policy: insertion vs append-only
///   * Route-cycle pruning: off (paper) vs on
///   * Sweeps: 1 (paper) vs 4
///   * Serialization: CP/IB/OB (paper) vs plain b-level list
///   * Routing: incremental (paper) vs static shortest-path re-routing
///
/// Flags: --tasks N, --seeds N, --per-pair, --seed S.

#include <functional>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 80));
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bool per_pair = cli.get_bool("per-pair", false);
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  struct Variant {
    const char* name;
    std::function<void(core::BsaOptions&)> tweak;
  };
  const std::vector<Variant> variants{
      {"default (guarded)", [](core::BsaOptions&) {}},
      {"task-greedy (paper literal)",
       [](core::BsaOptions& o) {
         o.policy = core::MigrationPolicy::kTaskGreedy;
       }},
      {"gate: always consider",
       [](core::BsaOptions& o) { o.gate = core::GateRule::kAlwaysConsider; }},
      {"VIP rule off", [](core::BsaOptions& o) { o.vip_rule = false; }},
      {"append-only slots",
       [](core::BsaOptions& o) { o.insertion_slots = false; }},
      {"route pruning on",
       [](core::BsaOptions& o) { o.prune_route_cycles = true; }},
      {"4 sweeps", [](core::BsaOptions& o) { o.max_sweeps = 4; }},
      {"b-level serialization",
       [](core::BsaOptions& o) {
         o.serialization = core::SerializationRule::kBLevel;
       }},
      {"static shortest-path routes",
       [](core::BsaOptions& o) {
         o.routing = core::RouteDiscipline::kStaticShortestPath;
       }},
  };

  std::cout << "=== BSA design-choice ablation ===\n"
            << num_tasks << "-task random graphs, " << seeds
            << " seed(s), granularities {0.1, 1, 10}\n\n";

  for (const char* topo_kind : {"ring", "hypercube"}) {
    const auto topo = exp::make_topology(topo_kind, 16, base_seed);
    TextTable table({"variant", "gran 0.1", "gran 1.0", "gran 10.0"});
    for (const auto& variant : variants) {
      table.new_row().cell(variant.name);
      for (const double gran : {0.1, 1.0, 10.0}) {
        exp::CellMean mean;
        for (int rep = 0; rep < seeds; ++rep) {
          workloads::RandomDagParams params;
          params.num_tasks = num_tasks;
          params.granularity = gran;
          params.seed = derive_seed(base_seed,
                                    static_cast<std::uint64_t>(rep), 3);
          const auto g = workloads::random_layered_dag(params);
          const auto cm_seed = derive_seed(params.seed, 17);
          const auto cm =
              per_pair
                  ? net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1,
                                                         50, cm_seed)
                  : net::HeterogeneousCostModel::uniform_processor_speeds(
                        g, topo, 1, 50, 1, 50, cm_seed);
          core::BsaOptions opt;
          opt.seed = params.seed;
          variant.tweak(opt);
          mean.add(core::schedule_bsa(g, topo, cm, opt).schedule_length());
        }
        table.cell(mean.mean(), 1);
      }
    }
    std::cout << "-- " << topo.name() << " --\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected: task-greedy blows up at granularity 0.1 (the\n"
               "makespan guard is what delivers contention awareness);\n"
               "extra sweeps help mainly at coarse granularity on the ring.\n";
  return 0;
}
