/// Algorithm running-time comparison on the parallel experiment runtime.
///
/// The paper (§3, last paragraph) reports that BSA's and DLS's running
/// times were "about the same because the two algorithms are of
/// comparable time complexity" (O(m^2 e n) vs O(n^2 m e / ready)). This
/// bench measures both schedulers (plus the EFT ablation) across graph
/// sizes and topologies so the claim can be checked on this machine, and
/// records the perf trajectory as BENCH_runtime.json via the runtime's
/// result sink.
///
/// Timing note: per-scenario wall_ms is measured inside the scenario
/// worker, so --threads > 1 speeds the sweep up without perturbing the
/// per-algorithm means much; use --threads 1 for the most stable numbers.
///
/// Flags: --reps N (default 3), --full (adds 400-task graphs),
///        --threads/--jobs N (0 = all cores), --seed S,
///        --out FILE (JSONL rows; default BENCH_runtime.json holds the
///        aggregate report either way).

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  runtime::ScenarioGrid grid;
  grid.workload = runtime::WorkloadKind::kRandomDag;
  grid.sizes = full ? std::vector<int>{50, 100, 200, 400}
                    : std::vector<int>{50, 100, 200};
  grid.granularities = {1.0};
  grid.topologies = {"ring", "hypercube", "clique"};
  grid.algos = {exp::Algo::kBsa, exp::Algo::kDls, exp::Algo::kEft};
  grid.procs = 16;
  grid.het_highs = {50};
  grid.seeds_per_cell = reps;
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  runtime::SweepRunner runner({.threads = cli.threads(1)});

  std::cout << "=== scheduler running times (means over " << reps
            << " graphs/cell, " << set.size() << " scenarios on "
            << runner.threads() << " thread(s)) ===\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const auto results = runner.run(set, jsonl.get());

  // (topology, size, algo) -> wall-time / schedule-length accumulators,
  // keyed in enumeration order for a stable report.
  struct Cell {
    StatAccumulator wall, length;
  };
  std::vector<std::string> order;
  std::map<std::string, Cell> cells;
  for (const runtime::ScenarioResult& r : results) {
    const std::string label = std::string(exp::algo_name(r.spec.algo)) + "/" +
                              r.spec.topology + "/" +
                              std::to_string(r.spec.size);
    if (cells.find(label) == cells.end()) order.push_back(label);
    Cell& c = cells[label];
    c.wall.add(r.wall_ms);
    c.length.add(r.schedule_length);
    BSA_REQUIRE(r.valid, "invalid schedule from " << label);
  }

  TextTable table({"algo/topology/size", "mean ms", "min ms", "max ms",
                   "mean schedule length"});
  std::vector<runtime::BenchEntry> entries;
  for (const std::string& label : order) {
    const Cell& c = cells.at(label);
    table.new_row()
        .cell(label)
        .cell(c.wall.mean(), 2)
        .cell(c.wall.min(), 2)
        .cell(c.wall.max(), 2)
        .cell(c.length.mean(), 1);
    runtime::BenchEntry e;
    e.label = label;
    e.runs = c.wall.count();
    e.mean_wall_ms = c.wall.mean();
    e.mean_schedule_length = c.length.mean();
    entries.push_back(std::move(e));
  }
  table.print(std::cout);

  const std::string report_path = "BENCH_runtime.json";
  std::ofstream report(report_path, std::ios::trunc);
  BSA_REQUIRE(report.good(), "cannot write " << report_path);
  runtime::write_bench_json(report, "runtime", runner.threads(), entries);
  std::cout << "\nwrote " << entries.size() << " aggregate entries to "
            << report_path << '\n';
  return 0;
}
