/// Algorithm running-time comparison (google-benchmark).
///
/// The paper (§3, last paragraph) reports that BSA's and DLS's running
/// times were "about the same because the two algorithms are of
/// comparable time complexity" (O(m^2 e n) vs O(n^2 m e / ready)). This
/// bench measures both schedulers (plus the EFT ablation) across graph
/// sizes and topologies so the claim can be checked on this machine.

#include <benchmark/benchmark.h>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "workloads/random_dag.hpp"

namespace {

using namespace bsa;

struct Instance {
  graph::TaskGraph g;
  net::Topology topo;
  net::HeterogeneousCostModel cm;
};

Instance make_instance(int n, const char* topo_kind) {
  workloads::RandomDagParams params;
  params.num_tasks = n;
  params.granularity = 1.0;
  params.seed = 42;
  auto g = workloads::random_layered_dag(params);
  auto topo = exp::make_topology(topo_kind, 16, 1);
  auto cm = net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, 1, 50, 1, 50, 7);
  return Instance{std::move(g), std::move(topo), std::move(cm)};
}

void BM_Bsa(benchmark::State& state, const char* topo_kind) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      topo_kind);
  for (auto _ : state) {
    auto result = core::schedule_bsa(inst.g, inst.topo, inst.cm);
    benchmark::DoNotOptimize(result.schedule_length());
  }
  state.SetComplexityN(state.range(0));
}

void BM_Dls(benchmark::State& state, const char* topo_kind) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      topo_kind);
  for (auto _ : state) {
    auto result = baselines::schedule_dls(inst.g, inst.topo, inst.cm);
    benchmark::DoNotOptimize(result.schedule_length());
  }
  state.SetComplexityN(state.range(0));
}

void BM_Eft(benchmark::State& state, const char* topo_kind) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      topo_kind);
  for (auto _ : state) {
    auto result =
        baselines::schedule_eft_oblivious(inst.g, inst.topo, inst.cm);
    benchmark::DoNotOptimize(result.schedule_length());
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Bsa, ring, "ring")
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_Dls, ring, "ring")
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_Eft, ring, "ring")
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_Bsa, hypercube, "hypercube")
    ->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Dls, hypercube, "hypercube")
    ->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Bsa, clique, "clique")
    ->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Dls, clique, "clique")
    ->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
