/// Algorithm running-time comparison on the parallel experiment runtime.
///
/// The paper (§3, last paragraph) reports that BSA's and DLS's running
/// times were "about the same because the two algorithms are of
/// comparable time complexity" (O(m^2 e n) vs O(n^2 m e / ready)). This
/// bench measures both schedulers (plus the EFT ablation) across graph
/// sizes and topologies so the claim can be checked on this machine, and
/// records the perf trajectory as BENCH_runtime.json via the runtime's
/// result sink.
///
/// A second section times BSA's re-timing engines head to head on the
/// largest graphs: the per-migration full constraint-graph rebuild
/// (sched::try_retime, "before") against the persistent incremental
/// RetimeContext ("after"); both rows land in BENCH_runtime.json as
/// bsa-retime-full/... and bsa-retime-incremental/... entries so the
/// speedup is tracked run over run. The two engines produce bit-identical
/// schedules (enforced here and by retime_context_test).
///
/// A third section times the guarded-migration engines on dense
/// high-rejection scenarios (gate=always, multi-sweep): transactional
/// rollback (Schedule::Transaction journal, the default) against the
/// whole-schedule snapshot reference, crossed with the pooled
/// (scratch-arena) vs fresh (per-call-allocating) neighbour evaluators.
/// All four mode combinations are required to produce identical
/// schedules; rows land in BENCH_runtime.json as
/// bsa-guarded-<rollback>-<eval>/... entries.
///
/// Timing note: per-scenario wall_ms is measured inside the scenario
/// worker, so --threads > 1 speeds the sweep up without perturbing the
/// per-algorithm means much; use --threads 1 for the most stable numbers.
///
/// Flags: --reps N (default 3), --full (adds 400-task graphs),
///        --threads/--jobs N (0 = all cores), --seed S,
///        --out FILE (JSONL rows; default BENCH_runtime.json holds the
///        aggregate report either way),
///        --progress (live stderr meter for the scenario sweep),
///        --quick (CI smoke: only the rollback/eval-mode equality check
///        on a small scenario; writes no report file, fails loudly if
///        any mode combination diverges).
///
/// BENCH_runtime.json entries carry p50/p99 wall-time percentiles next
/// to the historical means, plus each cell's summed deterministic
/// algorithm counters (see docs/DESIGN_OBS.md).

#include <chrono>
#include <fstream>
#include <iostream>
#include <utility>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "workloads/random_dag.hpp"

namespace {

/// Time one BSA run; returns (wall ms, schedule length).
std::pair<double, bsa::Time> timed_bsa(const bsa::graph::TaskGraph& g,
                                       const bsa::net::Topology& topo,
                                       const bsa::net::HeterogeneousCostModel& cm,
                                       std::uint64_t seed, bool incremental) {
  bsa::core::BsaOptions opt;
  opt.seed = seed;
  opt.incremental_retime = incremental;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = bsa::core::schedule_bsa(g, topo, cm, opt);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(t1 - t0).count(),
          result.schedule.makespan()};
}

/// One guarded-BSA timing under explicit rollback/eval engines; returns
/// (wall ms, schedule length, committed migrations, rejected migrations).
struct GuardedRun {
  double wall_ms = 0;
  bsa::Time length = 0;
  std::size_t migrations = 0;
  std::int64_t rejections = 0;
};
GuardedRun timed_guarded_bsa(const bsa::graph::TaskGraph& g,
                             const bsa::net::Topology& topo,
                             const bsa::net::HeterogeneousCostModel& cm,
                             std::uint64_t seed, bool insertion_slots,
                             bool snapshot_rollback, bool pooled_eval) {
  bsa::core::BsaOptions opt;
  opt.seed = seed;
  // High-rejection configuration: static re-routing of every incoming
  // message (the evaluator's worst case), every pivot task examined,
  // several sweeps — the makespan guard fires on most attempts.
  opt.routing = bsa::core::RouteDiscipline::kStaticShortestPath;
  opt.gate = bsa::core::GateRule::kAlwaysConsider;
  opt.max_sweeps = 3;
  opt.insertion_slots = insertion_slots;
  opt.snapshot_rollback = snapshot_rollback;
  opt.pooled_eval = pooled_eval;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = bsa::core::schedule_bsa(g, topo, cm, opt);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(t1 - t0).count(),
          result.schedule.makespan(), result.trace.migrations.size(),
          result.trace.rejected_migrations};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const bool quick = cli.get_bool("quick", false);
  const int reps = quick ? 1 : static_cast<int>(cli.get_int("reps", 3));

  // --- guarded rollback & evaluation engines --------------------------------
  // Dense graphs + always-consider gating: the guard rejects a large
  // share of migrations, which is exactly where the rollback engine
  // dominates. Every (rollback, eval) combination must produce an
  // identical schedule — CI runs this with --quick as a divergence smoke.
  const auto run_rollback_section =
      [&](std::vector<runtime::BenchEntry>& out) {
        const std::vector<int> sizes =
            quick ? std::vector<int>{60}
                  : (full ? std::vector<int>{200, 400}
                          : std::vector<int>{200});
        const std::uint64_t base_seed =
            static_cast<std::uint64_t>(cli.get_int("seed", 42));
        struct Mode {
          const char* label;
          bool snapshot = false;
          bool pooled = false;
        };
        const Mode modes[] = {
            {"bsa-guarded-snapshot-fresh", true, false},  // legacy reference
            {"bsa-guarded-snapshot-pooled", true, true},
            {"bsa-guarded-txn-fresh", false, false},
            {"bsa-guarded-txn-pooled", false, true},  // default engines
        };
        std::cout << "\n=== guarded rollback & eval engines (static routing, "
                     "gate=always, sweeps=3, dense graphs, 16 procs) ===\n\n";
        TextTable table({"scenario/size", "snap+fresh ms", "txn+pooled ms",
                         "speedup", "rejected/committed", "schedule length"});
        // Insertion-based slots are the paper default; append-only slots
        // never create re-timing order cycles, so the expensive
        // replay-fallback noise vanishes and the rollback/eval engines
        // themselves dominate the end-to-end time.
        for (const bool insertion : {true, false}) {
          const std::string scenario =
              std::string("clique-") + (insertion ? "insert" : "append");
          const auto topo = exp::make_topology("clique", 16, base_seed);
          for (const int size : sizes) {
            StatAccumulator ms[4];
            std::vector<double> ms_samples[4];
            StatAccumulator lengths;
            std::int64_t rejected = 0;
            std::size_t committed = 0;
            for (int rep = 0; rep < reps; ++rep) {
              workloads::RandomDagParams params;
              params.num_tasks = size;
              params.granularity = 1.0;
              params.max_preds = 10;
              params.seed = derive_seed(base_seed,
                                        static_cast<std::uint64_t>(rep), 7);
              const auto g = workloads::random_layered_dag(params);
              const auto cm = exp::make_cost_model(
                  g, topo, 1, 50, 1, 50, false, derive_seed(params.seed, 17));
              GuardedRun runs[4];
              for (int m = 0; m < 4; ++m) {
                runs[m] = timed_guarded_bsa(g, topo, cm, params.seed,
                                            insertion, modes[m].snapshot,
                                            modes[m].pooled);
                ms[m].add(runs[m].wall_ms);
                ms_samples[m].push_back(runs[m].wall_ms);
                BSA_REQUIRE(
                    runs[m].length == runs[0].length &&
                        runs[m].migrations == runs[0].migrations &&
                        runs[m].rejections == runs[0].rejections,
                    "rollback/eval mode " << modes[m].label
                                          << " diverged on " << scenario
                                          << "/" << size << " rep " << rep);
              }
              lengths.add(runs[0].length);
              rejected += runs[0].rejections;
              committed += runs[0].migrations;
            }
            table.new_row()
                .cell(scenario + "/" + std::to_string(size))
                .cell(ms[0].mean(), 2)
                .cell(ms[3].mean(), 2)
                .cell(ms[3].mean() > 0 ? ms[0].mean() / ms[3].mean() : 0.0, 2)
                .cell(std::to_string(rejected) + "/" +
                      std::to_string(committed))
                .cell(lengths.mean(), 1);
            for (int m = 0; m < 4; ++m) {
              runtime::BenchEntry e;
              e.label = std::string(modes[m].label) + "/" + scenario + "/" +
                        std::to_string(size);
              e.runs = static_cast<int>(ms[m].count());
              e.mean_wall_ms = ms[m].mean();
              e.p50_wall_ms = percentile_of(ms_samples[m], 50);
              e.p99_wall_ms = percentile_of(ms_samples[m], 99);
              e.mean_schedule_length = lengths.mean();
              out.push_back(std::move(e));
            }
          }
        }
        table.print(std::cout);
      };

  if (quick) {
    std::vector<runtime::BenchEntry> entries;
    run_rollback_section(entries);
    std::cout << "\nquick mode: rollback/eval engines agree on all "
              << entries.size() / 4 << " scenario(s)\n";
    return 0;
  }

  runtime::ScenarioGrid grid;
  grid.workloads = {"random"};
  grid.sizes = full ? std::vector<int>{50, 100, 200, 400}
                    : std::vector<int>{50, 100, 200};
  grid.granularities = {1.0};
  grid.topologies = {"ring", "hypercube", "clique"};
  grid.algos = {"bsa", "dls", "eft"};
  grid.procs = 16;
  grid.het_highs = {50};
  grid.seeds_per_cell = reps;
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  const std::unique_ptr<obs::ProgressMeter> meter = obs::maybe_progress(
      cli.get_bool("progress", false), set.size(), "bench_runtime");
  runtime::SweepOptions sweep_opts;
  sweep_opts.threads = cli.threads(1);
  if (meter != nullptr) sweep_opts.progress = meter->callback();
  runtime::SweepRunner runner(sweep_opts);

  std::cout << "=== scheduler running times (means over " << reps
            << " graphs/cell, " << set.size() << " scenarios on "
            << runner.threads() << " thread(s)) ===\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const auto results = runner.run(set, jsonl.get());
  if (meter != nullptr) meter->finish();

  // (topology, size, algo) -> wall-time / schedule-length accumulators,
  // keyed in enumeration order for a stable report.
  struct Cell {
    StatAccumulator wall, length;
    std::vector<double> wall_samples;
    obs::Registry counters;
  };
  std::vector<std::string> order;
  std::map<std::string, Cell> cells;
  for (const runtime::ScenarioResult& r : results) {
    // Labels use the canonical registry spec ("bsa/ring/100"), the same
    // spelling the JSONL rows carry.
    const std::string label = r.spec.algo + "/" + r.spec.topology + "/" +
                              std::to_string(r.spec.size);
    if (cells.find(label) == cells.end()) order.push_back(label);
    Cell& c = cells[label];
    c.wall.add(r.wall_ms);
    c.wall_samples.push_back(r.wall_ms);
    c.length.add(r.schedule_length);
    c.counters.merge(r.counters);
    BSA_REQUIRE(r.valid, "invalid schedule from " << label);
  }

  TextTable table({"algo/topology/size", "mean ms", "p50 ms", "p99 ms",
                   "min ms", "max ms", "mean schedule length"});
  std::vector<runtime::BenchEntry> entries;
  for (const std::string& label : order) {
    const Cell& c = cells.at(label);
    const double p50 = percentile_of(c.wall_samples, 50);
    const double p99 = percentile_of(c.wall_samples, 99);
    table.new_row()
        .cell(label)
        .cell(c.wall.mean(), 2)
        .cell(p50, 2)
        .cell(p99, 2)
        .cell(c.wall.min(), 2)
        .cell(c.wall.max(), 2)
        .cell(c.length.mean(), 1);
    runtime::BenchEntry e;
    e.label = label;
    e.runs = c.wall.count();
    e.mean_wall_ms = c.wall.mean();
    e.p50_wall_ms = p50;
    e.p99_wall_ms = p99;
    e.mean_schedule_length = c.length.mean();
    e.counters = c.counters.snapshot();
    entries.push_back(std::move(e));
  }
  table.print(std::cout);

  // --- re-timing engines, before vs after -----------------------------------
  // The incremental RetimeContext replaced the per-migration full rebuild
  // as BSA's default; time both on the largest graphs of the sweep.
  const int retime_size = grid.sizes.back();
  std::cout << "\n=== BSA re-timing engines on " << retime_size
            << "-task graphs (full rebuild vs incremental context) ===\n\n";
  TextTable retime_table({"topology", "full ms", "incremental ms", "speedup",
                          "schedule length"});
  for (const std::string& topo_kind : grid.topologies) {
    const auto topo = exp::make_topology(topo_kind, grid.procs,
                                         grid.base_seed);
    StatAccumulator full_ms, inc_ms, lengths;
    std::vector<double> full_samples, inc_samples;
    for (int rep = 0; rep < reps; ++rep) {
      workloads::RandomDagParams params;
      params.num_tasks = retime_size;
      params.granularity = 1.0;
      params.seed = derive_seed(grid.base_seed,
                                static_cast<std::uint64_t>(rep), 99);
      const auto g = workloads::random_layered_dag(params);
      const auto cm = exp::make_cost_model(g, topo, 1, 50, 1, 50, false,
                                           derive_seed(params.seed, 17));
      const auto [ms_full, len_full] =
          timed_bsa(g, topo, cm, params.seed, /*incremental=*/false);
      const auto [ms_inc, len_inc] =
          timed_bsa(g, topo, cm, params.seed, /*incremental=*/true);
      BSA_REQUIRE(len_full == len_inc,
                  "re-timing engines disagree on " << topo_kind << " rep "
                                                   << rep);
      full_ms.add(ms_full);
      full_samples.push_back(ms_full);
      inc_ms.add(ms_inc);
      inc_samples.push_back(ms_inc);
      lengths.add(len_full);
    }
    retime_table.new_row()
        .cell(topo_kind)
        .cell(full_ms.mean(), 2)
        .cell(inc_ms.mean(), 2)
        .cell(inc_ms.mean() > 0 ? full_ms.mean() / inc_ms.mean() : 0.0, 2)
        .cell(lengths.mean(), 1);
    runtime::BenchEntry before;
    before.label = "bsa-retime-full/" + topo_kind + "/" +
                   std::to_string(retime_size);
    before.runs = static_cast<int>(full_ms.count());
    before.mean_wall_ms = full_ms.mean();
    before.p50_wall_ms = percentile_of(full_samples, 50);
    before.p99_wall_ms = percentile_of(full_samples, 99);
    before.mean_schedule_length = lengths.mean();
    entries.push_back(std::move(before));
    runtime::BenchEntry after;
    after.label = "bsa-retime-incremental/" + topo_kind + "/" +
                  std::to_string(retime_size);
    after.runs = static_cast<int>(inc_ms.count());
    after.mean_wall_ms = inc_ms.mean();
    after.p50_wall_ms = percentile_of(inc_samples, 50);
    after.p99_wall_ms = percentile_of(inc_samples, 99);
    after.mean_schedule_length = lengths.mean();
    entries.push_back(std::move(after));
  }
  retime_table.print(std::cout);

  run_rollback_section(entries);

  const std::string report_path = "BENCH_runtime.json";
  std::ofstream report(report_path, std::ios::trunc);
  BSA_REQUIRE(report.good(), "cannot write " << report_path);
  runtime::write_bench_json(report, "runtime", runner.threads(), entries);
  std::cout << "\nwrote " << entries.size() << " aggregate entries to "
            << report_path << '\n';
  return 0;
}
