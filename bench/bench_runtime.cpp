/// Algorithm running-time comparison on the parallel experiment runtime.
///
/// The paper (§3, last paragraph) reports that BSA's and DLS's running
/// times were "about the same because the two algorithms are of
/// comparable time complexity" (O(m^2 e n) vs O(n^2 m e / ready)). This
/// bench measures both schedulers (plus the EFT ablation) across graph
/// sizes and topologies so the claim can be checked on this machine, and
/// records the perf trajectory as BENCH_runtime.json via the runtime's
/// result sink.
///
/// A second section times BSA's re-timing engines head to head on the
/// largest graphs: the per-migration full constraint-graph rebuild
/// (sched::try_retime, "before") against the persistent incremental
/// RetimeContext ("after"); both rows land in BENCH_runtime.json as
/// bsa-retime-full/... and bsa-retime-incremental/... entries so the
/// speedup is tracked run over run. The two engines produce bit-identical
/// schedules (enforced here and by retime_context_test).
///
/// Timing note: per-scenario wall_ms is measured inside the scenario
/// worker, so --threads > 1 speeds the sweep up without perturbing the
/// per-algorithm means much; use --threads 1 for the most stable numbers.
///
/// Flags: --reps N (default 3), --full (adds 400-task graphs),
///        --threads/--jobs N (0 = all cores), --seed S,
///        --out FILE (JSONL rows; default BENCH_runtime.json holds the
///        aggregate report either way).

#include <chrono>
#include <fstream>
#include <iostream>
#include <utility>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "workloads/random_dag.hpp"

namespace {

/// Time one BSA run; returns (wall ms, schedule length).
std::pair<double, bsa::Time> timed_bsa(const bsa::graph::TaskGraph& g,
                                       const bsa::net::Topology& topo,
                                       const bsa::net::HeterogeneousCostModel& cm,
                                       std::uint64_t seed, bool incremental) {
  bsa::core::BsaOptions opt;
  opt.seed = seed;
  opt.incremental_retime = incremental;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = bsa::core::schedule_bsa(g, topo, cm, opt);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(t1 - t0).count(),
          result.schedule.makespan()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  runtime::ScenarioGrid grid;
  grid.workload = runtime::WorkloadKind::kRandomDag;
  grid.sizes = full ? std::vector<int>{50, 100, 200, 400}
                    : std::vector<int>{50, 100, 200};
  grid.granularities = {1.0};
  grid.topologies = {"ring", "hypercube", "clique"};
  grid.algos = {"bsa", "dls", "eft"};
  grid.procs = 16;
  grid.het_highs = {50};
  grid.seeds_per_cell = reps;
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  runtime::SweepRunner runner({.threads = cli.threads(1)});

  std::cout << "=== scheduler running times (means over " << reps
            << " graphs/cell, " << set.size() << " scenarios on "
            << runner.threads() << " thread(s)) ===\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const auto results = runner.run(set, jsonl.get());

  // (topology, size, algo) -> wall-time / schedule-length accumulators,
  // keyed in enumeration order for a stable report.
  struct Cell {
    StatAccumulator wall, length;
  };
  std::vector<std::string> order;
  std::map<std::string, Cell> cells;
  for (const runtime::ScenarioResult& r : results) {
    // Labels use the canonical registry spec ("bsa/ring/100"), the same
    // spelling the JSONL rows carry.
    const std::string label = r.spec.algo + "/" + r.spec.topology + "/" +
                              std::to_string(r.spec.size);
    if (cells.find(label) == cells.end()) order.push_back(label);
    Cell& c = cells[label];
    c.wall.add(r.wall_ms);
    c.length.add(r.schedule_length);
    BSA_REQUIRE(r.valid, "invalid schedule from " << label);
  }

  TextTable table({"algo/topology/size", "mean ms", "min ms", "max ms",
                   "mean schedule length"});
  std::vector<runtime::BenchEntry> entries;
  for (const std::string& label : order) {
    const Cell& c = cells.at(label);
    table.new_row()
        .cell(label)
        .cell(c.wall.mean(), 2)
        .cell(c.wall.min(), 2)
        .cell(c.wall.max(), 2)
        .cell(c.length.mean(), 1);
    runtime::BenchEntry e;
    e.label = label;
    e.runs = c.wall.count();
    e.mean_wall_ms = c.wall.mean();
    e.mean_schedule_length = c.length.mean();
    entries.push_back(std::move(e));
  }
  table.print(std::cout);

  // --- re-timing engines, before vs after -----------------------------------
  // The incremental RetimeContext replaced the per-migration full rebuild
  // as BSA's default; time both on the largest graphs of the sweep.
  const int retime_size = grid.sizes.back();
  std::cout << "\n=== BSA re-timing engines on " << retime_size
            << "-task graphs (full rebuild vs incremental context) ===\n\n";
  TextTable retime_table({"topology", "full ms", "incremental ms", "speedup",
                          "schedule length"});
  for (const std::string& topo_kind : grid.topologies) {
    const auto topo = exp::make_topology(topo_kind, grid.procs,
                                         grid.base_seed);
    StatAccumulator full_ms, inc_ms, lengths;
    for (int rep = 0; rep < reps; ++rep) {
      workloads::RandomDagParams params;
      params.num_tasks = retime_size;
      params.granularity = 1.0;
      params.seed = derive_seed(grid.base_seed,
                                static_cast<std::uint64_t>(rep), 99);
      const auto g = workloads::random_layered_dag(params);
      const auto cm = exp::make_cost_model(g, topo, 1, 50, 1, 50, false,
                                           derive_seed(params.seed, 17));
      const auto [ms_full, len_full] =
          timed_bsa(g, topo, cm, params.seed, /*incremental=*/false);
      const auto [ms_inc, len_inc] =
          timed_bsa(g, topo, cm, params.seed, /*incremental=*/true);
      BSA_REQUIRE(len_full == len_inc,
                  "re-timing engines disagree on " << topo_kind << " rep "
                                                   << rep);
      full_ms.add(ms_full);
      inc_ms.add(ms_inc);
      lengths.add(len_full);
    }
    retime_table.new_row()
        .cell(topo_kind)
        .cell(full_ms.mean(), 2)
        .cell(inc_ms.mean(), 2)
        .cell(inc_ms.mean() > 0 ? full_ms.mean() / inc_ms.mean() : 0.0, 2)
        .cell(lengths.mean(), 1);
    runtime::BenchEntry before;
    before.label = "bsa-retime-full/" + topo_kind + "/" +
                   std::to_string(retime_size);
    before.runs = static_cast<int>(full_ms.count());
    before.mean_wall_ms = full_ms.mean();
    before.mean_schedule_length = lengths.mean();
    entries.push_back(std::move(before));
    runtime::BenchEntry after;
    after.label = "bsa-retime-incremental/" + topo_kind + "/" +
                  std::to_string(retime_size);
    after.runs = static_cast<int>(inc_ms.count());
    after.mean_wall_ms = inc_ms.mean();
    after.mean_schedule_length = lengths.mean();
    entries.push_back(std::move(after));
  }
  retime_table.print(std::cout);

  const std::string report_path = "BENCH_runtime.json";
  std::ofstream report(report_path, std::ios::trunc);
  BSA_REQUIRE(report.good(), "cannot write " << report_path);
  runtime::write_bench_json(report, "runtime", runner.threads(), entries);
  std::cout << "\nwrote " << entries.size() << " aggregate entries to "
            << report_path << '\n';
  return 0;
}
