/// Workload-suite bench: every registered workload × the full scheduler
/// portfolio ({bsa, dls, mh, eft, heft, peft, sa}) on
/// mesh/hypercube/clique topologies, evaluated on the parallel
/// experiment runtime.
///
///   $ ./bench_workloads [--threads 0] [--size 80] [--seeds 2]
///                       [--full] [--quick] [--out runs.jsonl] [--csv]
///                       [--progress]
///
/// --quick shrinks the grid (size 30, 1 seed/cell) for CI smoke runs
/// that only assert the artefact shape.
///
/// Prints one table per topology (rows = workloads, columns = algorithm
/// mean schedule lengths plus the BSA/DLS ratio) and writes aggregate
/// <workload>/<topology>/<algo> entries to BENCH_workloads.json.
/// Deterministic at any --threads value.

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workload_registry.hpp"

namespace {

using namespace bsa;

constexpr const char* kAlgos[] = {"bsa",  "dls",  "mh", "eft",
                                  "heft", "peft", "sa"};
constexpr const char* kTopologies[] = {"mesh", "hypercube", "clique"};

int run(const CliParser& cli) {
  const bool full =
      cli.get_bool("full", false) || exp::full_benchmarks_requested();
  const bool quick = cli.get_bool("quick", false);
  runtime::ScenarioGrid grid;
  grid.workloads = workloads::WorkloadRegistry::global().names();
  grid.sizes = {static_cast<int>(
      cli.get_int("size", quick ? 30 : (full ? 200 : 80)))};
  grid.granularities = {cli.get_double("gran", 1.0)};
  grid.topologies = {kTopologies, kTopologies + std::size(kTopologies)};
  grid.algos = {kAlgos, kAlgos + std::size(kAlgos)};
  grid.procs = static_cast<int>(cli.get_int("procs", 16));
  grid.het_highs = {static_cast<int>(cli.get_int("het", 50))};
  grid.seeds_per_cell = static_cast<int>(
      cli.get_int("seeds", quick ? 1 : (full ? 5 : 2)));
  grid.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  const runtime::ScenarioSet set = runtime::ScenarioSet::from_grid(grid);
  const std::unique_ptr<obs::ProgressMeter> meter = obs::maybe_progress(
      cli.get_bool("progress", false), set.size(), "workloads");
  runtime::SweepOptions sweep_opts;
  sweep_opts.threads = cli.threads(1);
  if (meter != nullptr) sweep_opts.progress = meter->callback();
  runtime::SweepRunner runner(sweep_opts);
  std::cout << "=== workload suite: " << grid.workloads.size()
            << " workloads x " << grid.algos.size() << " algorithms x "
            << grid.topologies.size() << " topologies, target size "
            << grid.sizes[0] << ", " << grid.seeds_per_cell
            << " seed(s)/cell, " << set.size() << " scenarios on "
            << runner.threads() << " thread(s) ===\n\n";

  std::unique_ptr<runtime::JsonlSink> jsonl;
  if (const auto out = cli.out_path()) {
    jsonl = std::make_unique<runtime::JsonlSink>(*out);
  }
  const std::vector<runtime::ScenarioResult> results =
      runner.run(set, jsonl.get());
  if (meter != nullptr) meter->finish();
  if (jsonl != nullptr) jsonl->flush();

  // topology -> workload -> algo -> means. Enumeration order is
  // deterministic, so the aggregation (and every artefact) is too.
  struct Cell {
    exp::CellMean length, wall;
    std::vector<double> wall_samples;
    obs::Registry counters;
  };
  std::map<std::string, std::map<std::string, std::map<std::string, Cell>>>
      agg;
  bool all_valid = true;
  for (const runtime::ScenarioResult& r : results) {
    Cell& c = agg[r.spec.topology][r.spec.workload][r.spec.algo];
    c.length.add(static_cast<double>(r.schedule_length));
    c.wall.add(r.wall_ms);
    c.wall_samples.push_back(r.wall_ms);
    c.counters.merge(r.counters);
    all_valid = all_valid && r.valid;
  }

  // The rep-0 graph is identical across algorithms and topologies of a
  // cell; regenerate it once per workload for the task-count column.
  std::map<std::string, int> task_counts;
  for (const std::string& workload : grid.workloads) {
    std::uint64_t instance_seed = grid.base_seed;
    for (const runtime::ScenarioResult& r : results) {
      if (r.spec.workload == workload && r.spec.rep == 0) {
        instance_seed = r.spec.instance_seed;
        break;
      }
    }
    task_counts[workload] =
        workloads::WorkloadRegistry::global()
            .resolve(workload)
            ->generate(grid.sizes[0], grid.granularities[0], instance_seed)
            .num_tasks();
  }

  const bool csv = cli.get_bool("csv", false);
  std::vector<runtime::BenchEntry> entries;
  for (const char* topo : kTopologies) {
    std::vector<std::string> headers{"workload", "tasks"};
    for (const char* algo : kAlgos) headers.emplace_back(algo);
    headers.emplace_back("bsa/dls");
    TextTable table(headers);
    for (const std::string& workload : grid.workloads) {
      const auto& cells = agg.at(topo).at(workload);
      table.new_row().cell(workload).cell(
          static_cast<long long>(task_counts.at(workload)));
      for (const char* algo : kAlgos) {
        const Cell& cell = cells.at(algo);
        table.cell(cell.length.mean(), 1);
        runtime::BenchEntry e;
        e.label = workload + "/" + topo + "/" + algo;
        e.runs = static_cast<std::size_t>(cell.length.count);
        e.mean_wall_ms = cell.wall.mean();
        e.mean_schedule_length = cell.length.mean();
        e.p50_wall_ms = percentile_of(cell.wall_samples, 50);
        e.p99_wall_ms = percentile_of(cell.wall_samples, 99);
        e.counters = cell.counters.snapshot();
        entries.push_back(std::move(e));
      }
      const double dls = cells.at("dls").length.mean();
      table.cell(dls > 0 ? cells.at("bsa").length.mean() / dls : 0.0, 3);
    }
    std::cout << "-- " << topo << " --\n";
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << '\n';
  }
  std::cout << (all_valid ? "all schedules validated OK"
                          : "WARNING: some schedules failed validation")
            << "\n";

  std::ofstream bench_json("BENCH_workloads.json");
  runtime::write_bench_json(bench_json, "workloads", runner.threads(),
                            entries);
  std::cout << "wrote " << entries.size()
            << " entries to BENCH_workloads.json\n";
  if (jsonl != nullptr) {
    std::cout << "wrote " << jsonl->rows_written() << " JSONL rows to "
              << *cli.out_path() << "\n";
  }
  return all_valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(bsa::CliParser(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
