/// Reproduces Figure 3 of the paper: average schedule lengths of BSA and
/// DLS on the regular-application suite (Gaussian elimination, LU
/// decomposition, Laplace solver) as a function of graph size, for the
/// four 16-processor topologies (ring, hypercube, clique, random), with
/// cells averaged over the three granularities.
///
/// Expected shape (paper §3): BSA consistently at or below DLS, the gap
/// (~20% in the paper) growing with graph size and shrinking with
/// connectivity; both algorithms shorter on the clique than on the ring.
///
/// Flags: --full (paper's 10 sizes, 3 seeds), --seeds N, --procs N,
///        --per-pair, --eft, --csv, --seed S,
///        --threads/--jobs N (parallel runtime; 0 = all cores), --out FILE
///        (stream per-scenario JSONL rows).

#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const bsa::CliParser cli(argc, argv);
  bsa::bench::SweepConfig cfg;
  cfg.regular_suite = true;
  cfg.x_axis_granularity = false;
  cfg.sizes = bsa::exp::paper_sizes();
  cfg.granularities = bsa::exp::paper_granularities();
  return bsa::bench::run_figure_bench(cli, cfg, "Figure 3");
}
