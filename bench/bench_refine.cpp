/// Local-search refinement study (extension): how much slack does each
/// scheduler leave on the table against a single-task-move local
/// optimum? For each algorithm, schedules are refined with
/// core::refine_schedule and the improvement percentage is reported.
/// Small residuals mean the scheduler's output is already near a local
/// optimum of the contention-aware objective.
///
/// Both candidate-evaluation engines are timed head to head: the full
/// per-candidate re-list (MoveEval::kRelist, "before") and the
/// incremental RetimeContext-based move evaluation
/// (MoveEval::kRetimeDelta, "after"). The timings are appended to
/// BENCH_refine.json (same schema as BENCH_runtime.json) so the perf
/// trajectory is tracked run over run.
///
/// Flags: --tasks N, --seeds N, --rounds N, --per-pair, --seed S.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/refine.hpp"
#include "exp/experiment.hpp"
#include "runtime/result_sink.hpp"
#include "sched/scheduler.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 60));
  const int seeds = static_cast<int>(cli.get_int("seeds", 2));
  const int rounds = static_cast<int>(cli.get_int("rounds", 1));
  const bool per_pair = cli.get_bool("per-pair", false);
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  std::cout << "=== local-search refinement headroom ===\n"
            << num_tasks << "-task random graphs, granularity 1.0, "
            << "16-processor hypercube, " << seeds << " seed(s), " << rounds
            << " refinement round(s), re-list vs retime-delta move "
               "evaluation\n\n";

  const auto topo = exp::make_topology("hypercube", 16, base_seed);
  TextTable table({"scheduler", "eval", "before", "after refine",
                   "improvement %", "moves", "mean ms"});
  std::vector<runtime::BenchEntry> entries;
  for (const char* spec : {"bsa", "dls", "eft"}) {
    const auto scheduler = sched::SchedulerRegistry::global().resolve(spec);
    const std::string row_name = scheduler->display_label();
    struct EvalCell {
      exp::CellMean before, after;
      StatAccumulator wall;
      int total_moves = 0;
    };
    EvalCell relist, delta;
    for (int rep = 0; rep < seeds; ++rep) {
      workloads::RandomDagParams params;
      params.num_tasks = num_tasks;
      params.granularity = 1.0;
      params.seed = derive_seed(base_seed, static_cast<std::uint64_t>(rep));
      const auto g = workloads::random_layered_dag(params);
      const auto cm_seed = derive_seed(params.seed, 17);
      const auto cm =
          per_pair
              ? net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50,
                                                     cm_seed)
              : net::HeterogeneousCostModel::uniform_processor_speeds(
                    g, topo, 1, 50, 1, 50, cm_seed);
      // Seed 0 matches the pre-registry dispatch (default BsaOptions), so
      // the BENCH_refine.json trajectory stays comparable across runs.
      const sched::Schedule s = scheduler->run(g, topo, cm, 0).schedule;
      for (EvalCell* cell : {&relist, &delta}) {
        core::RefineOptions opt;
        opt.max_rounds = rounds;
        opt.move_eval = cell == &relist ? core::MoveEval::kRelist
                                        : core::MoveEval::kRetimeDelta;
        const auto t0 = std::chrono::steady_clock::now();
        const auto refined = core::refine_schedule(s, cm, opt);
        const auto t1 = std::chrono::steady_clock::now();
        cell->wall.add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        cell->before.add(s.makespan());
        cell->after.add(refined.final_length);
        cell->total_moves += refined.moves_applied;
      }
    }
    for (const auto& [eval_name, cell] :
         {std::pair<const char*, const EvalCell&>{"relist", relist},
          std::pair<const char*, const EvalCell&>{"retime-delta", delta}}) {
      const double pct =
          cell.before.mean() > 0
              ? 100.0 * (cell.before.mean() - cell.after.mean()) /
                    cell.before.mean()
              : 0.0;
      table.new_row()
          .cell(row_name)
          .cell(eval_name)
          .cell(cell.before.mean(), 1)
          .cell(cell.after.mean(), 1)
          .cell(pct, 1)
          .cell(static_cast<long long>(cell.total_moves))
          .cell(cell.wall.mean(), 2);
      runtime::BenchEntry e;
      e.label = std::string(eval_name) + "/" + row_name + "/" +
                std::to_string(num_tasks);
      e.runs = static_cast<int>(cell.wall.count());
      e.mean_wall_ms = cell.wall.mean();
      e.mean_schedule_length = cell.after.mean();
      entries.push_back(std::move(e));
    }
  }
  table.print(std::cout);
  std::cout << "\nsmall improvement % = the scheduler was already near a "
               "single-move local optimum; retime-delta explores a "
               "slightly different neighbourhood, so its endpoint may "
               "differ from relist\n";

  const std::string report_path = "BENCH_refine.json";
  std::ofstream report(report_path, std::ios::trunc);
  BSA_REQUIRE(report.good(), "cannot write " << report_path);
  runtime::write_bench_json(report, "refine", 1, entries);
  std::cout << "wrote " << entries.size() << " entries to " << report_path
            << '\n';
  return 0;
}
