/// Local-search refinement study (extension): how much slack does each
/// scheduler leave on the table against a single-task-move local
/// optimum? For each algorithm, schedules are refined with
/// core::refine_schedule and the improvement percentage is reported.
/// Small residuals mean the scheduler's output is already near a local
/// optimum of the contention-aware objective.
///
/// Flags: --tasks N, --seeds N, --rounds N, --per-pair, --seed S.

#include <iostream>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bsa.hpp"
#include "core/refine.hpp"
#include "exp/experiment.hpp"
#include "workloads/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace bsa;
  const CliParser cli(argc, argv);
  const int num_tasks = static_cast<int>(cli.get_int("tasks", 60));
  const int seeds = static_cast<int>(cli.get_int("seeds", 2));
  const int rounds = static_cast<int>(cli.get_int("rounds", 1));
  const bool per_pair = cli.get_bool("per-pair", false);
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  std::cout << "=== local-search refinement headroom ===\n"
            << num_tasks << "-task random graphs, granularity 1.0, "
            << "16-processor hypercube, " << seeds << " seed(s), " << rounds
            << " refinement round(s)\n\n";

  const auto topo = exp::make_topology("hypercube", 16, base_seed);
  TextTable table({"scheduler", "before", "after refine", "improvement %",
                   "moves"});
  struct Row {
    const char* name;
    exp::Algo algo;
  };
  for (const Row row : {Row{"BSA", exp::Algo::kBsa},
                        Row{"DLS", exp::Algo::kDls},
                        Row{"EFT (oblivious)", exp::Algo::kEft}}) {
    exp::CellMean before, after;
    int total_moves = 0;
    for (int rep = 0; rep < seeds; ++rep) {
      workloads::RandomDagParams params;
      params.num_tasks = num_tasks;
      params.granularity = 1.0;
      params.seed = derive_seed(base_seed, static_cast<std::uint64_t>(rep));
      const auto g = workloads::random_layered_dag(params);
      const auto cm_seed = derive_seed(params.seed, 17);
      const auto cm =
          per_pair
              ? net::HeterogeneousCostModel::uniform(g, topo, 1, 50, 1, 50,
                                                     cm_seed)
              : net::HeterogeneousCostModel::uniform_processor_speeds(
                    g, topo, 1, 50, 1, 50, cm_seed);
      sched::Schedule s(g, topo);
      switch (row.algo) {
        case exp::Algo::kBsa:
          s = core::schedule_bsa(g, topo, cm).schedule;
          break;
        case exp::Algo::kDls:
          s = baselines::schedule_dls(g, topo, cm).schedule;
          break;
        default:
          s = baselines::schedule_eft_oblivious(g, topo, cm).schedule;
          break;
      }
      core::RefineOptions opt;
      opt.max_rounds = rounds;
      const auto refined = core::refine_schedule(s, cm, opt);
      before.add(s.makespan());
      after.add(refined.final_length);
      total_moves += refined.moves_applied;
    }
    const double pct =
        before.mean() > 0
            ? 100.0 * (before.mean() - after.mean()) / before.mean()
            : 0.0;
    table.new_row()
        .cell(row.name)
        .cell(before.mean(), 1)
        .cell(after.mean(), 1)
        .cell(pct, 1)
        .cell(static_cast<long long>(total_moves));
  }
  table.print(std::cout);
  std::cout << "\nsmall improvement % = the scheduler was already near a "
               "single-move local optimum\n";
  return 0;
}
