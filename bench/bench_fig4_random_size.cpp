/// Reproduces Figure 4 of the paper: average schedule lengths of BSA and
/// DLS on randomly structured task graphs as a function of graph size,
/// for the four 16-processor topologies, averaged over granularities.
///
/// Expected shape (paper §3): as Figure 3 — BSA at or below DLS with both
/// producing longer schedules than on the regular suite.
///
/// Flags: --full, --seeds N, --procs N, --per-pair, --eft, --csv, --seed S,
///        --threads/--jobs N (parallel runtime; 0 = all cores), --out FILE
///        (stream per-scenario JSONL rows).

#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const bsa::CliParser cli(argc, argv);
  bsa::bench::SweepConfig cfg;
  cfg.regular_suite = false;
  cfg.x_axis_granularity = false;
  cfg.sizes = bsa::exp::paper_sizes();
  cfg.granularities = bsa::exp::paper_granularities();
  return bsa::bench::run_figure_bench(cli, cfg, "Figure 4");
}
