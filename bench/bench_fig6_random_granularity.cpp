/// Reproduces Figure 6 of the paper: average schedule lengths of BSA and
/// DLS on random graphs as a function of granularity, for the four
/// 16-processor topologies, averaged over graph sizes.
///
/// Expected shape (paper §3): same conclusions as Figure 5 on the random
/// suite — sharp increase at fine granularity, largest BSA advantage at
/// granularity 0.1.
///
/// Flags: --full, --seeds N, --procs N, --per-pair, --eft, --csv, --seed S,
///        --threads/--jobs N (parallel runtime; 0 = all cores), --out FILE
///        (stream per-scenario JSONL rows).

#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const bsa::CliParser cli(argc, argv);
  bsa::bench::SweepConfig cfg;
  cfg.regular_suite = false;
  cfg.x_axis_granularity = true;
  cfg.sizes = bsa::exp::paper_sizes();
  cfg.granularities = bsa::exp::paper_granularities();
  return bsa::bench::run_figure_bench(cli, cfg, "Figure 6");
}
