#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "exp/experiment.hpp"

/// \file fig_common.hpp
/// Shared driver for the figure-reproduction benches (Figures 3-6 of the
/// paper): enumerate the (workload × topology × algorithm) scenario grid,
/// evaluate it on the parallel experiment runtime (runtime::SweepRunner),
/// aggregate cell means, and print one paper-style series table per
/// topology. Aggregated numbers are bit-identical at any --threads value.

namespace bsa::bench {

struct SweepConfig {
  /// true: the regular-application suite (GE, LU, Laplace averaged, as
  /// in Figures 3/5); false: random layered DAGs (Figures 4/6).
  bool regular_suite = true;
  /// Graph sizes (paper: 50..500 step 50) and granularities (paper:
  /// {0.1, 1, 10}).
  std::vector<int> sizes;
  std::vector<double> granularities;
  /// false: x-axis is graph size, averaged over granularities (Figs 3/4);
  /// true: x-axis is granularity, averaged over sizes (Figs 5/6).
  bool x_axis_granularity = false;
  int procs = 16;
  int het_lo = 1;
  int het_hi = 50;
  /// false (default): one U[lo,hi] speed factor per processor/link —
  /// DESIGN.md §3 note 9. true: i.i.d. factor per (task,processor) /
  /// (message,link) pair, the paper's §2.1 literal model.
  bool per_pair = false;
  int seeds_per_cell = 1;
  std::uint64_t base_seed = 2026;
  /// Scheduler registry specs, one table column each, in column order.
  /// When two or more are given a ratio column algos[1]/algos[0] is
  /// printed after them (the paper's BSA/DLS with the default layout).
  std::vector<std::string> algos = {"dls", "bsa"};
  bool print_csv = false;
  /// Worker threads for the sweep (0 = all hardware threads).
  int threads = 1;
  /// When non-empty, every scenario result is also streamed to this path
  /// as JSON Lines.
  std::string out_path;
  /// Show a live done/total progress meter on stderr (auto-disabled when
  /// stderr is not a TTY; never affects the printed tables or JSONL).
  bool progress = false;
  /// When non-empty, write a Chrome trace-event JSON file of the sweep
  /// (per-worker tracks; load in Perfetto or chrome://tracing).
  std::string trace_path;
};

/// Apply the standard command-line flags (--full, --seeds, --procs,
/// --per-pair, --algo spec[,spec...], --eft (alias for appending "eft"),
/// --csv, --seed, --threads/--jobs, --out, --progress, --trace FILE) to
/// a config.
void apply_cli(const CliParser& cli, SweepConfig* config);

/// Run the sweep on the parallel runtime and print one table per
/// topology to `os`. `figure_name` labels the output (e.g. "Figure 3").
void run_and_print(const SweepConfig& config, const std::string& figure_name,
                   std::ostream& os);

/// apply_cli + run_and_print with clean error reporting: bad flag values
/// (e.g. a typoed --algo spec) print `error: ...` to stderr and return
/// exit code 1 instead of terminating on the uncaught exception. The
/// figure drivers' main() is one call to this.
[[nodiscard]] int run_figure_bench(const CliParser& cli, SweepConfig config,
                                   const std::string& figure_name);

}  // namespace bsa::bench
