#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

/// \file counters.hpp
/// Deterministic counter registry — the uniform surface replacing the
/// per-adapter `diagnostics` pair lists.
///
/// A Registry interns names into stable slots once; Counter handles are
/// plain pointers into those slots, so bumping a counter on a hot path
/// is a single add with no allocation, no hashing and no locking.
/// `snapshot()` is the deterministic flush: the slots sorted by name,
/// independent of interning order. Counters are integral by contract —
/// they count events, not measure time — which is what makes them
/// bit-identical at any thread count: every scheduler run is a pure
/// function of its inputs, and sweep aggregation only ever sums exact
/// integers (see docs/DESIGN_OBS.md for the full contract).
///
/// A Registry is not thread-safe; the runtime keeps one per scenario
/// (or per aggregation cell) and merges snapshots, never sharing one
/// across threads.

namespace bsa::obs {

/// One flushed registry: (name, value) pairs sorted by name.
using CounterSnapshot = std::vector<std::pair<std::string, std::int64_t>>;

/// Look up one counter in a snapshot (binary search — snapshots are
/// sorted by name); `fallback` when the name was never interned.
[[nodiscard]] std::int64_t snapshot_value(const CounterSnapshot& snap,
                                          const std::string& name,
                                          std::int64_t fallback = 0);

/// Handle to one registry slot. Copyable, trivially cheap; an empty
/// handle (default-constructed) ignores every operation, so hot paths
/// can bump unconditionally-held handles without null checks of their
/// own.
class Counter {
 public:
  Counter() = default;

  void add(std::int64_t n) noexcept {
    if (slot_ != nullptr) *slot_ += n;
  }
  void increment() noexcept { add(1); }
  void set(std::int64_t v) noexcept {
    if (slot_ != nullptr) *slot_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return slot_ == nullptr ? 0 : *slot_;
  }

 private:
  friend class Registry;
  explicit Counter(std::int64_t* slot) noexcept : slot_(slot) {}
  std::int64_t* slot_ = nullptr;
};

class Registry {
 public:
  /// Intern `name` (idempotent) and return a handle to its slot. Slot
  /// addresses are stable for the registry's lifetime, so handles may be
  /// cached across any number of counter bumps.
  [[nodiscard]] Counter counter(const std::string& name);

  /// Intern + add in one step — the convenient form for one-shot flushes
  /// (adapters exporting trace fields, benches merging snapshots).
  void add(const std::string& name, std::int64_t v);

  /// Sum a snapshot into this registry (per-cell aggregation).
  void merge(const CounterSnapshot& snap);

  /// The deterministic flush: every slot as (name, value), sorted by
  /// name regardless of interning order.
  [[nodiscard]] CounterSnapshot snapshot() const;

  /// Zero every slot, keeping the interned names and handle addresses.
  void reset() noexcept;

  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::string name;
    std::int64_t value = 0;
  };
  [[nodiscard]] Slot& intern(const std::string& name);

  // Deque, not vector: growing must not move existing slots out from
  // under live Counter handles.
  std::deque<Slot> slots_;
};

}  // namespace bsa::obs
