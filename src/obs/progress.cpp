#include "obs/progress.hpp"

#include <cstdio>
#include <iostream>
#include <ostream>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace bsa::obs {

bool stderr_is_tty() noexcept {
#if defined(_WIN32)
  return _isatty(_fileno(stderr)) != 0;
#else
  return isatty(STDERR_FILENO) != 0;
#endif
}

ProgressMeter::ProgressMeter(std::size_t total, std::string label,
                             std::ostream* os,
                             std::chrono::milliseconds min_interval)
    : os_(os == nullptr ? &std::cerr : os),
      total_(total),
      label_(std::move(label)),
      min_interval_(min_interval),
      // lint:allow(wall-clock): progress meter display only, never a result
      start_(std::chrono::steady_clock::now()),
      last_render_(start_ - min_interval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::update(std::size_t done) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  if (done <= best_done_) return;
  best_done_ = done;
  // lint:allow(wall-clock): progress meter display only, never a result
  const auto now = std::chrono::steady_clock::now();
  if (done < total_ && now - last_render_ < min_interval_) return;
  last_render_ = now;
  render(done, false);
}

void ProgressMeter::finish() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  if (!rendered_) return;  // never drew anything; nothing to end
  render(best_done_, true);
}

void ProgressMeter::render(std::size_t done, bool final_line) {
  const double elapsed_s =
      // lint:allow(wall-clock): progress meter display only, never a result
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) /
                       static_cast<double>(total_)
                 : 100.0;
  char buf[160];
  if (done < total_ && rate > 0) {
    const long eta =
        static_cast<long>(static_cast<double>(total_ - done) / rate);
    std::snprintf(buf, sizeof buf,
                  "\r%s: %zu/%zu (%.1f%%)  %.1f/s  eta %ld:%02ld   ",
                  label_.c_str(), done, total_, pct, rate, eta / 60, eta % 60);
  } else {
    std::snprintf(buf, sizeof buf, "\r%s: %zu/%zu (%.1f%%)  %.1f/s   ",
                  label_.c_str(), done, total_, pct, rate);
  }
  *os_ << buf;
  if (final_line) {
    *os_ << '\n';
  }
  os_->flush();
  rendered_ = true;
}

std::function<void(std::size_t, std::size_t)> ProgressMeter::callback() {
  return [this](std::size_t done, std::size_t /*total*/) { update(done); };
}

std::unique_ptr<ProgressMeter> maybe_progress(bool requested,
                                              std::size_t total,
                                              std::string label) {
  if (!requested || !stderr_is_tty()) return nullptr;
  return std::make_unique<ProgressMeter>(total, std::move(label));
}

}  // namespace bsa::obs
