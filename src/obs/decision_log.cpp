#include "obs/decision_log.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/json.hpp"

namespace bsa::obs {

const char* decision_outcome_name(DecisionOutcome o) {
  switch (o) {
    case DecisionOutcome::kCommitted:
      return "commit";
    case DecisionOutcome::kCommittedVip:
      return "commit-vip";
    case DecisionOutcome::kRejectedNoGain:
      return "reject-no-gain";
    case DecisionOutcome::kRejectedMakespanGuard:
      return "reject-makespan-guard";
  }
  return "?";
}

std::string decision_to_jsonl(const MigrationDecision& d,
                              const std::string& label) {
  std::ostringstream os;
  os << "{\"event\":\"migration\"";
  if (!label.empty()) os << ",\"algo\":\"" << json_escape(label) << '"';
  os << ",\"sweep\":" << d.sweep << ",\"phase\":" << d.phase          //
     << ",\"pivot\":" << d.pivot << ",\"task\":" << d.task            //
     << ",\"from\":" << d.from << ",\"to\":" << d.to                  //
     << ",\"old_finish\":" << json_number(d.old_finish)               //
     << ",\"predicted_finish\":" << json_number(d.predicted_finish)   //
     << ",\"gain\":" << json_number(d.gain())                         //
     << ",\"new_finish\":" << json_number(d.new_finish)               //
     << ",\"makespan_before\":" << json_number(d.makespan_before)     //
     << ",\"makespan_after\":" << json_number(d.makespan_after)       //
     << ",\"outcome\":\"" << decision_outcome_name(d.outcome) << "\"}";
  return os.str();
}

JsonlDecisionLog::JsonlDecisionLog(std::ostream& os, std::string label)
    : os_(&os), label_(std::move(label)) {}

JsonlDecisionLog::JsonlDecisionLog(const std::string& path, std::string label)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      os_(owned_.get()),
      label_(std::move(label)) {
  BSA_REQUIRE(owned_->good(),
              "JsonlDecisionLog: cannot open '" << path << "'");
}

void JsonlDecisionLog::record(const MigrationDecision& d) {
  const std::string line = decision_to_jsonl(d, label_);
  const std::lock_guard<std::mutex> lock(mu_);
  *os_ << line << '\n';
  ++rows_;
}

void JsonlDecisionLog::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  os_->flush();
}

std::size_t JsonlDecisionLog::rows_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void CollectingDecisionLog::record(const MigrationDecision& d) {
  const std::lock_guard<std::mutex> lock(mu_);
  decisions_.push_back(d);
}

}  // namespace bsa::obs
