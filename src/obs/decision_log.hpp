#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file decision_log.hpp
/// Structured BSA decision log: one event per migration attempt, with
/// the pivot, the task, the chosen target and why the attempt was kept
/// or rejected — the "explain why" surface a debugger session used to
/// be needed for. Rows serialise as flat JSONL (every value a scalar),
/// so they round-trip through runtime::parse_jsonl_row and pipe into
/// jq/python without a schema.
///
/// The log observes; it never influences the algorithm. With a null
/// sink BSA skips even building the event struct, so the decision path
/// costs one branch when logging is off (docs/DESIGN_OBS.md).

namespace bsa::obs {

/// Why a migration attempt ended the way it did.
enum class DecisionOutcome : unsigned char {
  kCommitted,             ///< strictly earlier finish; kept
  kCommittedVip,          ///< equal finish, kept under the VIP rule
  kRejectedNoGain,        ///< no neighbour beats the current finish time
  kRejectedMakespanGuard  ///< committed then rolled back: makespan grew
};
[[nodiscard]] const char* decision_outcome_name(DecisionOutcome o);

/// One migration attempt. Times are schedule times; fields that do not
/// apply to the outcome (e.g. new_finish of a no-gain attempt) are NaN
/// and serialise as JSON null.
struct MigrationDecision {
  int sweep = 0;           ///< BFS sweep number (0-based)
  int phase = 0;           ///< migration phase within the pivot visit
  std::int32_t pivot = -1;
  std::int32_t task = -1;
  std::int32_t from = -1;  ///< processor the task sat on
  std::int32_t to = -1;    ///< chosen target, -1 when none qualified
  double old_finish = 0;         ///< finish time before the attempt
  double predicted_finish = 0;   ///< best candidate finish found
  double new_finish = 0;         ///< realised finish (NaN unless committed)
  double makespan_before = 0;    ///< NaN unless a commit was evaluated
  double makespan_after = 0;     ///< NaN unless a commit was evaluated
  DecisionOutcome outcome = DecisionOutcome::kRejectedNoGain;

  /// The attempt's predicted improvement (old - predicted).
  [[nodiscard]] double gain() const { return old_finish - predicted_finish; }
};

/// Serialise one decision as a flat JSONL row. A non-empty `label` is
/// emitted as the "algo" column so logs of several runs stay
/// distinguishable after concatenation.
[[nodiscard]] std::string decision_to_jsonl(const MigrationDecision& d,
                                            const std::string& label = "");

class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  /// Record one attempt. Implementations must be safe to call from any
  /// thread (parallel sweeps may share a sink).
  virtual void record(const MigrationDecision& d) = 0;
};

/// Streams decisions to an ostream or file as JSON Lines.
class JsonlDecisionLog final : public DecisionSink {
 public:
  explicit JsonlDecisionLog(std::ostream& os, std::string label = "");
  /// Opens `path` for writing (truncated). Throws PreconditionError when
  /// the file cannot be opened.
  explicit JsonlDecisionLog(const std::string& path, std::string label = "");

  void record(const MigrationDecision& d) override;
  void flush();
  [[nodiscard]] std::size_t rows_written() const;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  std::string label_;
  mutable std::mutex mu_;
  std::size_t rows_ = 0;
};

/// Collects decisions in memory (record order) — for tests and for
/// drivers that interleave parallel runs and want per-run logs written
/// out deterministically afterwards.
class CollectingDecisionLog final : public DecisionSink {
 public:
  void record(const MigrationDecision& d) override;
  [[nodiscard]] const std::vector<MigrationDecision>& decisions() const {
    return decisions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<MigrationDecision> decisions_;
};

}  // namespace bsa::obs
