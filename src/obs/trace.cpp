#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace bsa::obs {

namespace {

double us_between(const std::chrono::steady_clock::time_point& a,
                  const std::chrono::steady_clock::time_point& b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
     << json_escape(e.cat) << "\",\"ph\":\"" << e.ph
     << "\",\"ts\":" << json_number(e.ts_us);
  if (e.ph == 'X') os << ",\"dur\":" << json_number(e.dur_us);
  os << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  if (!e.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      os << (i ? "," : "") << '"' << json_escape(e.args[i].first)
         << "\":" << json_number(e.args[i].second);
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

// lint:allow(wall-clock): trace timestamps are observability output only
Tracer::Tracer() : epoch_(Clock::now()) {}

// lint:allow(wall-clock): trace timestamps are observability output only
double Tracer::now_us() const { return us_between(epoch_, Clock::now()); }

double Tracer::to_us(std::chrono::steady_clock::time_point tp) const {
  return us_between(epoch_, tp);
}

void Tracer::add_complete(std::string name, std::string cat, double ts_us,
                          double dur_us, std::uint32_t tid,
                          std::vector<std::pair<std::string, double>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::add_instant(std::string name, std::string cat,
                         std::uint32_t tid) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_us = now_us();
  e.tid = tid;
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::set_thread_name(std::uint32_t tid, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = std::move(name);
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::sorted_events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::map<std::uint32_t, std::string> names;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    names = thread_names_;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const TraceEvent& e : sorted_events()) {
    if (!first) os << ',';
    first = false;
    write_event(os, e);
  }
  os << "]}\n";
}

Span::Span(Tracer* tracer, const char* name, const char* cat,
           std::uint32_t tid) {
  if (tracer == nullptr) return;
  tracer_ = tracer;
  name_ = name;
  cat_ = cat;
  tid_ = tid;
  // lint:allow(wall-clock): span timestamps are observability output only
  start_ = std::chrono::steady_clock::now();
}

Span::Span(Tracer* tracer, std::string name, const char* cat,
           std::uint32_t tid) {
  if (tracer == nullptr) return;
  tracer_ = tracer;
  name_ = std::move(name);
  cat_ = cat;
  tid_ = tid;
  // lint:allow(wall-clock): span timestamps are observability output only
  start_ = std::chrono::steady_clock::now();
}

void Span::arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, value);
}

void Span::close() {
  if (tracer_ == nullptr) return;
  // lint:allow(wall-clock): span timestamps are observability output only
  const auto end = std::chrono::steady_clock::now();
  const double dur =
      std::chrono::duration<double, std::micro>(end - start_).count();
  tracer_->add_complete(std::move(name_), cat_, tracer_->to_us(start_), dur,
                        tid_, std::move(args_));
  tracer_ = nullptr;
}

}  // namespace bsa::obs
