#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file trace.hpp
/// Span tracer exporting Chrome trace-event JSON (loadable in Perfetto
/// or chrome://tracing).
///
/// A Tracer collects complete events ("ph":"X") — spans with a start
/// timestamp and a duration in microseconds since the tracer's epoch —
/// plus instant marks and per-track thread names. Spans are recorded
/// through the RAII Span guard, which is inert when handed a null
/// tracer: construction is a couple of member stores behind one branch,
/// so instrumented hot paths cost nothing measurable with tracing off.
///
/// Timestamps come from std::chrono::steady_clock, so they are
/// monotonic; write_chrome_trace sorts events by start time, which is
/// what scripts/check_trace.py validates. Recording takes a mutex —
/// sweeps trace scenario/chunk-grained spans from many workers, and a
/// span is closed far less often than the work inside it. Tracing never
/// changes what any algorithm computes; it only observes (see
/// docs/DESIGN_OBS.md for the span taxonomy).

namespace bsa::obs {

/// One recorded event. `ph` is the Chrome trace phase: 'X' complete,
/// 'i' instant, 'M' metadata (thread names).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0;
  double dur_us = 0;
  std::uint32_t tid = 0;
  /// Small numeric payload emitted as the event's "args" object.
  std::vector<std::pair<std::string, double>> args;
};

class Tracer {
 public:
  /// The construction instant is the trace epoch (ts 0).
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since the epoch, for callers recording events
  /// directly.
  [[nodiscard]] double now_us() const;

  /// Convert a steady_clock instant to microseconds since the epoch.
  [[nodiscard]] double to_us(std::chrono::steady_clock::time_point tp) const;

  /// Record a complete event (span) — thread-safe.
  void add_complete(std::string name, std::string cat, double ts_us,
                    double dur_us, std::uint32_t tid,
                    std::vector<std::pair<std::string, double>> args = {});

  /// Record an instant mark — thread-safe.
  void add_instant(std::string name, std::string cat, std::uint32_t tid);

  /// Name a track ("main", "worker 3"); emitted as a thread_name
  /// metadata event so Perfetto labels the row.
  void set_thread_name(std::uint32_t tid, std::string name);

  [[nodiscard]] std::size_t event_count() const;

  /// Events in start-time order (a copy; mainly for tests).
  [[nodiscard]] std::vector<TraceEvent> sorted_events() const;

  /// Write the whole trace as a Chrome trace-event JSON document:
  /// {"traceEvents":[...]} with metadata events first, then spans and
  /// instants sorted by start time.
  void write_chrome_trace(std::ostream& os) const;

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> thread_names_;
};

/// RAII span guard: captures the start time at construction and records
/// one complete event on close (or destruction). All operations are
/// no-ops when the tracer is null — the "branch on a null sink" the
/// overhead budget allows.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, const char* name, const char* cat,
       std::uint32_t tid = 0);
  Span(Tracer* tracer, std::string name, const char* cat,
       std::uint32_t tid = 0);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// Attach one numeric argument (shown in the Perfetto detail pane).
  void arg(const char* key, double value);

  /// Record the event now; further calls are no-ops.
  void close();

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  const char* cat_ = "";
  std::uint32_t tid_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace bsa::obs
