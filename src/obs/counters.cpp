#include "obs/counters.hpp"

#include <algorithm>

namespace bsa::obs {

std::int64_t snapshot_value(const CounterSnapshot& snap,
                            const std::string& name, std::int64_t fallback) {
  const auto it = std::lower_bound(
      snap.begin(), snap.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  return it != snap.end() && it->first == name ? it->second : fallback;
}

Registry::Slot& Registry::intern(const std::string& name) {
  for (Slot& s : slots_) {
    if (s.name == name) return s;
  }
  slots_.push_back(Slot{name, 0});
  return slots_.back();
}

Counter Registry::counter(const std::string& name) {
  return Counter(&intern(name).value);
}

void Registry::add(const std::string& name, std::int64_t v) {
  intern(name).value += v;
}

void Registry::merge(const CounterSnapshot& snap) {
  for (const auto& [name, value] : snap) add(name, value);
}

CounterSnapshot Registry::snapshot() const {
  CounterSnapshot out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.emplace_back(s.name, s.value);
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::reset() noexcept {
  for (Slot& s : slots_) s.value = 0;
}

}  // namespace bsa::obs
