#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

/// \file progress.hpp
/// Live progress meter for long sweeps: a single stderr line with
/// done/total, completion rate and an ETA, redrawn in place with '\r'.
///
/// The meter only ever writes to stderr (or the stream it was handed),
/// never to an artefact stream, so enabling it cannot perturb tables,
/// JSONL files or BENCH reports. Updates are thread-safe and throttled
/// — workers can tick it per scenario without serialising on terminal
/// I/O. Drivers should gate it on stderr_is_tty() (maybe_progress does)
/// so CI logs and redirected runs stay clean.

namespace bsa::obs {

/// True when stderr is attached to a terminal.
[[nodiscard]] bool stderr_is_tty() noexcept;

class ProgressMeter {
 public:
  /// Render to `os` (nullptr selects std::cerr). `min_interval` bounds
  /// the redraw rate; tests pass 0 to observe every update.
  ProgressMeter(std::size_t total, std::string label,
                std::ostream* os = nullptr,
                std::chrono::milliseconds min_interval =
                    std::chrono::milliseconds(100));
  /// Finishes the meter (final render + newline) if still open.
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Report that `done` units are complete. Out-of-order calls are fine
  /// (parallel workers race to report); the meter never goes backwards.
  void update(std::size_t done);

  /// Render the final state and end the line. Idempotent; call before
  /// printing results so tables don't land mid-line.
  void finish();

  /// Adapter for SweepOptions::progress — forwards (done, total) calls
  /// to update(). The meter must outlive the callback.
  [[nodiscard]] std::function<void(std::size_t, std::size_t)> callback();

 private:
  void render(std::size_t done, bool final_line);

  std::ostream* os_;
  std::size_t total_;
  std::string label_;
  std::chrono::milliseconds min_interval_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_render_;
  std::size_t best_done_ = 0;
  bool rendered_ = false;
  bool finished_ = false;
};

/// The standard driver gate: a meter when `requested` (the --progress
/// flag) and stderr is a TTY, nullptr otherwise — so `--progress` in a
/// CI log or behind a redirect is a silent no-op.
[[nodiscard]] std::unique_ptr<ProgressMeter> maybe_progress(
    bool requested, std::size_t total, std::string label);

}  // namespace bsa::obs
