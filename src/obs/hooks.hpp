#pragma once

#include <cstdint>

/// \file hooks.hpp
/// The non-owning observability hook bundle threaded through scheduler
/// runs (Scheduler::run_observed, BsaOptions::obs). Deliberately a bag
/// of nullable pointers: a default-constructed Hooks is "observability
/// off", and every instrumented code path pays exactly one branch on the
/// relevant null pointer — outputs are byte-identical either way (see
/// docs/DESIGN_OBS.md).

namespace bsa::obs {

class Tracer;
class DecisionSink;

struct Hooks {
  /// Span sink for phase/runtime timing, or nullptr (tracing off).
  Tracer* tracer = nullptr;
  /// Trace track the spans land on: 0 for the caller thread, worker
  /// index + 1 inside a SweepRunner sweep.
  std::uint32_t trace_tid = 0;
  /// Per-migration-attempt decision sink, or nullptr (logging off).
  DecisionSink* decision_log = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return tracer != nullptr || decision_log != nullptr;
  }
};

}  // namespace bsa::obs
