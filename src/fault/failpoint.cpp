#include "fault/failpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/spec.hpp"

namespace bsa::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

constexpr int kSiteCount = static_cast<int>(SiteId::kCount);

/// Errno spellings the spec grammar accepts (canonical form is the
/// lowercase name; unknown numeric values stay numeric).
struct ErrnoName {
  const char* name;
  int value;
};
constexpr ErrnoName kErrnoNames[] = {
    {"eagain", EAGAIN},   {"ebadf", EBADF},
    {"econnaborted", ECONNABORTED}, {"econnreset", ECONNRESET},
    {"eintr", EINTR},     {"einval", EINVAL},
    {"eio", EIO},         {"emfile", EMFILE},
    {"enfile", ENFILE},   {"enobufs", ENOBUFS},
    {"enomem", ENOMEM},   {"epipe", EPIPE},
};

/// One site's immutable configuration. Snapshots are retired into a
/// process-lifetime arena on reconfigure so concurrent evaluate() calls
/// never race a destruction (configure is test/ops plumbing, bounded).
struct SiteConfig {
  Action::Kind kind = Action::Kind::kNone;
  int err = 0;
  int delay_us = 0;
  int short_bytes = 1;
  long long after = 0;
  long long every = 1;
  long long times = 0;
  bool has_prob = false;
  double prob = 1.0;
  std::uint64_t seed = 1;
  std::string canonical_entry;  ///< "site:action[,trigger...]"
};

struct State {
  std::mutex mu;  ///< serialises configure/clear/counters, never evaluate
  std::vector<std::unique_ptr<const SiteConfig>> arena;
  std::atomic<const SiteConfig*> active[kSiteCount] = {};
  std::atomic<std::int64_t> checks[kSiteCount] = {};
  std::atomic<std::int64_t> fires[kSiteCount] = {};
};

State& state() {
  static State s;
  return s;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

long long parse_count(const std::string& key, const std::string& value,
                      long long min_value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  BSA_REQUIRE(errno == 0 && end != nullptr && *end == '\0' && v >= min_value,
              "fault option '" << key << "' expects an integer >= "
                               << min_value << ", got '" << value << "'");
  return v;
}

double parse_prob(const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  BSA_REQUIRE(errno == 0 && end != nullptr && *end == '\0' && v >= 0.0 &&
                  v <= 1.0,
              "fault option 'prob' expects a probability in [0,1], got '"
                  << value << "'");
  return v;
}

int parse_errno(const std::string& value) {
  for (const ErrnoName& e : kErrnoNames) {
    if (value == e.name) return e.value;
  }
  // Unknown names fall through to numeric; anything else is an error
  // listing the accepted spellings.
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0' && v > 0) {
    return static_cast<int>(v);
  }
  std::vector<std::string> names;
  names.reserve(std::size(kErrnoNames));
  for (const ErrnoName& e : kErrnoNames) names.emplace_back(e.name);
  BSA_REQUIRE(false, "fault option 'errno' expects a positive number or one "
                     "of: " << join_list(names, ", ") << "; got '" << value
                            << "'");
  return 0;  // unreachable
}

std::string errno_canonical(int err) {
  for (const ErrnoName& e : kErrnoNames) {
    if (err == e.value) return e.name;
  }
  return std::to_string(err);
}

void set_action(SiteConfig& cfg, const std::string& entry, Action::Kind kind) {
  BSA_REQUIRE(cfg.kind == Action::Kind::kNone,
              "fault spec entry '" << entry
                                   << "' names more than one action");
  cfg.kind = kind;
}

std::string canonical_entry(const std::string& site, const SiteConfig& cfg) {
  std::ostringstream os;
  os << site << ':';
  switch (cfg.kind) {
    case Action::Kind::kErrno:
      os << "errno=" << errno_canonical(cfg.err);
      break;
    case Action::Kind::kShortIo:
      os << "short";
      if (cfg.short_bytes != 1) os << '=' << cfg.short_bytes;
      break;
    case Action::Kind::kTorn:
      os << "torn";
      if (cfg.short_bytes != 1) os << '=' << cfg.short_bytes;
      break;
    case Action::Kind::kDisconnect:
      os << "disconnect";
      break;
    case Action::Kind::kDelay:
      os << "delay_us=" << cfg.delay_us;
      break;
    case Action::Kind::kFail:
      os << "fail";
      break;
    case Action::Kind::kNone:
      break;
  }
  if (cfg.after > 0) os << ",after=" << cfg.after;
  if (cfg.every > 1) os << ",every=" << cfg.every;
  if (cfg.has_prob) {
    os << ",prob=" << canonical_double(cfg.prob);
    if (cfg.seed != 1) os << ",seed=" << cfg.seed;
  }
  if (cfg.times > 0) os << ",times=" << cfg.times;
  return os.str();
}

/// Parse one "site:action[,trigger...]" entry into (site index, config).
std::pair<int, SiteConfig> parse_entry(const std::string& raw) {
  const std::string entry = ascii_lower(trimmed(raw));
  const std::size_t colon = entry.find(':');
  BSA_REQUIRE(colon != std::string::npos && colon > 0,
              "fault spec entry '" << raw
                                   << "' expects site:action[,trigger...]");
  const std::string site = trimmed(entry.substr(0, colon));
  const auto& names = site_names();
  int site_index = -1;
  for (int i = 0; i < kSiteCount; ++i) {
    if (names[static_cast<std::size_t>(i)] == site) site_index = i;
  }
  BSA_REQUIRE(site_index >= 0, "unknown failpoint site '"
                                   << site << "'; registered: "
                                   << join_list(names, ", "));

  SiteConfig cfg;
  std::string rest = entry.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const std::size_t comma = rest.find(',', pos);
    const std::string token = trimmed(
        rest.substr(pos, comma == std::string::npos ? comma : comma - pos));
    pos = comma == std::string::npos ? rest.size() + 1 : comma + 1;
    BSA_REQUIRE(!token.empty(), "fault spec entry '" << raw
                                                     << "' has an empty item");
    const std::size_t eq = token.find('=');
    const std::string key = trimmed(token.substr(0, eq));
    const std::string value =
        eq == std::string::npos ? std::string() : trimmed(token.substr(eq + 1));
    if (key == "errno") {
      set_action(cfg, raw, Action::Kind::kErrno);
      cfg.err = parse_errno(value);
    } else if (key == "short") {
      set_action(cfg, raw, Action::Kind::kShortIo);
      if (eq != std::string::npos) {
        cfg.short_bytes = static_cast<int>(parse_count("short", value, 1));
      }
    } else if (key == "torn") {
      set_action(cfg, raw, Action::Kind::kTorn);
      if (eq != std::string::npos) {
        cfg.short_bytes = static_cast<int>(parse_count("torn", value, 1));
      }
    } else if (key == "disconnect") {
      BSA_REQUIRE(eq == std::string::npos,
                  "fault action 'disconnect' takes no value");
      set_action(cfg, raw, Action::Kind::kDisconnect);
    } else if (key == "delay_us") {
      set_action(cfg, raw, Action::Kind::kDelay);
      cfg.delay_us = static_cast<int>(parse_count("delay_us", value, 1));
    } else if (key == "fail") {
      BSA_REQUIRE(eq == std::string::npos, "fault action 'fail' takes no value");
      set_action(cfg, raw, Action::Kind::kFail);
    } else if (key == "after") {
      cfg.after = parse_count("after", value, 0);
    } else if (key == "every") {
      cfg.every = parse_count("every", value, 1);
    } else if (key == "prob") {
      cfg.has_prob = true;
      cfg.prob = parse_prob(value);
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_count("seed", value, 0));
    } else if (key == "times") {
      cfg.times = parse_count("times", value, 1);
    } else {
      BSA_REQUIRE(false,
                  "unknown fault option '"
                      << key << "'; actions: errno, short, torn, disconnect, "
                                "delay_us, fail; triggers: after, every, "
                                "prob, seed, times");
    }
  }
  BSA_REQUIRE(cfg.kind != Action::Kind::kNone,
              "fault spec entry '" << raw << "' names no action (one of "
                                      "errno, short, torn, disconnect, "
                                      "delay_us, fail)");
  // `times` needs a firing schedule whose fire *index* is computable per
  // ordinal; with `prob` the index would depend on evaluation
  // interleaving across threads, breaking the determinism contract.
  BSA_REQUIRE(!(cfg.times > 0 && cfg.has_prob),
              "fault trigger 'times' cannot combine with 'prob' "
              "(the fire count would depend on thread interleaving); "
              "use after/every");
  cfg.canonical_entry = canonical_entry(site, cfg);
  return {site_index, std::move(cfg)};
}

/// Probability draw for arrival ordinal n: a pure function of
/// (seed, site, n), uniform in [0,1).
double hashed_unit(std::uint64_t seed, int site_index, long long n) {
  const std::uint64_t h = splitmix64(
      seed ^ splitmix64(static_cast<std::uint64_t>(n) +
                        0x9E3779B97F4A7C15ULL *
                            static_cast<std::uint64_t>(site_index + 1)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const std::vector<std::string>& site_names() {
  static const std::vector<std::string> kNames = {
      "accept", "read", "write", "batch", "eval", "cache", "pool"};
  return kNames;
}

Action evaluate(SiteId site) {
  State& s = state();
  const int i = static_cast<int>(site);
  const SiteConfig* cfg = s.active[i].load(std::memory_order_acquire);
  if (cfg == nullptr) return {};
  const long long n = s.checks[i].fetch_add(1, std::memory_order_relaxed) + 1;
  if (n <= cfg->after) return {};
  const long long m = n - cfg->after;
  if (m % cfg->every != 0) return {};
  if (cfg->has_prob && hashed_unit(cfg->seed, i, n) >= cfg->prob) return {};
  if (cfg->times > 0 && m / cfg->every > cfg->times) return {};
  s.fires[i].fetch_add(1, std::memory_order_relaxed);
  Action action;
  action.kind = cfg->kind;
  action.err = cfg->err;
  action.delay_us = cfg->delay_us;
  action.short_bytes = cfg->short_bytes;
  return action;
}

void maybe_delay(const Action& action) {
  if (action.kind == Action::Kind::kDelay && action.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(action.delay_us));
  }
}

void throw_if_fail(const Action& action, const char* site_label) {
  if (action.kind == Action::Kind::kFail) {
    std::ostringstream os;
    os << "injected fault: spurious failure at site '" << site_label << "'";
    throw InvariantError(os.str());
  }
}

void configure(const std::string& spec) {
  // Parse fully before touching any shared state so a bad spec leaves
  // the previous configuration in place.
  std::vector<std::unique_ptr<const SiteConfig>> parsed(kSiteCount);
  std::size_t pos = 0;
  const std::string text = trimmed(spec);
  while (pos < text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string raw = text.substr(
        pos, semi == std::string::npos ? semi : semi - pos);
    pos = semi == std::string::npos ? text.size() : semi + 1;
    if (trimmed(raw).empty()) continue;
    auto [site_index, cfg] = parse_entry(raw);
    BSA_REQUIRE(parsed[static_cast<std::size_t>(site_index)] == nullptr,
                "fault spec configures site '"
                    << site_names()[static_cast<std::size_t>(site_index)]
                    << "' twice");
    parsed[static_cast<std::size_t>(site_index)] =
        std::make_unique<const SiteConfig>(std::move(cfg));
  }

  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  bool any = false;
  for (int i = 0; i < kSiteCount; ++i) {
    const SiteConfig* next = parsed[static_cast<std::size_t>(i)].get();
    any = any || next != nullptr;
    if (parsed[static_cast<std::size_t>(i)] != nullptr) {
      s.arena.push_back(std::move(parsed[static_cast<std::size_t>(i)]));
    }
    s.active[i].store(next, std::memory_order_release);
    s.checks[i].store(0, std::memory_order_relaxed);
    s.fires[i].store(0, std::memory_order_relaxed);
  }
  detail::g_armed.store(any, std::memory_order_relaxed);
}

void clear() { configure(""); }

std::string active_spec() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::string> entries;
  for (int i = 0; i < kSiteCount; ++i) {
    const SiteConfig* cfg = s.active[i].load(std::memory_order_acquire);
    if (cfg != nullptr) entries.push_back(cfg->canonical_entry);
  }
  std::sort(entries.begin(), entries.end());
  std::string joined;
  for (const std::string& e : entries) {
    if (!joined.empty()) joined += ';';
    joined += e;
  }
  return joined;
}

obs::CounterSnapshot counters() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  obs::Registry reg;
  for (int i = 0; i < kSiteCount; ++i) {
    const SiteConfig* cfg = s.active[i].load(std::memory_order_acquire);
    const std::int64_t checks = s.checks[i].load(std::memory_order_relaxed);
    if (cfg == nullptr && checks == 0) continue;
    const std::string& name = site_names()[static_cast<std::size_t>(i)];
    reg.add("fault." + name + ".checks", checks);
    reg.add("fault." + name + ".fires",
            s.fires[i].load(std::memory_order_relaxed));
  }
  return reg.snapshot();
}

}  // namespace bsa::fault
