#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "obs/counters.hpp"

/// \file failpoint.hpp
/// Deterministic process-wide failpoint registry — the chaos layer that
/// lets the scheduling service *prove* its robustness properties instead
/// of hoping for them.
///
/// A *failpoint site* is a named place in the code (socket accept, line
/// read, batch evaluation, ...) that asks the registry, each time it is
/// reached, whether a fault should be injected there. Sites are
/// configured with a spec string in the same house grammar as the
/// scheduler/workload registries (full reference: docs/DESIGN_FAULT.md):
///
///   fault::configure(
///       "accept:errno=emfile,every=7;"
///       "read:short=3,prob=0.1,seed=42;"
///       "batch:delay_us=500,after=100");
///
/// Each entry is `site ':' action [',' trigger]...`:
///
///   actions   errno=NAME|N  inject an errno (the site behaves as if the
///                           syscall failed with it)
///             short[=N]     short I/O: the next read/write moves at most
///                           N bytes (default 1)
///             torn[=N]      write at most N bytes of the frame, then
///                           fail the write (mid-response disconnect)
///             disconnect    fail as if the peer vanished
///             delay_us=N    sleep N microseconds, then proceed normally
///             fail          generic failure (the site throws a typed
///                           injected-fault error)
///   triggers  after=N       skip the first N arrivals at the site
///             every=N       fire on every Nth arrival after that
///                           (default 1 = every arrival)
///             prob=P        fire with probability P per arrival,
///                           decided by a seeded hash of the arrival
///                           ordinal (default 1)
///             seed=S        seed for prob's hash (default 1)
///             times=N       fire at most N times (requires a
///                           deterministic trigger, i.e. no prob)
///
/// Determinism contract: whether arrival number n at a site fires is a
/// *pure function* of (spec, n) — `after`/`every`/`times` are counter
/// arithmetic and `prob` hashes (seed, site, n) through splitmix64, so a
/// given spec produces the identical firing schedule on every run and at
/// every thread count (no wall clock, no std::random_device; this is why
/// the subsystem passes lint_determinism.py by construction). Arrival
/// ordinals are assigned by one relaxed fetch_add per site.
///
/// Cost when unconfigured: `check()` is a single relaxed atomic load and
/// a branch — safe to leave in release hot paths. Every firing is
/// recorded in the `fault.<site>.{checks,fires}` counters exposed by
/// `counters()` (merged into the daemon's stats/exit dump).
///
/// Thread-safety: configure/clear swap an immutable config snapshot;
/// sites only ever read it. Configuration is test/ops plumbing, not a
/// hot path — each configure() retires the previous snapshot into a
/// process-lifetime arena (bounded by the number of configure calls).

namespace bsa::fault {

/// The fixed catalog of failpoint sites. Call sites index this enum
/// directly so a check is array lookup, never a string search.
enum class SiteId : int {
  kAccept = 0,  ///< serve/socket.cpp accept_unix: injected accept errno
  kRead,        ///< serve/socket.cpp LineReader: short/errno/disconnect
  kWrite,       ///< serve/socket.cpp write_all: short/torn/errno
  kBatch,       ///< serve/server.cpp run_batch: per-round delay
  kEval,        ///< serve/eval.cpp evaluate_request: fail/delay per cell
  kCache,       ///< serve/server.cpp cache population: fail skips the put
  kPool,        ///< runtime/thread_pool.cpp: per-task scheduling jitter
  kCount
};

/// What a fired failpoint asks its site to do. kNone means "proceed
/// normally" (site unconfigured, or this arrival did not fire).
struct Action {
  enum class Kind {
    kNone = 0,
    kErrno,
    kShortIo,
    kTorn,
    kDisconnect,
    kDelay,
    kFail
  };
  Kind kind = Kind::kNone;
  int err = 0;          ///< kErrno: the errno to inject
  int delay_us = 0;     ///< kDelay: how long to sleep
  int short_bytes = 1;  ///< kShortIo / kTorn: byte cap for the next I/O

  [[nodiscard]] bool fired() const noexcept { return kind != Kind::kNone; }
};

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True iff any failpoint is currently configured. One relaxed load —
/// this is the whole cost of an unconfigured site.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Evaluate one arrival at `site` against the active configuration:
/// assigns the next arrival ordinal and returns the action to apply
/// (kNone when the site is unconfigured or this ordinal does not fire).
/// The slow path of check() — callers normally go through check().
[[nodiscard]] Action evaluate(SiteId site);

/// The hot-path entry: free when nothing is configured.
[[nodiscard]] inline Action check(SiteId site) {
  return enabled() ? evaluate(site) : Action{};
}

/// Apply a kDelay action (sleep); every other kind is a no-op here —
/// sites handle errno/short/fail themselves.
void maybe_delay(const Action& action);

/// Throw bsa::InvariantError when `action` is kFail — the uniform way an
/// evaluation-style site surfaces an injected spurious failure. The
/// message names the site so typed error responses are attributable.
void throw_if_fail(const Action& action, const char* site_label);

/// Replace the active configuration from a spec string ("" clears).
/// Throws PreconditionError on unknown sites/actions/triggers, listing
/// the valid choices. Resets all fault counters.
void configure(const std::string& spec);

/// Remove every failpoint (check() returns to its one-load fast path).
void clear();

/// Canonical form of the active configuration: entries sorted by site
/// name, options in fixed order — configure(active_spec()) reproduces
/// the configuration exactly. Empty when nothing is configured.
[[nodiscard]] std::string active_spec();

/// The site catalog in enum order ("accept", "read", ...).
[[nodiscard]] const std::vector<std::string>& site_names();

/// Deterministic snapshot: fault.<site>.checks / fault.<site>.fires for
/// every site touched since the last configure(), sorted by name.
[[nodiscard]] obs::CounterSnapshot counters();

}  // namespace bsa::fault
