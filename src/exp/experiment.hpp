#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "obs/counters.hpp"
#include "obs/hooks.hpp"

/// \file experiment.hpp
/// Shared harness for the paper-reproduction benchmarks: the paper's four
/// 16-processor topologies, the regular application suite and
/// experiment-cell aggregation. Algorithm dispatch goes through the
/// sched::SchedulerRegistry spec strings ("bsa", "dls:seed=7", ...).

namespace bsa::exp {

struct RunOutcome {
  Time schedule_length = 0;
  double wall_ms = 0;   ///< algorithm wall-clock time
  bool valid = false;   ///< full invariant validation result
  /// Deterministic algorithm counters (SchedulerResult::counters).
  obs::CounterSnapshot counters;
};

/// Resolve a scheduler spec against the global registry, run it on one
/// instance and validate the schedule. `seed` is the tie-breaking seed
/// handed to Scheduler::run (spec-pinned seeds take precedence). The
/// hooks overload threads observability hooks into the scheduler and
/// wraps validation in a span; hooks only observe — same outcome for
/// any hooks.
[[nodiscard]] RunOutcome run_algorithm(const std::string& spec,
                                       const graph::TaskGraph& g,
                                       const net::Topology& topo,
                                       const net::HeterogeneousCostModel& costs,
                                       std::uint64_t seed);
[[nodiscard]] RunOutcome run_algorithm(const std::string& spec,
                                       const graph::TaskGraph& g,
                                       const net::Topology& topo,
                                       const net::HeterogeneousCostModel& costs,
                                       std::uint64_t seed,
                                       const obs::Hooks& hooks);

/// The paper's four experiment topologies over `procs` processors —
/// "ring", "hypercube" (procs must be a power of two), "clique", and
/// "random" (degrees 2..8, seeded) — plus "mesh" (most-square 2-D grid;
/// used by bench_workloads).
[[nodiscard]] net::Topology make_topology(const std::string& kind, int procs,
                                          std::uint64_t seed);
/// The kinds in the paper's figure order.
[[nodiscard]] const std::vector<std::string>& paper_topologies();

/// Regular applications of the paper's first suite.
enum class RegularApp : unsigned char {
  kGaussianElimination,
  kLuDecomposition,
  kLaplace,
  kMeanValueAnalysis,
};
[[nodiscard]] const char* app_name(RegularApp a);
/// The three apps averaged in Figures 3/5 (GE, LU, Laplace; the paper
/// reports "three graph types").
[[nodiscard]] const std::vector<RegularApp>& paper_regular_apps();

/// Build one regular application graph with approximately `target_tasks`
/// tasks at the given granularity.
[[nodiscard]] graph::TaskGraph make_regular(RegularApp app, int target_tasks,
                                            double granularity,
                                            std::uint64_t seed);

/// Build the graph for one experiment cell: `regular` selects
/// paper_regular_apps()[app_index], otherwise a random layered DAG of
/// `size` tasks. Deterministic in the seed. This is the pre-registry
/// instance factory, kept as the reference the workload registry's
/// "gauss"/"lu"/"laplace"/"random" adapters are tested bit-identical
/// against; sweeps now resolve workloads::WorkloadRegistry specs
/// instead (see runtime/scenario.hpp and docs/SPECS.md).
[[nodiscard]] graph::TaskGraph make_instance(bool regular, int app_index,
                                             int size, double granularity,
                                             std::uint64_t seed);

/// The experiments' heterogeneity model: execution factors
/// U[het_lo,het_hi] and link factors U[link_lo,link_hi], one per
/// processor/link (`per_pair == false`, DESIGN.md §3 note 9) or one per
/// (task,processor) / (message,link) pair (the paper's §2.1 literal
/// model). The paper's sweeps use the same range for both.
[[nodiscard]] net::HeterogeneousCostModel make_cost_model(
    const graph::TaskGraph& g, const net::Topology& topo, int het_lo,
    int het_hi, int link_lo, int link_hi, bool per_pair, std::uint64_t seed);

/// Mean accumulator for an experiment cell.
struct CellMean {
  double sum = 0;
  int count = 0;
  void add(double v) {
    sum += v;
    ++count;
  }
  [[nodiscard]] double mean() const { return count == 0 ? 0 : sum / count; }
};

/// Environment-controlled scale factor: benches default to a fast
/// configuration and honour BSA_BENCH_FULL=1 for the paper's full sweep.
[[nodiscard]] bool full_benchmarks_requested();

/// Sizes 50..500 step 50 (full) or a trimmed subset (quick).
[[nodiscard]] std::vector<int> paper_sizes();
/// Granularities {0.1, 1, 10} as in the paper.
[[nodiscard]] const std::vector<double>& paper_granularities();

}  // namespace bsa::exp
