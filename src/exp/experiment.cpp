#include "exp/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/regular.hpp"

namespace bsa::exp {

RunOutcome run_algorithm(const std::string& spec, const graph::TaskGraph& g,
                         const net::Topology& topo,
                         const net::HeterogeneousCostModel& costs,
                         std::uint64_t seed) {
  return run_algorithm(spec, g, topo, costs, seed, obs::Hooks{});
}

RunOutcome run_algorithm(const std::string& spec, const graph::TaskGraph& g,
                         const net::Topology& topo,
                         const net::HeterogeneousCostModel& costs,
                         std::uint64_t seed, const obs::Hooks& hooks) {
  const std::unique_ptr<sched::Scheduler> scheduler =
      sched::SchedulerRegistry::global().resolve(spec);
  sched::SchedulerResult result =
      scheduler->run_observed(g, topo, costs, seed, hooks);
  RunOutcome out;
  out.wall_ms = result.total_ms();
  out.schedule_length = result.makespan();
  {
    obs::Span span(hooks.tracer, "validate", "runtime", hooks.trace_tid);
    out.valid = sched::validate(result.schedule, costs).ok();
  }
  out.counters = std::move(result.counters);
  return out;
}

net::Topology make_topology(const std::string& kind, int procs,
                            std::uint64_t seed) {
  if (kind == "ring") return net::Topology::ring(procs);
  if (kind == "hypercube") {
    int dim = 0;
    while ((1 << dim) < procs) ++dim;
    BSA_REQUIRE((1 << dim) == procs,
                "hypercube needs a power-of-two processor count, got "
                    << procs);
    return net::Topology::hypercube(dim);
  }
  if (kind == "clique") return net::Topology::clique(procs);
  if (kind == "mesh") {
    // Most-square factorisation: the largest divisor <= sqrt(procs).
    int rows = 1;
    for (int r = 1; r * r <= procs; ++r) {
      if (procs % r == 0) rows = r;
    }
    return net::Topology::mesh(rows, procs / rows);
  }
  if (kind == "random") {
    // Paper: degrees 2..8. Cap the degree below the processor count so
    // small test networks remain constructible.
    const int max_degree = std::min(8, procs - 1);
    return net::Topology::random(procs, 2, max_degree, seed);
  }
  BSA_REQUIRE(false, "unknown topology kind '" << kind << "'");
  return net::Topology::ring(2);  // unreachable
}

const std::vector<std::string>& paper_topologies() {
  static const std::vector<std::string> kinds{"ring", "hypercube", "clique",
                                              "random"};
  return kinds;
}

const char* app_name(RegularApp a) {
  switch (a) {
    case RegularApp::kGaussianElimination:
      return "gaussian-elimination";
    case RegularApp::kLuDecomposition:
      return "lu-decomposition";
    case RegularApp::kLaplace:
      return "laplace";
    case RegularApp::kMeanValueAnalysis:
      return "mean-value-analysis";
  }
  return "?";
}

const std::vector<RegularApp>& paper_regular_apps() {
  static const std::vector<RegularApp> apps{
      RegularApp::kGaussianElimination, RegularApp::kLuDecomposition,
      RegularApp::kLaplace};
  return apps;
}

graph::TaskGraph make_regular(RegularApp app, int target_tasks,
                              double granularity, std::uint64_t seed) {
  workloads::CostParams cp;
  cp.granularity = granularity;
  cp.seed = seed;
  switch (app) {
    case RegularApp::kGaussianElimination:
      return workloads::gaussian_elimination(
          workloads::gaussian_elimination_dim_for(target_tasks), cp);
    case RegularApp::kLuDecomposition:
      return workloads::lu_decomposition(
          workloads::lu_decomposition_dim_for(target_tasks), cp);
    case RegularApp::kLaplace:
      return workloads::laplace(workloads::laplace_dim_for(target_tasks), cp);
    case RegularApp::kMeanValueAnalysis:
      return workloads::mean_value_analysis(
          workloads::mva_levels_for(target_tasks, 8), 8, cp);
  }
  BSA_REQUIRE(false, "unknown app");
  return workloads::laplace(2, cp);  // unreachable
}

graph::TaskGraph make_instance(bool regular, int app_index, int size,
                               double granularity, std::uint64_t seed) {
  if (regular) {
    const auto& apps = paper_regular_apps();
    BSA_REQUIRE(app_index >= 0 &&
                    app_index < static_cast<int>(apps.size()),
                "make_instance: app_index " << app_index << " out of range");
    return make_regular(apps[static_cast<std::size_t>(app_index)], size,
                        granularity, seed);
  }
  workloads::RandomDagParams params;
  params.num_tasks = size;
  params.granularity = granularity;
  params.seed = seed;
  return workloads::random_layered_dag(params);
}

net::HeterogeneousCostModel make_cost_model(const graph::TaskGraph& g,
                                            const net::Topology& topo,
                                            int het_lo, int het_hi,
                                            int link_lo, int link_hi,
                                            bool per_pair,
                                            std::uint64_t seed) {
  if (per_pair) {
    return net::HeterogeneousCostModel::uniform(g, topo, het_lo, het_hi,
                                                link_lo, link_hi, seed);
  }
  return net::HeterogeneousCostModel::uniform_processor_speeds(
      g, topo, het_lo, het_hi, link_lo, link_hi, seed);
}

bool full_benchmarks_requested() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at driver
  // startup; nothing in this process calls setenv.
  const char* v = std::getenv("BSA_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

std::vector<int> paper_sizes() {
  if (full_benchmarks_requested()) {
    return {50, 100, 150, 200, 250, 300, 350, 400, 450, 500};
  }
  return {50, 150, 250, 350, 500};
}

const std::vector<double>& paper_granularities() {
  static const std::vector<double> gs{0.1, 1.0, 10.0};
  return gs;
}

}  // namespace bsa::exp
