#pragma once

#include <vector>

#include "common/types.hpp"
#include "network/topology.hpp"

/// \file routing.hpp
/// Static routing support.
///
/// BSA deliberately needs *no* routing table (routes emerge from the
/// migration process), but the DLS baseline follows the traditional design
/// the paper describes: a pre-computed shortest-path routing table that
/// messages follow hop by hop. An E-cube router is provided for hypercubes
/// as the paper's example of a static-routing constraint (§2.3).

namespace bsa::net {

/// All-pairs shortest-path (in hops) routing table. Deterministic: BFS
/// visits neighbours in ascending id order, so among equal-length routes
/// the lexicographically-first parent tree is used.
class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo);

  /// Links of the route src -> dst in traversal order; empty when
  /// src == dst.
  [[nodiscard]] std::vector<LinkId> route(ProcId src, ProcId dst) const;

  /// Same route written into `out` (cleared first) — lets hot paths reuse
  /// one buffer instead of allocating per query.
  void route_into(ProcId src, ProcId dst, std::vector<LinkId>& out) const;

  /// Processors visited by route(src,dst), including both endpoints.
  [[nodiscard]] std::vector<ProcId> route_processors(ProcId src,
                                                     ProcId dst) const;

  /// Shortest hop distance.
  [[nodiscard]] int distance(ProcId src, ProcId dst) const;

  [[nodiscard]] int num_processors() const noexcept { return m_; }

 private:
  void check(ProcId p) const;

  int m_ = 0;
  // next_hop_[src * m_ + dst] = neighbour of src on the route to dst.
  std::vector<ProcId> next_hop_;
  std::vector<int> dist_;
  const Topology* topo_;  // non-owning; must outlive the table
};

/// E-cube (dimension-ordered) route on a hypercube topology: corrects the
/// lowest differing address bit first. `topo` must be a binary hypercube
/// whose processor ids are the vertex addresses.
[[nodiscard]] std::vector<LinkId> ecube_route(const Topology& topo, ProcId src,
                                              ProcId dst);

/// Same E-cube route written into `out` (cleared first).
void ecube_route_into(const Topology& topo, ProcId src, ProcId dst,
                      std::vector<LinkId>& out);

}  // namespace bsa::net
