#include "network/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace bsa::net {
namespace {

std::vector<Cost> nominal_exec_of(const graph::TaskGraph& g) {
  std::vector<Cost> out(static_cast<std::size_t>(g.num_tasks()));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    out[static_cast<std::size_t>(t)] = g.task_cost(t);
  }
  return out;
}

std::vector<Cost> nominal_comm_of(const graph::TaskGraph& g) {
  std::vector<Cost> out(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out[static_cast<std::size_t>(e)] = g.edge_cost(e);
  }
  return out;
}

// Distinct stream tags so exec and comm factor draws never collide.
constexpr std::uint64_t kExecStream = 0x65786563ULL;  // "exec"
constexpr std::uint64_t kCommStream = 0x636F6D6DULL;  // "comm"

}  // namespace

HeterogeneousCostModel HeterogeneousCostModel::uniform(
    const graph::TaskGraph& g, const Topology& topo, int exec_lo, int exec_hi,
    int link_lo, int link_hi, std::uint64_t seed) {
  BSA_REQUIRE(exec_lo >= 1 && exec_lo <= exec_hi,
              "bad exec factor range [" << exec_lo << "," << exec_hi << "]");
  BSA_REQUIRE(link_lo >= 1 && link_lo <= link_hi,
              "bad link factor range [" << link_lo << "," << link_hi << "]");
  HeterogeneousCostModel cm;
  cm.n_ = g.num_tasks();
  cm.m_ = topo.num_processors();
  cm.num_links_ = topo.num_links();
  cm.exec_mode_ = ExecMode::kHashed;
  cm.comm_mode_ = CommMode::kHashed;
  cm.nominal_exec_ = nominal_exec_of(g);
  cm.nominal_comm_ = nominal_comm_of(g);
  cm.seed_ = seed;
  cm.exec_lo_ = exec_lo;
  cm.exec_hi_ = exec_hi;
  cm.link_lo_ = link_lo;
  cm.link_hi_ = link_hi;
  cm.precompute_summaries();
  return cm;
}

HeterogeneousCostModel HeterogeneousCostModel::uniform_processor_speeds(
    const graph::TaskGraph& g, const Topology& topo, int exec_lo, int exec_hi,
    int link_lo, int link_hi, std::uint64_t seed) {
  BSA_REQUIRE(exec_lo >= 1 && exec_lo <= exec_hi,
              "bad exec factor range [" << exec_lo << "," << exec_hi << "]");
  BSA_REQUIRE(link_lo >= 1 && link_lo <= link_hi,
              "bad link factor range [" << link_lo << "," << link_hi << "]");
  HeterogeneousCostModel cm;
  cm.n_ = g.num_tasks();
  cm.m_ = topo.num_processors();
  cm.num_links_ = topo.num_links();
  cm.exec_mode_ = ExecMode::kProcessorSpeed;
  cm.comm_mode_ = CommMode::kLinkSpeed;
  cm.nominal_exec_ = nominal_exec_of(g);
  cm.nominal_comm_ = nominal_comm_of(g);
  cm.proc_speed_.resize(static_cast<std::size_t>(cm.m_));
  for (ProcId p = 0; p < cm.m_; ++p) {
    cm.proc_speed_[static_cast<std::size_t>(p)] =
        static_cast<Cost>(hashed_uniform_int(
            seed ^ kExecStream, static_cast<std::uint64_t>(p), exec_lo,
            exec_hi));
  }
  cm.link_speed_.resize(static_cast<std::size_t>(cm.num_links_));
  for (LinkId l = 0; l < cm.num_links_; ++l) {
    cm.link_speed_[static_cast<std::size_t>(l)] =
        static_cast<Cost>(hashed_uniform_int(
            seed ^ kCommStream, static_cast<std::uint64_t>(l), link_lo,
            link_hi));
  }
  cm.precompute_summaries();
  return cm;
}

HeterogeneousCostModel HeterogeneousCostModel::homogeneous(
    const graph::TaskGraph& g, const Topology& topo) {
  return uniform(g, topo, 1, 1, 1, 1, /*seed=*/0);
}

HeterogeneousCostModel HeterogeneousCostModel::from_exec_matrix(
    const graph::TaskGraph& g, const Topology& topo,
    std::vector<Cost> exec_matrix, Cost link_factor) {
  HeterogeneousCostModel cm;
  cm.n_ = g.num_tasks();
  cm.m_ = topo.num_processors();
  cm.num_links_ = topo.num_links();
  BSA_REQUIRE(exec_matrix.size() ==
                  static_cast<std::size_t>(cm.n_) * static_cast<std::size_t>(cm.m_),
              "exec matrix size " << exec_matrix.size() << " != tasks*procs "
                                  << cm.n_ * cm.m_);
  for (const Cost c : exec_matrix) {
    BSA_REQUIRE(c >= 0, "negative exec cost in matrix");
  }
  BSA_REQUIRE(link_factor >= 0, "negative link factor");
  cm.exec_mode_ = ExecMode::kMatrix;
  cm.comm_mode_ = CommMode::kFixedFactor;
  cm.nominal_exec_ = nominal_exec_of(g);
  cm.nominal_comm_ = nominal_comm_of(g);
  cm.exec_matrix_ = std::move(exec_matrix);
  cm.link_factor_ = link_factor;
  cm.precompute_summaries();
  return cm;
}

Cost HeterogeneousCostModel::exec_cost(TaskId t, ProcId p) const {
  BSA_REQUIRE(t >= 0 && t < n_, "task id " << t << " out of range");
  BSA_REQUIRE(p >= 0 && p < m_, "processor id " << p << " out of range");
  const auto idx =
      static_cast<std::size_t>(t) * static_cast<std::size_t>(m_) +
      static_cast<std::size_t>(p);
  if (exec_mode_ == ExecMode::kMatrix) return exec_matrix_[idx];
  if (exec_mode_ == ExecMode::kProcessorSpeed) {
    return proc_speed_[static_cast<std::size_t>(p)] *
           nominal_exec_[static_cast<std::size_t>(t)];
  }
  const auto factor = static_cast<Cost>(hashed_uniform_int(
      seed_ ^ kExecStream, static_cast<std::uint64_t>(idx), exec_lo_,
      exec_hi_));
  return factor * nominal_exec_[static_cast<std::size_t>(t)];
}

Cost HeterogeneousCostModel::comm_cost(EdgeId e, LinkId l) const {
  BSA_REQUIRE(e >= 0 && e < num_edges(), "edge id " << e << " out of range");
  BSA_REQUIRE(l >= 0 && l < num_links_, "link id " << l << " out of range");
  if (comm_mode_ == CommMode::kFixedFactor) {
    return link_factor_ * nominal_comm_[static_cast<std::size_t>(e)];
  }
  if (comm_mode_ == CommMode::kLinkSpeed) {
    return link_speed_[static_cast<std::size_t>(l)] *
           nominal_comm_[static_cast<std::size_t>(e)];
  }
  const auto idx = static_cast<std::uint64_t>(e) *
                       static_cast<std::uint64_t>(num_links_) +
                   static_cast<std::uint64_t>(l);
  const auto factor = static_cast<Cost>(
      hashed_uniform_int(seed_ ^ kCommStream, idx, link_lo_, link_hi_));
  return factor * nominal_comm_[static_cast<std::size_t>(e)];
}

std::vector<Cost> HeterogeneousCostModel::exec_costs_on(ProcId p) const {
  std::vector<Cost> out(static_cast<std::size_t>(n_));
  for (TaskId t = 0; t < n_; ++t) {
    out[static_cast<std::size_t>(t)] = exec_cost(t, p);
  }
  return out;
}

Cost HeterogeneousCostModel::min_exec_cost(TaskId t) const {
  BSA_REQUIRE(t >= 0 && t < n_, "task id " << t << " out of range");
  return min_exec_[static_cast<std::size_t>(t)];
}

Cost HeterogeneousCostModel::median_exec_cost(TaskId t) const {
  BSA_REQUIRE(t >= 0 && t < n_, "task id " << t << " out of range");
  return median_exec_[static_cast<std::size_t>(t)];
}

void HeterogeneousCostModel::precompute_summaries() {
  min_exec_.resize(static_cast<std::size_t>(n_));
  median_exec_.resize(static_cast<std::size_t>(n_));
  std::vector<Cost> row(static_cast<std::size_t>(m_));
  for (TaskId t = 0; t < n_; ++t) {
    for (ProcId p = 0; p < m_; ++p) {
      row[static_cast<std::size_t>(p)] = exec_cost(t, p);
    }
    min_exec_[static_cast<std::size_t>(t)] =
        *std::min_element(row.begin(), row.end());
    std::vector<Cost> sorted = row;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    median_exec_[static_cast<std::size_t>(t)] =
        sorted.size() % 2 == 1 ? sorted[mid]
                               : 0.5 * (sorted[mid - 1] + sorted[mid]);
  }
}

}  // namespace bsa::net
