#include "network/routing.hpp"

#include <queue>

#include "common/check.hpp"

namespace bsa::net {

RoutingTable::RoutingTable(const Topology& topo)
    : m_(topo.num_processors()), topo_(&topo) {
  const auto m = static_cast<std::size_t>(m_);
  next_hop_.assign(m * m, kInvalidProc);
  dist_.assign(m * m, -1);
  // BFS from every destination; next_hop_[p][dst] = parent-side neighbour
  // of p in the BFS tree rooted at dst.
  for (ProcId dst = 0; dst < m_; ++dst) {
    const auto base = [&](ProcId p) {
      return static_cast<std::size_t>(p) * m + static_cast<std::size_t>(dst);
    };
    std::queue<ProcId> frontier;
    frontier.push(dst);
    dist_[base(dst)] = 0;
    while (!frontier.empty()) {
      const ProcId p = frontier.front();
      frontier.pop();
      for (const ProcId q : topo.neighbors(p)) {
        if (dist_[base(q)] < 0) {
          dist_[base(q)] = dist_[base(p)] + 1;
          next_hop_[base(q)] = p;
          frontier.push(q);
        }
      }
    }
  }
}

void RoutingTable::check(ProcId p) const {
  BSA_REQUIRE(p >= 0 && p < m_, "processor id " << p << " out of range");
}

std::vector<LinkId> RoutingTable::route(ProcId src, ProcId dst) const {
  std::vector<LinkId> links;
  route_into(src, dst, links);
  return links;
}

void RoutingTable::route_into(ProcId src, ProcId dst,
                              std::vector<LinkId>& out) const {
  check(src);
  check(dst);
  out.clear();
  ProcId cur = src;
  while (cur != dst) {
    const ProcId next = next_hop_[static_cast<std::size_t>(cur) *
                                      static_cast<std::size_t>(m_) +
                                  static_cast<std::size_t>(dst)];
    BSA_ASSERT(next != kInvalidProc, "routing table hole " << cur << "->"
                                                           << dst);
    const LinkId l = topo_->link_between(cur, next);
    BSA_ASSERT(l != kInvalidLink, "next hop not adjacent");
    out.push_back(l);
    cur = next;
  }
}

std::vector<ProcId> RoutingTable::route_processors(ProcId src,
                                                   ProcId dst) const {
  std::vector<ProcId> procs{src};
  ProcId cur = src;
  for (const LinkId l : route(src, dst)) {
    cur = topo_->opposite(l, cur);
    procs.push_back(cur);
  }
  return procs;
}

int RoutingTable::distance(ProcId src, ProcId dst) const {
  check(src);
  check(dst);
  return dist_[static_cast<std::size_t>(src) * static_cast<std::size_t>(m_) +
               static_cast<std::size_t>(dst)];
}

std::vector<LinkId> ecube_route(const Topology& topo, ProcId src, ProcId dst) {
  std::vector<LinkId> links;
  ecube_route_into(topo, src, dst, links);
  return links;
}

void ecube_route_into(const Topology& topo, ProcId src, ProcId dst,
                      std::vector<LinkId>& out) {
  BSA_REQUIRE(src >= 0 && src < topo.num_processors(), "bad src " << src);
  BSA_REQUIRE(dst >= 0 && dst < topo.num_processors(), "bad dst " << dst);
  out.clear();
  ProcId cur = src;
  while (cur != dst) {
    const unsigned diff =
        static_cast<unsigned>(cur) ^ static_cast<unsigned>(dst);
    // Lowest set bit of the address difference.
    const unsigned bit = diff & (~diff + 1u);
    const ProcId next = static_cast<ProcId>(static_cast<unsigned>(cur) ^ bit);
    const LinkId l = topo.link_between(cur, next);
    BSA_REQUIRE(l != kInvalidLink,
                "topology is not a hypercube: missing link " << cur << "-"
                                                             << next);
    out.push_back(l);
    cur = next;
  }
}

}  // namespace bsa::net
