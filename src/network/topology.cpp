#include "network/topology.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace bsa::net {

void Topology::check_proc(ProcId p) const {
  BSA_REQUIRE(p >= 0 && p < num_processors(),
              "processor id " << p << " out of range [0," << num_processors()
                              << ")");
}

void Topology::check_link(LinkId l) const {
  BSA_REQUIRE(l >= 0 && l < num_links(),
              "link id " << l << " out of range [0," << num_links() << ")");
}

std::pair<ProcId, ProcId> Topology::link_endpoints(LinkId l) const {
  check_link(l);
  return links_[static_cast<std::size_t>(l)];
}

LinkId Topology::link_between(ProcId x, ProcId y) const {
  check_proc(x);
  check_proc(y);
  const auto& nbrs = adjacency_[static_cast<std::size_t>(x)];
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), y);
  if (it == nbrs.end() || *it != y) return kInvalidLink;
  const auto idx = static_cast<std::size_t>(it - nbrs.begin());
  return incident_links_[static_cast<std::size_t>(x)][idx];
}

std::span<const ProcId> Topology::neighbors(ProcId p) const {
  check_proc(p);
  return adjacency_[static_cast<std::size_t>(p)];
}

std::span<const LinkId> Topology::links_of(ProcId p) const {
  check_proc(p);
  return incident_links_[static_cast<std::size_t>(p)];
}

ProcId Topology::opposite(LinkId l, ProcId p) const {
  const auto [a, b] = link_endpoints(l);
  BSA_REQUIRE(p == a || p == b,
              "processor " << p << " is not an endpoint of link " << l);
  return p == a ? b : a;
}

std::vector<ProcId> Topology::bfs_order(ProcId root) const {
  check_proc(root);
  std::vector<char> seen(static_cast<std::size_t>(num_processors()), 0);
  std::vector<ProcId> order;
  order.reserve(static_cast<std::size_t>(num_processors()));
  std::queue<ProcId> frontier;
  frontier.push(root);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!frontier.empty()) {
    const ProcId p = frontier.front();
    frontier.pop();
    order.push_back(p);
    for (const ProcId q : neighbors(p)) {
      auto& s = seen[static_cast<std::size_t>(q)];
      if (!s) {
        s = 1;
        frontier.push(q);
      }
    }
  }
  BSA_ASSERT(order.size() == static_cast<std::size_t>(num_processors()),
             "topology must be connected");
  return order;
}

int Topology::hop_distance(ProcId x, ProcId y) const {
  check_proc(x);
  check_proc(y);
  if (x == y) return 0;
  std::vector<int> dist(static_cast<std::size_t>(num_processors()), -1);
  std::queue<ProcId> frontier;
  frontier.push(x);
  dist[static_cast<std::size_t>(x)] = 0;
  while (!frontier.empty()) {
    const ProcId p = frontier.front();
    frontier.pop();
    for (const ProcId q : neighbors(p)) {
      auto& d = dist[static_cast<std::size_t>(q)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(p)] + 1;
        if (q == y) return d;
        frontier.push(q);
      }
    }
  }
  BSA_ASSERT(false, "topology must be connected");
  return -1;
}

void Topology::finalize() {
  const auto m = static_cast<std::size_t>(num_processors());
  adjacency_.assign(m, {});
  incident_links_.assign(m, {});
  // Temporarily collect (neighbor, link) pairs, then sort by neighbor id.
  std::vector<std::vector<std::pair<ProcId, LinkId>>> adj(m);
  for (LinkId l = 0; l < num_links(); ++l) {
    const auto [a, b] = links_[static_cast<std::size_t>(l)];
    adj[static_cast<std::size_t>(a)].emplace_back(b, l);
    adj[static_cast<std::size_t>(b)].emplace_back(a, l);
  }
  for (std::size_t p = 0; p < m; ++p) {
    std::sort(adj[p].begin(), adj[p].end());
    adjacency_[p].reserve(adj[p].size());
    incident_links_[p].reserve(adj[p].size());
    for (const auto& [q, l] : adj[p]) {
      adjacency_[p].push_back(q);
      incident_links_[p].push_back(l);
    }
  }
  // Connectivity check (bfs_order asserts internally).
  if (num_processors() > 0) (void)bfs_order(0);
}

Topology Topology::from_links(int num_processors,
                              std::span<const std::pair<ProcId, ProcId>> links,
                              std::string name) {
  BSA_REQUIRE(num_processors >= 1, "need at least one processor");
  Topology t;
  t.name_ = std::move(name);
  t.adjacency_.resize(static_cast<std::size_t>(num_processors));
  std::set<std::pair<ProcId, ProcId>> seen;
  for (auto [a, b] : links) {
    BSA_REQUIRE(a >= 0 && a < num_processors && b >= 0 && b < num_processors,
                "link endpoint out of range: (" << a << "," << b << ")");
    BSA_REQUIRE(a != b, "self link on processor " << a);
    if (a > b) std::swap(a, b);
    BSA_REQUIRE(seen.insert({a, b}).second,
                "duplicate link (" << a << "," << b << ")");
    t.links_.emplace_back(a, b);
  }
  t.finalize();
  return t;
}

Topology Topology::ring(int num_processors) {
  BSA_REQUIRE(num_processors >= 2, "ring needs >= 2 processors");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId p = 0; p + 1 < num_processors; ++p) links.emplace_back(p, p + 1);
  if (num_processors > 2) links.emplace_back(num_processors - 1, 0);
  return from_links(num_processors, links,
                    "ring-" + std::to_string(num_processors));
}

Topology Topology::hypercube(int dimension) {
  BSA_REQUIRE(dimension >= 1 && dimension <= 20,
              "hypercube dimension out of range: " << dimension);
  const int m = 1 << dimension;
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId p = 0; p < m; ++p) {
    for (int bit = 0; bit < dimension; ++bit) {
      const ProcId q = p ^ (1 << bit);
      if (p < q) links.emplace_back(p, q);
    }
  }
  return from_links(m, links, "hypercube-" + std::to_string(m));
}

Topology Topology::clique(int num_processors) {
  BSA_REQUIRE(num_processors >= 2, "clique needs >= 2 processors");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId a = 0; a < num_processors; ++a) {
    for (ProcId b = a + 1; b < num_processors; ++b) links.emplace_back(a, b);
  }
  return from_links(num_processors, links,
                    "clique-" + std::to_string(num_processors));
}

Topology Topology::random(int num_processors, int min_degree, int max_degree,
                          std::uint64_t seed) {
  BSA_REQUIRE(num_processors >= 3, "random topology needs >= 3 processors");
  BSA_REQUIRE(min_degree >= 2, "min_degree must be >= 2 (connectivity)");
  BSA_REQUIRE(max_degree >= min_degree, "max_degree < min_degree");
  BSA_REQUIRE(max_degree < num_processors,
              "max_degree must be < num_processors");
  Rng rng(seed);

  // Random Hamiltonian cycle: connected and every degree exactly 2.
  std::vector<ProcId> perm(static_cast<std::size_t>(num_processors));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  std::set<std::pair<ProcId, ProcId>> edge_set;
  auto add_sorted = [&](ProcId a, ProcId b) {
    if (a > b) std::swap(a, b);
    return edge_set.insert({a, b}).second;
  };
  std::vector<int> degree(static_cast<std::size_t>(num_processors), 0);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const ProcId a = perm[i];
    const ProcId b = perm[(i + 1) % perm.size()];
    if (add_sorted(a, b)) {
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
    }
  }

  // Sprinkle extra links while respecting the degree cap. The attempt
  // budget bounds the loop when the cap makes further insertion
  // impossible.
  const std::int64_t extra =
      rng.uniform_int(num_processors / 2, 2L * num_processors);
  int attempts = 0;
  int added = 0;
  const int max_attempts = 50 * num_processors;
  while (added < extra && attempts < max_attempts) {
    ++attempts;
    const auto a = static_cast<ProcId>(rng.index(perm.size()));
    const auto b = static_cast<ProcId>(rng.index(perm.size()));
    if (a == b) continue;
    if (degree[static_cast<std::size_t>(a)] >= max_degree ||
        degree[static_cast<std::size_t>(b)] >= max_degree) {
      continue;
    }
    if (!add_sorted(a, b)) continue;
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
    ++added;
  }

  std::vector<std::pair<ProcId, ProcId>> links(edge_set.begin(),
                                               edge_set.end());
  return from_links(num_processors, links,
                    "random-" + std::to_string(num_processors));
}

Topology Topology::mesh(int rows, int cols) {
  BSA_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
              "mesh needs >= 2 processors");
  auto id = [cols](int r, int c) { return static_cast<ProcId>(r * cols + c); };
  std::vector<std::pair<ProcId, ProcId>> links;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return from_links(rows * cols, links,
                    "mesh-" + std::to_string(rows) + "x" + std::to_string(cols));
}

Topology Topology::torus(int rows, int cols) {
  BSA_REQUIRE(rows >= 3 && cols >= 3, "torus needs rows,cols >= 3");
  auto id = [cols](int r, int c) { return static_cast<ProcId>(r * cols + c); };
  std::set<std::pair<ProcId, ProcId>> edge_set;
  auto add = [&](ProcId a, ProcId b) {
    if (a > b) std::swap(a, b);
    edge_set.insert({a, b});
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      add(id(r, c), id(r, (c + 1) % cols));
      add(id(r, c), id((r + 1) % rows, c));
    }
  }
  std::vector<std::pair<ProcId, ProcId>> links(edge_set.begin(),
                                               edge_set.end());
  return from_links(rows * cols, links,
                    "torus-" + std::to_string(rows) + "x" + std::to_string(cols));
}

Topology Topology::star(int num_processors) {
  BSA_REQUIRE(num_processors >= 2, "star needs >= 2 processors");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId p = 1; p < num_processors; ++p) links.emplace_back(0, p);
  return from_links(num_processors, links,
                    "star-" + std::to_string(num_processors));
}

Topology Topology::linear(int num_processors) {
  BSA_REQUIRE(num_processors >= 2, "linear array needs >= 2 processors");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId p = 0; p + 1 < num_processors; ++p) links.emplace_back(p, p + 1);
  return from_links(num_processors, links,
                    "linear-" + std::to_string(num_processors));
}

}  // namespace bsa::net
