#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/topology.hpp"

/// \file cost_model.hpp
/// Heterogeneity cost model (§2.1, §3 of the paper).
///
/// Actual execution cost of task T_i on processor P_x is h_ix * τ_i and
/// the actual cost of message M_ij on link L_xy is h'_ijxy * c_ij, where
/// the nominal costs τ/c are the costs on the *fastest* machine and the
/// factors h are >= 1.
///
/// Two backing stores are supported:
///  * an explicit actual-execution-cost matrix (the paper's Table 1), and
///  * lazily hashed uniform factors h,h' ~ U[lo,hi] drawn deterministically
///    from (seed, task, processor) / (seed, edge, link). This realises the
///    paper's experimental setting (U[1,50] by default, U[1,R] for the
///    Figure 7 heterogeneity sweep) without materialising an e x |L| table.

namespace bsa::net {

class HeterogeneousCostModel {
 public:
  /// Integer factors drawn uniformly from [exec_lo, exec_hi] per
  /// (task, processor) and [link_lo, link_hi] per (edge, link): the
  /// paper's most literal model (§2.1, Table 1 is of this form).
  static HeterogeneousCostModel uniform(const graph::TaskGraph& g,
                                        const Topology& topo, int exec_lo,
                                        int exec_hi, int link_lo, int link_hi,
                                        std::uint64_t seed);

  /// One integer speed factor per *processor* (h_ix = s_x for every task)
  /// and one per *link*. This is the reading of the paper's experimental
  /// setup suggested by §3's "a large [heterogeneity] range implies that
  /// there are more slow processors in the system", and it is what the
  /// figure-reproduction benches use by default (see DESIGN.md §3).
  static HeterogeneousCostModel uniform_processor_speeds(
      const graph::TaskGraph& g, const Topology& topo, int exec_lo,
      int exec_hi, int link_lo, int link_hi, std::uint64_t seed);

  /// All factors 1 — a homogeneous system running at nominal cost.
  static HeterogeneousCostModel homogeneous(const graph::TaskGraph& g,
                                            const Topology& topo);

  /// Explicit actual execution costs: `exec_matrix[t * m + p]` is the
  /// actual cost of task t on processor p (the paper's Table 1). Links use
  /// the fixed factor `link_factor` (1 in the paper's example).
  static HeterogeneousCostModel from_exec_matrix(
      const graph::TaskGraph& g, const Topology& topo,
      std::vector<Cost> exec_matrix, Cost link_factor = 1);

  /// Actual execution cost h_ix * τ_i.
  [[nodiscard]] Cost exec_cost(TaskId t, ProcId p) const;
  /// Actual communication cost h'_ijxy * c_ij.
  [[nodiscard]] Cost comm_cost(EdgeId e, LinkId l) const;

  /// Column of exec costs for one processor (indexed by TaskId); the
  /// per-processor cost vector used by BSA's pivot selection.
  [[nodiscard]] std::vector<Cost> exec_costs_on(ProcId p) const;

  /// Nominal communication costs indexed by EdgeId (used whenever a level
  /// computation needs per-edge costs irrespective of link placement).
  [[nodiscard]] const std::vector<Cost>& nominal_comm_costs() const noexcept {
    return nominal_comm_;
  }

  /// Fastest / median execution cost of a task across processors
  /// (median is what the DLS baseline's Δ term uses).
  [[nodiscard]] Cost min_exec_cost(TaskId t) const;
  [[nodiscard]] Cost median_exec_cost(TaskId t) const;

  [[nodiscard]] int num_tasks() const noexcept { return n_; }
  [[nodiscard]] int num_processors() const noexcept { return m_; }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(nominal_comm_.size());
  }
  [[nodiscard]] int num_links() const noexcept { return num_links_; }

 private:
  HeterogeneousCostModel() = default;
  void precompute_summaries();

  enum class ExecMode { kMatrix, kHashed, kProcessorSpeed };
  enum class CommMode { kFixedFactor, kHashed, kLinkSpeed };

  int n_ = 0;
  int m_ = 0;
  int num_links_ = 0;

  ExecMode exec_mode_ = ExecMode::kHashed;
  CommMode comm_mode_ = CommMode::kFixedFactor;

  std::vector<Cost> nominal_exec_;  // indexed by TaskId
  std::vector<Cost> nominal_comm_;  // indexed by EdgeId

  // kMatrix: actual costs, row-major task x processor.
  std::vector<Cost> exec_matrix_;
  // kHashed parameters.
  std::uint64_t seed_ = 0;
  int exec_lo_ = 1, exec_hi_ = 1;
  int link_lo_ = 1, link_hi_ = 1;
  Cost link_factor_ = 1;
  // kProcessorSpeed / kLinkSpeed: one factor per processor / link.
  std::vector<Cost> proc_speed_;
  std::vector<Cost> link_speed_;

  // Cached per-task summaries.
  std::vector<Cost> min_exec_;
  std::vector<Cost> median_exec_;
};

}  // namespace bsa::net
