#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

/// \file topology.hpp
/// The heterogeneous processor-network model (§2.1, §3 of the paper).
///
/// A Topology is an undirected connected graph over processors P_1..P_m.
/// Each undirected link L_xy is a single communication resource shared by
/// both directions (half duplex) — this matches the paper's Figure 2 where
/// each link owns one timeline column. Algorithms treat links as exclusive:
/// one message at a time.
///
/// Factories cover the paper's four experimental topologies (16-processor
/// ring, hypercube, clique, bounded-degree random) plus common extras used
/// by the examples and tests.

namespace bsa::net {

class Topology {
 public:
  /// Build from an explicit link list; validates ids, rejects self loops
  /// and duplicate links, and requires a connected network.
  static Topology from_links(int num_processors,
                             std::span<const std::pair<ProcId, ProcId>> links,
                             std::string name = "custom");

  /// Cycle P1-P2-...-Pm-P1 (m >= 3, or m == 2 which degenerates to a
  /// single link).
  static Topology ring(int num_processors);
  /// d-dimensional binary hypercube with 2^d processors (d >= 1).
  static Topology hypercube(int dimension);
  /// Fully connected network over m >= 2 processors.
  static Topology clique(int num_processors);
  /// Random connected topology with processor degrees in
  /// [min_degree, max_degree] (paper: 2..8). Built as a random Hamiltonian
  /// cycle plus random extra links that respect the degree cap.
  static Topology random(int num_processors, int min_degree, int max_degree,
                         std::uint64_t seed);
  /// rows x cols grid (no wraparound).
  static Topology mesh(int rows, int cols);
  /// rows x cols grid with wraparound links.
  static Topology torus(int rows, int cols);
  /// Star: processor 0 connected to every other.
  static Topology star(int num_processors);
  /// Open chain P1-P2-...-Pm.
  static Topology linear(int num_processors);

  [[nodiscard]] int num_processors() const noexcept {
    return static_cast<int>(adjacency_.size());
  }
  [[nodiscard]] int num_links() const noexcept {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Endpoints of a link, ordered (low id, high id).
  [[nodiscard]] std::pair<ProcId, ProcId> link_endpoints(LinkId l) const;

  /// The link joining x and y, or kInvalidLink when not adjacent.
  [[nodiscard]] LinkId link_between(ProcId x, ProcId y) const;

  /// Neighbouring processors of `p` in ascending id order.
  [[nodiscard]] std::span<const ProcId> neighbors(ProcId p) const;
  /// Links incident to `p`, parallel to neighbors(p).
  [[nodiscard]] std::span<const LinkId> links_of(ProcId p) const;

  [[nodiscard]] int degree(ProcId p) const {
    return static_cast<int>(neighbors(p).size());
  }

  /// Given a link and one endpoint, the other endpoint.
  [[nodiscard]] ProcId opposite(LinkId l, ProcId p) const;

  /// Breadth-first processor order from `root` (the paper's
  /// BuildProcessorList). Neighbours are visited in ascending id order, so
  /// the result is deterministic. Always contains all m processors.
  [[nodiscard]] std::vector<ProcId> bfs_order(ProcId root) const;

  /// Hop distance matrix entry (shortest path length in links).
  [[nodiscard]] int hop_distance(ProcId x, ProcId y) const;

 private:
  Topology() = default;
  void check_proc(ProcId p) const;
  void check_link(LinkId l) const;
  void finalize();  // builds adjacency, validates connectivity

  std::string name_;
  std::vector<std::pair<ProcId, ProcId>> links_;
  std::vector<std::vector<ProcId>> adjacency_;       // sorted neighbour ids
  std::vector<std::vector<LinkId>> incident_links_;  // parallel to adjacency_
};

}  // namespace bsa::net
