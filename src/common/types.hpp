#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier and quantity types shared by every module.
///
/// All identifiers are dense zero-based indices into the owning container
/// (`TaskGraph`, `Topology`, ...). The sentinel value `kInvalid*` marks
/// "not assigned / not present".

namespace bsa {

/// Index of a task within a TaskGraph.
using TaskId = std::int32_t;
/// Index of a directed edge (message) within a TaskGraph.
using EdgeId = std::int32_t;
/// Index of a processor within a Topology.
using ProcId = std::int32_t;
/// Index of an undirected communication link within a Topology.
using LinkId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr EdgeId kInvalidEdge = -1;
inline constexpr ProcId kInvalidProc = -1;
inline constexpr LinkId kInvalidLink = -1;

/// Simulated time. Costs in the model are products of integral nominal
/// costs and integral heterogeneity factors, so `Time` values are exact
/// sums of exact products in practice; `double` keeps the API flexible
/// for fractional cost models.
using Time = double;
/// Execution or communication cost (same unit as Time).
using Cost = double;

/// Sentinel for "no time assigned yet".
inline constexpr Time kUnsetTime = -std::numeric_limits<Time>::infinity();
/// Upper sentinel, useful as an initial minimum.
inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

/// Tolerance used when comparing schedule times for equality. All
/// quantities in the reproduction are integral, so this only guards
/// against user-provided fractional cost models.
inline constexpr Time kTimeEpsilon = 1e-9;

/// True if `a` and `b` are equal within kTimeEpsilon.
[[nodiscard]] constexpr bool time_eq(Time a, Time b) noexcept {
  const Time d = a - b;
  return d <= kTimeEpsilon && d >= -kTimeEpsilon;
}

/// True if `a` is strictly less than `b` beyond the tolerance.
[[nodiscard]] constexpr bool time_lt(Time a, Time b) noexcept {
  return a < b - kTimeEpsilon;
}

/// True if `a <= b` within tolerance.
[[nodiscard]] constexpr bool time_le(Time a, Time b) noexcept {
  return a <= b + kTimeEpsilon;
}

}  // namespace bsa
