#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace bsa {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BSA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  BSA_REQUIRE(!rows_.empty(), "call new_row() before cell()");
  BSA_REQUIRE(rows_.back().size() < headers_.size(),
              "row already has " << headers_.size() << " cells");
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < headers_.size()) os << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) os << "-+-";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace bsa
