#pragma once

#include <string>

/// \file json.hpp
/// The two JSON formatting primitives shared by every emitter in the
/// repo (JSONL result rows, BENCH_*.json reports, Chrome trace export,
/// decision logs). Formatting is locale-independent and round-trip
/// stable, so emitted artefacts are byte-identical across runs and
/// platforms with the same libc printf.

namespace bsa {

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Format a double with round-trip (max_digits10) precision; integral
/// values print without an exponent or trailing zeros. Non-finite
/// values print as null (JSON has no inf/nan literals), keeping the
/// surrounding document parseable.
[[nodiscard]] std::string json_number(double v);

}  // namespace bsa
