#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace bsa {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // JSON has no inf/nan literals; emit null so a row with a non-finite
  // metric (e.g. the granularity of an edge-free external graph) stays
  // parseable instead of corrupting the whole JSONL file.
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace bsa
