#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the experiment harness to
/// aggregate schedule lengths across suites (the paper reports per-cell
/// averages).

namespace bsa {

/// Incremental accumulator for mean / variance / extrema (Welford).
class StatAccumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sequence; 0 for an empty sequence.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Median (average of the two middle elements for even sizes).
/// Precondition: xs non-empty.
[[nodiscard]] double median_of(std::vector<double> xs);

/// The p-th percentile (p in [0, 100]) with linear interpolation between
/// order statistics (the common "exclusive of interpolation" definition:
/// rank p/100 * (n-1)). percentile_of(xs, 50) equals median_of(xs).
/// Precondition: xs non-empty.
[[nodiscard]] double percentile_of(std::vector<double> xs, double p);

/// Geometric mean; precondition: all values strictly positive.
[[nodiscard]] double geometric_mean_of(std::span<const double> xs);

}  // namespace bsa
