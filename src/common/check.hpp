#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file check.hpp
/// Error-reporting helpers. Following the C++ Core Guidelines (E.2, I.10)
/// precondition violations and invariant breaks are reported by throwing;
/// callers that cannot recover simply let the exception terminate.

namespace bsa {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a bug in this
/// library, not in the caller).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace bsa

/// Validate a caller-supplied precondition; throws bsa::PreconditionError.
#define BSA_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::bsa::detail::throw_precondition(#expr, __FILE__, __LINE__,          \
                                        (std::ostringstream{} << msg).str()); \
    }                                                                       \
  } while (false)

/// Validate an internal invariant; throws bsa::InvariantError.
#define BSA_ASSERT(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::bsa::detail::throw_invariant(#expr, __FILE__, __LINE__,             \
                                     (std::ostringstream{} << msg).str());  \
    }                                                                       \
  } while (false)
