#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

/// \file spec.hpp
/// The shared *spec string* machinery behind every named-thing registry in
/// the repo (scheduler specs such as "bsa:gate=always,route=static" and
/// workload specs such as "fft:points=64,ccr=0.5").
///
/// Grammar (names, keys and values are case-insensitive ASCII,
/// whitespace-tolerant; full reference: docs/SPECS.md):
///
///   spec    := name [ ":" option ("," option)* ]
///   option  := key "=" value
///
/// The *canonical form* of a spec is the lowercase name followed by the
/// non-default options sorted by key with canonical value spellings;
/// `canonical_spec` assembles it and each registry's `canonical()`
/// round-trips any accepted spec to it.
///
/// Everything here is stateless and thread-safe: parsing never mutates
/// shared state, and SpecOptions instances are immutable.

namespace bsa {

/// A spec string split into its (lowercased) name and option list.
struct ParsedSpec {
  std::string name;
  /// Options in spec order; keys and values lowercased and trimmed.
  std::vector<std::pair<std::string, std::string>> options;
};

/// ASCII lowercase (spec strings are ASCII identifiers).
[[nodiscard]] std::string ascii_lower(const std::string& s);

/// Parse a spec string. `kind` names the registry in error messages
/// ("scheduler", "workload"). Throws PreconditionError on grammar errors
/// (empty name, missing '=', duplicate keys, stray separators).
[[nodiscard]] ParsedSpec parse_spec(const std::string& spec,
                                    const std::string& kind);

/// Typed option accessors handed to registry factories. Every getter
/// throws PreconditionError with the valid choices on a bad value.
/// Immutable once constructed — safe to share across threads.
class SpecOptions {
 public:
  SpecOptions(std::string kind, std::string name,
              std::vector<std::pair<std::string, std::string>> options)
      : kind_(std::move(kind)),
        name_(std::move(name)),
        options_(std::move(options)) {}

  /// The (lowercase) registry name the options belong to.
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of `key` restricted to `choices`; returns the canonical
  /// (lowercase) choice, or `fallback` when the key is absent.
  [[nodiscard]] std::string get_choice(
      const std::string& key, const std::vector<std::string>& choices,
      const std::string& fallback) const;

  /// Boolean option: accepts on/off, true/false, yes/no, 1/0.
  [[nodiscard]] bool get_flag(const std::string& key, bool fallback) const;

  /// Integer option with an inclusive lower bound.
  [[nodiscard]] int get_int(const std::string& key, int fallback,
                            int min_value) const;

  /// Unsigned 64-bit option (seeds).
  [[nodiscard]] std::uint64_t get_uint64(const std::string& key,
                                         std::uint64_t fallback) const;

  /// Finite floating-point option, strictly greater than `min_exclusive`.
  [[nodiscard]] double get_double(const std::string& key, double fallback,
                                  double min_exclusive) const;

 private:
  [[nodiscard]] const std::string* raw(const std::string& key) const;

  std::string kind_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> options_;
};

/// Assemble a canonical spec: `name` followed by the given non-default
/// "key=value" fragments sorted by key ("key=value" strings sort the same
/// way as keys, so a plain sort is the canonical order).
[[nodiscard]] std::string canonical_spec(
    const std::string& name, std::vector<std::string> non_default_options);

/// Canonical spelling of a double-valued option ("0.5", "10", "2.25") —
/// shortest representation that parses back to the same value.
[[nodiscard]] std::string canonical_double(double v);

/// Split a comma-separated list of specs, e.g. a CLI `--algo` or
/// `--workload` value. Variant options themselves use commas
/// ("bsa:gate=always,route=static"), so a comma token of the form
/// key=value whose key does not satisfy `is_registered_name` continues
/// the preceding spec instead of starting a new one. The returned specs
/// are not yet validated — feed them to a registry's resolve/canonical.
[[nodiscard]] std::vector<std::string> split_spec_list(
    const std::string& text,
    const std::function<bool(const std::string&)>& is_registered_name);

/// Join strings with a separator — shared by registry error listings.
[[nodiscard]] std::string join_list(const std::vector<std::string>& parts,
                                    const char* sep);

}  // namespace bsa
