#include "common/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "common/check.hpp"
#include "common/cli.hpp"

namespace bsa {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string join_list(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ascii_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

ParsedSpec parse_spec(const std::string& spec, const std::string& kind) {
  const std::string text = trim(spec);
  BSA_REQUIRE(!text.empty(), kind << " spec is empty");
  ParsedSpec out;
  const std::size_t colon = text.find(':');
  out.name = ascii_lower(trim(text.substr(0, colon)));
  BSA_REQUIRE(!out.name.empty(),
              kind << " spec '" << spec << "' has an empty name");
  if (colon == std::string::npos) return out;

  const std::string opts = text.substr(colon + 1);
  BSA_REQUIRE(!trim(opts).empty(),
              kind << " spec '" << spec
                   << "' has a ':' but no options after it");
  std::size_t pos = 0;
  while (pos <= opts.size()) {
    const std::size_t comma = opts.find(',', pos);
    const std::string item =
        opts.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const std::size_t eq = item.find('=');
    BSA_REQUIRE(eq != std::string::npos,
                kind << " spec '" << spec << "': option '" << trim(item)
                     << "' is not of the form key=value");
    const std::string key = ascii_lower(trim(item.substr(0, eq)));
    const std::string value = ascii_lower(trim(item.substr(eq + 1)));
    BSA_REQUIRE(!key.empty(),
                kind << " spec '" << spec << "': option with empty key");
    BSA_REQUIRE(!value.empty(), kind << " spec '" << spec << "': option '"
                                     << key << "' has an empty value");
    for (const auto& [seen, _] : out.options) {
      BSA_REQUIRE(seen != key, kind << " spec '" << spec
                                    << "': duplicate option '" << key << "'");
    }
    out.options.emplace_back(key, value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
    BSA_REQUIRE(!trim(opts.substr(pos)).empty(),
                kind << " spec '" << spec << "' ends with ','");
  }
  return out;
}

// --- SpecOptions ------------------------------------------------------------

const std::string* SpecOptions::raw(const std::string& key) const {
  for (const auto& [k, v] : options_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool SpecOptions::has(const std::string& key) const {
  return raw(key) != nullptr;
}

std::string SpecOptions::get_choice(const std::string& key,
                                    const std::vector<std::string>& choices,
                                    const std::string& fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  for (const std::string& c : choices) {
    if (*v == c) return c;
  }
  BSA_REQUIRE(false, kind_ << " '" << name_ << "': option '" << key
                           << "' expects one of {" << join_list(choices, ", ")
                           << "}, got '" << *v << "'");
  return fallback;  // unreachable
}

bool SpecOptions::get_flag(const std::string& key, bool fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<bool> parsed = parse_bool_literal(*v);
  BSA_REQUIRE(parsed.has_value(), kind_ << " '" << name_ << "': option '"
                                        << key << "' expects on|off, got '"
                                        << *v << "'");
  return *parsed;
}

int SpecOptions::get_int(const std::string& key, int fallback,
                         int min_value) const {
  // Sanity ceiling for counted options (sweep counts, graph dimensions
  // and the like): far above any sensible value, and keeps the value in
  // int range.
  constexpr std::int64_t kMaxIntOption = 1000000000;
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<std::int64_t> parsed = parse_int_literal(*v);
  BSA_REQUIRE(parsed.has_value() && *parsed >= min_value &&
                  *parsed <= kMaxIntOption,
              kind_ << " '" << name_ << "': option '" << key
                    << "' expects an integer in [" << min_value << ", "
                    << kMaxIntOption << "], got '" << *v << "'");
  return static_cast<int>(*parsed);
}

std::uint64_t SpecOptions::get_uint64(const std::string& key,
                                      std::uint64_t fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<std::uint64_t> parsed = parse_uint64_literal(*v);
  BSA_REQUIRE(parsed.has_value(),
              kind_ << " '" << name_ << "': option '" << key
                    << "' expects an unsigned integer, got '" << *v << "'");
  return *parsed;
}

double SpecOptions::get_double(const std::string& key, double fallback,
                               double min_exclusive) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<double> parsed = parse_double_literal(*v);
  BSA_REQUIRE(parsed.has_value() && std::isfinite(*parsed) &&
                  *parsed > min_exclusive,
              kind_ << " '" << name_ << "': option '" << key
                    << "' expects a finite number > " << min_exclusive
                    << ", got '" << *v << "'");
  return *parsed;
}

// --- canonical assembly -----------------------------------------------------

std::string canonical_spec(const std::string& name,
                           std::vector<std::string> non_default_options) {
  // Canonical form sorts options by key; "key=value" strings sort the
  // same way, so enforce it here rather than trusting caller order.
  std::sort(non_default_options.begin(), non_default_options.end());
  std::string out = name;
  for (std::size_t i = 0; i < non_default_options.size(); ++i) {
    out += i == 0 ? ":" : ",";
    out += non_default_options[i];
  }
  return out;
}

std::string canonical_double(double v) {
  // Shortest %.{1..17}g spelling that round-trips; option values are
  // human-scale (CCRs, layer factors), so this terminates early.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::vector<std::string> split_spec_list(
    const std::string& text,
    const std::function<bool(const std::string&)>& is_registered_name) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token = trim(
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos));
    const std::size_t eq = token.find('=');
    const std::size_t colon = token.find(':');
    const bool continuation =
        !specs.empty() && eq != std::string::npos &&
        (colon == std::string::npos || colon > eq) &&
        !is_registered_name(ascii_lower(trim(token.substr(0, eq))));
    if (continuation) {
      specs.back() += "," + token;
    } else {
      specs.push_back(token);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return specs;
}

}  // namespace bsa
