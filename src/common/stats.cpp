#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace bsa {

void StatAccumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StatAccumulator::stddev() const noexcept {
  return std::sqrt(variance());
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median_of(std::vector<double> xs) {
  BSA_REQUIRE(!xs.empty(), "median of empty sequence");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double percentile_of(std::vector<double> xs, double p) {
  BSA_REQUIRE(!xs.empty(), "percentile of empty sequence");
  BSA_REQUIRE(p >= 0.0 && p <= 100.0,
              "percentile rank must be in [0, 100], got " << p);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

double geometric_mean_of(std::span<const double> xs) {
  BSA_REQUIRE(!xs.empty(), "geometric mean of empty sequence");
  double log_sum = 0.0;
  for (double x : xs) {
    BSA_REQUIRE(x > 0.0, "geometric mean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace bsa
