#pragma once

#include <cstdint>
#include <random>

#include "common/check.hpp"

/// \file rng.hpp
/// Deterministic randomness utilities.
///
/// Every randomised component of the library (tie breaking, workload
/// generation, heterogeneity factors) takes an explicit seed so that every
/// experiment in the paper reproduction is bit-for-bit repeatable.

namespace bsa {

/// SplitMix64 step — a high-quality 64-bit mixing function. Used both to
/// seed std::mt19937_64 streams and as a stateless hash for lazily
/// evaluated cost tables (see HeterogeneousCostModel).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combine a seed with up to three stream identifiers into a new seed.
/// Used to derive independent deterministic substreams, e.g. one per
/// (graph index, granularity, topology) experiment cell.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t a,
                                                  std::uint64_t b = 0,
                                                  std::uint64_t c = 0) noexcept {
  std::uint64_t s = splitmix64(seed ^ splitmix64(a));
  s = splitmix64(s ^ splitmix64(b + 0x517CC1B727220A95ULL));
  s = splitmix64(s ^ splitmix64(c + 0x2545F4914F6CDD1DULL));
  return s;
}

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BSA_REQUIRE(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    BSA_REQUIRE(lo <= hi, "uniform_real: lo=" << lo << " hi=" << hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) {
    BSA_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p=" << p);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    BSA_REQUIRE(n > 0, "index: empty range");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Access to the underlying engine for std algorithms (std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stateless uniform integer in [lo, hi] derived from a hash key; used for
/// lazily-materialised heterogeneity factor tables. Deterministic in
/// (seed, key).
[[nodiscard]] inline std::int64_t hashed_uniform_int(std::uint64_t seed,
                                                     std::uint64_t key,
                                                     std::int64_t lo,
                                                     std::int64_t hi) {
  BSA_REQUIRE(lo <= hi, "hashed_uniform_int: lo=" << lo << " hi=" << hi);
  const std::uint64_t h = splitmix64(seed ^ splitmix64(key));
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(h % span);
}

}  // namespace bsa
