#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file cli.hpp
/// Minimal command-line flag parser for the example and benchmark binaries.
/// Supports `--name=value`, `--name value` and boolean `--name` forms.

namespace bsa {

/// Strict literal parsers shared by the CLI flags and the scheduler
/// registry's option values: the whole string must match, std::nullopt
/// on anything else (trailing garbage, overflow, wrong base). Callers
/// attach their own error message.
[[nodiscard]] std::optional<bool> parse_bool_literal(const std::string& text);
[[nodiscard]] std::optional<std::int64_t> parse_int_literal(
    const std::string& text);
[[nodiscard]] std::optional<std::uint64_t> parse_uint64_literal(
    const std::string& text);
[[nodiscard]] std::optional<double> parse_double_literal(
    const std::string& text);

class CliParser {
 public:
  /// Parse argv; unrecognised positional arguments are collected in order.
  /// Throws PreconditionError for malformed flags (e.g. `--=x`).
  CliParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Value lookups with defaults; throw PreconditionError when the stored
  /// text cannot be parsed as the requested type. When a flag is repeated
  /// the scalar getters use the last occurrence.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Every occurrence of `--name value` in command-line order (empty when
  /// absent) — for repeatable flags such as bsa_tool's `--algo`.
  [[nodiscard]] std::vector<std::string> get_strings(
      const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// Unsigned 64-bit variant for counts that outgrow int64 (e.g. a load
  /// generator's request total). Rejects negatives and out-of-range
  /// values instead of clamping, like get_int.
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Worker-thread count from `--threads N` (alias `--jobs N` / `-j`-style
  /// `--jobs=N`). Returns `fallback` when neither flag is present; 0 is
  /// accepted and conventionally means "all hardware threads". Negative
  /// values are rejected.
  [[nodiscard]] int threads(int fallback = 1) const;

  /// Output path from `--out <path>`; std::nullopt when absent.
  [[nodiscard]] std::optional<std::string> out_path() const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_;
  }

 private:
  [[nodiscard]] const std::string* last_value(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bsa
