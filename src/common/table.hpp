#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Fixed-column text table and CSV writers used by the benchmark harness to
/// print paper-style result tables.

namespace bsa {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, e.g.:
///
///   graph size | DLS      | BSA      | BSA/DLS
///   -----------+----------+----------+--------
///   50         | 6510.0   | 5413.0   | 0.83
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  TextTable& new_row();
  TextTable& cell(const std::string& value);
  TextTable& cell(double value, int precision = 1);
  TextTable& cell(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render aligned text to `os`.
  void print(std::ostream& os) const;
  /// Render as CSV (headers + rows) to `os`.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape a string for CSV output (quotes fields containing , " or \n).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace bsa
