#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace bsa {
namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg.rfind("--", 0) == 0;
}

}  // namespace

std::optional<bool> parse_bool_literal(const std::string& text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  return std::nullopt;
}

std::optional<std::int64_t> parse_int_literal(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  // strtoll silently clamps to LLONG_MIN/MAX on overflow (ERANGE);
  // reject instead of handing the caller a clamped value.
  if (end == nullptr || *end != '\0' || end == text.c_str() ||
      errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_uint64_literal(const std::string& text) {
  // strtoull accepts and negates "-1"; an unsigned literal must not.
  if (text.empty() || text.front() == '-') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == text.c_str() ||
      errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> parse_double_literal(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    return std::nullopt;
  }
  // Overflow clamps to +-HUGE_VAL with ERANGE; underflow-to-zero is
  // accepted (the nearest representable value is a fine answer there).
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) return std::nullopt;
  return v;
}

CliParser::CliParser(int argc, const char* const* argv) {
  BSA_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string name = arg.substr(0, eq);
      BSA_REQUIRE(!name.empty(), "malformed flag --=...");
      flags_[name].push_back(arg.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag, else boolean.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      flags_[arg].push_back(argv[i + 1]);
      ++i;
    } else {
      flags_[arg].push_back("true");
    }
  }
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

const std::string* CliParser::last_value(const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? nullptr : &it->second.back();
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const std::string* v = last_value(name);
  return v == nullptr ? fallback : *v;
}

std::vector<std::string> CliParser::get_strings(
    const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::vector<std::string>{} : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const std::string* text = last_value(name);
  if (text == nullptr) return fallback;
  const std::optional<std::int64_t> v = parse_int_literal(*text);
  BSA_REQUIRE(v.has_value(),
              "flag --" << name << " expects an in-range integer, got '"
                        << *text << "'");
  return *v;
}

std::uint64_t CliParser::get_uint64(const std::string& name,
                                    std::uint64_t fallback) const {
  const std::string* text = last_value(name);
  if (text == nullptr) return fallback;
  const std::optional<std::uint64_t> v = parse_uint64_literal(*text);
  BSA_REQUIRE(v.has_value(),
              "flag --" << name
                        << " expects an in-range unsigned integer, got '"
                        << *text << "'");
  return *v;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const std::string* text = last_value(name);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text->c_str(), &end);
  BSA_REQUIRE(end != nullptr && *end == '\0' && end != text->c_str() &&
                  !text->empty(),
              "flag --" << name << " expects a number, got '" << *text
                        << "'");
  // Overflow clamps to +-HUGE_VAL with ERANGE; underflow-to-zero is
  // accepted (the nearest representable value is a fine answer there).
  BSA_REQUIRE(errno != ERANGE || std::abs(v) != HUGE_VAL,
              "flag --" << name << " is out of range: '" << *text << "'");
  return v;
}

int CliParser::threads(int fallback) const {
  const std::int64_t v =
      get_int("threads", get_int("jobs", static_cast<std::int64_t>(fallback)));
  BSA_REQUIRE(v >= 0, "--threads/--jobs expects a non-negative count, got "
                          << v);
  BSA_REQUIRE(v <= std::numeric_limits<int>::max(),
              "--threads/--jobs count " << v << " is out of range");
  return static_cast<int>(v);
}

std::optional<std::string> CliParser::out_path() const {
  if (!has("out")) return std::nullopt;
  const std::string path = get_string("out", "");
  // A bare `--out` parses as the boolean literal; a file literally named
  // "true" can still be requested as `--out ./true`.
  BSA_REQUIRE(!path.empty() && path != "true",
              "--out expects a path (e.g. --out results.jsonl)");
  return path;
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const std::string* text = last_value(name);
  if (text == nullptr) return fallback;
  const std::optional<bool> v = parse_bool_literal(*text);
  BSA_REQUIRE(v.has_value(), "flag --" << name << " expects a boolean, got '"
                                       << *text << "'");
  return *v;
}

}  // namespace bsa
