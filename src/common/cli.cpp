#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace bsa {
namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg.rfind("--", 0) == 0;
}

}  // namespace

CliParser::CliParser(int argc, const char* const* argv) {
  BSA_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string name = arg.substr(0, eq);
      BSA_REQUIRE(!name.empty(), "malformed flag --=...");
      flags_[name] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag, else boolean.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      flags_[arg] = argv[i + 1];
      ++i;
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  BSA_REQUIRE(end != nullptr && *end == '\0' && end != it->second.c_str() &&
                  !it->second.empty(),
              "flag --" << name << " expects an integer, got '" << it->second
                        << "'");
  // strtoll silently clamps to LLONG_MIN/MAX on overflow; reject instead
  // of handing the caller a clamped value.
  BSA_REQUIRE(errno != ERANGE,
              "flag --" << name << " is out of range: '" << it->second << "'");
  return v;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  BSA_REQUIRE(end != nullptr && *end == '\0' && end != it->second.c_str() &&
                  !it->second.empty(),
              "flag --" << name << " expects a number, got '" << it->second
                        << "'");
  // Overflow clamps to +-HUGE_VAL with ERANGE; underflow-to-zero is
  // accepted (the nearest representable value is a fine answer there).
  BSA_REQUIRE(errno != ERANGE || std::abs(v) != HUGE_VAL,
              "flag --" << name << " is out of range: '" << it->second << "'");
  return v;
}

int CliParser::threads(int fallback) const {
  const std::int64_t v =
      get_int("threads", get_int("jobs", static_cast<std::int64_t>(fallback)));
  BSA_REQUIRE(v >= 0, "--threads/--jobs expects a non-negative count, got "
                          << v);
  BSA_REQUIRE(v <= std::numeric_limits<int>::max(),
              "--threads/--jobs count " << v << " is out of range");
  return static_cast<int>(v);
}

std::optional<std::string> CliParser::out_path() const {
  if (!has("out")) return std::nullopt;
  const std::string path = get_string("out", "");
  // A bare `--out` parses as the boolean literal; a file literally named
  // "true" can still be requested as `--out ./true`.
  BSA_REQUIRE(!path.empty() && path != "true",
              "--out expects a path (e.g. --out results.jsonl)");
  return path;
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  BSA_REQUIRE(false, "flag --" << name << " expects a boolean, got '" << v
                               << "'");
  return fallback;  // unreachable
}

}  // namespace bsa
