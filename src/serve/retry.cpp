#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace bsa::serve {

double Backoff::next_delay_ms() {
  const double exact =
      policy_.base_delay_ms * std::pow(policy_.multiplier, steps_);
  ++steps_;
  const double capped = std::min(exact, policy_.max_delay_ms);
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  // The rng draw happens even at j=0 so turning jitter on/off never
  // shifts the draws backing later delays of the same schedule.
  const double u = rng_.uniform_real(0.0, 1.0);
  return capped * (1.0 - j + 2.0 * j * u);
}

bool idempotent_op(const std::string& op) { return op != "shutdown"; }

RetryingClient::RetryingClient(std::string socket_path, ClientOptions options,
                               RetryPolicy policy, SleepFn sleep)
    : socket_path_(std::move(socket_path)),
      options_(options),
      policy_(policy),
      sleep_(std::move(sleep)),
      backoff_(policy) {}

void RetryingClient::pause(double delay_ms) {
  if (sleep_) {
    sleep_(delay_ms);
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_ms));
}

Response RetryingClient::call(const Request& req) {
  for (int attempt = 1;; ++attempt) {
    const bool may_retry = idempotent_op(req.op) &&
                           attempt < policy_.max_attempts &&
                           retries_used_ < policy_.retry_budget;
    try {
      if (client_ == nullptr) {
        client_ = Client::connect_ptr(socket_path_, options_);
      }
      Response resp = client_->call(req);
      if (resp.ok || resp.code != error_code::kOverloaded || !may_retry) {
        return resp;
      }
      // Overloaded: the connection is healthy, only the dispatcher is
      // behind — honour whichever is longer, our schedule or the
      // server's hint.
      pause(std::max(backoff_.next_delay_ms(),
                     static_cast<double>(resp.retry_after_ms)));
    } catch (const TimeoutError&) {
      // The stream may still carry the late response; a retried id on
      // the same connection could mismatch. Reconnect to start clean.
      client_.reset();
      if (!may_retry) throw;
      pause(backoff_.next_delay_ms());
    } catch (const PreconditionError&) {
      client_.reset();
      if (!may_retry) throw;
      pause(backoff_.next_delay_ms());
    }
    ++retries_used_;
  }
}

}  // namespace bsa::serve
