#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/result_sink.hpp"

/// \file protocol.hpp
/// The scheduling service's wire protocol: newline-delimited JSON over a
/// local stream socket, one flat JSON object per request and per
/// response (the same scalar-only shape as the repo's JSONL rows, parsed
/// with runtime::parse_jsonl_row and emitted with common/json.hpp).
///
/// Request grammar (all fields optional except where noted; unknown keys
/// are rejected so typos fail loudly):
///
///   {"op":"schedule","id":7,"workload":"fft:points=64","algo":"bsa",
///    "topology":"ring","procs":8,"size":100,"gran":1,"het":1,
///    "link_het":1,"per_pair":false,"seed":1,"cache":true,
///    "validate":false}
///   {"op":"ping","id":1}
///   {"op":"stats","id":2}
///   {"op":"shutdown","id":3}
///
/// Response: one flat JSON object per request, not necessarily in
/// request order (batching reorders) — clients match on "id". The
/// envelope fields ("id", "ok", "cached", "server_us", and "error" on
/// failure) may differ between a cache hit and a fresh run; everything
/// else is the *payload*, which is a pure function of the canonical
/// request key, so a cache hit's payload is byte-identical to the fresh
/// run that populated it (docs/DESIGN_SERVE.md has the exactness
/// argument).
///
/// A schedule payload echoes the canonicalised request (workload, algo,
/// topology, procs, size, gran, het, link_het, per_pair, seed), then
/// reports tasks, msgs, makespan, the scheduler's deterministic
/// counters as flat "ctr:<name>" keys, optionally "valid", and the full
/// schedule in the native text format (sched/schedule_io.hpp) as the
/// "schedule" string.

namespace bsa::serve {

/// Hard cap on one request line; longer lines are answered with an error
/// and the connection is closed (a line that long is a protocol bug, not
/// a workload).
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// A parsed scheduling-service request. Defaults mirror bsa_tool's
/// single-run flags so a request and the equivalent bsa_tool invocation
/// describe the same evaluation (the CI byte-identity check relies on
/// this).
struct Request {
  std::string op = "schedule";  ///< schedule | ping | stats | shutdown
  std::uint64_t id = 0;         ///< client-chosen; echoed in the response
  std::string workload = "random";  ///< workload registry spec
  std::string algo = "bsa";         ///< scheduler registry spec
  std::string topology = "ring";    ///< exp::make_topology kind (+linear/star)
  int size = 100;                   ///< target task count
  double gran = 1.0;                ///< granularity (a spec ccr= wins)
  int procs = 8;
  int het = 1;       ///< execution heterogeneity range U[1,het]
  int link_het = 1;  ///< link heterogeneity range U[1,link_het]
  bool per_pair = false;
  std::uint64_t seed = 1;
  bool use_cache = true;  ///< "cache":false bypasses lookup and insert
  bool validate = false;  ///< run the full invariant checker
};

/// The topology kinds a request may name (exp::make_topology's four
/// paper kinds + mesh, plus the linear/star extras bsa_tool accepts).
[[nodiscard]] const std::vector<std::string>& topology_kinds();

/// Parse one request line. Throws PreconditionError on malformed JSON,
/// unknown keys, unknown ops or out-of-range values; the message lists
/// the valid choices (matching the registries' error style).
[[nodiscard]] Request parse_request(const std::string& line);

/// Serialise a request as one JSON line (no trailing newline). Only
/// non-default fields are emitted, so the line stays small.
[[nodiscard]] std::string request_to_json(const Request& req);

/// Canonicalise the spec fields in place (workload and algo through
/// their registries, topology against topology_kinds()) and validate the
/// numeric ranges. Throws PreconditionError listing valid choices on any
/// unknown name. Returns the canonical cache key: every result-affecting
/// field in a fixed order, so two requests collide exactly when they
/// describe the same evaluation.
[[nodiscard]] std::string canonicalize(Request& req);

/// Typed error codes carried in the "code" field of error responses —
/// the failure taxonomy clients dispatch on (docs/DESIGN_SERVE.md,
/// "Failure semantics"). Retry guidance: `overloaded` and `internal`
/// are retryable (the former with the server's retry_after_ms hint);
/// `bad_request` and `oversized` never are; `shutting_down` is
/// retryable only against a *different* server instance.
namespace error_code {
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInternal = "internal";
inline constexpr const char* kOversized = "oversized";
}  // namespace error_code

/// A parsed response. `payload` holds every non-envelope field (see file
/// comment); convenience accessors pull out the common ones.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  bool cached = false;
  double server_us = 0;  ///< daemon-side accept->respond latency
  std::string error;     ///< set when !ok
  std::string code;      ///< typed error code (error_code::*) when !ok
  /// Server's backoff hint on `overloaded` responses (0 = none).
  int retry_after_ms = 0;
  /// Raw payload fields (everything except the envelope), e.g.
  /// "makespan" -> 120, "schedule" -> "task 0 1 0 10\n...".
  std::map<std::string, runtime::JsonScalar> payload;

  [[nodiscard]] double number(const std::string& key, double fallback) const;
  [[nodiscard]] std::string text(const std::string& key) const;
  [[nodiscard]] double makespan() const { return number("makespan", -1); }
  [[nodiscard]] std::string schedule_text() const { return text("schedule"); }
};

/// Parse one response line (throws PreconditionError on malformed JSON).
[[nodiscard]] Response parse_response(const std::string& line);

/// Assemble a success response line: the envelope followed by the cached
/// or freshly-built payload fragment (comma-separated "key":value text,
/// no surrounding braces).
[[nodiscard]] std::string format_response(std::uint64_t id, bool cached,
                                          double server_us,
                                          const std::string& payload);

/// Assemble a typed error response line; `retry_after_ms` > 0 adds the
/// backoff hint (overloaded responses).
[[nodiscard]] std::string format_error(std::uint64_t id,
                                       const std::string& code,
                                       const std::string& message,
                                       int retry_after_ms = 0);

/// Legacy untyped form: code defaults to error_code::kInternal.
[[nodiscard]] std::string format_error(std::uint64_t id,
                                       const std::string& message);

}  // namespace bsa::serve
