// lint:allow-file(wall-clock): request-latency envelope field (server_us)
// is measured wall time; every response payload stays a pure function of
// the canonical request key.
#include "serve/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <iterator>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"
#include "serve/eval.hpp"

namespace bsa::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

}  // namespace

/// One live client connection. Sessions read from it; any thread may
/// respond on it (cache hits from the session thread, batch results from
/// the dispatcher), serialised by `write_mu`.
struct Server::Connection {
  explicit Connection(Fd f) : fd(std::move(f)) {}
  Fd fd;
  std::mutex write_mu;
};

/// One queued schedule request awaiting batch dispatch.
struct Server::Pending {
  Request req;
  std::string key;  ///< canonical cache key
  std::shared_ptr<Connection> conn;
  Clock::time_point t0;  ///< arrival instant, for the server_us envelope
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {}

Server::~Server() { stop(); }

void Server::start() {
  BSA_REQUIRE(!accept_thread_.joinable(), "Server::start called twice");
  listener_ = listen_unix(options_.socket_path);
  pool_ = std::make_unique<runtime::ThreadPool>(options_.threads);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  listener_.shutdown_both();  // wake the accept loop
  if (accept_thread_.joinable()) accept_thread_.join();
  // The dispatcher drains the queue before exiting, so every request
  // that made it in still gets its response.
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  {
    // Wake every live session (a shutdown unblocks both a recv-ing
    // reader and a send blocked on a stuck client), then wait for the
    // detached session threads to signal their exit.
    std::unique_lock<std::mutex> lock(sessions_mu_);
    for (const auto& conn : sessions_) conn->fd.shutdown_both();
    sessions_cv_.wait(lock, [this] { return active_sessions_ == 0; });
  }
  listener_.reset();
  ::unlink(options_.socket_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    Fd fd = accept_unix(listener_);
    if (!fd.valid()) return;  // listener shut down: server stopping
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (options_.tracer != nullptr) {
      options_.tracer->add_instant("serve.accept", "serve", 0);
    }
    if (options_.write_timeout_ms > 0) {
      set_send_timeout(fd, options_.write_timeout_ms);
    }
    auto conn = std::make_shared<Connection>(std::move(fd));
    {
      const std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(conn);
      ++active_sessions_;
    }
    // Detached so finished sessions cost nothing: each one reaps itself
    // (session_loop's exit path) and stop() waits on active_sessions_.
    std::thread([this, conn] { session_loop(conn); }).detach();
  }
}

void Server::session_loop(const std::shared_ptr<Connection>& conn) {
  LineReader reader(conn->fd);
  std::string line;
  while (reader.read_line(line, kMaxRequestBytes)) {
    handle_line(conn, line);
  }
  if (reader.overflowed()) {
    // Answer, then drop the connection: a line this long is a protocol
    // violation and the reader has lost framing.
    std::ostringstream msg;
    msg << "request exceeds " << kMaxRequestBytes << " bytes";
    errors_.fetch_add(1, std::memory_order_relaxed);
    respond(*conn, format_error(0, error_code::kOversized, msg.str()));
  }
  // Self-reap: shut the socket down and drop this session's entry from
  // the live set. The fd itself closes when the last Connection
  // reference dies — usually right here, but an in-flight batch response
  // may briefly keep it alive (its write then fails harmlessly), so a
  // long-running daemon never accumulates dead fds or threads.
  conn->fd.shutdown_both();
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), conn),
                  sessions_.end());
  // Final touch of server state: once the count drops and stop() wakes,
  // the Server may be destroyed.
  --active_sessions_;
  sessions_cv_.notify_all();
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  const Clock::time_point t0 = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  std::string key;
  try {
    obs::Span parse_span(options_.tracer, "serve.parse", "serve", 0);
    req = parse_request(line);
    if (req.op == "schedule") key = canonicalize(req);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    respond(*conn, format_error(req.id, error_code::kBadRequest, e.what()));
    return;
  }

  if (req.op == "ping") {
    respond(*conn, format_response(req.id, false, us_since(t0),
                                   "\"op\":\"ping\""));
    return;
  }
  if (req.op == "stats") {
    respond(*conn,
            format_response(req.id, false, us_since(t0), stats_payload()));
    return;
  }
  if (req.op == "shutdown") {
    respond(*conn, format_response(req.id, false, us_since(t0),
                                   "\"op\":\"shutdown\""));
    const std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    return;
  }

  // op == "schedule": serve repeats straight from the cache on the
  // session thread — the hot path never waits for a batch slot.
  if (req.use_cache) {
    if (const auto payload = cache_.get(key)) {
      respond(*conn,
              format_response(req.id, true, us_since(t0), *payload));
      return;
    }
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    if (!stopping_) {
      depth = queue_.size();
      if (depth < options_.max_queue) {
        queue_.push_back(Pending{std::move(req), std::move(key), conn, t0});
        queue_cv_.notify_one();
        return;
      }
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      respond(*conn, format_error(req.id, error_code::kShuttingDown,
                                  "server is shutting down"));
      return;
    }
  }
  // Admission control: shed instead of queueing unboundedly. The hint is
  // a deterministic function of the queue state — how many dispatch
  // rounds stand between this request and a free slot.
  const std::size_t rounds =
      depth / std::max<std::size_t>(1, options_.max_batch) + 1;
  const int per_round_ms = std::max(1, options_.batch_wait_us / 1000);
  errors_.fetch_add(1, std::memory_order_relaxed);
  overloads_.fetch_add(1, std::memory_order_relaxed);
  respond(*conn,
          format_error(req.id, error_code::kOverloaded, "server overloaded",
                       static_cast<int>(rounds) * per_round_ms));
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      if (!stopping_ && options_.batch_wait_us > 0 &&
          queue_.size() < options_.max_batch) {
        // One bounded wait for stragglers: concurrent clients land in
        // the same batch instead of one dispatch round each.
        queue_cv_.wait_for(lock,
                           std::chrono::microseconds(options_.batch_wait_us));
      }
      const std::size_t n = std::min(queue_.size(), options_.max_batch);
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(n)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(n));
    }
    run_batch(batch);
  }
}

void Server::run_batch(std::vector<Pending>& batch) {
  obs::Span batch_span(options_.tracer, "serve.batch", "serve", 0);
  batch_span.arg("size", static_cast<double>(batch.size()));
  // Batch-level chaos: a delay stalls the round (overload pressure); a
  // spurious failure errors every request in the round — each still gets
  // exactly one typed response.
  const fault::Action fbatch = fault::check(fault::SiteId::kBatch);
  fault::maybe_delay(fbatch);
  const bool batch_poisoned = fbatch.kind == fault::Action::Kind::kFail;
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::int64_t hwm = batch_size_hwm_.load(std::memory_order_relaxed);
  while (static_cast<std::int64_t>(batch.size()) > hwm &&
         !batch_size_hwm_.compare_exchange_weak(
             hwm, static_cast<std::int64_t>(batch.size()),
             std::memory_order_relaxed)) {
  }

  // Identical canonical keys inside one round evaluate once — the batch
  // is a miniature ScenarioGrid sweep over its unique cells.
  struct Cell {
    const Request* req = nullptr;
    std::string payload;
    bool failed = false;
    bool use_cache = false;  ///< OR over every deduplicated request
  };
  std::map<std::string, Cell> cells;
  for (const Pending& p : batch) {
    const auto [it, inserted] = cells.try_emplace(p.key);
    if (inserted) {
      it->second.req = &p.req;
    } else {
      batch_dedup_.fetch_add(1, std::memory_order_relaxed);
    }
    // One cache:true duplicate is enough to populate the cache, even if
    // a cache:false request for the same key happened to arrive first.
    it->second.use_cache = it->second.use_cache || p.req.use_cache;
  }
  std::vector<Cell*> order;
  order.reserve(cells.size());
  for (auto& [_, cell] : cells) order.push_back(&cell);

  if (batch_poisoned) {
    for (Cell* cell : order) {
      cell->failed = true;
      cell->payload = "injected fault: spurious failure at site 'batch'";
    }
  } else {
    pool_->parallel_for(order.size(), 1, [&](std::size_t i) {
      Cell& cell = *order[i];
      obs::Hooks hooks;
      hooks.tracer = options_.tracer;
      hooks.trace_tid =
          static_cast<std::uint32_t>(runtime::current_worker_id() + 1);
      obs::Span span(options_.tracer, "serve.schedule", "serve",
                     hooks.trace_tid);
      try {
        cell.payload = evaluate_request(*cell.req, hooks);
      } catch (const std::exception& e) {
        // Poisoned-cell isolation: one failing evaluation errors only
        // the requests deduplicated into this cell.
        cell.failed = true;
        cell.payload = e.what();
      }
    });
  }

  for (const auto& [cell_key, cell] : cells) {
    if (!cell.failed && cell.use_cache) {
      // A fired cache failpoint skips the put: the entry simply is not
      // cached and the next identical request re-evaluates — population
      // failure degrades throughput, never correctness.
      if (!fault::check(fault::SiteId::kCache).fired()) {
        cache_.put(cell_key, cell.payload);
      }
    }
  }
  obs::Span respond_span(options_.tracer, "serve.respond", "serve", 0);
  for (const Pending& p : batch) {
    const Cell& cell = cells.at(p.key);
    if (cell.failed) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      respond(*p.conn,
              format_error(p.req.id, error_code::kInternal, cell.payload));
    } else {
      respond(*p.conn,
              format_response(p.req.id, false, us_since(p.t0), cell.payload));
    }
  }
}

void Server::respond(Connection& conn, const std::string& line) {
  const std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!write_all(conn.fd, line + "\n")) {
    // A failed or torn write leaves the stream unframeable (the peer may
    // have half a response buffered); shut the connection down so the
    // client sees EOF instead of garbage. The session reaps itself.
    responses_dropped_.fetch_add(1, std::memory_order_relaxed);
    conn.fd.shutdown_both();
  }
}

obs::CounterSnapshot Server::counters() const {
  const CacheStats cs = cache_.stats();
  obs::Registry reg;
  reg.add("serve.requests", requests_.load(std::memory_order_relaxed));
  reg.add("serve.errors", errors_.load(std::memory_order_relaxed));
  reg.add("serve.connections", connections_.load(std::memory_order_relaxed));
  reg.add("serve.batches", batches_.load(std::memory_order_relaxed));
  reg.add("serve.batch_size_hwm",
          batch_size_hwm_.load(std::memory_order_relaxed));
  reg.add("serve.batch_dedup", batch_dedup_.load(std::memory_order_relaxed));
  // Degradation tallies appear only once something degraded, keeping a
  // clean run's counter dump byte-identical to pre-chaos builds (the
  // same convention as the fault.* counters below).
  const std::int64_t overloads = overloads_.load(std::memory_order_relaxed);
  if (overloads > 0) reg.add("serve.overloads", overloads);
  const std::int64_t dropped =
      responses_dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) reg.add("serve.responses_dropped", dropped);
  reg.add("serve.cache.hits", cs.hits);
  reg.add("serve.cache.misses", cs.misses);
  reg.add("serve.cache.evictions", cs.evictions);
  reg.add("serve.cache.size", cs.size);
  // fault.* firing tallies ride along so chaos runs are observable
  // through the same stats op (empty when no failpoint is configured).
  reg.merge(fault::counters());
  return reg.snapshot();
}

std::string Server::stats_payload() const {
  std::ostringstream os;
  os << "\"op\":\"stats\"";
  for (const auto& [name, value] : counters()) {
    os << ",\"ctr:" << name << "\":" << value;
  }
  return os.str();
}

}  // namespace bsa::serve
