// lint:allow-file(wall-clock): client-side read/request deadlines only,
// never a result
#include "serve/client.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace bsa::serve {

namespace {

/// How often the async reader wakes to check per-request deadlines even
/// when no response line arrives (a stalled server must not stall
/// expiry of futures submitted after the reader blocked).
constexpr int kReaderTickMs = 50;

}  // namespace

Client Client::connect(const std::string& socket_path,
                       int connect_timeout_ms) {
  ClientOptions options;
  options.connect_timeout_ms = connect_timeout_ms;
  return connect(socket_path, options);
}

Client Client::connect(const std::string& socket_path,
                       const ClientOptions& options) {
  return Client(connect_unix(socket_path, options.connect_timeout_ms),
                options);
}

std::unique_ptr<Client> Client::connect_ptr(const std::string& socket_path,
                                            const ClientOptions& options) {
  return std::unique_ptr<Client>(new Client(
      connect_unix(socket_path, options.connect_timeout_ms), options));
}

std::uint64_t Client::send(const Request& req) {
  Request out = req;
  if (out.id == 0) out.id = next_id_++;
  BSA_REQUIRE(write_all(fd_, request_to_json(out) + "\n"),
              "serve::Client::send: connection lost");
  return out.id;
}

Response Client::recv() {
  std::string line;
  if (!reader_.read_line(line, kMaxRequestBytes, options_.read_timeout_ms)) {
    if (reader_.timed_out()) {
      std::ostringstream os;
      os << "serve::Client::recv: no response within "
         << options_.read_timeout_ms << "ms";
      throw TimeoutError(os.str());
    }
    BSA_REQUIRE(false, "serve::Client::recv: connection closed by server");
  }
  return parse_response(line);
}

Response Client::call(const Request& req) {
  const std::uint64_t id = send(req);
  for (;;) {
    Response resp = recv();
    if (resp.id == id) return resp;
    // A response for an id this Client never matched up (e.g. after an
    // interleaved send/recv pipeline was abandoned) is dropped.
  }
}

Response Client::ping() {
  Request req;
  req.op = "ping";
  return call(req);
}

Response Client::stats() {
  Request req;
  req.op = "stats";
  return call(req);
}

Response Client::shutdown_server() {
  Request req;
  req.op = "shutdown";
  return call(req);
}

AsyncClient::AsyncClient(const std::string& socket_path,
                         int connect_timeout_ms)
    : fd_(connect_unix(socket_path, connect_timeout_ms)) {
  reader_thread_ = std::thread([this] { reader_loop(); });
}

AsyncClient::AsyncClient(const std::string& socket_path,
                         const ClientOptions& options)
    : AsyncClient(socket_path, options.connect_timeout_ms) {}

AsyncClient::~AsyncClient() {
  fd_.shutdown_both();
  if (reader_thread_.joinable()) reader_thread_.join();
  // Promises still pending at destruction break naturally: their
  // std::future ends with std::future_error(broken_promise).
}

std::future<Response> AsyncClient::submit(Request req, int deadline_ms) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  std::string wire;
  {
    const std::lock_guard<std::mutex> lock(send_mu_);
    if (req.id == 0) req.id = next_id_++;
    wire = request_to_json(req) + "\n";
    {
      const std::lock_guard<std::mutex> plock(pending_mu_);
      PendingEntry entry;
      entry.promise = std::move(promise);
      if (deadline_ms > 0) {
        entry.has_deadline = true;
        entry.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(deadline_ms);
      }
      pending_.emplace(req.id, std::move(entry));
    }
    if (!write_all(fd_, wire)) {
      const std::lock_guard<std::mutex> plock(pending_mu_);
      const auto it = pending_.find(req.id);
      if (it != pending_.end()) {
        it->second.promise.set_exception(std::make_exception_ptr(
            PreconditionError("serve::AsyncClient: connection lost")));
        pending_.erase(it);
      }
    }
  }
  return future;
}

std::size_t AsyncClient::in_flight() const {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

void AsyncClient::expire_overdue() {
  std::vector<std::promise<Response>> overdue;
  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    const auto now = std::chrono::steady_clock::now();
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.has_deadline && it->second.deadline <= now) {
        overdue.push_back(std::move(it->second.promise));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::promise<Response>& p : overdue) {
    p.set_exception(std::make_exception_ptr(
        TimeoutError("serve::AsyncClient: request deadline exceeded")));
  }
}

void AsyncClient::reader_loop() {
  LineReader reader(fd_);
  std::string line;
  for (;;) {
    if (!reader.read_line(line, kMaxRequestBytes, kReaderTickMs)) {
      if (reader.timed_out()) {
        expire_overdue();
        continue;
      }
      break;  // EOF or error: remaining promises break at teardown
    }
    Response resp;
    try {
      resp = parse_response(line);
    } catch (const std::exception&) {
      continue;  // garbled line: the matching future breaks at teardown
    }
    std::promise<Response> promise;
    {
      const std::lock_guard<std::mutex> lock(pending_mu_);
      const auto it = pending_.find(resp.id);
      if (it == pending_.end()) continue;  // unmatched or already expired
      promise = std::move(it->second.promise);
      pending_.erase(it);
    }
    promise.set_value(std::move(resp));
    expire_overdue();
  }
}

}  // namespace bsa::serve
