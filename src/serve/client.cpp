#include "serve/client.hpp"

#include <exception>
#include <utility>

#include "common/check.hpp"

namespace bsa::serve {

Client Client::connect(const std::string& socket_path, int timeout_ms) {
  return Client(connect_unix(socket_path, timeout_ms));
}

std::uint64_t Client::send(const Request& req) {
  Request out = req;
  if (out.id == 0) out.id = next_id_++;
  BSA_REQUIRE(write_all(fd_, request_to_json(out) + "\n"),
              "serve::Client::send: connection lost");
  return out.id;
}

Response Client::recv() {
  std::string line;
  BSA_REQUIRE(reader_.read_line(line, kMaxRequestBytes),
              "serve::Client::recv: connection closed by server");
  return parse_response(line);
}

Response Client::call(const Request& req) {
  const std::uint64_t id = send(req);
  for (;;) {
    Response resp = recv();
    if (resp.id == id) return resp;
    // A response for an id this Client never matched up (e.g. after an
    // interleaved send/recv pipeline was abandoned) is dropped.
  }
}

Response Client::ping() {
  Request req;
  req.op = "ping";
  return call(req);
}

Response Client::stats() {
  Request req;
  req.op = "stats";
  return call(req);
}

Response Client::shutdown_server() {
  Request req;
  req.op = "shutdown";
  return call(req);
}

AsyncClient::AsyncClient(const std::string& socket_path, int timeout_ms)
    : fd_(connect_unix(socket_path, timeout_ms)) {
  reader_thread_ = std::thread([this] { reader_loop(); });
}

AsyncClient::~AsyncClient() {
  fd_.shutdown_both();
  if (reader_thread_.joinable()) reader_thread_.join();
  // Promises still pending at destruction break naturally: their
  // std::future ends with std::future_error(broken_promise).
}

std::future<Response> AsyncClient::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  std::string wire;
  {
    const std::lock_guard<std::mutex> lock(send_mu_);
    if (req.id == 0) req.id = next_id_++;
    wire = request_to_json(req) + "\n";
    {
      const std::lock_guard<std::mutex> plock(pending_mu_);
      pending_.emplace(req.id, std::move(promise));
    }
    if (!write_all(fd_, wire)) {
      const std::lock_guard<std::mutex> plock(pending_mu_);
      const auto it = pending_.find(req.id);
      if (it != pending_.end()) {
        it->second.set_exception(std::make_exception_ptr(
            PreconditionError("serve::AsyncClient: connection lost")));
        pending_.erase(it);
      }
    }
  }
  return future;
}

std::size_t AsyncClient::in_flight() const {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

void AsyncClient::reader_loop() {
  LineReader reader(fd_);
  std::string line;
  while (reader.read_line(line, kMaxRequestBytes)) {
    Response resp;
    try {
      resp = parse_response(line);
    } catch (const std::exception&) {
      continue;  // garbled line: the matching future breaks at teardown
    }
    std::promise<Response> promise;
    {
      const std::lock_guard<std::mutex> lock(pending_mu_);
      const auto it = pending_.find(resp.id);
      if (it == pending_.end()) continue;  // unmatched id
      promise = std::move(it->second);
      pending_.erase(it);
    }
    promise.set_value(std::move(resp));
  }
}

}  // namespace bsa::serve
