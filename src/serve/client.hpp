#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

/// \file client.hpp
/// Client library for the scheduling service (serve::Server / the
/// bsa_served daemon): a blocking Client speaking the newline-delimited
/// JSON protocol over one connection, and an AsyncClient layering
/// future-based completion and pipelining on top of it.
///
/// The server may answer out of request order (batching reorders), so
/// both clients match responses to requests by id. Client assigns ids
/// itself when the caller leaves Request::id at 0.

namespace bsa::serve {

/// One blocking connection. Not thread-safe: one thread drives call(),
/// or send()/recv() as a pipelining pair (send W requests, then recv W
/// responses, matching by id). Use AsyncClient — or one Client per
/// thread — for concurrent callers.
class Client {
 public:
  /// Connect, retrying until `timeout_ms` elapses (covers a daemon that
  /// is still starting). Throws PreconditionError on timeout.
  static Client connect(const std::string& socket_path,
                        int timeout_ms = 5000);

  /// Send one request (assigning an id when req.id == 0) and return the
  /// id it went out with. Throws PreconditionError when the connection
  /// is gone.
  std::uint64_t send(const Request& req);

  /// Block for the next response line. Throws PreconditionError on EOF
  /// (server gone) or malformed response.
  [[nodiscard]] Response recv();

  /// send() + recv-until-matching-id — the simple RPC form.
  [[nodiscard]] Response call(const Request& req);

  /// Convenience ops.
  [[nodiscard]] Response ping();
  [[nodiscard]] Response stats();
  /// Ask the daemon to shut down (acknowledged before it stops).
  [[nodiscard]] Response shutdown_server();

  void close() { fd_.reset(); }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)), reader_(fd_) {}

  Fd fd_;
  LineReader reader_;
  std::uint64_t next_id_ = 1;
};

/// Future-based asynchronous facade: submit() returns immediately with a
/// std::future<Response>; a reader thread completes futures as response
/// lines arrive, in whatever order the server produced them. submit()
/// is thread-safe. Outstanding futures are failed (broken promise ->
/// std::future_error) when the connection drops or the client is
/// destroyed.
class AsyncClient {
 public:
  explicit AsyncClient(const std::string& socket_path, int timeout_ms = 5000);
  ~AsyncClient();

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  /// Enqueue one request (id assigned when 0); the future completes when
  /// the server answers it.
  std::future<Response> submit(Request req);

  /// Number of submitted-but-unanswered requests.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  void reader_loop();

  Fd fd_;
  std::mutex send_mu_;
  std::uint64_t next_id_ = 1;
  mutable std::mutex pending_mu_;
  std::map<std::uint64_t, std::promise<Response>> pending_;
  std::thread reader_thread_;
};

}  // namespace bsa::serve
