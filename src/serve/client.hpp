#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

/// \file client.hpp
/// Client library for the scheduling service (serve::Server / the
/// bsa_served daemon): a blocking Client speaking the newline-delimited
/// JSON protocol over one connection, and an AsyncClient layering
/// future-based completion and pipelining on top of it. serve/retry.hpp
/// adds the resilient RetryingClient wrapper.
///
/// The server may answer out of request order (batching reorders), so
/// both clients match responses to requests by id. Client assigns ids
/// itself when the caller leaves Request::id at 0.
///
/// No call blocks forever by default: connects retry up to
/// ClientOptions::connect_timeout_ms, and every read carries
/// read_timeout_ms — a stalled daemon surfaces as TimeoutError instead
/// of a hung client.

namespace bsa::serve {

/// Thrown when a response does not arrive within the configured
/// deadline. Distinct from PreconditionError (connection gone /
/// protocol violation) so retry policies can tell the two apart.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  /// How long connect() keeps retrying a missing socket (daemon still
  /// starting) before throwing PreconditionError.
  int connect_timeout_ms = 5000;
  /// Per-read deadline: recv()/call() throw TimeoutError when the
  /// server goes silent longer than this. Negative waits forever.
  int read_timeout_ms = 30000;
};

/// One blocking connection. Not thread-safe: one thread drives call(),
/// or send()/recv() as a pipelining pair (send W requests, then recv W
/// responses, matching by id). Use AsyncClient — or one Client per
/// thread — for concurrent callers.
///
/// Not movable: the internal LineReader holds a reference to the owned
/// fd. Build in place (`auto c = Client::connect(...)` — guaranteed
/// elision) or on the heap via connect_ptr.
class Client {
 public:
  /// Connect, retrying until the connect timeout elapses (covers a
  /// daemon that is still starting). Throws PreconditionError on
  /// timeout.
  static Client connect(const std::string& socket_path,
                        int connect_timeout_ms = 5000);
  static Client connect(const std::string& socket_path,
                        const ClientOptions& options);
  /// Heap form for owners that need to drop and re-establish the
  /// connection (RetryingClient).
  static std::unique_ptr<Client> connect_ptr(const std::string& socket_path,
                                             const ClientOptions& options);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request (assigning an id when req.id == 0) and return the
  /// id it went out with. Throws PreconditionError when the connection
  /// is gone.
  std::uint64_t send(const Request& req);

  /// Block for the next response line. Throws TimeoutError when the
  /// read deadline passes, PreconditionError on EOF (server gone) or a
  /// malformed response.
  [[nodiscard]] Response recv();

  /// send() + recv-until-matching-id — the simple RPC form.
  [[nodiscard]] Response call(const Request& req);

  /// Convenience ops.
  [[nodiscard]] Response ping();
  [[nodiscard]] Response stats();
  /// Ask the daemon to shut down (acknowledged before it stops).
  [[nodiscard]] Response shutdown_server();

  void close() { fd_.reset(); }

 private:
  Client(Fd fd, const ClientOptions& options)
      : options_(options), fd_(std::move(fd)), reader_(fd_) {}

  ClientOptions options_;
  Fd fd_;
  LineReader reader_;
  std::uint64_t next_id_ = 1;
};

/// Future-based asynchronous facade: submit() returns immediately with a
/// std::future<Response>; a reader thread completes futures as response
/// lines arrive, in whatever order the server produced them. submit()
/// is thread-safe. Outstanding futures are failed (broken promise ->
/// std::future_error) when the connection drops or the client is
/// destroyed; a future whose per-request deadline passes first fails
/// with TimeoutError.
class AsyncClient {
 public:
  explicit AsyncClient(const std::string& socket_path,
                       int connect_timeout_ms = 5000);
  AsyncClient(const std::string& socket_path, const ClientOptions& options);
  ~AsyncClient();

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  /// Enqueue one request (id assigned when 0); the future completes when
  /// the server answers it. `deadline_ms` > 0 bounds the wait: an
  /// overdue future fails with TimeoutError (the response, should it
  /// still arrive, is dropped as unmatched).
  std::future<Response> submit(Request req, int deadline_ms = 0);

  /// Number of submitted-but-unanswered requests.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct PendingEntry {
    std::promise<Response> promise;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void reader_loop();
  void expire_overdue();

  Fd fd_;
  std::mutex send_mu_;
  std::uint64_t next_id_ = 1;
  mutable std::mutex pending_mu_;
  std::map<std::uint64_t, PendingEntry> pending_;
  std::thread reader_thread_;
};

}  // namespace bsa::serve
