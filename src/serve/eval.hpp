#pragma once

#include <string>

#include "obs/hooks.hpp"
#include "serve/protocol.hpp"

/// \file eval.hpp
/// The deterministic heart of the scheduling service: evaluate one
/// canonicalised request into its response payload.
///
/// The construction path is *exactly* bsa_tool's single-run path —
/// graph = workload.generate(size, gran, seed), topology =
/// exp::make_topology (with the linear/star extras), cost model =
/// HeterogeneousCostModel::uniform[_processor_speeds](g, topo, 1, het,
/// 1, link_het, seed), scheduler run with the same seed — so a served
/// schedule is byte-identical to `bsa_tool --workload W --algo A
/// --topology T --procs P --size N --seed S --export`, which is what the
/// CI byte-identity gate diffs.
///
/// The payload is a pure function of the canonical request key: it
/// contains no timestamps, no request ids and no daemon state, which is
/// the whole cache-exactness argument (docs/DESIGN_SERVE.md).

namespace bsa::serve {

/// Evaluate a schedule request (already canonicalised — see
/// serve::canonicalize) and return the response payload fragment:
/// comma-separated "key":value JSON text without surrounding braces,
/// ready for format_response. Deterministic: equal canonical keys yield
/// byte-identical payloads. Throws (PreconditionError and friends) on
/// unresolvable specs; the server turns that into an error response.
/// `hooks` only observe (tracer spans around the scheduler run).
[[nodiscard]] std::string evaluate_request(const Request& req,
                                           const obs::Hooks& hooks);
[[nodiscard]] std::string evaluate_request(const Request& req);

}  // namespace bsa::serve
