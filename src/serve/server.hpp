#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/lru_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace bsa::obs {
class Tracer;
}  // namespace bsa::obs

/// \file server.hpp
/// The scheduling-as-a-service daemon core: a Server listens on a local
/// AF_UNIX socket, speaks the newline-delimited JSON protocol
/// (serve/protocol.hpp), batches concurrent in-flight schedule requests
/// into ScenarioGrid-style sweeps dispatched on a runtime::ThreadPool,
/// and answers repeat requests from a sharded LRU cache keyed by the
/// exact canonical request key — cache hits return byte-identical
/// payloads to fresh runs (serve/eval.hpp has the exactness argument).
///
/// Thread model: one accept thread, one session thread per connection,
/// one batch-dispatcher thread, plus the evaluation pool. Sessions parse
/// and answer cache hits / pings inline; misses are queued for the
/// dispatcher, which drains up to `max_batch` requests per round,
/// deduplicates identical keys within the round, evaluates the unique
/// keys on the pool and writes every response. Session threads are
/// detached and self-reaping: on client disconnect a session removes
/// itself from the live set and drops its Connection reference, so the
/// socket fd closes as soon as the last in-flight response releases it —
/// a long-running daemon holds resources only for live connections.
/// stop() waits until every detached session has signalled exit.
/// Observability: the serve.* counters below and
/// accept/parse/batch/schedule/respond tracer spans through the
/// standard obs:: hooks.

namespace bsa::serve {

struct ServerOptions {
  std::string socket_path = "bsa_served.sock";
  /// Evaluation pool workers; <= 0 selects all hardware threads.
  int threads = 0;
  /// Total schedule-cache entries (0 disables caching).
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
  /// Most requests drained per dispatcher round.
  std::size_t max_batch = 64;
  /// How long a nonempty round waits for stragglers before dispatching,
  /// in microseconds (0 dispatches immediately).
  int batch_wait_us = 100;
  /// Admission control: most cache-miss requests queued for dispatch at
  /// once. A request arriving past the bound is *shed* with a typed
  /// `overloaded` error carrying a retry_after_ms hint instead of
  /// queueing unboundedly. 0 sheds every miss (useful for overload and
  /// retry-budget tests).
  std::size_t max_queue = 1024;
  /// Slow-client write deadline (SO_SNDTIMEO) per connection, in
  /// milliseconds; a client that stalls a send longer than this has its
  /// response dropped and connection closed. 0 = unbounded.
  int write_timeout_ms = 0;
  /// Optional span sink (not owned; must outlive the server). Null is
  /// observability-off and costs one branch per site.
  obs::Tracer* tracer = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and joins everything (idempotent with stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start the accept/dispatcher threads. Throws
  /// PreconditionError when the socket cannot be bound.
  void start();

  /// Block until a client's shutdown op (or a stop() from another
  /// thread) ends the serving loop.
  void wait();

  /// Tear down: stop accepting, drain queued requests (each still gets
  /// its response), close every connection, join all threads. Safe to
  /// call from any thread except a session's own; idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

  /// Deterministic-format snapshot of the serve.* counters
  /// (serve.requests, serve.cache.{hits,misses,evictions},
  /// serve.batches, serve.batch_size_hwm, ...), sorted by name.
  [[nodiscard]] obs::CounterSnapshot counters() const;

 private:
  struct Connection;
  struct Pending;

  void accept_loop();
  void session_loop(const std::shared_ptr<Connection>& conn);
  void dispatcher_loop();
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void run_batch(std::vector<Pending>& batch);
  void respond(Connection& conn, const std::string& line);
  [[nodiscard]] std::string stats_payload() const;

  ServerOptions options_;
  Fd listener_;
  LruCache<std::string, std::string> cache_;
  std::unique_ptr<runtime::ThreadPool> pool_;

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  /// Guards the live-connection set and the detached-session count;
  /// sessions_cv_ signals each session exit so stop() can wait them out.
  std::mutex sessions_mu_;
  std::condition_variable sessions_cv_;
  std::vector<std::shared_ptr<Connection>> sessions_;
  std::size_t active_sessions_ = 0;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  /// serve.* tallies (cache hit/miss/eviction live in cache_.stats()).
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> batch_size_hwm_{0};
  std::atomic<std::int64_t> batch_dedup_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> connections_{0};
  std::atomic<std::int64_t> overloads_{0};
  std::atomic<std::int64_t> responses_dropped_{0};
};

}  // namespace bsa::serve
