#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

/// \file lru_cache.hpp
/// A sharded, thread-safe LRU cache — the schedule cache behind the
/// scheduling service (serve::Server), written as a standalone template
/// so future subsystems (e.g. the online-arrival simulator) can reuse it.
///
/// Keys are hashed onto `shards` independent shards, each holding its own
/// lock, recency list and capacity slice, so concurrent get/put traffic
/// on distinct keys rarely contends on one mutex. Within a shard the
/// implementation is the classic list + ordered-index pair: an intrusive
/// recency list of (key, value) nodes and a std::map from key to list
/// iterator (std::map, not unordered_map — the determinism linter bans
/// hash containers in src/, and O(log n) lookups are far below the cost
/// of the scheduler runs the cache memoises).
///
/// Determinism note: *which* entries survive eviction depends on arrival
/// order and therefore on timing, but a cache can only ever change
/// whether a result is recomputed, never what it is — callers store
/// values that are pure functions of the key (the serve cache stores
/// canonically-keyed response payloads), so hit and miss paths return
/// bit-identical bytes.
///
/// Capacity semantics: `capacity` is the total entry budget, split so
/// the per-shard slices sum to exactly `capacity` (the remainder shards
/// get one extra slot; each shard gets at least 1 when capacity > 0), so
/// resident entries never exceed the budget. capacity == 0 disables the
/// cache entirely: every get misses, put is a no-op. Eviction is strict
/// per-shard LRU: get and put both refresh recency; put of an existing
/// key overwrites its value in place.

namespace bsa::serve {

/// Monotonic hit/miss/eviction tallies, readable while the cache is live.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t size = 0;  ///< current entry count across shards
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `capacity` total entries across all shards (0 disables the cache);
  /// `shards` lock shards (clamped to >= 1; more shards than capacity
  /// collapse to `capacity` shards so every shard can hold an entry).
  explicit LruCache(std::size_t capacity, std::size_t shards = 1)
      : capacity_(capacity) {
    if (shards == 0) shards = 1;
    if (capacity > 0 && shards > capacity) shards = capacity;
    // Hand out floor(capacity/shards) everywhere plus one extra slot to
    // the first capacity%shards shards: the slices sum to exactly
    // `capacity`, never a ceil-rounded overshoot.
    const std::size_t base = capacity / shards;
    const std::size_t extra = capacity % shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
    }
  }

  /// Look up `key`; a hit refreshes its recency and copies the value out.
  [[nodiscard]] std::optional<Value> get(const Key& key) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.order.splice(s.order.begin(), s.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Insert or overwrite `key`, refreshing its recency; evicts the
  /// shard's least-recently-used entry when the shard is full.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.order.splice(s.order.begin(), s.order, it->second);
      return;
    }
    if (s.order.size() >= s.capacity) {
      const auto& victim = s.order.back();
      s.index.erase(victim.first);
      s.order.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    s.order.emplace_front(key, std::move(value));
    s.index.emplace(key, s.order.begin());
  }

  /// True when `key` is resident (no recency refresh, no stats bump).
  [[nodiscard]] bool contains(const Key& key) const {
    if (capacity_ == 0) return false;
    const Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    return s.index.find(key) != s.index.end();
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s->mu);
      n += s->order.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.size = static_cast<std::int64_t>(size());
    return st;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    std::size_t capacity;
    mutable std::mutex mu;
    /// Most-recently-used first.
    std::list<std::pair<Key, Value>> order;
    std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(const Key& key) const {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  std::size_t capacity_;
  // unique_ptr so Shard (with its mutex) never moves after construction.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace bsa::serve
