// lint:allow-file(wall-clock): connect-retry and read/write deadlines
// only, never a result
#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "fault/failpoint.hpp"

namespace bsa::serve {
namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BSA_REQUIRE(path.size() < sizeof(addr.sun_path),
              "unix socket path too long (" << path.size() << " bytes, max "
                                            << sizeof(addr.sun_path) - 1
                                            << "): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Fd make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BSA_REQUIRE(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
  return Fd(fd);
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // stale socket file from a crashed daemon
  Fd fd = make_socket();
  BSA_REQUIRE(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind('" << path << "'): " << std::strerror(errno));
  BSA_REQUIRE(::listen(fd.get(), backlog) == 0,
              "listen('" << path << "'): " << std::strerror(errno));
  return fd;
}

Fd accept_unix(const Fd& listener) {
  bool logged_backoff = false;
  for (;;) {
    int err = 0;
    // Re-checked every iteration so an every=N errno schedule only fails
    // individual arrivals — the loop itself always makes progress.
    const fault::Action fa = fault::check(fault::SiteId::kAccept);
    fault::maybe_delay(fa);
    if (fa.kind == fault::Action::Kind::kErrno) {
      err = fa.err;
    } else if (fa.kind == fault::Action::Kind::kDisconnect) {
      err = ECONNABORTED;
    } else {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd >= 0) return Fd(fd);
      err = errno;
    }
    // Transient per-connection failures (a client aborted mid-handshake,
    // a spurious wakeup) must not end the accept loop.
    if (err == EINTR || err == ECONNABORTED || err == EAGAIN ||
        err == EWOULDBLOCK) {
      continue;
    }
    // Resource exhaustion clears once sessions close their fds; back off
    // briefly and retry instead of silently refusing service forever. A
    // concurrent listener shutdown turns the retry into EINVAL below.
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      if (!logged_backoff) {
        logged_backoff = true;
        std::fprintf(stderr, "bsa_serve: accept: %s (backing off)\n",
                     std::strerror(err));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // EBADF/EINVAL after the listener was shut down or closed: the
    // server is stopping, end the loop quietly. Anything else is
    // unexpected — log it so the exit is diagnosable.
    if (err != EBADF && err != EINVAL) {
      std::fprintf(stderr, "bsa_serve: accept: %s (accept loop exiting)\n",
                   std::strerror(err));
    }
    return Fd();
  }
}

Fd connect_unix(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Fd fd = make_socket();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    BSA_REQUIRE(std::chrono::steady_clock::now() < deadline,
                "connect('" << path << "'): " << std::strerror(err)
                            << " (gave up after " << timeout_ms << "ms)");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool write_all(const Fd& fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const fault::Action fa = fault::check(fault::SiteId::kWrite);
    fault::maybe_delay(fa);
    if (fa.kind == fault::Action::Kind::kErrno) {
      if (fa.err == EINTR) continue;  // callers must survive a retry loop
      return false;
    }
    if (fa.kind == fault::Action::Kind::kDisconnect ||
        fa.kind == fault::Action::Kind::kFail) {
      return false;
    }
    std::size_t cap = data.size() - off;
    if (fa.kind == fault::Action::Kind::kShortIo ||
        fa.kind == fault::Action::Kind::kTorn) {
      cap = std::min(cap, static_cast<std::size_t>(fa.short_bytes));
    }
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE here, not
    // kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd.get(), data.data() + off, cap, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from an expired SO_SNDTIMEO
    }
    off += static_cast<std::size_t>(n);
    // A torn frame: part of the response went out, then the "connection
    // died" — the caller must treat the stream as unframeable.
    if (fa.kind == fault::Action::Kind::kTorn) return false;
  }
  return true;
}

void set_send_timeout(const Fd& fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool LineReader::read_line(std::string& line, std::size_t max_line,
                           int timeout_ms) {
  timed_out_ = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (buffer_.size() > max_line) {
      overflowed_ = true;
      return false;
    }
    const fault::Action fa = fault::check(fault::SiteId::kRead);
    fault::maybe_delay(fa);
    if (fa.kind == fault::Action::Kind::kErrno && fa.err != EINTR) {
      return false;
    }
    if (fa.kind == fault::Action::Kind::kDisconnect ||
        fa.kind == fault::Action::Kind::kFail) {
      return false;
    }
    if (timeout_ms >= 0) {
      // Poll with the remaining budget so the deadline bounds the whole
      // line, not each chunk.
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      const int wait_ms =
          static_cast<int>(std::max<std::int64_t>(0, remaining.count()));
      pollfd pfd{};
      pfd.fd = fd_.get();
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) {
        timed_out_ = true;
        return false;
      }
    }
    char chunk[16384];
    std::size_t cap = sizeof(chunk);
    if (fa.kind == fault::Action::Kind::kShortIo) {
      // Short reads exercise line reassembly across many recv calls.
      cap = std::min(cap, static_cast<std::size_t>(fa.short_bytes));
    }
    const ssize_t n = ::recv(fd_.get(), chunk, cap, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF or error; any partial line is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace bsa::serve
