#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/spec.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workload_registry.hpp"

namespace bsa::serve {
namespace {

/// Integer field with an inclusive lower bound; JSON numbers are
/// doubles, so reject non-integral values instead of truncating.
int take_int(const std::map<std::string, runtime::JsonScalar>& fields,
             const std::string& key, int fallback, int min_value) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const double* v = std::get_if<double>(&it->second);
  BSA_REQUIRE(v != nullptr && *v == std::floor(*v),
              "request field '" << key << "' expects an integer");
  BSA_REQUIRE(*v >= min_value, "request field '" << key << "' expects >= "
                                                 << min_value << ", got "
                                                 << *v);
  return static_cast<int>(*v);
}

std::uint64_t take_uint64(
    const std::map<std::string, runtime::JsonScalar>& fields,
    const std::string& key, std::uint64_t fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const double* v = std::get_if<double>(&it->second);
  BSA_REQUIRE(v != nullptr && *v == std::floor(*v) && *v >= 0,
              "request field '" << key
                                << "' expects a non-negative integer");
  return static_cast<std::uint64_t>(*v);
}

double take_double(const std::map<std::string, runtime::JsonScalar>& fields,
                   const std::string& key, double fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const double* v = std::get_if<double>(&it->second);
  BSA_REQUIRE(v != nullptr && std::isfinite(*v),
              "request field '" << key << "' expects a finite number");
  return *v;
}

bool take_bool(const std::map<std::string, runtime::JsonScalar>& fields,
               const std::string& key, bool fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const bool* v = std::get_if<bool>(&it->second);
  BSA_REQUIRE(v != nullptr, "request field '" << key
                                              << "' expects true or false");
  return *v;
}

std::string take_string(
    const std::map<std::string, runtime::JsonScalar>& fields,
    const std::string& key, const std::string& fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const std::string* v = std::get_if<std::string>(&it->second);
  BSA_REQUIRE(v != nullptr, "request field '" << key
                                              << "' expects a string");
  return *v;
}

const std::vector<std::string>& known_request_keys() {
  static const std::vector<std::string> kKeys = {
      "op",       "id",   "workload", "algo",     "topology",
      "procs",    "size", "gran",     "het",      "link_het",
      "per_pair", "seed", "cache",    "validate"};
  return kKeys;
}

}  // namespace

const std::vector<std::string>& topology_kinds() {
  static const std::vector<std::string> kKinds = {
      "ring", "hypercube", "clique", "mesh", "random", "linear", "star"};
  return kKinds;
}

Request parse_request(const std::string& line) {
  const auto fields = runtime::parse_jsonl_row(line);
  for (const auto& [key, _] : fields) {
    bool known = false;
    for (const std::string& k : known_request_keys()) {
      known = known || k == key;
    }
    BSA_REQUIRE(known, "unknown request field '"
                           << key << "'; accepted: "
                           << join_list(known_request_keys(), ", "));
  }
  Request req;
  req.op = ascii_lower(take_string(fields, "op", req.op));
  BSA_REQUIRE(req.op == "schedule" || req.op == "ping" || req.op == "stats" ||
                  req.op == "shutdown",
              "unknown op '" << req.op
                             << "'; accepted: schedule, ping, stats, "
                                "shutdown");
  req.id = take_uint64(fields, "id", req.id);
  req.workload = take_string(fields, "workload", req.workload);
  req.algo = take_string(fields, "algo", req.algo);
  req.topology = ascii_lower(take_string(fields, "topology", req.topology));
  req.size = take_int(fields, "size", req.size, 1);
  req.gran = take_double(fields, "gran", req.gran);
  BSA_REQUIRE(req.gran > 0, "request field 'gran' expects > 0, got "
                                << req.gran);
  req.procs = take_int(fields, "procs", req.procs, 1);
  req.het = take_int(fields, "het", req.het, 1);
  req.link_het = take_int(fields, "link_het", req.link_het, 1);
  req.per_pair = take_bool(fields, "per_pair", req.per_pair);
  req.seed = take_uint64(fields, "seed", req.seed);
  req.use_cache = take_bool(fields, "cache", req.use_cache);
  req.validate = take_bool(fields, "validate", req.validate);
  return req;
}

std::string request_to_json(const Request& req) {
  const Request defaults;
  std::ostringstream os;
  os << "{\"op\":\"" << json_escape(req.op) << "\",\"id\":" << req.id;
  if (req.workload != defaults.workload) {
    os << ",\"workload\":\"" << json_escape(req.workload) << '"';
  }
  if (req.algo != defaults.algo) {
    os << ",\"algo\":\"" << json_escape(req.algo) << '"';
  }
  if (req.topology != defaults.topology) {
    os << ",\"topology\":\"" << json_escape(req.topology) << '"';
  }
  if (req.size != defaults.size) os << ",\"size\":" << req.size;
  if (req.gran != defaults.gran) os << ",\"gran\":" << json_number(req.gran);
  if (req.procs != defaults.procs) os << ",\"procs\":" << req.procs;
  if (req.het != defaults.het) os << ",\"het\":" << req.het;
  if (req.link_het != defaults.link_het) {
    os << ",\"link_het\":" << req.link_het;
  }
  if (req.per_pair) os << ",\"per_pair\":true";
  if (req.seed != defaults.seed) os << ",\"seed\":" << req.seed;
  if (!req.use_cache) os << ",\"cache\":false";
  if (req.validate) os << ",\"validate\":true";
  os << '}';
  return os.str();
}

std::string canonicalize(Request& req) {
  req.workload = workloads::WorkloadRegistry::global().canonical(req.workload);
  req.algo = sched::SchedulerRegistry::global().canonical(req.algo);
  bool known = false;
  for (const std::string& kind : topology_kinds()) {
    known = known || kind == req.topology;
  }
  BSA_REQUIRE(known, "unknown topology '"
                         << req.topology << "'; registered: "
                         << join_list(topology_kinds(), ", "));
  std::ostringstream key;
  key << "w=" << req.workload << "|a=" << req.algo << "|t=" << req.topology
      << "|p=" << req.procs << "|n=" << req.size
      << "|g=" << canonical_double(req.gran) << "|h=" << req.het
      << "|l=" << req.link_het << "|pp=" << (req.per_pair ? 1 : 0)
      << "|s=" << req.seed << "|v=" << (req.validate ? 1 : 0);
  return key.str();
}

double Response::number(const std::string& key, double fallback) const {
  const auto it = payload.find(key);
  if (it == payload.end()) return fallback;
  const double* v = std::get_if<double>(&it->second);
  return v == nullptr ? fallback : *v;
}

std::string Response::text(const std::string& key) const {
  const auto it = payload.find(key);
  if (it == payload.end()) return {};
  const std::string* v = std::get_if<std::string>(&it->second);
  return v == nullptr ? std::string{} : *v;
}

Response parse_response(const std::string& line) {
  auto fields = runtime::parse_jsonl_row(line);
  Response resp;
  const auto take = [&fields](const char* key) {
    const auto it = fields.find(key);
    runtime::JsonScalar v = nullptr;
    if (it != fields.end()) {
      v = it->second;
      fields.erase(it);
    }
    return v;
  };
  if (const auto id = take("id"); std::holds_alternative<double>(id)) {
    resp.id = static_cast<std::uint64_t>(std::get<double>(id));
  }
  if (const auto ok = take("ok"); std::holds_alternative<bool>(ok)) {
    resp.ok = std::get<bool>(ok);
  }
  if (const auto c = take("cached"); std::holds_alternative<bool>(c)) {
    resp.cached = std::get<bool>(c);
  }
  if (const auto us = take("server_us"); std::holds_alternative<double>(us)) {
    resp.server_us = std::get<double>(us);
  }
  if (const auto err = take("error");
      std::holds_alternative<std::string>(err)) {
    resp.error = std::get<std::string>(err);
  }
  if (const auto code = take("code");
      std::holds_alternative<std::string>(code)) {
    resp.code = std::get<std::string>(code);
  }
  if (const auto ra = take("retry_after_ms");
      std::holds_alternative<double>(ra)) {
    resp.retry_after_ms = static_cast<int>(std::get<double>(ra));
  }
  resp.payload = std::move(fields);
  return resp;
}

std::string format_response(std::uint64_t id, bool cached, double server_us,
                            const std::string& payload) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":true,\"cached\":"
     << (cached ? "true" : "false")
     << ",\"server_us\":" << json_number(server_us);
  if (!payload.empty()) os << ',' << payload;
  os << '}';
  return os.str();
}

std::string format_error(std::uint64_t id, const std::string& code,
                         const std::string& message, int retry_after_ms) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":false,\"code\":\"" << json_escape(code)
     << "\",\"error\":\"" << json_escape(message) << '"';
  if (retry_after_ms > 0) os << ",\"retry_after_ms\":" << retry_after_ms;
  os << '}';
  return os.str();
}

std::string format_error(std::uint64_t id, const std::string& message) {
  return format_error(id, error_code::kInternal, message, 0);
}

}  // namespace bsa::serve
