#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "serve/client.hpp"

/// \file retry.hpp
/// Client-side resilience for the scheduling service: a deterministic
/// jittered-exponential-backoff schedule (Backoff), the policy knobs
/// around it (RetryPolicy), and a RetryingClient that wraps serve::Client
/// with reconnect-and-retry on transport errors, timeouts and typed
/// `overloaded` responses.
///
/// Determinism: the backoff sequence is a pure function of the policy —
/// the jitter comes from a common::Rng seeded with RetryPolicy::seed, so
/// a fixed policy replays the identical delay sequence on every run
/// (the retry_backoff_test pins exact values). Sleeping is factored out
/// through an injectable SleepFn so tests run the schedule against a
/// fake clock in microseconds of real time.
///
/// Safety: only idempotent operations are ever retried. `schedule`,
/// `ping` and `stats` are pure reads of a deterministic function — safe
/// to repeat; `shutdown` is not (a retry after a lost ack could kill a
/// freshly restarted daemon), so RetryingClient surfaces its failures
/// instead of retrying (idempotent_op is the single source of truth).

namespace bsa::serve {

struct RetryPolicy {
  /// Total tries per call including the first (1 = never retry).
  int max_attempts = 4;
  /// Total retries this client may spend across all calls — a budget,
  /// so a dying server costs a bounded amount of extra load.
  int retry_budget = 16;
  double base_delay_ms = 10.0;
  double multiplier = 2.0;
  /// Cap applied to the un-jittered delay.
  double max_delay_ms = 1000.0;
  /// Jitter fraction j in [0,1]: each delay is scaled by a factor drawn
  /// uniformly from [1-j, 1+j] (0 = fully deterministic spacing).
  double jitter = 0.5;
  /// Seed for the jitter draws (the whole schedule replays from it).
  std::uint64_t seed = 1;
};

/// The delay schedule: next_delay_ms() yields
///   min(base * multiplier^k, max_delay) * U[1-j, 1+j]
/// for k = 0, 1, 2, ... — deterministic for a fixed policy.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.seed) {}

  [[nodiscard]] double next_delay_ms();
  /// Delays handed out so far.
  [[nodiscard]] int steps() const noexcept { return steps_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int steps_ = 0;
};

/// True for ops that are safe to send twice (schedule/ping/stats);
/// false for shutdown.
[[nodiscard]] bool idempotent_op(const std::string& op);

/// serve::Client wrapped in a RetryPolicy. call() retries idempotent
/// requests on (a) transport errors and timeouts — dropping the
/// connection first, so a late stale response can never be matched to
/// the retried request — and (b) typed `overloaded` responses, waiting
/// max(backoff, server retry_after_ms hint). Non-idempotent requests
/// and exhausted budgets surface the original failure.
///
/// Not thread-safe (same contract as Client).
class RetryingClient {
 public:
  /// Milliseconds to pause before a retry; injectable for tests.
  using SleepFn = std::function<void(double delay_ms)>;

  RetryingClient(std::string socket_path, ClientOptions options,
                 RetryPolicy policy, SleepFn sleep = {});

  /// The resilient RPC. Throws what the last attempt threw when retries
  /// are exhausted (TimeoutError / PreconditionError).
  [[nodiscard]] Response call(const Request& req);

  /// Retries performed so far (spent from RetryPolicy::retry_budget).
  [[nodiscard]] int retries_used() const noexcept { return retries_used_; }

  /// Drop the connection; the next call() reconnects.
  void disconnect() { client_.reset(); }

 private:
  void pause(double delay_ms);

  std::string socket_path_;
  ClientOptions options_;
  RetryPolicy policy_;
  SleepFn sleep_;
  Backoff backoff_;
  std::unique_ptr<Client> client_;
  int retries_used_ = 0;
};

}  // namespace bsa::serve
