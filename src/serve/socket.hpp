#pragma once

#include <cstddef>
#include <string>

/// \file socket.hpp
/// Minimal RAII plumbing over POSIX AF_UNIX stream sockets — just what
/// the scheduling service needs: listen/accept/connect, full-line reads
/// and full-buffer writes. No third-party dependencies; everything is
/// plain <sys/socket.h>. Errors are reported by throwing
/// bsa::PreconditionError (setup) or by boolean/size returns (per-peer
/// I/O, where a vanished client is normal, not exceptional).

namespace bsa::serve {

/// Owning socket file descriptor. Movable, closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Close the descriptor now (idempotent).
  void reset() noexcept;
  /// shutdown(2) both directions — wakes any thread blocked in read on
  /// this descriptor without racing the close itself.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on a filesystem AF_UNIX socket path. Any stale socket
/// file at `path` is removed first. Throws PreconditionError on failure
/// (path too long for sockaddr_un, bind/listen errors).
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 128);

/// Accept one connection; invalid Fd when the listener was shut down.
[[nodiscard]] Fd accept_unix(const Fd& listener);

/// Connect to a unix socket, retrying (10ms apart) until `timeout_ms`
/// elapses — covers the daemon still starting up. Throws
/// PreconditionError when the deadline passes without a connection.
[[nodiscard]] Fd connect_unix(const std::string& path, int timeout_ms = 5000);

/// Write all of `data`; false when the peer is gone (EPIPE/reset —
/// reported, not raised, and never via SIGPIPE) or a send deadline set
/// with set_send_timeout expired.
[[nodiscard]] bool write_all(const Fd& fd, const std::string& data);

/// Arm a kernel send deadline (SO_SNDTIMEO): a send() that blocks
/// longer than `timeout_ms` fails, so write_all returns false instead
/// of hanging on a stalled peer. 0 disarms.
void set_send_timeout(const Fd& fd, int timeout_ms);

/// Buffered newline-delimited reader over one socket.
class LineReader {
 public:
  explicit LineReader(const Fd& fd) : fd_(fd) {}

  /// Read the next '\n'-terminated line (terminator stripped) into
  /// `line`. Returns false on orderly EOF *between* lines; a connection
  /// that dies mid-line also returns false (the partial line is
  /// dropped — the peer never finished the request). Lines longer than
  /// `max_line` set `overflowed()` and return false.
  ///
  /// `timeout_ms` >= 0 is a poll(2)-based deadline for the *whole* line:
  /// when it passes without one, `timed_out()` is set and the call
  /// returns false (buffered partial input is kept — a later call may
  /// still complete the line). Negative waits forever.
  [[nodiscard]] bool read_line(std::string& line, std::size_t max_line,
                               int timeout_ms = -1);

  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }
  /// True when the last read_line failed on its deadline (cleared at the
  /// start of each call).
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

 private:
  const Fd& fd_;
  std::string buffer_;
  bool overflowed_ = false;
  bool timed_out_ = false;
};

}  // namespace bsa::serve
