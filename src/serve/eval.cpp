#include "serve/eval.hpp"

#include <sstream>

#include "common/json.hpp"
#include "exp/experiment.hpp"
#include "fault/failpoint.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule_io.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "workloads/workload_registry.hpp"

namespace bsa::serve {

std::string evaluate_request(const Request& req) {
  return evaluate_request(req, obs::Hooks{});
}

std::string evaluate_request(const Request& req, const obs::Hooks& hooks) {
  // Per-cell chaos: a fail here is caught by the dispatcher and errors
  // only the requests deduplicated into this cell (isolation invariant).
  const fault::Action fa = fault::check(fault::SiteId::kEval);
  fault::maybe_delay(fa);
  fault::throw_if_fail(fa, "eval");
  const graph::TaskGraph g = workloads::WorkloadRegistry::global()
                                 .resolve(req.workload)
                                 ->generate(req.size, req.gran, req.seed);
  const net::Topology topo = [&] {
    if (req.topology == "linear") return net::Topology::linear(req.procs);
    if (req.topology == "star") return net::Topology::star(req.procs);
    return exp::make_topology(req.topology, req.procs, req.seed);
  }();
  const net::HeterogeneousCostModel cm =
      req.per_pair
          ? net::HeterogeneousCostModel::uniform(g, topo, 1, req.het, 1,
                                                 req.link_het, req.seed)
          : net::HeterogeneousCostModel::uniform_processor_speeds(
                g, topo, 1, req.het, 1, req.link_het, req.seed);
  const auto scheduler = sched::SchedulerRegistry::global().resolve(req.algo);
  sched::SchedulerResult result =
      scheduler->run_observed(g, topo, cm, req.seed, hooks);

  std::ostringstream os;
  os << "\"op\":\"schedule\""                                          //
     << ",\"workload\":\"" << json_escape(req.workload) << '"'         //
     << ",\"algo\":\"" << json_escape(req.algo) << '"'                 //
     << ",\"topology\":\"" << json_escape(req.topology) << '"'         //
     << ",\"procs\":" << req.procs                                     //
     << ",\"size\":" << req.size                                       //
     << ",\"gran\":" << json_number(req.gran)                          //
     << ",\"het\":" << req.het << ",\"link_het\":" << req.link_het     //
     << ",\"per_pair\":" << (req.per_pair ? "true" : "false")          //
     << ",\"seed\":" << req.seed                                       //
     << ",\"tasks\":" << g.num_tasks() << ",\"msgs\":" << g.num_edges()  //
     << ",\"makespan\":" << json_number(result.schedule.makespan());
  if (req.validate) {
    os << ",\"valid\":"
       << (sched::validate(result.schedule, cm).ok() ? "true" : "false");
  }
  for (const auto& [name, value] : result.counters) {
    os << ",\"ctr:" << json_escape(name) << "\":" << value;
  }
  os << ",\"schedule\":\"" << json_escape(sched::schedule_to_text(result.schedule))
     << '"';
  return os.str();
}

}  // namespace bsa::serve
