#include "core/pivot.hpp"

#include "common/check.hpp"
#include "graph/levels.hpp"

namespace bsa::core {

PivotSelection select_first_pivot(const graph::TaskGraph& g,
                                  const net::Topology& topo,
                                  const net::HeterogeneousCostModel& costs) {
  BSA_REQUIRE(topo.num_processors() >= 1, "empty topology");
  PivotSelection out;
  out.cp_length_by_proc.reserve(
      static_cast<std::size_t>(topo.num_processors()));
  const auto& comm = costs.nominal_comm_costs();
  Cost best = kInfiniteTime;
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    const auto exec = costs.exec_costs_on(p);
    const auto levels = graph::compute_levels(g, exec, comm);
    out.cp_length_by_proc.push_back(levels.cp_length);
    if (time_lt(levels.cp_length, best)) {
      best = levels.cp_length;
      out.pivot = p;
    }
  }
  return out;
}

}  // namespace bsa::core
