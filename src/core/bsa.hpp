#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/serialization.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "obs/hooks.hpp"
#include "sched/retime_context.hpp"
#include "sched/schedule.hpp"

/// \file bsa.hpp
/// The Bubble Scheduling and Allocation (BSA) algorithm — the paper's
/// contribution (§2).
///
/// Outline:
///  1. Select the first pivot processor: the one whose actual execution
///     costs give the shortest critical path (pivot.hpp).
///  2. Serialize the whole program onto the pivot in CP/IB/OB order
///     (serialization.hpp); the program is now a valid (serial) schedule.
///  3. Visit processors in breadth-first order from the first pivot. For
///     each pivot, consider every task currently on it for migration to a
///     *neighbouring* processor: a task migrates when its finish time
///     improves, or (VIP rule) when its finish time stays equal and its
///     most critical predecessor lives on that neighbour.
///  4. Migration re-routes messages incrementally: incoming routes are
///     extended by the pivot→neighbour link, messages from predecessors
///     on the destination become local, and outgoing routes are re-issued
///     with the extra first hop. No routing table is consulted — routes
///     emerge from the migration history, adapting to any topology.
///  5. After every migration the schedule is re-timed so the tasks and
///     messages left behind "bubble up" into the released slots.
///
/// The complexity matches the paper's O(m^2 e n) up to the re-timing
/// refinement discussed in DESIGN.md §3.

namespace bsa::core {

/// Which tasks are examined for migration (DESIGN.md §3 note 1).
enum class GateRule : unsigned char {
  /// Paper behaviour: consider a task when its start is delayed past its
  /// data-ready time, or when its VIP is not on the pivot.
  kPaper,
  /// Ablation: examine every task on the pivot.
  kAlwaysConsider,
};

/// How message routes are determined (§2.3 of the paper).
enum class RouteDiscipline : unsigned char {
  /// Paper default: no routing table; routes grow incrementally as tasks
  /// migrate hop by hop.
  kIncremental,
  /// Static shortest-path routing: whenever a task migrates, its
  /// messages are re-routed from scratch along pre-computed shortest
  /// paths (the paper's "constraint" for networks with static routing).
  kStaticShortestPath,
  /// Static E-cube routing; requires a hypercube topology whose
  /// processor ids are the vertex addresses (the paper's example of a
  /// static-routing network).
  kEcube,
};

/// How the program is serialized onto the first pivot (§2.2).
enum class SerializationRule : unsigned char {
  /// Paper behaviour: CP tasks earliest, IB ancestors inserted before
  /// them, OB tasks appended (serialization.hpp).
  kCpIbOb,
  /// Ablation: plain descending-b-level list (serialize_by_blevel).
  kBLevel,
};

/// When a migration that improves the task's own finish time is allowed
/// to commit (DESIGN.md §3 note 7).
enum class MigrationPolicy : unsigned char {
  /// Commit only when the overall schedule length does not increase —
  /// the paper's "a task migrates only if it can bubble up" invariant
  /// (every migration in the worked example shortens the schedule).
  kMakespanGuarded,
  /// Literal reading of the pseudocode: commit whenever the task's own
  /// finish time improves, regardless of the effect on its successors.
  kTaskGreedy,
};

struct BsaOptions {
  /// Seed for critical-path tie breaking ("ties are broken randomly").
  std::uint64_t seed = 0;
  GateRule gate = GateRule::kPaper;
  MigrationPolicy policy = MigrationPolicy::kMakespanGuarded;
  RouteDiscipline routing = RouteDiscipline::kIncremental;
  SerializationRule serialization = SerializationRule::kCpIbOb;
  /// Number of breadth-first pivot sweeps. The paper performs one; more
  /// sweeps let tasks keep diffusing over low-connectivity topologies
  /// (each sweep moves a task at most one hop per visited pivot). The
  /// loop stops early once a sweep commits no migration.
  int max_sweeps = 1;
  /// Enable the equal-finish-time VIP migration rule (paper line 11).
  bool vip_rule = true;
  /// Cut cycles out of message routes when a route revisits a processor
  /// (off = paper's plain hop-extension behaviour).
  bool prune_route_cycles = false;
  /// Insertion-based slot search on processors and links (true, paper
  /// behaviour) versus append-only (ablation).
  bool insertion_slots = true;
  /// Run the full invariant validator after every migration (slow; used
  /// by tests).
  bool validate_each_step = false;
  /// Re-time each migration incrementally with a persistent RetimeContext
  /// (bit-identical to the full rebuild, much faster on large graphs).
  /// false = rebuild the whole constraint graph per migration with
  /// sched::try_retime (the reference implementation).
  bool incremental_retime = true;
  /// Guarded-migration rollback engine. false (default): journal each
  /// migration into a Schedule::Transaction and undo a rejected one in
  /// O(touched). true: copy-assign a whole-schedule snapshot before every
  /// migration and restore it on reject — the reference implementation,
  /// proven bit-identical (tests/schedule_txn_test.cpp).
  bool snapshot_rollback = false;
  /// Neighbour-evaluation engine. true (default): reuse per-runner
  /// scratch buffers (flat per-link busy overlays, edge-membership mark
  /// arrays) so evaluation allocates nothing in steady state. false:
  /// allocate fresh containers per call — the reference implementation,
  /// proven bit-identical.
  bool pooled_eval = true;
  /// Observability hooks (phase/migration span tracer + per-attempt
  /// decision log). Hooks only observe — they never influence the
  /// computed schedule — and with the default null hooks every
  /// instrumented path costs one branch (docs/DESIGN_OBS.md).
  obs::Hooks obs;
};

/// One committed migration, for tracing/debugging.
struct Migration {
  TaskId task = kInvalidTask;
  ProcId from = kInvalidProc;
  ProcId to = kInvalidProc;
  Time old_finish = 0;        ///< finish time on the pivot before migration
  Time predicted_finish = 0;  ///< finish time the evaluation promised
  Time new_finish = 0;        ///< finish time after commit and re-timing
  Time makespan_after = 0;    ///< schedule length right after this commit
  int phase = 0;              ///< index into BsaTrace::pivot_sequence
  bool via_vip_rule = false;
};

struct BsaTrace {
  ProcId first_pivot = kInvalidProc;
  std::vector<Cost> pivot_cp_lengths;   ///< CP length w.r.t. each processor
  SerializationResult serialization;    ///< order used for injection
  Time initial_serial_length = 0;       ///< SL right after serialization
  std::vector<ProcId> pivot_sequence;   ///< BFS processor list
  std::vector<Migration> migrations;
  /// Migrations undone by the makespan guard (kMakespanGuarded only).
  std::int64_t rejected_migrations = 0;
  /// Decision-path counters: pivot tasks the gate skipped / passed, and
  /// evaluated attempts that found no qualifying neighbour.
  std::int64_t gate_skips = 0;
  std::int64_t considered = 0;
  std::int64_t rejected_no_gain = 0;
  /// Migrations whose re-timing hit an order cycle and fell back to the
  /// wholesale replay_retime rebuild (the residual DESIGN_RETIME.md
  /// discusses; rare by construction).
  std::int64_t replay_fallbacks = 0;
  /// Transaction-journal footprint (txn rollback engine only): deepest
  /// journal observed before commit/rollback, and total records journaled.
  std::int64_t txn_journal_hwm = 0;
  std::int64_t txn_journal_records = 0;
  /// Lazily-built free-slot indexes the schedule constructed during the
  /// run (Schedule::slot_index_builds()).
  std::int64_t slot_index_builds = 0;
  /// EvalScratch epoch bumps — pooled evaluation calls that invalidated
  /// the edge / link mark arrays (zero when pooled_eval is off).
  std::int64_t eval_edge_epochs = 0;
  std::int64_t eval_link_epochs = 0;
  /// Re-timing engine counters (zero when incremental_retime is off).
  sched::RetimeContext::Stats retime;
};

struct BsaResult {
  sched::Schedule schedule;
  BsaTrace trace;
  [[nodiscard]] Time schedule_length() const { return schedule.makespan(); }
};

/// Run BSA. The graph must be connected and non-empty; the topology must
/// be connected. The returned schedule is complete and valid (see
/// sched::validate).
[[nodiscard]] BsaResult schedule_bsa(const graph::TaskGraph& g,
                                     const net::Topology& topo,
                                     const net::HeterogeneousCostModel& costs,
                                     const BsaOptions& options = {});

/// Remove cycles from a link walk starting at `origin`: whenever the walk
/// revisits a processor, the loop between the two visits is cut. Single
/// forward pass with a first-visit position map — O(|links|) amortized.
/// Used by BSA when `prune_route_cycles` is on; exposed for testing.
void prune_link_walk(const net::Topology& topo, std::vector<LinkId>& links,
                     ProcId origin);

}  // namespace bsa::core
