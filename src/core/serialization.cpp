#include "core/serialization.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/traversal.hpp"

namespace bsa::core {
namespace {

std::vector<Cost> nominal_exec_of(const graph::TaskGraph& g) {
  std::vector<Cost> out(static_cast<std::size_t>(g.num_tasks()));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    out[static_cast<std::size_t>(t)] = g.task_cost(t);
  }
  return out;
}

std::vector<Cost> nominal_comm_of(const graph::TaskGraph& g) {
  std::vector<Cost> out(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out[static_cast<std::size_t>(e)] = g.edge_cost(e);
  }
  return out;
}

}  // namespace

SerializationResult serialize(const graph::TaskGraph& g,
                              std::span<const Cost> exec_costs,
                              std::span<const Cost> comm_costs, Rng& rng) {
  SerializationResult out;
  out.levels = graph::compute_levels(g, exec_costs, comm_costs);
  out.critical_path =
      graph::extract_critical_path(g, exec_costs, comm_costs, out.levels, rng);
  const auto n = static_cast<std::size_t>(g.num_tasks());

  // Classify: CP tasks, then IB = ancestors of CP tasks, then OB = rest.
  out.task_class.assign(n, TaskClass::kOutBranch);
  for (const TaskId t : out.critical_path) {
    out.task_class[static_cast<std::size_t>(t)] = TaskClass::kCriticalPath;
  }
  for (const TaskId cp_task : out.critical_path) {
    const auto mask = graph::ancestor_mask(g, cp_task);
    for (std::size_t t = 0; t < n; ++t) {
      if (mask[t] && out.task_class[t] == TaskClass::kOutBranch) {
        out.task_class[t] = TaskClass::kInBranch;
      }
    }
  }

  const auto& b_level = out.levels.b_level;
  const auto& t_level = out.levels.t_level;
  std::vector<char> in_order(n, 0);
  out.order.reserve(n);
  auto append = [&](TaskId t) {
    BSA_ASSERT(!in_order[static_cast<std::size_t>(t)],
               "task " << t << " serialized twice");
    in_order[static_cast<std::size_t>(t)] = 1;
    out.order.push_back(t);
  };

  // Ancestor-inclusive insertion: ensure all predecessors of `target` are
  // in the order (largest b-level first, ties by smaller t-level then
  // smaller id — the paper's step 8), then append `target` itself.
  auto add_with_ancestors = [&](TaskId target) {
    std::vector<TaskId> stack{target};
    while (!stack.empty()) {
      const TaskId t = stack.back();
      if (in_order[static_cast<std::size_t>(t)]) {
        stack.pop_back();
        continue;
      }
      TaskId best = kInvalidTask;
      for (const EdgeId e : g.in_edges(t)) {
        const TaskId p = g.edge_src(e);
        if (in_order[static_cast<std::size_t>(p)]) continue;
        if (best == kInvalidTask) {
          best = p;
          continue;
        }
        const auto pi = static_cast<std::size_t>(p);
        const auto bi = static_cast<std::size_t>(best);
        if (time_lt(b_level[bi], b_level[pi]) ||
            (time_eq(b_level[bi], b_level[pi]) &&
             (time_lt(t_level[pi], t_level[bi]) ||
              (time_eq(t_level[pi], t_level[bi]) && p < best)))) {
          best = p;
        }
      }
      if (best == kInvalidTask) {
        stack.pop_back();
        append(t);
      } else {
        stack.push_back(best);
      }
    }
  };

  // CP tasks in path order, each preceded by its missing ancestors.
  for (const TaskId cp_task : out.critical_path) {
    add_with_ancestors(cp_task);
  }

  // OB tasks in descending b-level (ties: smaller t-level, then id).
  std::vector<TaskId> ob;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!in_order[static_cast<std::size_t>(t)]) ob.push_back(t);
  }
  std::sort(ob.begin(), ob.end(), [&](TaskId a, TaskId b) {
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(b);
    if (!time_eq(b_level[ai], b_level[bi])) return b_level[ai] > b_level[bi];
    if (!time_eq(t_level[ai], t_level[bi])) return t_level[ai] < t_level[bi];
    return a < b;
  });
  // Appending in descending b-level alone is not precedence-safe when
  // zero-cost edges make b-levels tie, so insert each with its ancestors.
  for (const TaskId t : ob) {
    if (!in_order[static_cast<std::size_t>(t)]) add_with_ancestors(t);
  }

  BSA_ASSERT(out.order.size() == n, "serialization missed tasks");
  BSA_ASSERT(graph::is_topological_order(g, out.order),
             "serialization produced a non-topological order");
  return out;
}

SerializationResult serialize(const graph::TaskGraph& g, Rng& rng) {
  const auto exec = nominal_exec_of(g);
  const auto comm = nominal_comm_of(g);
  return serialize(g, exec, comm, rng);
}

SerializationResult serialize_by_blevel(const graph::TaskGraph& g,
                                        std::span<const Cost> exec_costs,
                                        std::span<const Cost> comm_costs,
                                        Rng& rng) {
  SerializationResult out;
  out.levels = graph::compute_levels(g, exec_costs, comm_costs);
  out.critical_path =
      graph::extract_critical_path(g, exec_costs, comm_costs, out.levels, rng);
  const auto n = static_cast<std::size_t>(g.num_tasks());

  // Classification mirrors serialize() so callers can treat the results
  // interchangeably.
  out.task_class.assign(n, TaskClass::kOutBranch);
  for (const TaskId t : out.critical_path) {
    out.task_class[static_cast<std::size_t>(t)] = TaskClass::kCriticalPath;
  }
  for (const TaskId cp_task : out.critical_path) {
    const auto mask = graph::ancestor_mask(g, cp_task);
    for (std::size_t t = 0; t < n; ++t) {
      if (mask[t] && out.task_class[t] == TaskClass::kOutBranch) {
        out.task_class[t] = TaskClass::kInBranch;
      }
    }
  }

  // Pure b-level list, made precedence-safe by inserting any
  // not-yet-included predecessors first (only relevant for zero-cost
  // ties).
  std::vector<TaskId> by_blevel(n);
  for (std::size_t t = 0; t < n; ++t) {
    by_blevel[t] = static_cast<TaskId>(t);
  }
  const auto& b_level = out.levels.b_level;
  const auto& t_level = out.levels.t_level;
  std::sort(by_blevel.begin(), by_blevel.end(), [&](TaskId a, TaskId b) {
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(b);
    if (!time_eq(b_level[ai], b_level[bi])) return b_level[ai] > b_level[bi];
    if (!time_eq(t_level[ai], t_level[bi])) return t_level[ai] < t_level[bi];
    return a < b;
  });

  std::vector<char> in_order(n, 0);
  out.order.reserve(n);
  std::vector<TaskId> stack;
  for (const TaskId target : by_blevel) {
    stack.assign(1, target);
    while (!stack.empty()) {
      const TaskId t = stack.back();
      if (in_order[static_cast<std::size_t>(t)]) {
        stack.pop_back();
        continue;
      }
      TaskId missing = kInvalidTask;
      for (const EdgeId e : g.in_edges(t)) {
        const TaskId p = g.edge_src(e);
        if (!in_order[static_cast<std::size_t>(p)]) {
          missing = p;
          break;
        }
      }
      if (missing == kInvalidTask) {
        stack.pop_back();
        in_order[static_cast<std::size_t>(t)] = 1;
        out.order.push_back(t);
      } else {
        stack.push_back(missing);
      }
    }
  }
  BSA_ASSERT(out.order.size() == n, "b-level serialization missed tasks");
  BSA_ASSERT(graph::is_topological_order(g, out.order),
             "b-level serialization produced a non-topological order");
  return out;
}

}  // namespace bsa::core
