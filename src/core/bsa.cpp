#include "core/bsa.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "core/pivot.hpp"
#include "network/routing.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"
#include "sched/retime.hpp"
#include "sched/retime_context.hpp"
#include "sched/timeline.hpp"
#include "sched/validate.hpp"

namespace bsa::core {
namespace {

using sched::Hop;
using sched::Interval;
using sched::LinkBooking;
using sched::Schedule;

/// How an incoming message of the migrating task is affected by a move to
/// the destination processor.
struct IncomingPlan {
  EdgeId edge = kInvalidEdge;
  enum class Kind : unsigned char {
    kBecomesLocal,  ///< predecessor lives on the destination; route freed
    kTruncate,      ///< route already passes the destination (pruning on)
    kExtend,        ///< append one hop destination-ward (paper behaviour)
  } kind = Kind::kExtend;
  /// kTruncate: keep hops [0, keep_hops); arrival = hop keep_hops-1 finish.
  int keep_hops = 0;
  /// Data availability for the new hop (kExtend) or final arrival
  /// (kBecomesLocal / kTruncate).
  Time ready = 0;
};

/// Reused buffers for the candidate-evaluation hot path. Everything is
/// sized once per runner and epoch-stamped or length-reset per call, so
/// steady-state evaluation performs no heap allocation (see
/// docs/DESIGN_PERF.md for the lifetime rules).
struct EvalScratch {
  // Membership of the migrating task's in-edges plus their plan payload
  // (kind / keep_hops), epoch-stamped by EdgeId.
  std::vector<int> edge_epoch_of;           // by EdgeId
  std::vector<IncomingPlan::Kind> edge_kind;  // by EdgeId
  std::vector<int> edge_keep;               // by EdgeId
  int edge_epoch = 0;

  // Per-link busy overlays for static evaluation: the filtered base busy
  // list of each link touched this call, with tentative hops merged in as
  // they are placed. Pool slots are reused across calls.
  std::vector<int> link_epoch_of;  // by LinkId
  std::vector<int> link_slot;     // by LinkId -> index into busy_pool
  int link_epoch = 0;
  std::vector<std::vector<Interval>> busy_pool;
  std::size_t busy_used = 0;

  std::vector<IncomingPlan> plans;   // plan_incoming output
  std::vector<EdgeId> order;         // static incoming order
  std::vector<Interval> busy;        // single-link overlay (incremental)
  std::vector<LinkId> route_links;   // static_route output
};

class BsaRunner {
 public:
  BsaRunner(const graph::TaskGraph& g, const net::Topology& topo,
            const net::HeterogeneousCostModel& costs, const BsaOptions& opt)
      : g_(g), topo_(topo), costs_(costs), opt_(opt), sched_(g, topo) {
    if (opt_.routing == RouteDiscipline::kStaticShortestPath) {
      routing_table_.emplace(topo_);
    }
    const auto ne = static_cast<std::size_t>(g_.num_edges());
    scratch_.edge_epoch_of.resize(ne, 0);
    scratch_.edge_kind.resize(ne, IncomingPlan::Kind::kExtend);
    scratch_.edge_keep.resize(ne, 0);
    const auto nl = static_cast<std::size_t>(topo_.num_links());
    scratch_.link_epoch_of.resize(nl, 0);
    scratch_.link_slot.resize(nl, 0);
  }

  BsaResult run() {
    obs::Tracer* const tracer = opt_.obs.tracer;
    const std::uint32_t tid = opt_.obs.trace_tid;

    PivotSelection pv;
    {
      obs::Span span(tracer, "pivot_selection", "bsa", tid);
      pv = select_first_pivot(g_, topo_, costs_);
    }
    trace_.first_pivot = pv.pivot;
    trace_.pivot_cp_lengths = pv.cp_length_by_proc;

    Rng rng(opt_.seed);
    const auto exec_on_pivot = costs_.exec_costs_on(pv.pivot);
    {
      obs::Span span(tracer, "serialization", "bsa", tid);
      trace_.serialization =
          opt_.serialization == SerializationRule::kCpIbOb
              ? serialize(g_, exec_on_pivot, costs_.nominal_comm_costs(), rng)
              : serialize_by_blevel(g_, exec_on_pivot,
                                    costs_.nominal_comm_costs(), rng);
    }

    {
      obs::Span span(tracer, "injection", "bsa", tid);
      inject_serial(pv.pivot, exec_on_pivot);
    }
    trace_.initial_serial_length = sched_.makespan();

    const std::vector<ProcId> bfs = topo_.bfs_order(pv.pivot);
    BSA_REQUIRE(opt_.max_sweeps >= 1, "max_sweeps must be >= 1");
    for (int sweep = 0; sweep < opt_.max_sweeps; ++sweep) {
      sweep_ = sweep;
      const std::size_t migrations_before = trace_.migrations.size();
      for (const ProcId pivot : bfs) {
        trace_.pivot_sequence.push_back(pivot);
        const int phase =
            static_cast<int>(trace_.pivot_sequence.size()) - 1;
        obs::Span span(tracer, "pivot", "bsa", tid);
        span.arg("pivot", pivot);
        span.arg("phase", phase);
        run_phase(pivot, phase);
      }
      if (trace_.migrations.size() == migrations_before) break;
    }
    if (retime_ctx_.has_value()) trace_.retime = retime_ctx_->stats();
    trace_.slot_index_builds = sched_.slot_index_builds();
    trace_.eval_edge_epochs = scratch_.edge_epoch;
    trace_.eval_link_epochs = scratch_.link_epoch;
    return BsaResult{std::move(sched_), std::move(trace_)};
  }

 private:
  // --- serialization injection -------------------------------------------
  void inject_serial(ProcId pivot, const std::vector<Cost>& exec_on_pivot) {
    Time clock = 0;
    for (const TaskId t : trace_.serialization.order) {
      const Cost dur = exec_on_pivot[static_cast<std::size_t>(t)];
      sched_.place_task(t, pivot, clock, clock + dur);
      clock += dur;
    }
  }

  // --- per-phase migration sweep -----------------------------------------
  void run_phase(ProcId pivot, int phase) {
    const std::vector<TaskId> snapshot = sched_.tasks_on(pivot);
    for (const TaskId t : snapshot) {
      if (sched_.proc_of(t) != pivot) continue;
      consider_task(t, pivot, phase);
    }
  }

  /// DRT of `t` at its current placement plus the VIP (predecessor whose
  /// message arrives last; ties towards the smaller task id).
  struct CurrentArrival {
    Time drt = 0;
    TaskId vip = kInvalidTask;
  };
  [[nodiscard]] CurrentArrival current_arrival(TaskId t) const {
    CurrentArrival out;
    for (const EdgeId e : g_.in_edges(t)) {
      const Time arr = sched_.arrival_of(e);
      const TaskId src = g_.edge_src(e);
      if (out.vip == kInvalidTask || time_lt(out.drt, arr)) {
        out.vip = src;
      } else if (time_eq(arr, out.drt) && src < out.vip) {
        out.vip = src;
      }
      out.drt = std::max(out.drt, arr);
    }
    return out;
  }

  void consider_task(TaskId t, ProcId pivot, int phase) {
    const CurrentArrival cur = current_arrival(t);
    const Time st = sched_.start_of(t);
    const Time cur_ft = sched_.finish_of(t);

    if (opt_.gate == GateRule::kPaper) {
      const bool delayed = time_lt(cur.drt, st);
      const bool vip_elsewhere =
          cur.vip != kInvalidTask && sched_.proc_of(cur.vip) != pivot;
      if (!delayed && !vip_elsewhere) {
        ++trace_.gate_skips;
        return;
      }
    }
    ++trace_.considered;

    // Evaluate every neighbour.
    ProcId best_proc = kInvalidProc;
    Time best_ft = kInfiniteTime;
    Time vip_ft = kInfiniteTime;
    const ProcId vip_proc =
        cur.vip == kInvalidTask ? kInvalidProc : sched_.proc_of(cur.vip);
    for (const ProcId py : topo_.neighbors(pivot)) {
      const Time ft = evaluate_neighbor(t, pivot, py);
      if (time_lt(ft, best_ft)) {
        best_ft = ft;
        best_proc = py;
      }
      if (py == vip_proc) vip_ft = ft;
    }
    if (best_proc == kInvalidProc) return;  // isolated processor

    bool via_vip = false;
    ProcId target = kInvalidProc;
    if (time_lt(best_ft, cur_ft)) {
      target = best_proc;
    } else if (opt_.vip_rule && vip_proc != kInvalidProc &&
               vip_proc != pivot && vip_ft != kInfiniteTime &&
               time_le(vip_ft, cur_ft)) {
      // Paper §2.3: when the finish time does not improve the task still
      // migrates to its VIP's processor provided the finish time is not
      // increased — co-locating with the VIP lets successors improve.
      target = vip_proc;
      via_vip = true;
    }
    if (target == kInvalidProc) {
      ++trace_.rejected_no_gain;
      if (opt_.obs.decision_log != nullptr) {
        obs::MigrationDecision d;
        d.sweep = sweep_;
        d.phase = phase;
        d.pivot = pivot;
        d.task = t;
        d.from = pivot;
        d.old_finish = cur_ft;
        d.predicted_finish = best_ft;
        d.new_finish = std::numeric_limits<double>::quiet_NaN();
        d.makespan_before = std::numeric_limits<double>::quiet_NaN();
        d.makespan_after = std::numeric_limits<double>::quiet_NaN();
        d.outcome = obs::DecisionOutcome::kRejectedNoGain;
        opt_.obs.decision_log->record(d);
      }
      return;
    }

    const Time predicted = via_vip ? vip_ft : best_ft;
    commit_migration(t, pivot, target, phase, cur_ft, predicted, via_vip);
  }

  // --- incoming-message planning (shared by eval and commit) --------------
  void plan_incoming_into(TaskId t, ProcId py,
                          std::vector<IncomingPlan>& plans) const {
    plans.clear();
    plans.reserve(g_.in_edges(t).size());
    for (const EdgeId e : g_.in_edges(t)) {
      const TaskId src = g_.edge_src(e);
      const ProcId ps = sched_.proc_of(src);
      IncomingPlan plan;
      plan.edge = e;
      if (ps == py) {
        plan.kind = IncomingPlan::Kind::kBecomesLocal;
        plan.ready = sched_.finish_of(src);
        plans.push_back(plan);
        continue;
      }
      if (opt_.prune_route_cycles) {
        // Does the existing route already pass through py?
        const auto& route = sched_.route_of(e);
        ProcId cur = ps;
        bool found = false;
        for (std::size_t k = 0; k < route.size(); ++k) {
          cur = topo_.opposite(route[k].link, cur);
          if (cur == py) {
            plan.kind = IncomingPlan::Kind::kTruncate;
            plan.keep_hops = static_cast<int>(k) + 1;
            plan.ready = route[k].finish;
            found = true;
            break;
          }
        }
        if (found) {
          plans.push_back(plan);
          continue;
        }
      }
      plan.kind = IncomingPlan::Kind::kExtend;
      plan.ready = sched_.arrival_of(e);
      plans.push_back(plan);
    }
    // Extensions are scheduled in data-availability order (deterministic).
    std::sort(plans.begin(), plans.end(),
              [](const IncomingPlan& a, const IncomingPlan& b) {
                if (!time_eq(a.ready, b.ready)) return a.ready < b.ready;
                return a.edge < b.edge;
              });
  }

  [[nodiscard]] std::vector<IncomingPlan> plan_incoming(TaskId t,
                                                        ProcId py) const {
    std::vector<IncomingPlan> plans;
    plan_incoming_into(t, py, plans);
    return plans;
  }

  /// Route prescribed by the static discipline (precondition: a static
  /// discipline is active).
  [[nodiscard]] std::vector<LinkId> static_route(ProcId from, ProcId to) const {
    if (opt_.routing == RouteDiscipline::kEcube) {
      return net::ecube_route(topo_, from, to);
    }
    BSA_ASSERT(routing_table_.has_value(), "routing table not built");
    return routing_table_->route(from, to);
  }

  /// static_route into a reused buffer (allocation-free hot path).
  void static_route_into(ProcId from, ProcId to,
                         std::vector<LinkId>& out) const {
    if (opt_.routing == RouteDiscipline::kEcube) {
      net::ecube_route_into(topo_, from, to, out);
      return;
    }
    BSA_ASSERT(routing_table_.has_value(), "routing table not built");
    routing_table_->route_into(from, to, out);
  }

  /// Crossing in-edges of `t` in the deterministic order used by both the
  /// static evaluation and the static commit: by source finish time, then
  /// edge id.
  void static_incoming_order_into(TaskId t, ProcId py,
                                  std::vector<EdgeId>& order) const {
    order.clear();
    for (const EdgeId e : g_.in_edges(t)) {
      if (sched_.proc_of(g_.edge_src(e)) != py) order.push_back(e);
    }
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
      const Time fa = sched_.finish_of(g_.edge_src(a));
      const Time fb = sched_.finish_of(g_.edge_src(b));
      if (!time_eq(fa, fb)) return fa < fb;
      return a < b;
    });
  }

  /// Static-routing variant of evaluate_neighbor: every incoming message
  /// is re-routed from scratch along the static route, with the bookings
  /// of the (to-be-cleared) old routes excluded. Reference implementation
  /// (per-call containers); kept bit-identical to the pooled variant.
  [[nodiscard]] Time evaluate_neighbor_static_fresh(TaskId t, ProcId py) const {
    const auto in_edges = g_.in_edges(t);
    auto is_in_edge = [&](EdgeId e) {
      return std::find(in_edges.begin(), in_edges.end(), e) != in_edges.end();
    };
    std::map<LinkId, std::vector<Interval>> added;
    auto busy_of = [&](LinkId l) {
      std::vector<Interval> busy;
      for (const LinkBooking& b : sched_.bookings_on(l)) {
        if (!is_in_edge(b.edge)) busy.push_back(Interval{b.start, b.finish});
      }
      const auto it = added.find(l);
      if (it != added.end()) {
        for (const Interval& iv : it->second) sched::insert_interval(busy, iv);
      }
      return busy;
    };

    Time drt = 0;
    for (const EdgeId e : g_.in_edges(t)) {
      if (sched_.proc_of(g_.edge_src(e)) == py) {
        drt = std::max(drt, sched_.finish_of(g_.edge_src(e)));
      }
    }
    std::vector<EdgeId> order;
    static_incoming_order_into(t, py, order);
    for (const EdgeId e : order) {
      const TaskId src = g_.edge_src(e);
      Time ready = sched_.finish_of(src);
      for (const LinkId l : static_route(sched_.proc_of(src), py)) {
        const Time dur = costs_.comm_cost(e, l);
        const auto busy = busy_of(l);
        const Time st = opt_.insertion_slots
                            ? sched::earliest_fit(busy, ready, dur)
                            : append_fit(busy, ready);
        added[l].push_back(Interval{st, st + dur});
        ready = st + dur;
      }
      drt = std::max(drt, ready);
    }

    const Time dur = costs_.exec_cost(t, py);
    const Time task_start = opt_.insertion_slots
                                ? sched_.earliest_task_slot(py, drt, dur)
                                : std::max(drt, proc_tail(py));
    return task_start + dur;
  }

  /// Pooled static evaluation: the filtered busy list of each touched
  /// link is built once per call (edge membership answered by an
  /// epoch-stamped mark array instead of a linear in_edges scan) and
  /// cached in the scratch arena across the edge loop; tentative hops are
  /// merged into the cached list directly, which also replaces the
  /// per-call `added` map. Bit-identical to the fresh variant: the busy
  /// list contents agree, and earliest_fit/append_fit see the same input.
  [[nodiscard]] Time evaluate_neighbor_static_pooled(TaskId t, ProcId py) {
    EvalScratch& sc = scratch_;
    ++sc.edge_epoch;
    for (const EdgeId e : g_.in_edges(t)) {
      sc.edge_epoch_of[static_cast<std::size_t>(e)] = sc.edge_epoch;
    }
    ++sc.link_epoch;
    sc.busy_used = 0;
    auto busy_of = [&](LinkId l) -> std::vector<Interval>& {
      const auto li = static_cast<std::size_t>(l);
      if (sc.link_epoch_of[li] != sc.link_epoch) {
        sc.link_epoch_of[li] = sc.link_epoch;
        if (sc.busy_used == sc.busy_pool.size()) sc.busy_pool.emplace_back();
        sc.link_slot[li] = static_cast<int>(sc.busy_used);
        auto& busy = sc.busy_pool[sc.busy_used++];
        busy.clear();
        for (const LinkBooking& b : sched_.bookings_on(l)) {
          if (sc.edge_epoch_of[static_cast<std::size_t>(b.edge)] !=
              sc.edge_epoch) {
            busy.push_back(Interval{b.start, b.finish});
          }
        }
        return busy;
      }
      return sc.busy_pool[static_cast<std::size_t>(sc.link_slot[li])];
    };

    Time drt = 0;
    for (const EdgeId e : g_.in_edges(t)) {
      if (sched_.proc_of(g_.edge_src(e)) == py) {
        drt = std::max(drt, sched_.finish_of(g_.edge_src(e)));
      }
    }
    static_incoming_order_into(t, py, sc.order);
    for (const EdgeId e : sc.order) {
      const TaskId src = g_.edge_src(e);
      Time ready = sched_.finish_of(src);
      static_route_into(sched_.proc_of(src), py, sc.route_links);
      for (const LinkId l : sc.route_links) {
        const Time dur = costs_.comm_cost(e, l);
        auto& busy = busy_of(l);
        const Time st = opt_.insertion_slots
                            ? sched::earliest_fit(busy, ready, dur)
                            : append_fit(busy, ready);
        sched::insert_interval(busy, Interval{st, st + dur});
        ready = st + dur;
      }
      drt = std::max(drt, ready);
    }

    const Time dur = costs_.exec_cost(t, py);
    const Time task_start = opt_.insertion_slots
                                ? sched_.earliest_task_slot(py, drt, dur)
                                : std::max(drt, proc_tail(py));
    return task_start + dur;
  }

  /// Incremental-routing evaluation, reference implementation (per-call
  /// containers, linear plan scan per booking).
  [[nodiscard]] Time evaluate_neighbor_incremental_fresh(TaskId t, ProcId pivot,
                                                         ProcId py) const {
    const LinkId link = topo_.link_between(pivot, py);
    BSA_ASSERT(link != kInvalidLink, "neighbour without link");
    const std::vector<IncomingPlan> plans = plan_incoming(t, py);

    // Busy intervals on the pivot--py link, with the bookings of routes
    // that migration would free (fully removed or truncated) excluded.
    std::vector<Interval> busy;
    for (const LinkBooking& b : sched_.bookings_on(link)) {
      bool excluded = false;
      for (const IncomingPlan& plan : plans) {
        if (plan.edge != b.edge) continue;
        if (plan.kind == IncomingPlan::Kind::kBecomesLocal ||
            (plan.kind == IncomingPlan::Kind::kTruncate &&
             b.hop_index >= plan.keep_hops)) {
          excluded = true;
        }
        break;
      }
      if (!excluded) busy.push_back(Interval{b.start, b.finish});
    }
    return finish_incremental_eval(t, py, link, plans, busy);
  }

  /// Pooled incremental evaluation: plans land in the scratch arena and
  /// booking exclusion is answered by the epoch-stamped edge mark array
  /// (O(1) per booking instead of O(|in_edges|)).
  [[nodiscard]] Time evaluate_neighbor_incremental_pooled(TaskId t,
                                                          ProcId pivot,
                                                          ProcId py) {
    const LinkId link = topo_.link_between(pivot, py);
    BSA_ASSERT(link != kInvalidLink, "neighbour without link");
    EvalScratch& sc = scratch_;
    plan_incoming_into(t, py, sc.plans);
    ++sc.edge_epoch;
    for (const IncomingPlan& plan : sc.plans) {
      const auto ei = static_cast<std::size_t>(plan.edge);
      sc.edge_epoch_of[ei] = sc.edge_epoch;
      sc.edge_kind[ei] = plan.kind;
      sc.edge_keep[ei] = plan.keep_hops;
    }
    sc.busy.clear();
    for (const LinkBooking& b : sched_.bookings_on(link)) {
      const auto ei = static_cast<std::size_t>(b.edge);
      const bool excluded =
          sc.edge_epoch_of[ei] == sc.edge_epoch &&
          (sc.edge_kind[ei] == IncomingPlan::Kind::kBecomesLocal ||
           (sc.edge_kind[ei] == IncomingPlan::Kind::kTruncate &&
            b.hop_index >= sc.edge_keep[ei]));
      if (!excluded) sc.busy.push_back(Interval{b.start, b.finish});
    }
    return finish_incremental_eval(t, py, link, sc.plans, sc.busy);
  }

  /// Shared tail of the incremental evaluation: place the plan's hop
  /// extensions on the overlay and the task at its earliest slot.
  [[nodiscard]] Time finish_incremental_eval(
      TaskId t, ProcId py, LinkId link, const std::vector<IncomingPlan>& plans,
      std::vector<Interval>& busy) const {
    Time drt = 0;
    for (const IncomingPlan& plan : plans) {
      if (plan.kind == IncomingPlan::Kind::kExtend) {
        const Time dur = costs_.comm_cost(plan.edge, link);
        const Time hop_start = opt_.insertion_slots
                                   ? sched::earliest_fit(busy, plan.ready, dur)
                                   : append_fit(busy, plan.ready);
        sched::insert_interval(busy, Interval{hop_start, hop_start + dur});
        drt = std::max(drt, hop_start + dur);
      } else {
        drt = std::max(drt, plan.ready);
      }
    }

    const Time dur = costs_.exec_cost(t, py);
    const Time task_start =
        opt_.insertion_slots
            ? sched_.earliest_task_slot(py, drt, dur)
            : std::max(drt, proc_tail(py));
    return task_start + dur;
  }

  /// Tentative finish time of `t` if migrated from `pivot` to neighbour
  /// `py`. Does not modify the schedule.
  [[nodiscard]] Time evaluate_neighbor(TaskId t, ProcId pivot, ProcId py) {
    if (opt_.routing != RouteDiscipline::kIncremental) {
      return opt_.pooled_eval ? evaluate_neighbor_static_pooled(t, py)
                              : evaluate_neighbor_static_fresh(t, py);
    }
    return opt_.pooled_eval
               ? evaluate_neighbor_incremental_pooled(t, pivot, py)
               : evaluate_neighbor_incremental_fresh(t, pivot, py);
  }

  [[nodiscard]] static Time append_fit(std::span<const Interval> busy,
                                       Time ready) {
    return busy.empty() ? std::max(ready, Time{0})
                        : std::max(ready, busy.back().finish);
  }

  [[nodiscard]] Time proc_tail(ProcId p) const {
    const auto& order = sched_.tasks_on(p);
    return order.empty() ? Time{0} : sched_.finish_of(order.back());
  }

  [[nodiscard]] Time link_tail(LinkId l) const {
    const auto& q = sched_.bookings_on(l);
    return q.empty() ? Time{0} : q.back().finish;
  }

  // --- migration commit ----------------------------------------------------

  /// The schedule mutations of one migration of `t` from `pivot` to `py`:
  /// re-route incoming messages, place the task, re-route outgoing
  /// messages. Deterministic in the pre-migration schedule state, so the
  /// rare transactional replay fallback can roll back and re-apply it.
  void apply_migration_mutations(TaskId t, ProcId pivot, ProcId py) {
    if (opt_.routing == RouteDiscipline::kIncremental) {
      commit_incoming_incremental(t, pivot, py);
    } else {
      commit_incoming_static(t, py);
    }

    // Place the task at its destination slot.
    Time drt = 0;
    for (const EdgeId e : g_.in_edges(t)) {
      drt = std::max(drt, sched_.arrival_of(e));
    }
    const Time dur = costs_.exec_cost(t, py);
    const Time task_start = opt_.insertion_slots
                                ? sched_.earliest_task_slot(py, drt, dur)
                                : std::max(drt, proc_tail(py));
    sched_.place_task(t, py, task_start, task_start + dur);

    if (opt_.routing == RouteDiscipline::kIncremental) {
      commit_outgoing_incremental(t, pivot, py, task_start + dur);
    } else {
      commit_outgoing_static(t, py, task_start + dur);
    }
  }

  /// Copy the current schedule into the long-lived rollback snapshot:
  /// inner vectors keep their capacity across migrations, so the guard
  /// costs no allocations on the hot path.
  void refresh_snapshot() {
    if (!snapshot_.has_value()) {
      snapshot_.emplace(sched_);
    } else {
      *snapshot_ = sched_;
    }
  }

  void commit_migration(TaskId t, ProcId pivot, ProcId py, int phase,
                        Time old_ft, Time predicted_ft, bool via_vip) {
    // A migration whose re-routed messages stretch the schedule is rolled
    // back (the task's own finish improving is not allowed to push its
    // successors past the old SL). Rollback engine: journaled transaction
    // (default) or whole-schedule snapshot (the reference,
    // opt_.snapshot_rollback).
    const bool guarded = opt_.policy == MigrationPolicy::kMakespanGuarded;
    const bool use_txn = guarded && !opt_.snapshot_rollback;
    const Time makespan_before = guarded ? sched_.makespan() : Time{0};
    if (guarded && !use_txn) refresh_snapshot();

    // The incremental engine captures the pre-migration structure around
    // `t` (lazily constructed here: the schedule is a re-timing fixpoint
    // between migrations, which construction requires).
    if (opt_.incremental_retime) {
      if (!retime_ctx_.has_value()) retime_ctx_.emplace(sched_, costs_);
      retime_ctx_->begin_migration(t);
    }

    if (use_txn) sched_.begin_transaction(txn_);
    apply_migration_mutations(t, pivot, py);

    // Bubble up: earliest times under the new orders; replay on the rare
    // order cycle introduced by re-issued outgoing routes.
    bool retimed = false;
    {
      obs::Span span(opt_.obs.tracer, "retime", "bsa", opt_.obs.trace_tid);
      retimed = retime_ctx_.has_value()
                    ? retime_ctx_->retime_migration(t, nullptr)
                    : sched::try_retime(sched_, costs_, nullptr);
    }
    if (use_txn) {
      const auto depth = static_cast<std::int64_t>(txn_.size());
      trace_.txn_journal_records += depth;
      trace_.txn_journal_hwm = std::max(trace_.txn_journal_hwm, depth);
    }
    bool replayed = false;
    if (!retimed) {
      obs::Span span(opt_.obs.tracer, "replay", "bsa", opt_.obs.trace_tid);
      if (use_txn) {
        // replay_retime rebuilds the schedule wholesale, which cannot be
        // journaled: undo the mutations, fall back to a snapshot of the
        // pre-migration state, and re-apply them (deterministic).
        sched_.rollback_transaction();
        refresh_snapshot();
        apply_migration_mutations(t, pivot, py);
      }
      (void)sched::replay_retime(sched_, costs_, opt_.insertion_slots);
      if (retime_ctx_.has_value()) retime_ctx_->invalidate();
      replayed = true;
      ++trace_.replay_fallbacks;
    }

    const Time makespan_after = sched_.makespan();
    if (guarded && time_lt(makespan_before, makespan_after)) {
      ++trace_.rejected_migrations;
      {
        obs::Span span(opt_.obs.tracer, "rollback", "bsa",
                       opt_.obs.trace_tid);
        if (use_txn && !replayed) {
          sched_.rollback_transaction();
          if (retime_ctx_.has_value()) retime_ctx_->undo_migration(t);
        } else {
          sched_ = *snapshot_;  // reject: schedule got longer
          if (retime_ctx_.has_value()) retime_ctx_->resync_migration(t);
        }
      }
      if (opt_.obs.decision_log != nullptr) {
        obs::MigrationDecision d;
        d.sweep = sweep_;
        d.phase = phase;
        d.pivot = pivot;
        d.task = t;
        d.from = pivot;
        d.to = py;
        d.old_finish = old_ft;
        d.predicted_finish = predicted_ft;
        d.new_finish = std::numeric_limits<double>::quiet_NaN();
        d.makespan_before = makespan_before;
        d.makespan_after = makespan_after;
        d.outcome = obs::DecisionOutcome::kRejectedMakespanGuard;
        opt_.obs.decision_log->record(d);
      }
      return;
    }
    if (use_txn && !replayed) sched_.commit_transaction();

    trace_.migrations.push_back(Migration{
        t, pivot, py, old_ft, predicted_ft, sched_.finish_of(t),
        makespan_after, phase, via_vip});

    if (opt_.obs.decision_log != nullptr) {
      obs::MigrationDecision d;
      d.sweep = sweep_;
      d.phase = phase;
      d.pivot = pivot;
      d.task = t;
      d.from = pivot;
      d.to = py;
      d.old_finish = old_ft;
      d.predicted_finish = predicted_ft;
      d.new_finish = sched_.finish_of(t);
      d.makespan_before = guarded
                              ? makespan_before
                              : std::numeric_limits<double>::quiet_NaN();
      d.makespan_after = makespan_after;
      d.outcome = via_vip ? obs::DecisionOutcome::kCommittedVip
                          : obs::DecisionOutcome::kCommitted;
      opt_.obs.decision_log->record(d);
    }

    if (opt_.validate_each_step) {
      const auto report = sched::validate(sched_, costs_);
      BSA_ASSERT(report.ok(), "schedule invalid after migrating task "
                                  << t << ": " << report.to_string());
    }
  }

  /// Incremental incoming commit: free / truncate / extend routes in
  /// plan order (mirrors the incremental evaluation).
  void commit_incoming_incremental(TaskId t, ProcId pivot, ProcId py) {
    const LinkId link = topo_.link_between(pivot, py);
    plan_incoming_into(t, py, scratch_.plans);
    sched_.unplace_task(t);
    for (const IncomingPlan& plan : scratch_.plans) {
      switch (plan.kind) {
        case IncomingPlan::Kind::kBecomesLocal:
          sched_.clear_route(plan.edge);
          break;
        case IncomingPlan::Kind::kTruncate: {
          std::vector<Hop> hops = sched_.route_of(plan.edge);
          sched_.clear_route(plan.edge);
          hops.resize(static_cast<std::size_t>(plan.keep_hops));
          sched_.set_route(plan.edge, std::move(hops));
          break;
        }
        case IncomingPlan::Kind::kExtend: {
          const Time dur = costs_.comm_cost(plan.edge, link);
          const Time hop_start =
              opt_.insertion_slots
                  ? sched_.earliest_link_slot(link, plan.ready, dur)
                  : std::max(plan.ready, link_tail(link));
          sched_.append_hop(plan.edge,
                            Hop{link, hop_start, hop_start + dur});
          break;
        }
      }
    }
  }

  /// Static incoming commit: clear every incoming route, then re-route
  /// crossing messages along the static routes in the same deterministic
  /// order used by the static evaluation.
  void commit_incoming_static(TaskId t, ProcId py) {
    static_incoming_order_into(t, py, scratch_.order);
    sched_.unplace_task(t);
    for (const EdgeId e : g_.in_edges(t)) sched_.clear_route(e);
    for (const EdgeId e : scratch_.order) {
      const TaskId src = g_.edge_src(e);
      Time ready = sched_.finish_of(src);
      static_route_into(sched_.proc_of(src), py, scratch_.route_links);
      for (const LinkId l : scratch_.route_links) {
        const Time dur = costs_.comm_cost(e, l);
        const Time hop_start =
            opt_.insertion_slots
                ? sched_.earliest_link_slot(l, ready, dur)
                : std::max(ready, link_tail(l));
        sched_.append_hop(e, Hop{l, hop_start, hop_start + dur});
        ready = hop_start + dur;
      }
    }
  }

  /// Incremental outgoing commit: co-located successors become local; all
  /// others get their route re-issued with the extra py->pivot first hop.
  void commit_outgoing_incremental(TaskId t, ProcId pivot, ProcId py,
                                   Time ft_estimate) {
    const LinkId link = topo_.link_between(pivot, py);
    for (const EdgeId e : g_.out_edges(t)) {
      const TaskId dst = g_.edge_dst(e);
      if (sched_.proc_of(dst) == py) {
        sched_.clear_route(e);
        continue;
      }
      auto& links = scratch_.route_links;
      links.clear();
      links.push_back(link);
      for (const Hop& h : sched_.route_of(e)) links.push_back(h.link);
      sched_.clear_route(e);
      if (opt_.prune_route_cycles) prune_link_walk(topo_, links, py);
      reissue_route(e, links, ft_estimate);
    }
  }

  /// Static outgoing commit: re-route every crossing outgoing message
  /// along its static route from py.
  void commit_outgoing_static(TaskId t, ProcId py, Time ft_estimate) {
    for (const EdgeId e : g_.out_edges(t)) {
      const TaskId dst = g_.edge_dst(e);
      const ProcId pd = sched_.proc_of(dst);
      sched_.clear_route(e);
      if (pd == py) continue;
      static_route_into(py, pd, scratch_.route_links);
      reissue_route(e, scratch_.route_links, ft_estimate);
    }
  }

  /// Book a fresh route for `e` along `links`, hop by hop from `ready`.
  /// Each hop is booked immediately, so a later hop on the same link sees
  /// the earlier one through the schedule itself — bit-identical to the
  /// former assemble-then-set_route scheme (earliest_link_slot answers
  /// exactly like earliest_fit over the link's busy list).
  void reissue_route(EdgeId e, const std::vector<LinkId>& links, Time ready) {
    for (const LinkId l : links) {
      const Time hop_dur = costs_.comm_cost(e, l);
      const Time hop_start =
          opt_.insertion_slots
              ? sched_.earliest_link_slot(l, ready, hop_dur)
              : std::max(ready, link_tail(l));
      sched_.append_hop(e, Hop{l, hop_start, hop_start + hop_dur});
      ready = hop_start + hop_dur;
    }
  }

  const graph::TaskGraph& g_;
  const net::Topology& topo_;
  const net::HeterogeneousCostModel& costs_;
  BsaOptions opt_;
  Schedule sched_;
  BsaTrace trace_;
  /// Only built for RouteDiscipline::kStaticShortestPath.
  std::optional<net::RoutingTable> routing_table_;
  /// Incremental re-timing engine, bound to sched_; constructed lazily at
  /// the first migration when opt_.incremental_retime is set.
  std::optional<sched::RetimeContext> retime_ctx_;
  /// Reused rollback snapshot for the makespan guard (snapshot_rollback
  /// mode, plus the rare replay fallback in transaction mode).
  std::optional<Schedule> snapshot_;
  /// Reused journal for transactional guarded migrations.
  Schedule::Transaction txn_;
  /// Reused evaluation buffers (see EvalScratch).
  EvalScratch scratch_;
  /// Current BFS sweep number, for decision-log rows.
  int sweep_ = 0;
};

}  // namespace

BsaResult schedule_bsa(const graph::TaskGraph& g, const net::Topology& topo,
                       const net::HeterogeneousCostModel& costs,
                       const BsaOptions& options) {
  BSA_REQUIRE(g.num_tasks() >= 1, "empty task graph");
  BSA_REQUIRE(costs.num_tasks() == g.num_tasks() &&
                  costs.num_processors() == topo.num_processors() &&
                  costs.num_edges() == g.num_edges() &&
                  costs.num_links() == topo.num_links(),
              "cost model does not match graph/topology");
  BsaRunner runner(g, topo, costs, options);
  return runner.run();
}

void prune_link_walk(const net::Topology& topo, std::vector<LinkId>& links,
                     ProcId origin) {
  BSA_REQUIRE(origin >= 0 && origin < topo.num_processors(),
              "bad walk origin " << origin);
  std::vector<int> first_pos(static_cast<std::size_t>(topo.num_processors()),
                             -1);
  std::vector<ProcId> walk{origin};  // walk[i]: processor after i kept links
  std::vector<LinkId> kept;
  kept.reserve(links.size());
  first_pos[static_cast<std::size_t>(origin)] = 0;
  for (const LinkId l : links) {
    const ProcId q = topo.opposite(l, walk.back());
    const int fp = first_pos[static_cast<std::size_t>(q)];
    if (fp >= 0) {
      // Revisit: cut the loop back to q's first visit. Each link enters
      // and leaves `kept` at most once, so the pass stays linear.
      while (static_cast<int>(walk.size()) - 1 > fp) {
        first_pos[static_cast<std::size_t>(walk.back())] = -1;
        walk.pop_back();
        kept.pop_back();
      }
    } else {
      first_pos[static_cast<std::size_t>(q)] =
          static_cast<int>(walk.size());
      walk.push_back(q);
      kept.push_back(l);
    }
  }
  links = std::move(kept);
}

}  // namespace bsa::core
