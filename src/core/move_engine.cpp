#include "core/move_engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sched/retime.hpp"

namespace bsa::core {

MoveEngine::MoveEngine(sched::Schedule& s,
                       const net::HeterogeneousCostModel& costs)
    : s_(s), costs_(costs), table_(s.topology()), ctx_(s, costs) {
  BSA_REQUIRE(s_.all_placed(), "MoveEngine requires a complete schedule");
  // Pull the input to its earliest-time fixpoint so the context's
  // incremental updates start from consistent ground.
  if (!ctx_.retime_full(nullptr)) {
    (void)sched::replay_retime(s_, costs_, true);
    ctx_.invalidate();
    ++stats_.replay_fallbacks;
  }
}

/// Schedule mutations of moving `t` to `p` on the live schedule (no
/// re-timing): clear its incident routes, re-route crossing messages
/// along static shortest paths (deterministic source-finish order) and
/// place `t` at its earliest slot. Outgoing messages re-route from the
/// task's actual new finish rather than BSA's pre-retime estimate, so
/// this defines the engine's own move semantics, not a mirror of BSA's
/// static commit. Deterministic in the pre-move schedule state.
void MoveEngine::apply_move_mutations(TaskId t, ProcId p) {
  const auto& g = s_.task_graph();
  ctx_.begin_migration(t);
  s_.unplace_task(t);
  for (const EdgeId e : g.in_edges(t)) s_.clear_route(e);
  for (const EdgeId e : g.out_edges(t)) s_.clear_route(e);

  std::vector<EdgeId> incoming;
  for (const EdgeId e : g.in_edges(t)) {
    if (s_.proc_of(g.edge_src(e)) != p) incoming.push_back(e);
  }
  std::sort(incoming.begin(), incoming.end(), [&](EdgeId a, EdgeId b) {
    const Time fa = s_.finish_of(g.edge_src(a));
    const Time fb = s_.finish_of(g.edge_src(b));
    if (!time_eq(fa, fb)) return fa < fb;
    return a < b;
  });
  Time drt = 0;
  for (const EdgeId e : g.in_edges(t)) {
    if (s_.proc_of(g.edge_src(e)) == p) {
      drt = std::max(drt, s_.finish_of(g.edge_src(e)));
    }
  }
  for (const EdgeId e : incoming) {
    const TaskId src = g.edge_src(e);
    Time ready = s_.finish_of(src);
    for (const LinkId l : table_.route(s_.proc_of(src), p)) {
      const Time dur = costs_.comm_cost(e, l);
      const Time st = s_.earliest_link_slot(l, ready, dur);
      s_.append_hop(e, sched::Hop{l, st, st + dur});
      ready = st + dur;
    }
    drt = std::max(drt, ready);
  }

  const Time dur = costs_.exec_cost(t, p);
  const Time st = s_.earliest_task_slot(p, drt, dur);
  s_.place_task(t, p, st, st + dur);

  for (const EdgeId e : g.out_edges(t)) {
    const TaskId dst = g.edge_dst(e);
    const ProcId pd = s_.proc_of(dst);
    if (pd == p) continue;
    Time ready = st + dur;
    for (const LinkId l : table_.route(p, pd)) {
      const Time hd = costs_.comm_cost(e, l);
      const Time hs = s_.earliest_link_slot(l, ready, hd);
      s_.append_hop(e, sched::Hop{l, hs, hs + hd});
      ready = hs + hd;
    }
  }
}

Time MoveEngine::evaluate(TaskId t, ProcId p) {
  ++stats_.evaluated;
  s_.begin_transaction(txn_);
  apply_move_mutations(t, p);
  if (ctx_.retime_migration(t, nullptr)) {
    const Time len = s_.makespan();
    s_.rollback_transaction();
    ctx_.undo_migration(t);
    return len;
  }
  // Re-timing cycle: replay the whole schedule to measure, restore
  // from a copy (the context is stale either way).
  ++stats_.replay_fallbacks;
  s_.rollback_transaction();
  sched::Schedule snapshot = s_;
  apply_move_mutations(t, p);
  (void)sched::replay_retime(s_, costs_, true);
  ctx_.invalidate();
  const Time len = s_.makespan();
  s_ = std::move(snapshot);
  return len;
}

void MoveEngine::apply(TaskId t, ProcId p) {
  ++stats_.applied;
  apply_move_mutations(t, p);
  if (!ctx_.retime_migration(t, nullptr)) {
    ++stats_.replay_fallbacks;
    (void)sched::replay_retime(s_, costs_, true);
    ctx_.invalidate();
  }
}

}  // namespace bsa::core
