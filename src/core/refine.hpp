#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file refine.hpp
/// Post-scheduling local search (extension beyond the paper).
///
/// Starting from any complete schedule, repeatedly try to move a single
/// task to a different processor; each candidate assignment is fully
/// re-evaluated with sched::schedule_from_assignment (shortest-path
/// routes, exclusive link slots), and the move is kept when the schedule
/// gets strictly shorter. Useful to (a) polish BSA/DLS output and (b)
/// measure how close each scheduler already is to a single-move local
/// optimum (see bench_refine).

namespace bsa::core {

/// How a candidate single-task move is evaluated.
enum class MoveEval : unsigned char {
  /// Re-derive the whole schedule from the tweaked assignment with
  /// sched::schedule_from_assignment — the reference behaviour.
  kRelist,
  /// Apply the move to the live schedule (unplace, static shortest-path
  /// re-route of the task's messages, earliest-slot placement) and
  /// re-time incrementally with a persistent sched::RetimeContext;
  /// candidate moves are journaled into a Schedule::Transaction and
  /// rolled back in O(touched) after measuring. Much
  /// faster on large graphs. The neighbourhood it explores differs
  /// slightly from kRelist (moves are applied to the evolved schedule
  /// instead of re-listing every task), so schedules are not expected to
  /// be identical between the modes — only valid and monotonically
  /// improving.
  kRetimeDelta,
};

struct RefineOptions {
  /// Full passes over all tasks (each pass tries every task once).
  int max_rounds = 2;
  /// Consider at most this many candidate processors per task (the
  /// task's cheapest processors by execution cost are tried first);
  /// <= 0 means all processors.
  int candidates_per_task = 0;
  /// Stop a round early after this many consecutive non-improving tasks
  /// (<= 0 disables early stopping).
  int patience = 0;
  /// Candidate evaluation engine (see MoveEval).
  MoveEval move_eval = MoveEval::kRelist;
};

struct RefineResult {
  sched::Schedule schedule;
  Time initial_length = 0;
  Time final_length = 0;
  int moves_applied = 0;
  int candidates_evaluated = 0;
};

/// Refine `input` (must be complete and valid). Deterministic.
[[nodiscard]] RefineResult refine_schedule(
    const sched::Schedule& input, const net::HeterogeneousCostModel& costs,
    const RefineOptions& options = {});

}  // namespace bsa::core
