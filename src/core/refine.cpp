#include "core/refine.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "core/move_engine.hpp"
#include "sched/assignment.hpp"

namespace bsa::core {
namespace {

/// Candidate processors for `t`: cheapest execution first, capped by
/// options.candidates_per_task.
std::vector<ProcId> move_candidates(TaskId t, const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    const RefineOptions& options) {
  std::vector<ProcId> procs(static_cast<std::size_t>(topo.num_processors()));
  std::iota(procs.begin(), procs.end(), 0);
  std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
    const Cost ca = costs.exec_cost(t, a);
    const Cost cb = costs.exec_cost(t, b);
    if (!time_eq(ca, cb)) return ca < cb;
    return a < b;
  });
  if (options.candidates_per_task > 0 &&
      static_cast<std::size_t>(options.candidates_per_task) < procs.size()) {
    procs.resize(static_cast<std::size_t>(options.candidates_per_task));
  }
  return procs;
}

/// Incremental local search over core::MoveEngine: one live schedule,
/// one RetimeContext; each candidate move is journaled into a
/// Schedule::Transaction, measured, and rolled back in O(touched) (the
/// best one is then re-applied for real). The rare re-timing-cycle
/// fallback measures through a snapshot copy instead, because
/// replay_retime rebuilds the schedule wholesale.
RefineResult refine_retime_delta(const sched::Schedule& input,
                                 const net::HeterogeneousCostModel& costs,
                                 const RefineOptions& options) {
  const auto& g = input.task_graph();
  const auto& topo = input.topology();

  RefineResult result{input, input.makespan(), input.makespan(), 0, 0};
  sched::Schedule& s = result.schedule;
  MoveEngine engine(s, costs);
  Time best_len = s.makespan();

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved_this_round = false;
    int stale = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const ProcId original = s.proc_of(t);
      ProcId best_proc = original;
      for (const ProcId p : move_candidates(t, topo, costs, options)) {
        if (p == original) continue;
        ++result.candidates_evaluated;
        const Time len = engine.evaluate(t, p);
        if (time_lt(len, best_len)) {
          best_len = len;
          best_proc = p;
        }
      }
      if (best_proc != original) {
        engine.apply(t, best_proc);
        best_len = s.makespan();
        ++result.moves_applied;
        improved_this_round = true;
        stale = 0;
      } else if (options.patience > 0 && ++stale >= options.patience) {
        break;
      }
    }
    if (!improved_this_round) break;
  }
  result.final_length = best_len;
  return result;
}

}  // namespace

RefineResult refine_schedule(const sched::Schedule& input,
                             const net::HeterogeneousCostModel& costs,
                             const RefineOptions& options) {
  BSA_REQUIRE(input.all_placed(), "refine requires a complete schedule");
  BSA_REQUIRE(options.max_rounds >= 1, "max_rounds must be >= 1");
  if (options.move_eval == MoveEval::kRetimeDelta) {
    return refine_retime_delta(input, costs, options);
  }
  const auto& g = input.task_graph();
  const auto& topo = input.topology();
  const net::RoutingTable table(topo);

  std::vector<ProcId> assignment = sched::assignment_of(input);
  // Re-deriving the schedule from the assignment may already differ from
  // the input (different list order); keep whichever representation we
  // can actually regenerate, so moves compare like against like.
  sched::Schedule best =
      sched::schedule_from_assignment(g, topo, costs, assignment, table);
  if (input.makespan() < best.makespan()) {
    best = input;  // the original was better than its re-derivation
  }
  Time best_len = best.makespan();

  RefineResult result{best, input.makespan(), best_len, 0, 0};

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved_this_round = false;
    int stale = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const ProcId original = assignment[static_cast<std::size_t>(t)];
      ProcId best_proc = original;
      for (const ProcId p : move_candidates(t, topo, costs, options)) {
        if (p == original) continue;
        assignment[static_cast<std::size_t>(t)] = p;
        ++result.candidates_evaluated;
        sched::Schedule candidate = sched::schedule_from_assignment(
            g, topo, costs, assignment, table);
        if (time_lt(candidate.makespan(), best_len)) {
          best_len = candidate.makespan();
          best_proc = p;
          result.schedule = std::move(candidate);
        }
      }
      assignment[static_cast<std::size_t>(t)] = best_proc;
      if (best_proc != original) {
        ++result.moves_applied;
        improved_this_round = true;
        stale = 0;
      } else if (options.patience > 0 && ++stale >= options.patience) {
        break;
      }
    }
    if (!improved_this_round) break;
  }
  result.final_length = best_len;
  return result;
}

}  // namespace bsa::core
