#include "core/refine.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "sched/assignment.hpp"

namespace bsa::core {

RefineResult refine_schedule(const sched::Schedule& input,
                             const net::HeterogeneousCostModel& costs,
                             const RefineOptions& options) {
  BSA_REQUIRE(input.all_placed(), "refine requires a complete schedule");
  BSA_REQUIRE(options.max_rounds >= 1, "max_rounds must be >= 1");
  const auto& g = input.task_graph();
  const auto& topo = input.topology();
  const net::RoutingTable table(topo);

  std::vector<ProcId> assignment = sched::assignment_of(input);
  // Re-deriving the schedule from the assignment may already differ from
  // the input (different list order); keep whichever representation we
  // can actually regenerate, so moves compare like against like.
  sched::Schedule best =
      sched::schedule_from_assignment(g, topo, costs, assignment, table);
  if (input.makespan() < best.makespan()) {
    best = input;  // the original was better than its re-derivation
  }
  Time best_len = best.makespan();

  RefineResult result{best, input.makespan(), best_len, 0, 0};

  // Candidate processors per task: cheapest execution first.
  auto candidates_for = [&](TaskId t) {
    std::vector<ProcId> procs(static_cast<std::size_t>(topo.num_processors()));
    std::iota(procs.begin(), procs.end(), 0);
    std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
      const Cost ca = costs.exec_cost(t, a);
      const Cost cb = costs.exec_cost(t, b);
      if (!time_eq(ca, cb)) return ca < cb;
      return a < b;
    });
    if (options.candidates_per_task > 0 &&
        static_cast<std::size_t>(options.candidates_per_task) < procs.size()) {
      procs.resize(static_cast<std::size_t>(options.candidates_per_task));
    }
    return procs;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved_this_round = false;
    int stale = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const ProcId original = assignment[static_cast<std::size_t>(t)];
      ProcId best_proc = original;
      for (const ProcId p : candidates_for(t)) {
        if (p == original) continue;
        assignment[static_cast<std::size_t>(t)] = p;
        ++result.candidates_evaluated;
        sched::Schedule candidate = sched::schedule_from_assignment(
            g, topo, costs, assignment, table);
        if (time_lt(candidate.makespan(), best_len)) {
          best_len = candidate.makespan();
          best_proc = p;
          result.schedule = std::move(candidate);
        }
      }
      assignment[static_cast<std::size_t>(t)] = best_proc;
      if (best_proc != original) {
        ++result.moves_applied;
        improved_this_round = true;
        stale = 0;
      } else if (options.patience > 0 && ++stale >= options.patience) {
        break;
      }
    }
    if (!improved_this_round) break;
  }
  result.final_length = best_len;
  return result;
}

}  // namespace bsa::core
