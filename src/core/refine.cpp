#include "core/refine.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "sched/assignment.hpp"
#include "sched/retime.hpp"
#include "sched/retime_context.hpp"

namespace bsa::core {
namespace {

/// Candidate processors for `t`: cheapest execution first, capped by
/// options.candidates_per_task.
std::vector<ProcId> move_candidates(TaskId t, const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    const RefineOptions& options) {
  std::vector<ProcId> procs(static_cast<std::size_t>(topo.num_processors()));
  std::iota(procs.begin(), procs.end(), 0);
  std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
    const Cost ca = costs.exec_cost(t, a);
    const Cost cb = costs.exec_cost(t, b);
    if (!time_eq(ca, cb)) return ca < cb;
    return a < b;
  });
  if (options.candidates_per_task > 0 &&
      static_cast<std::size_t>(options.candidates_per_task) < procs.size()) {
    procs.resize(static_cast<std::size_t>(options.candidates_per_task));
  }
  return procs;
}

/// Schedule mutations of moving `t` to `p` on the live schedule (no
/// re-timing): clear its incident routes, re-route crossing messages
/// along static shortest paths (deterministic source-finish order) and
/// place `t` at its earliest slot. Deliberately independent of BSA's
/// static commit (core/bsa.cpp): outgoing messages here re-route from
/// the task's actual new finish rather than BSA's pre-retime estimate,
/// so this defines refine's own move semantics, not a mirror of BSA's.
/// Deterministic in the pre-move schedule state.
void apply_move_mutations(sched::Schedule& s,
                          const net::HeterogeneousCostModel& costs,
                          const net::RoutingTable& table,
                          sched::RetimeContext& ctx, TaskId t, ProcId p) {
  const auto& g = s.task_graph();
  ctx.begin_migration(t);
  s.unplace_task(t);
  for (const EdgeId e : g.in_edges(t)) s.clear_route(e);
  for (const EdgeId e : g.out_edges(t)) s.clear_route(e);

  std::vector<EdgeId> incoming;
  for (const EdgeId e : g.in_edges(t)) {
    if (s.proc_of(g.edge_src(e)) != p) incoming.push_back(e);
  }
  std::sort(incoming.begin(), incoming.end(), [&](EdgeId a, EdgeId b) {
    const Time fa = s.finish_of(g.edge_src(a));
    const Time fb = s.finish_of(g.edge_src(b));
    if (!time_eq(fa, fb)) return fa < fb;
    return a < b;
  });
  Time drt = 0;
  for (const EdgeId e : g.in_edges(t)) {
    if (s.proc_of(g.edge_src(e)) == p) {
      drt = std::max(drt, s.finish_of(g.edge_src(e)));
    }
  }
  for (const EdgeId e : incoming) {
    const TaskId src = g.edge_src(e);
    Time ready = s.finish_of(src);
    for (const LinkId l : table.route(s.proc_of(src), p)) {
      const Time dur = costs.comm_cost(e, l);
      const Time st = s.earliest_link_slot(l, ready, dur);
      s.append_hop(e, sched::Hop{l, st, st + dur});
      ready = st + dur;
    }
    drt = std::max(drt, ready);
  }

  const Time dur = costs.exec_cost(t, p);
  const Time st = s.earliest_task_slot(p, drt, dur);
  s.place_task(t, p, st, st + dur);

  for (const EdgeId e : g.out_edges(t)) {
    const TaskId dst = g.edge_dst(e);
    const ProcId pd = s.proc_of(dst);
    if (pd == p) continue;
    Time ready = st + dur;
    for (const LinkId l : table.route(p, pd)) {
      const Time hd = costs.comm_cost(e, l);
      const Time hs = s.earliest_link_slot(l, ready, hd);
      s.append_hop(e, sched::Hop{l, hs, hs + hd});
      ready = hs + hd;
    }
  }
}

/// apply_move_mutations plus re-timing; the committed-move path.
void apply_move(sched::Schedule& s, const net::HeterogeneousCostModel& costs,
                const net::RoutingTable& table, sched::RetimeContext& ctx,
                TaskId t, ProcId p) {
  apply_move_mutations(s, costs, table, ctx, t, p);
  if (!ctx.retime_migration(t, nullptr)) {
    (void)sched::replay_retime(s, costs, true);
    ctx.invalidate();
  }
}

/// Incremental local search: one live schedule, one RetimeContext; each
/// candidate move is journaled into a Schedule::Transaction, measured,
/// and rolled back in O(touched) (the best one is then re-applied for
/// real). The rare re-timing-cycle fallback measures through a snapshot
/// copy instead, because replay_retime rebuilds the schedule wholesale.
RefineResult refine_retime_delta(const sched::Schedule& input,
                                 const net::HeterogeneousCostModel& costs,
                                 const RefineOptions& options) {
  const auto& g = input.task_graph();
  const auto& topo = input.topology();
  const net::RoutingTable table(topo);

  RefineResult result{input, input.makespan(), input.makespan(), 0, 0};
  sched::Schedule& s = result.schedule;
  sched::RetimeContext ctx(s, costs);
  // Pull the input to its earliest-time fixpoint so the context's
  // incremental updates start from consistent ground.
  if (!ctx.retime_full(nullptr)) {
    (void)sched::replay_retime(s, costs, true);
    ctx.invalidate();
  }
  Time best_len = s.makespan();

  sched::Schedule::Transaction txn;
  const auto evaluate_move = [&](TaskId t, ProcId p) -> Time {
    s.begin_transaction(txn);
    apply_move_mutations(s, costs, table, ctx, t, p);
    if (ctx.retime_migration(t, nullptr)) {
      const Time len = s.makespan();
      s.rollback_transaction();
      ctx.undo_migration(t);
      return len;
    }
    // Re-timing cycle: replay the whole schedule to measure, restore
    // from a copy (the context is stale either way).
    s.rollback_transaction();
    sched::Schedule snapshot = s;
    apply_move_mutations(s, costs, table, ctx, t, p);
    (void)sched::replay_retime(s, costs, true);
    ctx.invalidate();
    const Time len = s.makespan();
    s = std::move(snapshot);
    return len;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved_this_round = false;
    int stale = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const ProcId original = s.proc_of(t);
      ProcId best_proc = original;
      for (const ProcId p : move_candidates(t, topo, costs, options)) {
        if (p == original) continue;
        ++result.candidates_evaluated;
        const Time len = evaluate_move(t, p);
        if (time_lt(len, best_len)) {
          best_len = len;
          best_proc = p;
        }
      }
      if (best_proc != original) {
        apply_move(s, costs, table, ctx, t, best_proc);
        best_len = s.makespan();
        ++result.moves_applied;
        improved_this_round = true;
        stale = 0;
      } else if (options.patience > 0 && ++stale >= options.patience) {
        break;
      }
    }
    if (!improved_this_round) break;
  }
  result.final_length = best_len;
  return result;
}

}  // namespace

RefineResult refine_schedule(const sched::Schedule& input,
                             const net::HeterogeneousCostModel& costs,
                             const RefineOptions& options) {
  BSA_REQUIRE(input.all_placed(), "refine requires a complete schedule");
  BSA_REQUIRE(options.max_rounds >= 1, "max_rounds must be >= 1");
  if (options.move_eval == MoveEval::kRetimeDelta) {
    return refine_retime_delta(input, costs, options);
  }
  const auto& g = input.task_graph();
  const auto& topo = input.topology();
  const net::RoutingTable table(topo);

  std::vector<ProcId> assignment = sched::assignment_of(input);
  // Re-deriving the schedule from the assignment may already differ from
  // the input (different list order); keep whichever representation we
  // can actually regenerate, so moves compare like against like.
  sched::Schedule best =
      sched::schedule_from_assignment(g, topo, costs, assignment, table);
  if (input.makespan() < best.makespan()) {
    best = input;  // the original was better than its re-derivation
  }
  Time best_len = best.makespan();

  RefineResult result{best, input.makespan(), best_len, 0, 0};

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved_this_round = false;
    int stale = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const ProcId original = assignment[static_cast<std::size_t>(t)];
      ProcId best_proc = original;
      for (const ProcId p : move_candidates(t, topo, costs, options)) {
        if (p == original) continue;
        assignment[static_cast<std::size_t>(t)] = p;
        ++result.candidates_evaluated;
        sched::Schedule candidate = sched::schedule_from_assignment(
            g, topo, costs, assignment, table);
        if (time_lt(candidate.makespan(), best_len)) {
          best_len = candidate.makespan();
          best_proc = p;
          result.schedule = std::move(candidate);
        }
      }
      assignment[static_cast<std::size_t>(t)] = best_proc;
      if (best_proc != original) {
        ++result.moves_applied;
        improved_this_round = true;
        stale = 0;
      } else if (options.patience > 0 && ++stale >= options.patience) {
        break;
      }
    }
    if (!improved_this_round) break;
  }
  result.final_length = best_len;
  return result;
}

}  // namespace bsa::core
