#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"

/// \file pivot.hpp
/// First-pivot selection (§2.2 of the paper): for every processor P_x,
/// compute the critical-path length of the program under the *actual*
/// execution costs on P_x (communication costs stay nominal); the
/// processor with the shortest CP becomes the first pivot. This is how
/// BSA steers critical tasks towards fast processors.

namespace bsa::core {

struct PivotSelection {
  ProcId pivot = kInvalidProc;
  /// CP length of the program w.r.t. each processor's actual exec costs.
  std::vector<Cost> cp_length_by_proc;
};

/// Select the first pivot. Ties are broken towards the smaller processor
/// id (deterministic).
[[nodiscard]] PivotSelection select_first_pivot(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs);

}  // namespace bsa::core
