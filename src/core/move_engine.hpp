#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "network/routing.hpp"
#include "sched/retime_context.hpp"
#include "sched/schedule.hpp"

/// \file move_engine.hpp
/// Transactional single-task move evaluation over a live schedule.
///
/// The engine owns the machinery that refine's kRetimeDelta mode and the
/// simulated-annealing scheduler share: one bound Schedule, one persistent
/// sched::RetimeContext, and one reusable Schedule::Transaction. A
/// candidate move (migrate task t to processor p) is
///
///  * evaluated by journaling its mutations into the transaction,
///    re-timing the affected region incrementally, reading the resulting
///    makespan and rolling everything back — O(touched) per rejected
///    move, never a schedule rebuild (docs/DESIGN_PERF.md);
///  * applied by performing the same mutations for real and committing.
///
/// Move semantics (shared by both callers): the task's incident routes
/// are cleared, crossing messages re-route along static shortest paths
/// booking earliest free link slots (incoming messages in deterministic
/// source-finish order), and the task lands in its earliest insertion
/// slot. The rare re-timing-cycle fallback measures through a snapshot
/// copy and replay_retime, exactly as before the extraction —
/// deterministic either way.

namespace bsa::core {

class MoveEngine {
 public:
  /// Bind to `s` (complete; must outlive the engine) and pull it to its
  /// earliest-time fixpoint so the incremental re-timing deltas start
  /// from consistent ground.
  MoveEngine(sched::Schedule& s, const net::HeterogeneousCostModel& costs);

  MoveEngine(const MoveEngine&) = delete;
  MoveEngine& operator=(const MoveEngine&) = delete;

  /// Makespan the schedule would have after moving `t` to `p`; the
  /// schedule is restored bit-exactly before returning.
  [[nodiscard]] Time evaluate(TaskId t, ProcId p);

  /// Move `t` to `p` for real and re-time.
  void apply(TaskId t, ProcId p);

  struct Stats {
    std::int64_t evaluated = 0;         ///< trial moves measured + rolled back
    std::int64_t applied = 0;           ///< moves committed
    std::int64_t replay_fallbacks = 0;  ///< re-timing-cycle snapshot replays
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void apply_move_mutations(TaskId t, ProcId p);

  sched::Schedule& s_;
  const net::HeterogeneousCostModel& costs_;
  net::RoutingTable table_;
  sched::RetimeContext ctx_;
  sched::Schedule::Transaction txn_;
  Stats stats_;
};

}  // namespace bsa::core
