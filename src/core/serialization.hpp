#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/levels.hpp"
#include "graph/task_graph.hpp"

/// \file serialization.hpp
/// The BSA serialization step (§2.2 of the paper).
///
/// The parallel program is converted to a total order ("injected" onto the
/// first pivot processor) built around a critical path:
///  * CP  — tasks on the selected critical path,
///  * IB  — in-branch tasks: ancestors of CP tasks that are not CP tasks,
///  * OB  — out-branch tasks: everything else.
///
/// CP tasks occupy the earliest possible positions with their IB ancestors
/// inserted before them (largest b-level first, ties by smaller t-level);
/// OB tasks are appended in descending b-level order. The result is always
/// a topological order of the task graph.

namespace bsa::core {

enum class TaskClass : unsigned char {
  kCriticalPath,
  kInBranch,
  kOutBranch,
};

struct SerializationResult {
  /// The serial injection order (all tasks exactly once).
  std::vector<TaskId> order;
  /// CP/IB/OB classification, indexed by TaskId.
  std::vector<TaskClass> task_class;
  /// The selected critical path (entry to exit).
  std::vector<TaskId> critical_path;
  /// Levels used to build the order.
  graph::LevelSets levels;
};

/// Serialize `g` under the given cost vectors (`exec_costs` by TaskId —
/// typically the *actual* costs on the pivot processor — and `comm_costs`
/// by EdgeId, nominal in the paper). `rng` breaks critical-path ties.
[[nodiscard]] SerializationResult serialize(const graph::TaskGraph& g,
                                            std::span<const Cost> exec_costs,
                                            std::span<const Cost> comm_costs,
                                            Rng& rng);

/// Convenience overload with the graph's nominal costs.
[[nodiscard]] SerializationResult serialize(const graph::TaskGraph& g,
                                            Rng& rng);

/// Ablation variant: ignore the CP/IB/OB structure and order all tasks
/// by descending b-level alone (ties: smaller t-level, then id). Still a
/// topological order (a predecessor's b-level strictly exceeds its
/// successors' for positive costs; zero-cost ties are resolved by
/// precedence-aware insertion). Classification is still reported so the
/// result is interchangeable with serialize(). Used to measure how much
/// the paper's serialization strategy actually contributes
/// (bench_ablation).
[[nodiscard]] SerializationResult serialize_by_blevel(
    const graph::TaskGraph& g, std::span<const Cost> exec_costs,
    std::span<const Cost> comm_costs, Rng& rng);

}  // namespace bsa::core
