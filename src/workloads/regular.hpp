#pragma once

#include "graph/task_graph.hpp"
#include "workloads/costs.hpp"

/// \file regular.hpp
/// Regular application task graphs (§3 of the paper): Gaussian
/// elimination, LU decomposition, Laplace equation solver and mean value
/// analysis — matrix-style applications whose task count is O(N^2) in the
/// problem dimension N — plus FFT and fork-join extras used by examples
/// and tests.
///
/// Contracts (relied on by the sweep runtime and the workload registry):
///  * determinism — every generator is a pure function of (structure
///    parameters, CostParams): repeated calls produce bit-identical
///    graphs at any thread count;
///  * thread-safety — no shared mutable state; concurrent calls are
///    safe;
///  * structure — results are weakly-connected DAGs; all generators
///    except lu_decomposition and cholesky (whose factorisation steps
///    interleave) additionally emit task ids in topological order.
///
/// *_task_count(...) predicts the exact task count and
/// *_dim_for(target) picks the dimension whose count is closest to a
/// target size (the paper sweeps sizes ~50..500 in steps of 50).

namespace bsa::workloads {

/// Gaussian elimination, kji form (Cosnard et al.): for each elimination
/// step k a pivot task T(k,k) feeds update tasks T(k,j), j>k, which feed
/// step k+1. dim >= 2.
[[nodiscard]] graph::TaskGraph gaussian_elimination(int dim,
                                                    const CostParams& costs = {});
[[nodiscard]] int gaussian_elimination_task_count(int dim);
[[nodiscard]] int gaussian_elimination_dim_for(int target_tasks);

/// Right-looking tiled LU decomposition on a tiles x tiles matrix:
/// GETRF(k) -> TRSM(k,*) -> GEMM(k,*,*) -> step k+1. tiles >= 2.
[[nodiscard]] graph::TaskGraph lu_decomposition(int tiles,
                                                const CostParams& costs = {});
[[nodiscard]] int lu_decomposition_task_count(int tiles);
[[nodiscard]] int lu_decomposition_dim_for(int target_tasks);

/// Laplace equation solver: dim x dim wavefront lattice, T(i,j) depends
/// on T(i-1,j) and T(i,j-1). dim >= 2.
[[nodiscard]] graph::TaskGraph laplace(int dim, const CostParams& costs = {});
[[nodiscard]] int laplace_task_count(int dim);
[[nodiscard]] int laplace_dim_for(int target_tasks);

/// Mean value analysis: `levels` population levels over `stations` queueing
/// stations; station tasks of level k feed an aggregation task which feeds
/// every station task of level k+1. levels >= 1, stations >= 1.
[[nodiscard]] graph::TaskGraph mean_value_analysis(int levels, int stations,
                                                   const CostParams& costs = {});
[[nodiscard]] int mva_task_count(int levels, int stations);
[[nodiscard]] int mva_levels_for(int target_tasks, int stations);

/// FFT butterfly over `points` inputs (power of two): log2(points)+1 rows
/// of `points` tasks.
[[nodiscard]] graph::TaskGraph fft(int points, const CostParams& costs = {});
[[nodiscard]] int fft_task_count(int points);
/// Power-of-two point count whose task count is closest to `target_tasks`.
[[nodiscard]] int fft_points_for(int target_tasks);

/// `stages` fork-join stages of `width` parallel tasks between join tasks.
[[nodiscard]] graph::TaskGraph fork_join(int stages, int width,
                                         const CostParams& costs = {});
[[nodiscard]] int fork_join_task_count(int stages, int width);

/// Right-looking tiled Cholesky factorisation on a tiles x tiles lower
/// triangle: POTRF(k) -> TRSM(k,i) -> SYRK/GEMM updates -> step k+1.
[[nodiscard]] graph::TaskGraph cholesky(int tiles, const CostParams& costs = {});
[[nodiscard]] int cholesky_task_count(int tiles);
[[nodiscard]] int cholesky_tiles_for(int target_tasks);

/// One-dimensional stencil pipeline: `steps` time steps over `cells`
/// cells; T(s,c) depends on T(s-1, c-1..c+1). Models iterative solvers.
[[nodiscard]] graph::TaskGraph stencil_1d(int steps, int cells,
                                          const CostParams& costs = {});
[[nodiscard]] int stencil_1d_task_count(int steps, int cells);

/// Two-dimensional Laplace stencil: `iters` Jacobi sweeps over a
/// rows x cols grid; T(t,i,j) depends on T(t-1,i,j) and its in-bounds
/// 4-neighbourhood (the 5-point update). rows, cols, iters >= 1, and
/// iters >= 2 when rows*cols > 1 (all edges run between sweeps, so a
/// single sweep over several cells would be disconnected).
[[nodiscard]] graph::TaskGraph stencil_2d(int rows, int cols, int iters,
                                          const CostParams& costs = {});
[[nodiscard]] int stencil_2d_task_count(int rows, int cols, int iters);

/// Linear (systolic) pipeline: `stages` stages of `width` parallel
/// lanes; P(s,l) feeds P(s+1,l) and the diagonal P(s+1,l+1), so data
/// flows down every lane with nearest-neighbour exchange. stages >= 2
/// when width > 1 (stages >= 1 for a single chain) keeps the graph
/// weakly connected, as the paper assumes.
[[nodiscard]] graph::TaskGraph pipeline(int stages, int width,
                                        const CostParams& costs = {});
[[nodiscard]] int pipeline_task_count(int stages, int width);

/// Complete out-tree (fan-out `fanout`, `depth` levels; depth 1 = root
/// only) — divide phase of divide-and-conquer programs.
[[nodiscard]] graph::TaskGraph out_tree(int depth, int fanout,
                                        const CostParams& costs = {});
/// Complete in-tree — the matching reduction phase.
[[nodiscard]] graph::TaskGraph in_tree(int depth, int fanin,
                                       const CostParams& costs = {});
[[nodiscard]] int tree_task_count(int depth, int fanout);

}  // namespace bsa::workloads
