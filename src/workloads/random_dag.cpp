#include "workloads/random_dag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace bsa::workloads {
namespace {

/// Disjoint-set union used to track weak connectivity while edges are
/// generated.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true when the sets were distinct (a merge happened).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

graph::TaskGraph random_layered_dag(const RandomDagParams& params) {
  BSA_REQUIRE(params.num_tasks >= 2, "need at least two tasks");
  BSA_REQUIRE(params.granularity > 0, "granularity must be positive");
  BSA_REQUIRE(params.max_preds >= 1, "max_preds must be >= 1");
  const auto n = static_cast<std::size_t>(params.num_tasks);
  Rng rng(derive_seed(params.seed, 0x7264ULL));  // "rd"

  // --- layer assignment ----------------------------------------------------
  const double base_layers =
      params.layer_factor * std::sqrt(static_cast<double>(n));
  int num_layers = std::max(
      2, static_cast<int>(std::lround(base_layers * rng.uniform_real(0.75, 1.25))));
  num_layers = std::min(num_layers, params.num_tasks);

  // One task per layer first (layers must be non-empty), rest at random.
  std::vector<int> layer_of(n);
  for (int l = 0; l < num_layers; ++l) {
    layer_of[static_cast<std::size_t>(l)] = l;
  }
  for (std::size_t t = static_cast<std::size_t>(num_layers); t < n; ++t) {
    layer_of[t] = static_cast<int>(rng.index(static_cast<std::size_t>(num_layers)));
  }
  // Task ids in layer order => ids are topologically ordered.
  std::sort(layer_of.begin(), layer_of.end());
  std::vector<std::vector<TaskId>> layers(static_cast<std::size_t>(num_layers));
  for (std::size_t t = 0; t < n; ++t) {
    layers[static_cast<std::size_t>(layer_of[t])].push_back(
        static_cast<TaskId>(t));
  }

  // --- edge generation -------------------------------------------------------
  std::set<std::pair<TaskId, TaskId>> edges;
  UnionFind uf(n);
  auto add_edge = [&](TaskId a, TaskId b) {
    if (edges.insert({a, b}).second) {
      uf.unite(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
      return true;
    }
    return false;
  };
  auto random_task_in_layer = [&](int l) {
    const auto& ts = layers[static_cast<std::size_t>(l)];
    return ts[rng.index(ts.size())];
  };

  std::vector<int> out_degree(n, 0);
  for (int l = 1; l < num_layers; ++l) {
    for (const TaskId t : layers[static_cast<std::size_t>(l)]) {
      const auto preds = static_cast<int>(
          rng.uniform_int(1, params.max_preds));
      for (int k = 0; k < preds; ++k) {
        // Bias towards the adjacent layer (70%).
        const int src_layer =
            (l == 1 || rng.bernoulli(0.7))
                ? l - 1
                : static_cast<int>(rng.index(static_cast<std::size_t>(l)));
        const TaskId src = random_task_in_layer(src_layer);
        if (add_edge(src, t)) {
          ++out_degree[static_cast<std::size_t>(src)];
        }
      }
    }
  }
  // Every non-last-layer task needs a successor.
  for (int l = 0; l + 1 < num_layers; ++l) {
    for (const TaskId t : layers[static_cast<std::size_t>(l)]) {
      if (out_degree[static_cast<std::size_t>(t)] > 0) continue;
      const TaskId dst = random_task_in_layer(l + 1);
      if (add_edge(t, dst)) ++out_degree[static_cast<std::size_t>(t)];
    }
  }
  // Bridge residual weakly-connected components: connect a representative
  // of each non-root component to a task in a different layer.
  for (std::size_t t = 0; t < n; ++t) {
    if (uf.find(t) == uf.find(0)) continue;
    const auto tid = static_cast<TaskId>(t);
    const int l = layer_of[t];
    // Pick any task in another layer already connected to component 0.
    for (std::size_t u = 0; u < n; ++u) {
      if (uf.find(u) != uf.find(0)) continue;
      const auto uid = static_cast<TaskId>(u);
      if (layer_of[u] < l) {
        if (add_edge(uid, tid)) break;
      } else if (layer_of[u] > l) {
        if (add_edge(tid, uid)) break;
      }
    }
    // A same-layer-only residue is impossible: every layer except the
    // last has out-edges and the one-per-layer seeding guarantees other
    // layers exist.
  }

  // --- materialise -----------------------------------------------------------
  CostParams cp;
  cp.exec_lo = params.exec_lo;
  cp.exec_hi = params.exec_hi;
  cp.granularity = params.granularity;
  cp.seed = params.seed;
  graph::TaskGraphBuilder b;
  for (std::size_t t = 0; t < n; ++t) {
    (void)b.add_task(draw_exec_cost(rng, cp));
  }
  for (const auto& [src, dst] : edges) {
    (void)b.add_edge(src, dst, draw_comm_cost(rng, cp));
  }
  graph::TaskGraph g = b.build();
  BSA_ASSERT(g.is_weakly_connected(), "random DAG not connected");
  return g;
}

graph::TaskGraph series_parallel(int depth, int max_branch,
                                 const CostParams& costs) {
  BSA_REQUIRE(depth >= 1, "series_parallel needs depth >= 1");
  BSA_REQUIRE(max_branch >= 2 && max_branch <= 32,
              "series_parallel needs max_branch in [2, 32]");
  // Expected growth is ~2.5x edges per round; cap the rounds so a typo
  // cannot request an astronomically large graph.
  BSA_REQUIRE(depth <= 14, "series_parallel depth " << depth << " > 14");
  Rng rng(derive_seed(costs.seed, 0x7370ULL));  // "sp"

  // --- recursive two-terminal expansion over abstract nodes ----------------
  struct AbsEdge {
    int u, v;
  };
  std::vector<AbsEdge> edges{{0, 1}};  // node 0 = source, node 1 = sink
  int num_nodes = 2;
  for (int d = 0; d < depth; ++d) {
    // Worst-case growth (every edge parallel-expanded at max_branch) is
    // far above the expectation; bound the realised size deterministically.
    BSA_REQUIRE(edges.size() <= 10000000,
                "series_parallel expansion exceeds 10M edges — reduce "
                "depth/branch");
    std::vector<AbsEdge> next;
    next.reserve(edges.size() * 2);
    for (const AbsEdge e : edges) {
      // Leave some edges alone each round so the decomposition tree is
      // irregular rather than a perfect recursion.
      if (!rng.bernoulli(0.6)) {
        next.push_back(e);
        continue;
      }
      // Series composition is a one-branch parallel composition; every
      // branch routes through a fresh node, so no duplicate (u,v) pairs
      // ever arise.
      const int branches =
          rng.bernoulli(0.5)
              ? 1
              : static_cast<int>(rng.uniform_int(2, max_branch));
      for (int k = 0; k < branches; ++k) {
        const int w = num_nodes++;
        next.push_back({e.u, w});
        next.push_back({w, e.v});
      }
    }
    edges = std::move(next);
  }

  // --- relabel topologically (Kahn, smallest abstract id first) ------------
  const auto n = static_cast<std::size_t>(num_nodes);
  std::vector<std::vector<int>> out(n);
  std::vector<int> in_degree(n, 0);
  for (const AbsEdge& e : edges) {
    out[static_cast<std::size_t>(e.u)].push_back(e.v);
    ++in_degree[static_cast<std::size_t>(e.v)];
  }
  std::set<int> ready;
  for (int v = 0; v < num_nodes; ++v) {
    if (in_degree[static_cast<std::size_t>(v)] == 0) ready.insert(v);
  }
  std::vector<TaskId> new_id(n, kInvalidTask);
  TaskId next_id = 0;
  while (!ready.empty()) {
    const int v = *ready.begin();
    ready.erase(ready.begin());
    new_id[static_cast<std::size_t>(v)] = next_id++;
    for (const int w : out[static_cast<std::size_t>(v)]) {
      if (--in_degree[static_cast<std::size_t>(w)] == 0) ready.insert(w);
    }
  }
  BSA_ASSERT(static_cast<int>(next_id) == num_nodes,
             "series_parallel produced a cycle");

  // --- materialise in new-id order so costs are deterministic --------------
  std::vector<std::pair<TaskId, TaskId>> sorted_edges;
  sorted_edges.reserve(edges.size());
  for (const AbsEdge& e : edges) {
    sorted_edges.emplace_back(new_id[static_cast<std::size_t>(e.u)],
                              new_id[static_cast<std::size_t>(e.v)]);
  }
  std::sort(sorted_edges.begin(), sorted_edges.end());
  graph::TaskGraphBuilder b;
  for (int v = 0; v < num_nodes; ++v) {
    (void)b.add_task(draw_exec_cost(rng, costs));
  }
  for (const auto& [src, dst] : sorted_edges) {
    (void)b.add_edge(src, dst, draw_comm_cost(rng, costs));
  }
  graph::TaskGraph g = b.build();
  BSA_ASSERT(g.is_weakly_connected(), "series-parallel graph not connected");
  return g;
}

}  // namespace bsa::workloads
