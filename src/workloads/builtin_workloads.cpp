#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/regular.hpp"
#include "workloads/workload_registry.hpp"

/// \file builtin_workloads.cpp
/// Adapters that put the library's task-graph generators — the paper's
/// regular applications, the layered random DAGs and the application
/// suite (FFT butterfly, fork-join, series-parallel, 2-D stencil, linear
/// pipeline) — behind the unified workloads::Workload interface, and
/// their registration with the global WorkloadRegistry. The existing free
/// functions (workloads::fft, workloads::gaussian_elimination, ...)
/// remain the implementation; the adapters only translate options,
/// derive unpinned structure parameters from the caller's target size,
/// and assemble canonical specs.

namespace bsa::workloads {
namespace {

/// Pinned-or-absent structure parameters, in the registration's key
/// order. A pinned option fixes the dimension; an absent one is derived
/// from the caller's target task count by the workload's scale function.
using Pinned = std::vector<std::optional<int>>;

/// Resolve the concrete dimensions (same order as the keys) for a target
/// task count.
using ScaleFn = std::vector<int> (*)(const Pinned& pinned, int target);

/// Build the graph from resolved dimensions and cost parameters.
using BuildFn = graph::TaskGraph (*)(const std::vector<int>& dims,
                                     const CostParams& costs);

/// Extra resolve-time validation of pinned options (may be null).
using CheckFn = void (*)(const SpecOptions& opts);

/// One generator behind the Workload interface. All builtin workloads
/// share the ccr= / seed= handling: a pinned CCR (communication-to-
/// computation ratio, i.e. 1/granularity) overrides the caller's
/// granularity axis, a pinned seed overrides the caller's seed.
class GenericWorkload final : public Workload {
 public:
  /// `constant_defaults[i]` >= 0 marks a structure option whose unpinned
  /// value is a constant (not derived from the target size): pinning it
  /// at that constant is a no-op and canonicalises away, like a
  /// default-valued scheduler option.
  GenericWorkload(std::string name, std::string display,
                  std::vector<std::string> keys, std::vector<int> min_values,
                  std::vector<int> constant_defaults, ScaleFn scale,
                  BuildFn build, const SpecOptions& opts)
      : name_(std::move(name)),
        display_(std::move(display)),
        keys_(std::move(keys)),
        scale_(scale),
        build_(build) {
    std::vector<std::string> parts;
    pinned_.resize(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (!opts.has(keys_[i])) continue;
      pinned_[i] = opts.get_int(keys_[i], 0, min_values[i]);
      if (constant_defaults[i] >= 0 && *pinned_[i] == constant_defaults[i]) {
        continue;
      }
      parts.push_back(keys_[i] + "=" + std::to_string(*pinned_[i]));
    }
    if (opts.has("ccr")) {
      ccr_ = opts.get_double("ccr", 1.0, 0.0);
      parts.push_back("ccr=" + canonical_double(*ccr_));
    }
    if (opts.has("seed")) {
      seed_ = opts.get_uint64("seed", 0);
      parts.push_back("seed=" + std::to_string(*seed_));
    }
    spec_ = canonical_spec(name_, std::move(parts));
  }

  [[nodiscard]] std::string spec() const override { return spec_; }
  [[nodiscard]] std::string display_name() const override { return display_; }

  [[nodiscard]] graph::TaskGraph generate(
      int target_tasks, double granularity,
      std::uint64_t seed) const override {
    BSA_REQUIRE(target_tasks >= 1, "workload '" << name_
                                                << "': target task count "
                                                << target_tasks << " < 1");
    CostParams cp;
    cp.granularity = ccr_.has_value() ? 1.0 / *ccr_ : granularity;
    cp.seed = seed_.value_or(seed);
    BSA_REQUIRE(cp.granularity > 0, "workload '"
                                        << name_ << "': granularity "
                                        << cp.granularity << " must be > 0");
    return build_(scale_(pinned_, target_tasks), cp);
  }

 private:
  std::string name_;
  std::string display_;
  std::vector<std::string> keys_;
  Pinned pinned_;
  std::optional<double> ccr_;
  std::optional<std::uint64_t> seed_;
  ScaleFn scale_;
  BuildFn build_;
  std::string spec_;
};

/// Shared ccr= / seed= option docs appended to every registration.
void append_common_options(
    std::vector<WorkloadRegistry::OptionDoc>* options) {
  options->push_back({"ccr", "finite number > 0", "(1/granularity axis)",
                      "pin the communication-to-computation ratio "
                      "(granularity = 1/ccr)"});
  options->push_back({"seed", "unsigned integer", "(caller seed)",
                      "pin the cost/structure RNG seed"});
}

/// Registration helper: entry boilerplate plus the shared options.
/// `constant_defaults[i]` < 0 marks a structure option that is scaled
/// from the target size when unpinned.
WorkloadRegistry::Entry make_entry(
    std::string name, std::string display, std::string summary,
    std::vector<WorkloadRegistry::OptionDoc> structure_options,
    std::vector<int> min_values, std::vector<int> constant_defaults,
    ScaleFn scale, BuildFn build, CheckFn check = nullptr) {
  std::vector<std::string> keys;
  keys.reserve(structure_options.size());
  for (const auto& doc : structure_options) keys.push_back(doc.name);
  append_common_options(&structure_options);
  WorkloadRegistry::Entry entry;
  entry.name = name;
  entry.display_name = std::move(display);
  entry.summary = std::move(summary);
  entry.options = std::move(structure_options);
  entry.factory = [name, display = entry.display_name, keys,
                   min_values = std::move(min_values),
                   constant_defaults = std::move(constant_defaults), scale,
                   build,
                   check](const SpecOptions& opts) -> std::unique_ptr<Workload> {
    if (check != nullptr) check(opts);
    return std::make_unique<GenericWorkload>(name, display, keys, min_values,
                                             constant_defaults, scale, build,
                                             opts);
  };
  return entry;
}

int round_positive(double v) {
  return std::max(1, static_cast<int>(std::lround(v)));
}

}  // namespace

void register_builtin_workloads(WorkloadRegistry& registry) {
  using OptionDoc = WorkloadRegistry::OptionDoc;

  registry.add(make_entry(
      "cholesky", "Tiled Cholesky",
      "right-looking tiled Cholesky factorisation (POTRF/TRSM/SYRK/GEMM)",
      {OptionDoc{"tiles", "integer >= 2", "(scaled to target)",
                 "tile rows of the factored matrix"}},
      {2}, {-1},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0] : cholesky_tiles_for(target)};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return cholesky(d[0], cp);
      }));

  registry.add(make_entry(
      "fft", "FFT butterfly",
      "FFT butterfly: log2(points)+1 rows of `points` tasks with "
      "stride-2^s exchanges",
      {OptionDoc{"points", "power of two >= 2", "(scaled to target)",
                 "transform size (rows have `points` tasks each)"}},
      {2}, {-1},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0] : fft_points_for(target)};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return fft(d[0], cp);
      },
      [](const SpecOptions& opts) {
        if (!opts.has("points")) return;
        const int points = opts.get_int("points", 0, 2);
        BSA_REQUIRE((points & (points - 1)) == 0,
                    "workload 'fft': option 'points' expects a power of "
                    "two >= 2, got "
                        << points);
      }));

  registry.add(make_entry(
      "forkjoin", "Fork-join",
      "`depth` fork-join stages of `width` parallel tasks between joins "
      "(Wang & Sinnen-style)",
      {OptionDoc{"depth", "integer >= 1", "(scaled to target)",
                 "number of fork-join stages"},
       OptionDoc{"width", "integer >= 1", "4", "parallel tasks per stage"}},
      {1, 1}, {-1, 4},
      [](const Pinned& p, int target) {
        const int width = p[1] ? *p[1] : 4;
        // task count = depth*(width+1) + 1
        const int depth =
            p[0] ? *p[0]
                 : round_positive(static_cast<double>(target - 1) /
                                  (width + 1));
        return std::vector<int>{depth, width};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return fork_join(d[0], d[1], cp);
      }));

  registry.add(make_entry(
      "gauss", "Gaussian elimination",
      "Gaussian elimination, kji form: pivot task feeds the update tasks "
      "of each elimination step",
      {OptionDoc{"n", "integer >= 2", "(scaled to target)",
                 "matrix dimension (n(n+1)/2 - 1 tasks)"}},
      {2}, {-1},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0]
                                     : gaussian_elimination_dim_for(target)};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return gaussian_elimination(d[0], cp);
      }));

  registry.add(make_entry(
      "laplace", "Laplace solver",
      "Laplace equation solver: n x n wavefront lattice (Figures 3/5 "
      "suite)",
      {OptionDoc{"n", "integer >= 2", "(scaled to target)",
                 "lattice dimension (n^2 tasks)"}},
      {2}, {-1},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0] : laplace_dim_for(target)};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return laplace(d[0], cp);
      }));

  registry.add(make_entry(
      "lu", "LU decomposition",
      "right-looking tiled LU decomposition (GETRF/TRSM/GEMM; Figures "
      "3/5 suite)",
      {OptionDoc{"tiles", "integer >= 2", "(scaled to target)",
                 "tile rows of the factored matrix"}},
      {2}, {-1},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0]
                                     : lu_decomposition_dim_for(target)};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return lu_decomposition(d[0], cp);
      }));

  registry.add(make_entry(
      "mva", "Mean value analysis",
      "mean value analysis: per-level station tasks feeding an "
      "aggregation task that fans out to the next level",
      {OptionDoc{"levels", "integer >= 1", "(scaled to target)",
                 "population levels"},
       OptionDoc{"stations", "integer >= 1", "8",
                 "queueing stations per level"}},
      {1, 1}, {-1, 8},
      [](const Pinned& p, int target) {
        const int stations = p[1] ? *p[1] : 8;
        const int levels = p[0] ? *p[0] : mva_levels_for(target, stations);
        return std::vector<int>{levels, stations};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return mean_value_analysis(d[0], d[1], cp);
      }));

  registry.add(make_entry(
      "pipeline", "Linear pipeline",
      "linear systolic pipeline: `stages` stages of `width` lanes with "
      "same-lane and diagonal forwarding",
      {OptionDoc{"stages", "integer >= 1 (>= 2 when width > 1)",
                 "(scaled to target)", "pipeline stages"},
       OptionDoc{"width", "integer >= 1", "4", "parallel lanes"}},
      {1, 1}, {-1, 4},
      [](const Pinned& p, int target) {
        const int width = p[1] ? *p[1] : 4;
        const int stages =
            p[0] ? *p[0]
                 : std::max(2, round_positive(static_cast<double>(target) /
                                              width));
        return std::vector<int>{stages, width};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return pipeline(d[0], d[1], cp);
      },
      [](const SpecOptions& opts) {
        // Fail at resolve time (the registry's fail-up-front contract),
        // not mid-sweep from a worker thread.
        const int width = opts.get_int("width", 4, 1);
        BSA_REQUIRE(opts.get_int("stages", 2, 1) >= 2 || width == 1,
                    "workload 'pipeline': option 'stages' expects an "
                    "integer >= 2 when width > 1 (connectivity)");
      }));

  registry.add(make_entry(
      "random", "Random layered DAG",
      "layered random DAG with enforced connectivity (Figures 4/6/7 "
      "suite)",
      {OptionDoc{"n", "integer >= 2", "(target size)", "exact task count"},
       OptionDoc{"preds", "integer >= 1", "3",
                 "max predecessors drawn per non-entry task"}},
      {2, 1}, {-1, 3},
      [](const Pinned& p, int target) {
        return std::vector<int>{p[0] ? *p[0] : std::max(2, target),
                                p[1] ? *p[1] : 3};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        RandomDagParams params;
        params.num_tasks = d[0];
        params.granularity = cp.granularity;
        params.max_preds = d[1];
        params.seed = cp.seed;
        return random_layered_dag(params);
      }));

  registry.add(make_entry(
      "sp", "Series-parallel",
      "recursive two-terminal series-parallel decomposition (Wilhelm & "
      "Pionteck-style)",
      {OptionDoc{"depth", "integer in [1, 14]", "(scaled to target)",
                 "expansion rounds (~2.5x edges per round)"},
       OptionDoc{"branch", "integer in [2, 32]", "3",
                 "max branches of a parallel composition"}},
      {1, 2}, {-1, 3},
      [](const Pinned& p, int target) {
        // Expected node count grows ~2.5x per round; invert for the
        // round count and clamp to the generator's accepted range.
        const int depth =
            p[0] ? *p[0]
                 : std::min(14, std::max(1, static_cast<int>(std::lround(
                                                std::log(0.8 * target) /
                                                std::log(2.5)))));
        return std::vector<int>{depth, p[1] ? *p[1] : 3};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return series_parallel(d[0], d[1], cp);
      },
      [](const SpecOptions& opts) {
        BSA_REQUIRE(opts.get_int("depth", 1, 1) <= 14,
                    "workload 'sp': option 'depth' expects an integer in "
                    "[1, 14] (expansion is ~2.5x per round)");
        BSA_REQUIRE(opts.get_int("branch", 2, 2) <= 32,
                    "workload 'sp': option 'branch' expects an integer "
                    "in [2, 32]");
      }));

  registry.add(make_entry(
      "stencil", "2-D Laplace stencil",
      "iterated 5-point Jacobi stencil over a rows x cols grid",
      {OptionDoc{"cols", "integer >= 1", "(scaled to target)",
                 "grid columns"},
       OptionDoc{"iters", "integer >= 2 (1 only for a 1x1 grid)", "4",
                 "Jacobi sweeps"},
       OptionDoc{"rows", "integer >= 1", "(scaled to target)", "grid rows"}},
      {1, 1, 1}, {-1, 4, -1},
      [](const Pinned& p, int target) {
        const int iters = p[1] ? *p[1] : 4;
        const double cells =
            std::max(1.0, static_cast<double>(target) / iters);
        int rows, cols;
        if (p[2] && p[0]) {
          rows = *p[2];
          cols = *p[0];
        } else if (p[2]) {
          rows = *p[2];
          cols = round_positive(cells / rows);
        } else if (p[0]) {
          cols = *p[0];
          rows = round_positive(cells / cols);
        } else {
          rows = std::max(2, static_cast<int>(std::lround(std::sqrt(cells))));
          cols = round_positive(cells / rows);
        }
        return std::vector<int>{cols, iters, rows};
      },
      [](const std::vector<int>& d, const CostParams& cp) {
        return stencil_2d(d[2], d[0], d[1], cp);
      },
      [](const SpecOptions& opts) {
        // A single sweep over more than one cell would be edgeless and
        // disconnected; unpinned rows/cols scale to > 1 cell.
        BSA_REQUIRE(opts.get_int("iters", 4, 1) >= 2 ||
                        (opts.get_int("rows", 2, 1) == 1 &&
                         opts.get_int("cols", 2, 1) == 1),
                    "workload 'stencil': option 'iters' expects an "
                    "integer >= 2 unless rows=1,cols=1 (connectivity)");
      }));
}

}  // namespace bsa::workloads
