#pragma once

#include "graph/task_graph.hpp"
#include "workloads/costs.hpp"

/// \file random_dag.hpp
/// Randomly structured task graphs (the paper's second suite, §3): exact
/// target size, connected, execution costs U[100,200], communication
/// costs set by the granularity parameter.

namespace bsa::workloads {

struct RandomDagParams {
  int num_tasks = 100;
  /// Average exec cost / average comm cost (paper: 0.1, 1.0, 10.0).
  double granularity = 1.0;
  Cost exec_lo = 100;
  Cost exec_hi = 200;
  /// Number of layers ~ layer_factor * sqrt(num_tasks), jittered ±25%.
  double layer_factor = 1.0;
  /// Each non-entry task receives 1..max_preds predecessors.
  int max_preds = 3;
  std::uint64_t seed = 0;
};

/// Generate a layered random DAG:
///  * tasks are spread over L ~ layer_factor*sqrt(n) layers (each layer
///    non-empty),
///  * every non-first-layer task draws 1..max_preds predecessors from
///    earlier layers (biased towards the adjacent layer),
///  * every non-last-layer task gets at least one successor, and
///  * weak connectivity is enforced by bridging residual components.
/// Deterministic in the seed; task ids are topologically ordered by layer.
[[nodiscard]] graph::TaskGraph random_layered_dag(const RandomDagParams& params);

}  // namespace bsa::workloads
