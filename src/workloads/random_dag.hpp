#pragma once

#include "graph/task_graph.hpp"
#include "workloads/costs.hpp"

/// \file random_dag.hpp
/// Randomly structured task graphs (the paper's second suite, §3): exact
/// target size, connected, execution costs U[100,200], communication
/// costs set by the granularity parameter.
///
/// Contracts (shared by every generator in src/workloads/, relied on by
/// the parallel sweep runtime and the workload registry):
///  * determinism — each generator is a pure function of its parameters
///    (structure values + CostParams, including the seed): repeated
///    calls produce bit-identical graphs at any thread count;
///  * thread-safety — generators share no mutable state; concurrent
///    calls (even with identical arguments) are safe;
///  * structure — the result is a weakly-connected DAG whose task ids
///    are topologically ordered.

namespace bsa::workloads {

struct RandomDagParams {
  int num_tasks = 100;
  /// Average exec cost / average comm cost (paper: 0.1, 1.0, 10.0).
  double granularity = 1.0;
  Cost exec_lo = 100;
  Cost exec_hi = 200;
  /// Number of layers ~ layer_factor * sqrt(num_tasks), jittered ±25%.
  double layer_factor = 1.0;
  /// Each non-entry task receives 1..max_preds predecessors.
  int max_preds = 3;
  std::uint64_t seed = 0;
};

/// Generate a layered random DAG:
///  * tasks are spread over L ~ layer_factor*sqrt(n) layers (each layer
///    non-empty),
///  * every non-first-layer task draws 1..max_preds predecessors from
///    earlier layers (biased towards the adjacent layer),
///  * every non-last-layer task gets at least one successor, and
///  * weak connectivity is enforced by bridging residual components.
/// Deterministic in the seed; task ids are topologically ordered by layer.
[[nodiscard]] graph::TaskGraph random_layered_dag(const RandomDagParams& params);

/// Recursive series-parallel DAG (Wilhelm & Pionteck-style decomposition):
/// start from the two-terminal edge source->sink and expand every edge
/// `depth` times, each expansion replacing an edge u->v either in
/// *series* (u->w->v) or in *parallel* (2..max_branch one-node branches
/// u->w_i->v), chosen pseudo-randomly. The result is a connected
/// two-terminal series-parallel graph. depth in [1, 14], max_branch in
/// [2, 32] (both capped so a typo cannot request an astronomically
/// large graph). Deterministic in (depth, max_branch, costs); task ids
/// are topologically ordered.
[[nodiscard]] graph::TaskGraph series_parallel(int depth, int max_branch,
                                               const CostParams& costs = {});

}  // namespace bsa::workloads
