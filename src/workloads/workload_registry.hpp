#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec.hpp"
#include "graph/task_graph.hpp"

/// \file workload_registry.hpp
/// The unified workload surface: a polymorphic Workload interface and a
/// process-wide registry that resolves *workload spec strings* into
/// configured task-graph generators — the exact mirror of the scheduler
/// registry (sched/scheduler.hpp), sharing its grammar, canonicalisation
/// and error-listing behaviour via common/spec.hpp.
///
/// Spec examples (names, keys and values are case-insensitive; full
/// reference: docs/SPECS.md):
///
///   "fft:points=64,ccr=0.5"      FFT butterfly, pinned size and CCR
///   "forkjoin:width=8,depth=5"   fork-join, 8-wide, 5 stages
///   "sp:depth=6,seed=3"          series-parallel, pinned seed
///   "stencil:rows=8,cols=8,iters=4"
///   "pipeline:stages=10,width=4"
///   "gauss:n=12"                 Gaussian elimination, 12x12 matrix
///   "random"                     layered random DAG (Figures 4/6/7)
///
/// Contracts relied on by the parallel runtime and the tests:
///  * determinism — generate() is a pure function of
///    (canonical spec, target_tasks, granularity, seed): repeated calls,
///    repeated resolves and any thread count produce bit-identical
///    graphs;
///  * thread-safety — Workload instances are immutable after
///    construction and may serve concurrent generate() calls;
///    WorkloadRegistry::global() is initialised once and only read
///    afterwards;
///  * scalability — structure options left unset are derived from the
///    caller's target task count (the sweep axis), so one spec can serve
///    a whole size sweep; pinning the structure option fixes the graph
///    size regardless of the axis.

namespace bsa::workloads {

/// A configured task-graph generator.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Canonical spec string ("fft", "fft:points=64", ...). Feeding this
  /// back through WorkloadRegistry::resolve reproduces the instance.
  [[nodiscard]] virtual std::string spec() const = 0;

  /// Human display name of the workload family ("FFT butterfly", ...).
  [[nodiscard]] virtual std::string display_name() const = 0;

  /// Label for tables and reports: the display name for a default
  /// configuration, the canonical spec for a variant.
  [[nodiscard]] std::string display_label() const;

  /// Generate the task graph. `target_tasks` sizes workloads whose
  /// structure options are unset (a pinned structure option wins);
  /// `granularity` (avg exec / avg comm, §3 of the paper) and `seed`
  /// are the sweep-axis values, overridden by pinned ccr= / seed=
  /// options. Deterministic in all arguments.
  [[nodiscard]] virtual graph::TaskGraph generate(
      int target_tasks, double granularity, std::uint64_t seed) const = 0;
};

/// Registry of named workload factories. `global()` holds the built-in
/// generators; local instances can be built in tests.
class WorkloadRegistry {
 public:
  /// Documentation of one accepted option, used for error messages,
  /// `--help`-style listings and docs/SPECS.md tables.
  struct OptionDoc {
    std::string name;
    std::string values;         ///< e.g. "power of two >= 2"
    std::string default_value;  ///< canonical default spelling
    std::string summary;
  };

  using Factory = std::function<std::unique_ptr<Workload>(const SpecOptions&)>;

  struct Entry {
    std::string name;          ///< canonical lowercase registry name
    std::string display_name;  ///< e.g. "FFT butterfly"
    std::string summary;       ///< one-line description
    std::vector<OptionDoc> options;
    Factory factory;
  };

  /// Register a workload. Throws on duplicate or non-canonical names.
  void add(Entry entry);

  /// Resolve a spec string into a configured workload. Unknown names
  /// and unknown option keys throw PreconditionError messages listing
  /// the registered names / the workload's valid options.
  [[nodiscard]] std::unique_ptr<Workload> resolve(
      const std::string& spec) const;

  /// Canonical form of `spec` (resolve + Workload::spec).
  [[nodiscard]] std::string canonical(const std::string& spec) const;

  /// Table/report label for `spec` (resolve + Workload::display_label).
  [[nodiscard]] std::string display_label(const std::string& spec) const;

  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Split a comma-separated list of specs, e.g. a CLI `--workload`
  /// value — same continuation rule as the scheduler registry: a
  /// key=value token whose key is not a registered workload name
  /// continues the preceding spec.
  [[nodiscard]] std::vector<std::string> split_spec_list(
      const std::string& text) const;

  /// Entry for `name` (case-insensitive), or nullptr.
  [[nodiscard]] const Entry* find(const std::string& name) const;

  /// The process-wide registry, populated with the built-in workloads.
  [[nodiscard]] static const WorkloadRegistry& global();

 private:
  std::vector<Entry> entries_;
};

/// Register the built-in workloads (cholesky, fft, forkjoin, gauss,
/// laplace, lu, mva, pipeline, random, sp, stencil) — defined in
/// builtin_workloads.cpp, invoked once by WorkloadRegistry::global().
void register_builtin_workloads(WorkloadRegistry& registry);

}  // namespace bsa::workloads
