#include "workloads/workload_registry.hpp"

#include "common/check.hpp"

namespace bsa::workloads {

std::string Workload::display_label() const {
  const std::string canonical = spec();
  return canonical.find(':') == std::string::npos ? display_name()
                                                  : canonical;
}

void WorkloadRegistry::add(Entry entry) {
  BSA_REQUIRE(!entry.name.empty(), "workload registration with empty name");
  BSA_REQUIRE(entry.name == ascii_lower(entry.name) &&
                  entry.name.find(':') == std::string::npos &&
                  entry.name.find(',') == std::string::npos &&
                  entry.name.find('=') == std::string::npos,
              "workload name '" << entry.name
                                << "' is not a canonical identifier");
  BSA_REQUIRE(find(entry.name) == nullptr,
              "workload '" << entry.name << "' is already registered");
  BSA_REQUIRE(entry.factory != nullptr,
              "workload '" << entry.name << "' registered without a factory");
  entries_.push_back(std::move(entry));
}

const WorkloadRegistry::Entry* WorkloadRegistry::find(
    const std::string& name) const {
  const std::string key = ascii_lower(name);
  for (const Entry& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::unique_ptr<Workload> WorkloadRegistry::resolve(
    const std::string& spec) const {
  const ParsedSpec parsed = parse_spec(spec, "workload");
  const Entry* entry = find(parsed.name);
  BSA_REQUIRE(entry != nullptr, "unknown workload '"
                                    << parsed.name << "'; registered: "
                                    << join_list(names(), ", "));
  for (const auto& [key, _] : parsed.options) {
    bool known = false;
    for (const OptionDoc& doc : entry->options) known = known || doc.name == key;
    if (!known) {
      std::vector<std::string> valid;
      valid.reserve(entry->options.size());
      for (const OptionDoc& doc : entry->options) valid.push_back(doc.name);
      BSA_REQUIRE(false, "workload '"
                             << entry->name << "': unknown option '" << key
                             << "'; valid options: "
                             << (valid.empty() ? std::string("(none)")
                                               : join_list(valid, ", ")));
    }
  }
  return entry->factory(SpecOptions("workload", entry->name, parsed.options));
}

std::vector<std::string> WorkloadRegistry::split_spec_list(
    const std::string& text) const {
  return bsa::split_spec_list(
      text, [this](const std::string& name) { return find(name) != nullptr; });
}

std::string WorkloadRegistry::canonical(const std::string& spec) const {
  return resolve(spec)->spec();
}

std::string WorkloadRegistry::display_label(const std::string& spec) const {
  return resolve(spec)->display_label();
}

const WorkloadRegistry& WorkloadRegistry::global() {
  static const WorkloadRegistry* instance = [] {
    auto* r = new WorkloadRegistry();
    register_builtin_workloads(*r);
    return r;
  }();
  return *instance;
}

}  // namespace bsa::workloads
