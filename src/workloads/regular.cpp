#include "workloads/regular.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/check.hpp"

namespace bsa::workloads {
namespace {

/// Pick the smallest dimension >= lo whose count(dim) is closest to
/// target (counts are strictly increasing in dim).
template <typename CountFn>
int dim_for_target(int target, int lo, CountFn count) {
  BSA_REQUIRE(target >= count(lo), "target size " << target
                                                  << " below minimum "
                                                  << count(lo));
  int dim = lo;
  while (count(dim + 1) <= target) ++dim;
  // dim gives count <= target, dim+1 overshoots; pick the closer one.
  if (std::abs(count(dim + 1) - target) < std::abs(target - count(dim))) {
    ++dim;
  }
  return dim;
}

}  // namespace

// ---------------------------------------------------------------------------
// Gaussian elimination (kji form)
// ---------------------------------------------------------------------------

int gaussian_elimination_task_count(int dim) {
  BSA_REQUIRE(dim >= 2, "gaussian elimination needs dim >= 2");
  return dim * (dim + 1) / 2 - 1;
}

int gaussian_elimination_dim_for(int target_tasks) {
  return dim_for_target(target_tasks, 2, gaussian_elimination_task_count);
}

graph::TaskGraph gaussian_elimination(int dim, const CostParams& costs) {
  BSA_REQUIRE(dim >= 2, "gaussian elimination needs dim >= 2");
  Rng rng(derive_seed(costs.seed, 0x6765ULL));  // "ge"
  graph::TaskGraphBuilder b;
  // id(k, j): k = 1..dim-1 elimination step, j = k..dim column.
  std::map<std::pair<int, int>, TaskId> id;
  for (int k = 1; k <= dim - 1; ++k) {
    for (int j = k; j <= dim; ++j) {
      const std::string name =
          "T" + std::to_string(k) + "_" + std::to_string(j);
      id[{k, j}] = b.add_task(draw_exec_cost(rng, costs), name);
    }
  }
  for (int k = 1; k <= dim - 1; ++k) {
    for (int j = k + 1; j <= dim; ++j) {
      // Pivot task feeds every update of its step.
      (void)b.add_edge(id[{k, k}], id[{k, j}], draw_comm_cost(rng, costs));
      // Updates feed the next step's task in the same column.
      if (k + 1 <= dim - 1 && j >= k + 1) {
        (void)b.add_edge(id[{k, j}], id[{k + 1, j}],
                         draw_comm_cost(rng, costs));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Tiled LU decomposition (right looking)
// ---------------------------------------------------------------------------

int lu_decomposition_task_count(int tiles) {
  BSA_REQUIRE(tiles >= 2, "LU needs tiles >= 2");
  // GETRF per step, 2(T-1-k) TRSM, (T-1-k)^2 GEMM at step k.
  int count = 0;
  for (int k = 0; k < tiles; ++k) {
    const int r = tiles - 1 - k;
    count += 1 + 2 * r + r * r;
  }
  return count;
}

int lu_decomposition_dim_for(int target_tasks) {
  return dim_for_target(target_tasks, 2, lu_decomposition_task_count);
}

graph::TaskGraph lu_decomposition(int tiles, const CostParams& costs) {
  BSA_REQUIRE(tiles >= 2, "LU needs tiles >= 2");
  Rng rng(derive_seed(costs.seed, 0x6C75ULL));  // "lu"
  graph::TaskGraphBuilder b;
  std::map<std::tuple<int, int, int>, TaskId> getrf, trsm_row, trsm_col, gemm;
  for (int k = 0; k < tiles; ++k) {
    getrf[{k, 0, 0}] = b.add_task(draw_exec_cost(rng, costs),
                                  "GETRF" + std::to_string(k));
    for (int i = k + 1; i < tiles; ++i) {
      trsm_col[{k, i, 0}] =
          b.add_task(draw_exec_cost(rng, costs),
                     "TRSMc" + std::to_string(k) + "_" + std::to_string(i));
      trsm_row[{k, 0, i}] =
          b.add_task(draw_exec_cost(rng, costs),
                     "TRSMr" + std::to_string(k) + "_" + std::to_string(i));
      for (int j = k + 1; j < tiles; ++j) {
        gemm[{k, i, j}] = b.add_task(
            draw_exec_cost(rng, costs), "GEMM" + std::to_string(k) + "_" +
                                            std::to_string(i) + "_" +
                                            std::to_string(j));
      }
    }
    // Deduplicate: the loop above creates gemm(k,i,j) once per i — guard
    // by construction: create gemm only in the i loop with all j, which
    // is exactly once per (k,i,j). (No action needed.)
  }
  auto comm = [&] { return draw_comm_cost(rng, costs); };
  for (int k = 0; k < tiles; ++k) {
    for (int i = k + 1; i < tiles; ++i) {
      (void)b.add_edge(getrf[{k, 0, 0}], trsm_col[{k, i, 0}], comm());
      (void)b.add_edge(getrf[{k, 0, 0}], trsm_row[{k, 0, i}], comm());
    }
    for (int i = k + 1; i < tiles; ++i) {
      for (int j = k + 1; j < tiles; ++j) {
        (void)b.add_edge(trsm_col[{k, i, 0}], gemm[{k, i, j}], comm());
        (void)b.add_edge(trsm_row[{k, 0, j}], gemm[{k, i, j}], comm());
        // The updated tile flows into step k+1.
        if (i == k + 1 && j == k + 1) {
          (void)b.add_edge(gemm[{k, i, j}], getrf[{k + 1, 0, 0}], comm());
        } else if (j == k + 1) {
          (void)b.add_edge(gemm[{k, i, j}], trsm_col[{k + 1, i, 0}], comm());
        } else if (i == k + 1) {
          (void)b.add_edge(gemm[{k, i, j}], trsm_row[{k + 1, 0, j}], comm());
        } else {
          (void)b.add_edge(gemm[{k, i, j}], gemm[{k + 1, i, j}], comm());
        }
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Laplace equation solver (wavefront lattice)
// ---------------------------------------------------------------------------

int laplace_task_count(int dim) {
  BSA_REQUIRE(dim >= 2, "laplace needs dim >= 2");
  return dim * dim;
}

int laplace_dim_for(int target_tasks) {
  return dim_for_target(target_tasks, 2, laplace_task_count);
}

graph::TaskGraph laplace(int dim, const CostParams& costs) {
  BSA_REQUIRE(dim >= 2, "laplace needs dim >= 2");
  Rng rng(derive_seed(costs.seed, 0x6C61ULL));  // "la"
  graph::TaskGraphBuilder b;
  auto id = [dim](int i, int j) { return static_cast<TaskId>(i * dim + j); };
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      (void)b.add_task(draw_exec_cost(rng, costs),
                       "T" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      if (i + 1 < dim) {
        (void)b.add_edge(id(i, j), id(i + 1, j), draw_comm_cost(rng, costs));
      }
      if (j + 1 < dim) {
        (void)b.add_edge(id(i, j), id(i, j + 1), draw_comm_cost(rng, costs));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Mean value analysis
// ---------------------------------------------------------------------------

int mva_task_count(int levels, int stations) {
  BSA_REQUIRE(levels >= 1 && stations >= 1, "MVA needs levels,stations >= 1");
  return levels * (stations + 1);
}

int mva_levels_for(int target_tasks, int stations) {
  return dim_for_target(target_tasks, 1, [stations](int levels) {
    return mva_task_count(levels, stations);
  });
}

graph::TaskGraph mean_value_analysis(int levels, int stations,
                                     const CostParams& costs) {
  BSA_REQUIRE(levels >= 1 && stations >= 1, "MVA needs levels,stations >= 1");
  Rng rng(derive_seed(costs.seed, 0x6D76ULL));  // "mv"
  graph::TaskGraphBuilder b;
  std::vector<TaskId> prev_agg;
  for (int k = 0; k < levels; ++k) {
    std::vector<TaskId> station_tasks;
    station_tasks.reserve(static_cast<std::size_t>(stations));
    for (int m = 0; m < stations; ++m) {
      station_tasks.push_back(
          b.add_task(draw_exec_cost(rng, costs),
                     "S" + std::to_string(k) + "_" + std::to_string(m)));
    }
    const TaskId agg = b.add_task(draw_exec_cost(rng, costs),
                                  "A" + std::to_string(k));
    for (const TaskId st : station_tasks) {
      (void)b.add_edge(st, agg, draw_comm_cost(rng, costs));
      if (!prev_agg.empty()) {
        (void)b.add_edge(prev_agg.front(), st, draw_comm_cost(rng, costs));
      }
    }
    prev_agg.assign(1, agg);
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// FFT butterfly
// ---------------------------------------------------------------------------

int fft_task_count(int points) {
  BSA_REQUIRE(points >= 2 && (points & (points - 1)) == 0,
              "fft needs a power-of-two point count >= 2");
  int stages = 0;
  for (int v = points; v > 1; v >>= 1) ++stages;
  return points * (stages + 1);
}

int fft_points_for(int target_tasks) {
  BSA_REQUIRE(target_tasks >= fft_task_count(2),
              "target size " << target_tasks << " below minimum "
                             << fft_task_count(2));
  // Counts are strictly increasing in the (power-of-two) point count;
  // compute in 64 bits — doubling overshoots int range quickly.
  auto count = [](std::int64_t p) {
    std::int64_t stages = 0;
    for (std::int64_t v = p; v > 1; v >>= 1) ++stages;
    return p * (stages + 1);
  };
  std::int64_t points = 2;
  while (count(points * 2) <= target_tasks) points *= 2;
  if (count(points * 2) - target_tasks < target_tasks - count(points)) {
    points *= 2;
  }
  return static_cast<int>(points);
}

graph::TaskGraph fft(int points, const CostParams& costs) {
  BSA_REQUIRE(points >= 2 && (points & (points - 1)) == 0,
              "fft needs a power-of-two point count >= 2");
  Rng rng(derive_seed(costs.seed, 0x66FFULL));
  int stages = 0;
  for (int v = points; v > 1; v >>= 1) ++stages;
  graph::TaskGraphBuilder b;
  auto id = [points](int s, int i) {
    return static_cast<TaskId>(s * points + i);
  };
  for (int s = 0; s <= stages; ++s) {
    for (int i = 0; i < points; ++i) {
      (void)b.add_task(draw_exec_cost(rng, costs),
                       "F" + std::to_string(s) + "_" + std::to_string(i));
    }
  }
  for (int s = 0; s < stages; ++s) {
    for (int i = 0; i < points; ++i) {
      (void)b.add_edge(id(s, i), id(s + 1, i), draw_comm_cost(rng, costs));
      (void)b.add_edge(id(s, i), id(s + 1, i ^ (1 << s)),
                       draw_comm_cost(rng, costs));
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Fork-join
// ---------------------------------------------------------------------------

int fork_join_task_count(int stages, int width) {
  BSA_REQUIRE(stages >= 1 && width >= 1, "fork_join needs stages,width >= 1");
  return stages * width + stages + 1;
}

graph::TaskGraph fork_join(int stages, int width, const CostParams& costs) {
  BSA_REQUIRE(stages >= 1 && width >= 1, "fork_join needs stages,width >= 1");
  Rng rng(derive_seed(costs.seed, 0x666AULL));  // "fj"
  graph::TaskGraphBuilder b;
  TaskId join = b.add_task(draw_exec_cost(rng, costs), "J0");
  for (int sidx = 1; sidx <= stages; ++sidx) {
    std::vector<TaskId> forks;
    forks.reserve(static_cast<std::size_t>(width));
    for (int w = 0; w < width; ++w) {
      const TaskId f =
          b.add_task(draw_exec_cost(rng, costs),
                     "F" + std::to_string(sidx) + "_" + std::to_string(w));
      (void)b.add_edge(join, f, draw_comm_cost(rng, costs));
      forks.push_back(f);
    }
    const TaskId next_join =
        b.add_task(draw_exec_cost(rng, costs), "J" + std::to_string(sidx));
    for (const TaskId f : forks) {
      (void)b.add_edge(f, next_join, draw_comm_cost(rng, costs));
    }
    join = next_join;
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Tiled Cholesky (right looking, lower triangle)
// ---------------------------------------------------------------------------

int cholesky_task_count(int tiles) {
  BSA_REQUIRE(tiles >= 2, "cholesky needs tiles >= 2");
  // Step k: POTRF + (T-1-k) TRSM + (T-1-k) SYRK + C(T-1-k, 2) GEMM.
  int count = 0;
  for (int k = 0; k < tiles; ++k) {
    const int r = tiles - 1 - k;
    count += 1 + r + r + r * (r - 1) / 2;
  }
  return count;
}

int cholesky_tiles_for(int target_tasks) {
  return dim_for_target(target_tasks, 2, cholesky_task_count);
}

graph::TaskGraph cholesky(int tiles, const CostParams& costs) {
  BSA_REQUIRE(tiles >= 2, "cholesky needs tiles >= 2");
  Rng rng(derive_seed(costs.seed, 0x6368ULL));  // "ch"
  graph::TaskGraphBuilder b;
  std::map<std::tuple<int, int, int>, TaskId> potrf, trsm, syrk, gemm;
  for (int k = 0; k < tiles; ++k) {
    potrf[{k, 0, 0}] = b.add_task(draw_exec_cost(rng, costs),
                                  "POTRF" + std::to_string(k));
    for (int i = k + 1; i < tiles; ++i) {
      trsm[{k, i, 0}] =
          b.add_task(draw_exec_cost(rng, costs),
                     "TRSM" + std::to_string(k) + "_" + std::to_string(i));
      syrk[{k, i, 0}] =
          b.add_task(draw_exec_cost(rng, costs),
                     "SYRK" + std::to_string(k) + "_" + std::to_string(i));
      for (int j = k + 1; j < i; ++j) {
        gemm[{k, i, j}] = b.add_task(
            draw_exec_cost(rng, costs), "CGEMM" + std::to_string(k) + "_" +
                                            std::to_string(i) + "_" +
                                            std::to_string(j));
      }
    }
  }
  auto comm = [&] { return draw_comm_cost(rng, costs); };
  for (int k = 0; k < tiles; ++k) {
    for (int i = k + 1; i < tiles; ++i) {
      (void)b.add_edge(potrf[{k, 0, 0}], trsm[{k, i, 0}], comm());
      // SYRK(k,i) updates the diagonal tile (i,i) with column tile (i,k).
      (void)b.add_edge(trsm[{k, i, 0}], syrk[{k, i, 0}], comm());
      // Diagonal update feeds the next step's factorisation of tile i.
      if (i == k + 1) {
        (void)b.add_edge(syrk[{k, i, 0}], potrf[{k + 1, 0, 0}], comm());
      } else {
        (void)b.add_edge(syrk[{k, i, 0}], syrk[{k + 1, i, 0}], comm());
      }
      for (int j = k + 1; j < i; ++j) {
        // GEMM(k,i,j) updates tile (i,j) with tiles (i,k) and (j,k).
        (void)b.add_edge(trsm[{k, i, 0}], gemm[{k, i, j}], comm());
        (void)b.add_edge(trsm[{k, j, 0}], gemm[{k, i, j}], comm());
        if (j == k + 1) {
          (void)b.add_edge(gemm[{k, i, j}], trsm[{k + 1, i, 0}], comm());
        } else {
          (void)b.add_edge(gemm[{k, i, j}], gemm[{k + 1, i, j}], comm());
        }
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// 1-D stencil pipeline
// ---------------------------------------------------------------------------

int stencil_1d_task_count(int steps, int cells) {
  BSA_REQUIRE(steps >= 1 && cells >= 1, "stencil needs steps,cells >= 1");
  return steps * cells;
}

graph::TaskGraph stencil_1d(int steps, int cells, const CostParams& costs) {
  BSA_REQUIRE(steps >= 1 && cells >= 1, "stencil needs steps,cells >= 1");
  Rng rng(derive_seed(costs.seed, 0x7374ULL));  // "st"
  graph::TaskGraphBuilder b;
  auto id = [cells](int s, int c) {
    return static_cast<TaskId>(s * cells + c);
  };
  for (int s = 0; s < steps; ++s) {
    for (int c = 0; c < cells; ++c) {
      (void)b.add_task(draw_exec_cost(rng, costs),
                       "S" + std::to_string(s) + "_" + std::to_string(c));
    }
  }
  for (int s = 0; s + 1 < steps; ++s) {
    for (int c = 0; c < cells; ++c) {
      for (int d = -1; d <= 1; ++d) {
        const int nc = c + d;
        if (nc < 0 || nc >= cells) continue;
        (void)b.add_edge(id(s, c), id(s + 1, nc), draw_comm_cost(rng, costs));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// 2-D Laplace stencil (5-point, iterated)
// ---------------------------------------------------------------------------

int stencil_2d_task_count(int rows, int cols, int iters) {
  BSA_REQUIRE(rows >= 1 && cols >= 1 && iters >= 1,
              "stencil_2d needs rows,cols,iters >= 1");
  // All edges run between consecutive iterations, so a single sweep
  // over more than one cell would be an edgeless, disconnected graph.
  const std::int64_t cells = static_cast<std::int64_t>(rows) * cols;
  BSA_REQUIRE(iters >= 2 || cells == 1,
              "stencil_2d with rows*cols > 1 needs iters >= 2 "
              "(connectivity)");
  // 64-bit product: option values up to 1e9 would overflow int long
  // before the builder could ever materialise the graph.
  const std::int64_t count = cells * iters;
  BSA_REQUIRE(count <= 50000000,
              "stencil_2d size " << count << " exceeds 50M tasks");
  return static_cast<int>(count);
}

graph::TaskGraph stencil_2d(int rows, int cols, int iters,
                            const CostParams& costs) {
  (void)stencil_2d_task_count(rows, cols, iters);  // validates
  Rng rng(derive_seed(costs.seed, 0x7332ULL));  // "s2"
  graph::TaskGraphBuilder b;
  auto id = [rows, cols](int t, int i, int j) {
    return static_cast<TaskId>((t * rows + i) * cols + j);
  };
  for (int t = 0; t < iters; ++t) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        (void)b.add_task(draw_exec_cost(rng, costs),
                         "G" + std::to_string(t) + "_" + std::to_string(i) +
                             "_" + std::to_string(j));
      }
    }
  }
  constexpr int kDi[] = {0, -1, 1, 0, 0};
  constexpr int kDj[] = {0, 0, 0, -1, 1};
  for (int t = 0; t + 1 < iters; ++t) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        for (int n = 0; n < 5; ++n) {
          const int ni = i + kDi[n], nj = j + kDj[n];
          if (ni < 0 || ni >= rows || nj < 0 || nj >= cols) continue;
          (void)b.add_edge(id(t, i, j), id(t + 1, ni, nj),
                           draw_comm_cost(rng, costs));
        }
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Linear pipeline
// ---------------------------------------------------------------------------

int pipeline_task_count(int stages, int width) {
  BSA_REQUIRE(stages >= 1 && width >= 1, "pipeline needs stages,width >= 1");
  BSA_REQUIRE(stages >= 2 || width == 1,
              "pipeline with width > 1 needs stages >= 2 (connectivity)");
  const std::int64_t count = static_cast<std::int64_t>(stages) * width;
  BSA_REQUIRE(count <= 50000000,
              "pipeline size " << count << " exceeds 50M tasks");
  return static_cast<int>(count);
}

graph::TaskGraph pipeline(int stages, int width, const CostParams& costs) {
  (void)pipeline_task_count(stages, width);  // validates the parameters
  Rng rng(derive_seed(costs.seed, 0x7069ULL));  // "pi"
  graph::TaskGraphBuilder b;
  auto id = [width](int s, int l) {
    return static_cast<TaskId>(s * width + l);
  };
  for (int s = 0; s < stages; ++s) {
    for (int l = 0; l < width; ++l) {
      (void)b.add_task(draw_exec_cost(rng, costs),
                       "P" + std::to_string(s) + "_" + std::to_string(l));
    }
  }
  for (int s = 0; s + 1 < stages; ++s) {
    for (int l = 0; l < width; ++l) {
      (void)b.add_edge(id(s, l), id(s + 1, l), draw_comm_cost(rng, costs));
      if (l + 1 < width) {
        (void)b.add_edge(id(s, l), id(s + 1, l + 1),
                         draw_comm_cost(rng, costs));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Complete trees
// ---------------------------------------------------------------------------

int tree_task_count(int depth, int fanout) {
  BSA_REQUIRE(depth >= 1 && fanout >= 1, "tree needs depth,fanout >= 1");
  int count = 0;
  int level = 1;
  for (int d = 0; d < depth; ++d) {
    count += level;
    level *= fanout;
  }
  return count;
}

graph::TaskGraph out_tree(int depth, int fanout, const CostParams& costs) {
  BSA_REQUIRE(depth >= 1 && fanout >= 1, "tree needs depth,fanout >= 1");
  Rng rng(derive_seed(costs.seed, 0x6F74ULL));  // "ot"
  graph::TaskGraphBuilder b;
  std::vector<TaskId> frontier{b.add_task(draw_exec_cost(rng, costs), "root")};
  for (int d = 1; d < depth; ++d) {
    std::vector<TaskId> next;
    for (const TaskId parent : frontier) {
      for (int c = 0; c < fanout; ++c) {
        const TaskId child = b.add_task(draw_exec_cost(rng, costs));
        (void)b.add_edge(parent, child, draw_comm_cost(rng, costs));
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return b.build();
}

graph::TaskGraph in_tree(int depth, int fanin, const CostParams& costs) {
  BSA_REQUIRE(depth >= 1 && fanin >= 1, "tree needs depth,fanin >= 1");
  Rng rng(derive_seed(costs.seed, 0x6974ULL));  // "it"
  graph::TaskGraphBuilder b;
  // Build leaves-to-root: level sizes fanin^(depth-1) .. 1.
  int leaves = 1;
  for (int d = 1; d < depth; ++d) leaves *= fanin;
  std::vector<TaskId> frontier;
  frontier.reserve(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i) {
    frontier.push_back(b.add_task(draw_exec_cost(rng, costs)));
  }
  while (frontier.size() > 1) {
    std::vector<TaskId> next;
    for (std::size_t i = 0; i < frontier.size(); i += static_cast<std::size_t>(fanin)) {
      const TaskId parent = b.add_task(draw_exec_cost(rng, costs));
      for (std::size_t c = i;
           c < std::min(frontier.size(), i + static_cast<std::size_t>(fanin));
           ++c) {
        (void)b.add_edge(frontier[c], parent, draw_comm_cost(rng, costs));
      }
      next.push_back(parent);
    }
    frontier = std::move(next);
  }
  return b.build();
}

}  // namespace bsa::workloads
