#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

/// \file costs.hpp
/// Shared cost-assignment policy for workload generators (§3 of the
/// paper): task execution costs are drawn uniformly from [100, 200]
/// (average ~150) and communication costs are drawn around
/// (average exec cost / granularity), so granularity 0.1 yields
/// fine-grained graphs (communication ~10x computation) and granularity
/// 10 coarse-grained ones. The workload registry's ccr= option is the
/// reciprocal: granularity = 1/ccr.
///
/// Draws advance the caller's Rng deterministically; the helpers hold
/// no state of their own, so they are thread-safe as long as each
/// thread uses its own Rng (generators derive one per call from the
/// CostParams seed).

namespace bsa::workloads {

struct CostParams {
  Cost exec_lo = 100;
  Cost exec_hi = 200;
  /// Average execution cost / average communication cost (paper §3).
  double granularity = 1.0;
  std::uint64_t seed = 0;
};

/// Draw one execution cost.
[[nodiscard]] inline Cost draw_exec_cost(Rng& rng, const CostParams& p) {
  return static_cast<Cost>(rng.uniform_int(static_cast<std::int64_t>(p.exec_lo),
                                           static_cast<std::int64_t>(p.exec_hi)));
}

/// Draw one communication cost: uniform in [0.5, 1.5] x target average,
/// at least 1 so no message is free.
[[nodiscard]] inline Cost draw_comm_cost(Rng& rng, const CostParams& p) {
  const double avg_exec = 0.5 * (p.exec_lo + p.exec_hi);
  const double target = avg_exec / p.granularity;
  const double v = target * rng.uniform_real(0.5, 1.5);
  return v < 1.0 ? Cost{1} : static_cast<Cost>(static_cast<std::int64_t>(v));
}

}  // namespace bsa::workloads
