#pragma once

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/routing.hpp"
#include "sched/schedule.hpp"

/// \file list_common.hpp
/// Machinery shared by the traditional list-scheduling baselines (DLS and
/// the contention-oblivious EFT): routing a task's incoming messages along
/// pre-computed shortest-path routes while booking contended link slots.
///
/// This is exactly the "routing table" design the paper contrasts BSA
/// against (§1): routes are fixed per processor pair; only the time slots
/// adapt.

namespace bsa::baselines {

/// Compute the data-ready time of task `t` if placed on processor `p`,
/// routing every incoming message from its predecessor's processor to `p`
/// along `table` routes, with store-and-forward hops occupying earliest
/// free link slots (insertion based).
///
/// When `commit` is true the hop bookings are installed into `s`
/// (predecessors must all be placed); when false the computation is
/// tentative and `s` is left untouched. Tentative and committed results
/// are identical because messages are processed in the same deterministic
/// order (ascending edge id).
[[nodiscard]] Time incoming_data_ready(sched::Schedule& s,
                                       const net::RoutingTable& table,
                                       const net::HeterogeneousCostModel& costs,
                                       TaskId t, ProcId p, bool commit);

/// Contention-oblivious estimate of the same quantity: every hop starts
/// the moment its data is available (links are assumed idle). Used by the
/// EFT ablation baseline for its *decisions*.
[[nodiscard]] Time incoming_data_ready_no_contention(
    const sched::Schedule& s, const net::RoutingTable& table,
    const net::HeterogeneousCostModel& costs, TaskId t, ProcId p);

}  // namespace bsa::baselines
