#include "baselines/mh.hpp"

#include <algorithm>

#include "baselines/list_common.hpp"
#include "common/check.hpp"
#include "graph/levels.hpp"
#include "network/routing.hpp"

namespace bsa::baselines {

MhResult schedule_mh(const graph::TaskGraph& g, const net::Topology& topo,
                     const net::HeterogeneousCostModel& costs) {
  BSA_REQUIRE(g.num_tasks() >= 1, "empty task graph");
  const net::RoutingTable table(topo);
  const graph::LevelSets levels = graph::compute_levels(g);
  MhResult result{sched::Schedule(g, topo)};
  sched::Schedule& s = result.schedule;

  std::vector<int> missing_preds(static_cast<std::size_t>(g.num_tasks()));
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    missing_preds[static_cast<std::size_t>(t)] = g.in_degree(t);
    if (g.in_degree(t) == 0) ready.push_back(t);
  }
  std::vector<Time> tf(static_cast<std::size_t>(topo.num_processors()), 0);

  auto priority_less = [&](TaskId a, TaskId b) {
    const Cost ba = levels.b_level[static_cast<std::size_t>(a)];
    const Cost bb = levels.b_level[static_cast<std::size_t>(b)];
    if (!time_eq(ba, bb)) return ba > bb;
    return a < b;
  };

  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), priority_less);
    const TaskId t = ready.front();
    ready.erase(ready.begin());

    // Contention-aware earliest finish over all processors.
    ProcId best_proc = kInvalidProc;
    Time best_eft = kInfiniteTime;
    for (ProcId p = 0; p < topo.num_processors(); ++p) {
      const Time da =
          incoming_data_ready(s, table, costs, t, p, /*commit=*/false);
      const Time eft = std::max(da, tf[static_cast<std::size_t>(p)]) +
                       costs.exec_cost(t, p);
      if (time_lt(eft, best_eft)) {
        best_eft = eft;
        best_proc = p;
      }
    }
    BSA_ASSERT(best_proc != kInvalidProc, "no processor chosen");

    const Time da =
        incoming_data_ready(s, table, costs, t, best_proc, /*commit=*/true);
    const Time start = std::max(da, tf[static_cast<std::size_t>(best_proc)]);
    const Time dur = costs.exec_cost(t, best_proc);
    s.place_task(t, best_proc, start, start + dur);
    tf[static_cast<std::size_t>(best_proc)] = start + dur;

    for (const EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge_dst(e);
      if (--missing_preds[static_cast<std::size_t>(d)] == 0) {
        ready.push_back(d);
      }
    }
  }
  BSA_ASSERT(s.all_placed(), "MH left tasks unscheduled");
  return result;
}

}  // namespace bsa::baselines
