#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"

/// \file dls.hpp
/// The Dynamic Level Scheduling (DLS) baseline of Sih & Lee (IEEE TPDS
/// 1993), the comparison algorithm of the paper's evaluation (§3).
///
/// DLS is a greedy dynamic list scheduler. At every step it evaluates all
/// (ready task, processor) pairs and commits the pair with the largest
/// *dynamic level*
///
///     DL(T_i, P_x) = SL*(T_i) − max(DA(T_i,P_x), TF(P_x)) + Δ(T_i,P_x)
///
/// where SL* is the static level (longest exec-cost chain using each
/// task's *median* execution cost across processors), DA the earliest
/// data-arrival time of the task's messages at P_x (routed hop by hop
/// along a shortest-path routing table, respecting link contention), TF
/// the time P_x finishes its last scheduled task, and
/// Δ(T_i,P_x) = median_exec(T_i) − exec(T_i,P_x) accounts for processor
/// heterogeneity (large when P_x is fast for T_i).

namespace bsa::baselines {

struct DlsOptions {
  /// Tie-breaking seed. 0 (default): fully deterministic ties towards
  /// smaller task id, then processor id. Non-zero: equal dynamic levels
  /// are broken by a stateless hash of (seed, task, processor) — a
  /// deterministic shuffle of the tie order, exposed through the
  /// scheduler registry as "dls:seed=N".
  std::uint64_t seed = 0;
};

struct DlsResult {
  sched::Schedule schedule;
  /// Static levels (indexed by TaskId) used for the dynamic levels.
  std::vector<Cost> static_levels;
  [[nodiscard]] Time schedule_length() const { return schedule.makespan(); }
};

/// Run DLS. The returned schedule is complete and valid.
[[nodiscard]] DlsResult schedule_dls(const graph::TaskGraph& g,
                                     const net::Topology& topo,
                                     const net::HeterogeneousCostModel& costs,
                                     const DlsOptions& options = {});

}  // namespace bsa::baselines
