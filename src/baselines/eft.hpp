#pragma once

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"

/// \file eft.hpp
/// Contention-oblivious earliest-finish-time list scheduler (ablation
/// baseline, *not* from the paper — see DESIGN.md S7).
///
/// Tasks are considered in descending static b-level (nominal costs,
/// communication included). Each task goes to the processor minimising
/// its finish time *as if links were contention free* — the assumption
/// made by classical schedulers such as HEFT. Messages are then routed
/// for real (shortest-path routes, exclusive link slots), so the final
/// schedule is feasible under contention and its length reveals how much
/// the oblivious decisions cost. Comparing EFT against DLS and BSA
/// quantifies the value of modelling link contention at decision time.

namespace bsa::baselines {

struct EftResult {
  sched::Schedule schedule;
  [[nodiscard]] Time schedule_length() const { return schedule.makespan(); }
};

/// Run the contention-oblivious EFT scheduler. The returned schedule is
/// complete and valid (contention respected in the *times*, only the
/// *decisions* ignored it).
[[nodiscard]] EftResult schedule_eft_oblivious(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs);

}  // namespace bsa::baselines
