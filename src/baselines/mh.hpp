#pragma once

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"

/// \file mh.hpp
/// MH — a Mapping-Heuristic-style contention-aware list scheduler (after
/// El-Rewini & Lewis, "Scheduling Parallel Program Tasks onto Arbitrary
/// Target Machines", JPDC 1990), provided as an additional classic
/// baseline alongside DLS. *Extension, not part of the paper's
/// evaluation.*
///
/// Tasks are taken in descending static b-level (nominal costs including
/// communication). Each task is placed on the processor minimising its
/// finish time, where the data-arrival estimate routes every message over
/// the shortest-path table with full link-contention booking — i.e. the
/// same machinery as DLS but with a static priority list and an
/// earliest-finish (instead of dynamic-level) processor choice.

namespace bsa::baselines {

struct MhResult {
  sched::Schedule schedule;
  [[nodiscard]] Time schedule_length() const { return schedule.makespan(); }
};

/// Run the MH-style scheduler. The returned schedule is complete and
/// valid under full contention.
[[nodiscard]] MhResult schedule_mh(const graph::TaskGraph& g,
                                   const net::Topology& topo,
                                   const net::HeterogeneousCostModel& costs);

}  // namespace bsa::baselines
