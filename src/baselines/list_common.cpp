#include "baselines/list_common.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "sched/timeline.hpp"

namespace bsa::baselines {

Time incoming_data_ready(sched::Schedule& s, const net::RoutingTable& table,
                         const net::HeterogeneousCostModel& costs, TaskId t,
                         ProcId p, bool commit) {
  const auto& g = s.task_graph();
  // Tentative bookings made while evaluating this candidate; keyed by
  // link so successive messages in this evaluation see each other.
  std::map<LinkId, std::vector<sched::Interval>> overlay;

  Time drt = 0;
  for (const EdgeId e : g.in_edges(t)) {
    const TaskId src = g.edge_src(e);
    BSA_REQUIRE(s.is_placed(src), "predecessor " << src << " not scheduled");
    const ProcId ps = s.proc_of(src);
    if (ps == p) {
      drt = std::max(drt, s.finish_of(src));
      continue;
    }
    Time ready = s.finish_of(src);
    std::vector<sched::Hop> hops;
    for (const LinkId l : table.route(ps, p)) {
      const Time dur = costs.comm_cost(e, l);
      std::vector<sched::Interval> busy = s.busy_of_link(l);
      if (!commit) {
        // Tentative bookings of earlier messages in this evaluation; in
        // commit mode they are already real bookings.
        const auto it = overlay.find(l);
        if (it != overlay.end()) {
          for (const sched::Interval& iv : it->second) {
            sched::insert_interval(busy, iv);
          }
        }
      }
      const Time st = sched::earliest_fit(busy, ready, dur);
      hops.push_back(sched::Hop{l, st, st + dur});
      if (!commit) overlay[l].push_back(sched::Interval{st, st + dur});
      ready = st + dur;
    }
    drt = std::max(drt, ready);
    if (commit) s.set_route(e, std::move(hops));
  }
  return drt;
}

Time incoming_data_ready_no_contention(
    const sched::Schedule& s, const net::RoutingTable& table,
    const net::HeterogeneousCostModel& costs, TaskId t, ProcId p) {
  const auto& g = s.task_graph();
  Time drt = 0;
  for (const EdgeId e : g.in_edges(t)) {
    const TaskId src = g.edge_src(e);
    BSA_REQUIRE(s.is_placed(src), "predecessor " << src << " not scheduled");
    const ProcId ps = s.proc_of(src);
    Time ready = s.finish_of(src);
    if (ps != p) {
      for (const LinkId l : table.route(ps, p)) {
        ready += costs.comm_cost(e, l);
      }
    }
    drt = std::max(drt, ready);
  }
  return drt;
}

}  // namespace bsa::baselines
