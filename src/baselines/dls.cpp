#include "baselines/dls.hpp"

#include <algorithm>

#include "baselines/list_common.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "network/routing.hpp"

namespace bsa::baselines {
namespace {

/// Static level: longest chain of median execution costs starting at the
/// task (communication excluded, per Sih & Lee).
std::vector<Cost> compute_static_levels(
    const graph::TaskGraph& g, const net::HeterogeneousCostModel& costs) {
  std::vector<Cost> sl(static_cast<std::size_t>(g.num_tasks()), 0);
  const auto& topo_order = g.topological_order();
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const TaskId t = *it;
    Cost best_tail = 0;
    for (const EdgeId e : g.out_edges(t)) {
      best_tail = std::max(
          best_tail, sl[static_cast<std::size_t>(g.edge_dst(e))]);
    }
    sl[static_cast<std::size_t>(t)] = costs.median_exec_cost(t) + best_tail;
  }
  return sl;
}

}  // namespace

DlsResult schedule_dls(const graph::TaskGraph& g, const net::Topology& topo,
                       const net::HeterogeneousCostModel& costs,
                       const DlsOptions& options) {
  BSA_REQUIRE(g.num_tasks() >= 1, "empty task graph");
  BSA_REQUIRE(costs.num_tasks() == g.num_tasks() &&
                  costs.num_processors() == topo.num_processors(),
              "cost model does not match graph/topology");
  const net::RoutingTable table(topo);
  DlsResult result{sched::Schedule(g, topo), compute_static_levels(g, costs)};
  sched::Schedule& s = result.schedule;

  // Ready pool: tasks with all predecessors scheduled.
  std::vector<int> missing_preds(static_cast<std::size_t>(g.num_tasks()));
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    missing_preds[static_cast<std::size_t>(t)] = g.in_degree(t);
    if (g.in_degree(t) == 0) ready.push_back(t);
  }

  // Processor-finish times (append semantics of the TF term).
  std::vector<Time> tf(static_cast<std::size_t>(topo.num_processors()), 0);

  // Tie order among equal dynamic levels: smallest ids when seed == 0,
  // otherwise a deterministic hash shuffle of the (task, processor)
  // pairs. The hash ranks first so a non-zero seed actually permutes
  // ties; ids disambiguate hash collisions.
  const auto tie_wins = [&options](TaskId t, ProcId p, TaskId best_t,
                                   ProcId best_p) {
    if (options.seed == 0) {
      return t < best_t || (t == best_t && p < best_p);
    }
    const std::uint64_t h =
        derive_seed(options.seed, static_cast<std::uint64_t>(t),
                    static_cast<std::uint64_t>(p));
    const std::uint64_t best_h =
        derive_seed(options.seed, static_cast<std::uint64_t>(best_t),
                    static_cast<std::uint64_t>(best_p));
    return h < best_h || (h == best_h && (t < best_t ||
                                          (t == best_t && p < best_p)));
  };

  while (!ready.empty()) {
    // Evaluate every (ready task, processor) pair.
    TaskId best_task = kInvalidTask;
    ProcId best_proc = kInvalidProc;
    Time best_start = 0;
    double best_dl = 0;
    for (const TaskId t : ready) {
      const Cost sl_star = result.static_levels[static_cast<std::size_t>(t)];
      for (ProcId p = 0; p < topo.num_processors(); ++p) {
        const Time da =
            incoming_data_ready(s, table, costs, t, p, /*commit=*/false);
        const Time start = std::max(da, tf[static_cast<std::size_t>(p)]);
        const double delta =
            costs.median_exec_cost(t) - costs.exec_cost(t, p);
        const double dl = sl_star - start + delta;
        const bool better =
            best_task == kInvalidTask || dl > best_dl + kTimeEpsilon ||
            (time_eq(dl, best_dl) && tie_wins(t, p, best_task, best_proc));
        if (better) {
          best_task = t;
          best_proc = p;
          best_start = start;
          best_dl = dl;
        }
      }
    }
    BSA_ASSERT(best_task != kInvalidTask, "no schedulable pair found");

    // Commit: book the message routes, then the task itself.
    const Time da = incoming_data_ready(s, table, costs, best_task, best_proc,
                                        /*commit=*/true);
    const Time start = std::max(da, tf[static_cast<std::size_t>(best_proc)]);
    BSA_ASSERT(time_eq(start, best_start),
               "tentative/commit divergence for task " << best_task);
    const Time dur = costs.exec_cost(best_task, best_proc);
    s.place_task(best_task, best_proc, start, start + dur);
    tf[static_cast<std::size_t>(best_proc)] = start + dur;

    // Update the ready pool.
    ready.erase(std::find(ready.begin(), ready.end(), best_task));
    for (const EdgeId e : g.out_edges(best_task)) {
      const TaskId d = g.edge_dst(e);
      if (--missing_preds[static_cast<std::size_t>(d)] == 0) {
        ready.push_back(d);
      }
    }
    std::sort(ready.begin(), ready.end());
  }
  BSA_ASSERT(s.all_placed(), "DLS left tasks unscheduled");
  return result;
}

}  // namespace bsa::baselines
