#include "graph/graph_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace bsa::graph {

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "# task graph: " << g.num_tasks() << " tasks, " << g.num_edges()
     << " edges\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    os << "task " << g.task_cost(t) << ' ' << g.task_name(t) << '\n';
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "edge " << g.edge_src(e) << ' ' << g.edge_dst(e) << ' '
       << g.edge_cost(e) << '\n';
  }
}

TaskGraph read_text(std::istream& is) {
  TaskGraphBuilder builder;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank line
    if (directive[0] == '#') continue;
    if (directive == "task") {
      Cost cost = 0;
      BSA_REQUIRE(static_cast<bool>(ls >> cost),
                  "line " << line_no << ": task needs a cost");
      std::string name;
      ls >> name;  // optional
      (void)builder.add_task(cost, name);
    } else if (directive == "edge") {
      TaskId src = kInvalidTask;
      TaskId dst = kInvalidTask;
      Cost cost = 0;
      BSA_REQUIRE(static_cast<bool>(ls >> src >> dst >> cost),
                  "line " << line_no << ": edge needs <src> <dst> <cost>");
      (void)builder.add_edge(src, dst, cost);
    } else {
      BSA_REQUIRE(false, "line " << line_no << ": unknown directive '"
                                 << directive << "'");
    }
  }
  return builder.build();
}

std::string to_text(const TaskGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

TaskGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

void write_dot(std::ostream& os, const TaskGraph& g,
               const std::string& graph_name) {
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    os << "  n" << t << " [label=\"" << g.task_name(t) << "\\n"
       << g.task_cost(t) << "\"];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  n" << g.edge_src(e) << " -> n" << g.edge_dst(e) << " [label=\""
       << g.edge_cost(e) << "\"];\n";
  }
  os << "}\n";
}

std::string to_dot(const TaskGraph& g, const std::string& graph_name) {
  std::ostringstream os;
  write_dot(os, g, graph_name);
  return os.str();
}

}  // namespace bsa::graph
