#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace bsa::graph {
namespace {

std::vector<char> reach_mask(const TaskGraph& g, TaskId start, bool forward) {
  std::vector<char> mask(static_cast<std::size_t>(g.num_tasks()), 0);
  std::queue<TaskId> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    const TaskId t = frontier.front();
    frontier.pop();
    const auto edges = forward ? g.out_edges(t) : g.in_edges(t);
    for (const EdgeId e : edges) {
      const TaskId u = forward ? g.edge_dst(e) : g.edge_src(e);
      auto& seen = mask[static_cast<std::size_t>(u)];
      if (!seen) {
        seen = 1;
        frontier.push(u);
      }
    }
  }
  return mask;
}

}  // namespace

std::vector<char> ancestor_mask(const TaskGraph& g, TaskId t) {
  return reach_mask(g, t, /*forward=*/false);
}

std::vector<char> descendant_mask(const TaskGraph& g, TaskId t) {
  return reach_mask(g, t, /*forward=*/true);
}

bool is_reachable(const TaskGraph& g, TaskId src, TaskId dst) {
  BSA_REQUIRE(src != dst, "is_reachable expects distinct tasks");
  return descendant_mask(g, src)[static_cast<std::size_t>(dst)] != 0;
}

bool is_topological_order(const TaskGraph& g,
                          const std::vector<TaskId>& order) {
  if (order.size() != static_cast<std::size_t>(g.num_tasks())) return false;
  std::vector<int> position(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TaskId t = order[i];
    if (t < 0 || t >= g.num_tasks()) return false;
    if (position[static_cast<std::size_t>(t)] != -1) return false;  // dup
    position[static_cast<std::size_t>(t)] = static_cast<int>(i);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (position[static_cast<std::size_t>(g.edge_src(e))] >=
        position[static_cast<std::size_t>(g.edge_dst(e))]) {
      return false;
    }
  }
  return true;
}

int graph_depth(const TaskGraph& g) {
  std::vector<int> depth(static_cast<std::size_t>(g.num_tasks()), 1);
  int best = 0;
  for (const TaskId t : g.topological_order()) {
    const auto ti = static_cast<std::size_t>(t);
    for (const EdgeId e : g.in_edges(t)) {
      const auto pi = static_cast<std::size_t>(g.edge_src(e));
      depth[ti] = std::max(depth[ti], depth[pi] + 1);
    }
    best = std::max(best, depth[ti]);
  }
  return best;
}

}  // namespace bsa::graph
