#include "graph/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <utility>

#include "common/check.hpp"

namespace bsa::graph {

void TaskGraph::check_task(TaskId t) const {
  BSA_REQUIRE(t >= 0 && t < num_tasks(), "task id " << t << " out of range [0,"
                                                    << num_tasks() << ")");
}

void TaskGraph::check_edge(EdgeId e) const {
  BSA_REQUIRE(e >= 0 && e < num_edges(), "edge id " << e << " out of range [0,"
                                                    << num_edges() << ")");
}

EdgeId TaskGraph::find_edge(TaskId src, TaskId dst) const {
  check_task(dst);
  for (EdgeId e : out_edges(src)) {
    if (edges_[static_cast<std::size_t>(e)].dst == dst) return e;
  }
  return kInvalidEdge;
}

double TaskGraph::granularity() const noexcept {
  const Cost avg_comm = average_comm_cost();
  if (avg_comm <= 0) return kInfiniteTime;
  return average_exec_cost() / avg_comm;
}

bool TaskGraph::is_weakly_connected() const {
  if (tasks_.empty()) return true;
  std::vector<char> seen(tasks_.size(), 0);
  std::queue<TaskId> frontier;
  frontier.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!frontier.empty()) {
    const TaskId t = frontier.front();
    frontier.pop();
    auto visit = [&](TaskId u) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++reached;
        frontier.push(u);
      }
    };
    for (EdgeId e : out_edges(t)) visit(edge_dst(e));
    for (EdgeId e : in_edges(t)) visit(edge_src(e));
  }
  return reached == num_tasks();
}

TaskId TaskGraphBuilder::add_task(Cost nominal_cost, std::string name) {
  BSA_REQUIRE(nominal_cost >= 0, "task cost must be non-negative, got "
                                     << nominal_cost);
  const TaskId id = static_cast<TaskId>(tasks_.size());
  if (name.empty()) name = "T" + std::to_string(id + 1);
  tasks_.push_back(TaskGraph::Task{nominal_cost, std::move(name)});
  return id;
}

EdgeId TaskGraphBuilder::add_edge(TaskId src, TaskId dst, Cost nominal_cost) {
  BSA_REQUIRE(src >= 0 && src < num_tasks(), "edge source " << src
                                                            << " unknown");
  BSA_REQUIRE(dst >= 0 && dst < num_tasks(), "edge destination " << dst
                                                                 << " unknown");
  BSA_REQUIRE(src != dst, "self loop on task " << src);
  BSA_REQUIRE(nominal_cost >= 0, "edge cost must be non-negative, got "
                                     << nominal_cost);
  for (const auto& e : edges_) {
    BSA_REQUIRE(!(e.src == src && e.dst == dst),
                "duplicate edge " << src << " -> " << dst);
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(TaskGraph::Edge{src, dst, nominal_cost});
  return id;
}

TaskGraph TaskGraphBuilder::build() {
  BSA_REQUIRE(!tasks_.empty(), "cannot build an empty task graph");
  TaskGraph g;
  g.tasks_ = std::move(tasks_);
  g.edges_ = std::move(edges_);
  tasks_.clear();
  edges_.clear();

  const std::size_t n = g.tasks_.size();
  g.in_.assign(n, {});
  g.out_.assign(n, {});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edges_[static_cast<std::size_t>(e)];
    g.out_[static_cast<std::size_t>(edge.src)].push_back(e);
    g.in_[static_cast<std::size_t>(edge.dst)].push_back(e);
  }

  // Kahn's algorithm with a min-heap over ids: deterministic topological
  // order and cycle detection in one pass.
  std::vector<int> remaining(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    remaining[t] = static_cast<int>(g.in_[t].size());
  }
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (remaining[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }
  g.topo_.reserve(n);
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    g.topo_.push_back(t);
    for (EdgeId e : g.out_[static_cast<std::size_t>(t)]) {
      const TaskId d = g.edges_[static_cast<std::size_t>(e)].dst;
      if (--remaining[static_cast<std::size_t>(d)] == 0) ready.push(d);
    }
  }
  BSA_REQUIRE(g.topo_.size() == n,
              "task graph contains a cycle (" << g.topo_.size() << " of " << n
                                              << " tasks orderable)");

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.in_[static_cast<std::size_t>(t)].empty()) g.entries_.push_back(t);
    if (g.out_[static_cast<std::size_t>(t)].empty()) g.exits_.push_back(t);
  }
  for (const auto& task : g.tasks_) g.total_exec_ += task.nominal_cost;
  for (const auto& edge : g.edges_) g.total_comm_ += edge.nominal_cost;
  return g;
}

}  // namespace bsa::graph
