#pragma once

#include <iosfwd>

#include "common/types.hpp"
#include "graph/task_graph.hpp"

/// \file graph_stats.hpp
/// Descriptive statistics of a task graph, used by the experiment harness
/// and examples to characterise workloads (the paper reports sizes,
/// granularities and CP lengths of its suites).

namespace bsa::graph {

struct GraphStats {
  int num_tasks = 0;
  int num_edges = 0;
  /// Longest path in hops (a single task has depth 1).
  int depth = 0;
  /// Maximum number of tasks at one depth level — an upper estimate of
  /// exploitable parallelism.
  int max_width = 0;
  double avg_in_degree = 0;
  int max_in_degree = 0;
  int max_out_degree = 0;
  Cost total_exec = 0;
  Cost total_comm = 0;
  /// avg exec / avg comm (+inf when the graph has no edges).
  double granularity = 0;
  /// Communication-to-computation ratio: total comm / total exec.
  double ccr = 0;
  /// Nominal critical-path length (exec + comm).
  Cost cp_length = 0;
  /// total_exec / cp_length — average parallelism available.
  double parallelism = 0;
};

/// Compute all statistics in one pass (O(n + e) plus one level sweep).
[[nodiscard]] GraphStats compute_stats(const TaskGraph& g);

/// Human-readable one-block summary.
void print_stats(std::ostream& os, const GraphStats& stats);

}  // namespace bsa::graph
