#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"

/// \file traversal.hpp
/// Reachability helpers over a TaskGraph. Used by the serialization step
/// (recursive ancestor inclusion) and by tests/property checks.

namespace bsa::graph {

/// Boolean mask (indexed by TaskId) of all strict ancestors of `t`.
[[nodiscard]] std::vector<char> ancestor_mask(const TaskGraph& g, TaskId t);

/// Boolean mask (indexed by TaskId) of all strict descendants of `t`.
[[nodiscard]] std::vector<char> descendant_mask(const TaskGraph& g, TaskId t);

/// True when there is a directed path from `src` to `dst` (src != dst).
[[nodiscard]] bool is_reachable(const TaskGraph& g, TaskId src, TaskId dst);

/// True iff `order` contains every task exactly once and never places a
/// task before one of its predecessors.
[[nodiscard]] bool is_topological_order(const TaskGraph& g,
                                        const std::vector<TaskId>& order);

/// Longest path length counted in *hops* from any entry to any exit
/// (graph "depth"); a single task has depth 1.
[[nodiscard]] int graph_depth(const TaskGraph& g);

}  // namespace bsa::graph
