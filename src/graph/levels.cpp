#include "graph/levels.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bsa::graph {
namespace {

void check_cost_spans(const TaskGraph& g, std::span<const Cost> exec_costs,
                      std::span<const Cost> comm_costs) {
  BSA_REQUIRE(exec_costs.size() == static_cast<std::size_t>(g.num_tasks()),
              "exec_costs size " << exec_costs.size() << " != num_tasks "
                                 << g.num_tasks());
  BSA_REQUIRE(comm_costs.size() == static_cast<std::size_t>(g.num_edges()),
              "comm_costs size " << comm_costs.size() << " != num_edges "
                                 << g.num_edges());
}

}  // namespace

LevelSets compute_levels(const TaskGraph& g, std::span<const Cost> exec_costs,
                         std::span<const Cost> comm_costs) {
  check_cost_spans(g, exec_costs, comm_costs);
  const auto n = static_cast<std::size_t>(g.num_tasks());
  LevelSets out;
  out.t_level.assign(n, 0);
  out.b_level.assign(n, 0);

  const auto& topo = g.topological_order();
  for (const TaskId t : topo) {
    const auto ti = static_cast<std::size_t>(t);
    Cost tl = 0;
    for (const EdgeId e : g.in_edges(t)) {
      const TaskId p = g.edge_src(e);
      const auto pi = static_cast<std::size_t>(p);
      tl = std::max(tl, out.t_level[pi] + exec_costs[pi] +
                            comm_costs[static_cast<std::size_t>(e)]);
    }
    out.t_level[ti] = tl;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId t = *it;
    const auto ti = static_cast<std::size_t>(t);
    Cost best_tail = 0;
    for (const EdgeId e : g.out_edges(t)) {
      const TaskId s = g.edge_dst(e);
      best_tail = std::max(best_tail,
                           comm_costs[static_cast<std::size_t>(e)] +
                               out.b_level[static_cast<std::size_t>(s)]);
    }
    out.b_level[ti] = exec_costs[ti] + best_tail;
  }
  for (std::size_t t = 0; t < n; ++t) {
    out.cp_length = std::max(out.cp_length, out.t_level[t] + out.b_level[t]);
  }
  return out;
}

LevelSets compute_levels(const TaskGraph& g) {
  std::vector<Cost> exec(static_cast<std::size_t>(g.num_tasks()));
  std::vector<Cost> comm(static_cast<std::size_t>(g.num_edges()));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  }
  return compute_levels(g, exec, comm);
}

std::vector<TaskId> extract_critical_path(const TaskGraph& g,
                                          std::span<const Cost> exec_costs,
                                          std::span<const Cost> comm_costs,
                                          const LevelSets& levels, Rng& rng) {
  check_cost_spans(g, exec_costs, comm_costs);
  const auto n = static_cast<std::size_t>(g.num_tasks());
  BSA_REQUIRE(levels.t_level.size() == n && levels.b_level.size() == n,
              "levels do not match graph");

  // An edge (t,s) continues a critical path from t exactly when
  // b(t) == exec(t) + comm(t,s) + b(s). best_exec[t] is the largest
  // execution-cost sum achievable on a critical tail starting at t —
  // the paper's rule for choosing among multiple CPs.
  std::vector<Cost> best_exec(n, 0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId t = *it;
    const auto ti = static_cast<std::size_t>(t);
    Cost best_tail = 0;
    for (const EdgeId e : g.out_edges(t)) {
      const TaskId s = g.edge_dst(e);
      const auto si = static_cast<std::size_t>(s);
      const Cost via = exec_costs[ti] + comm_costs[static_cast<std::size_t>(e)] +
                       levels.b_level[si];
      if (time_eq(via, levels.b_level[ti])) {
        best_tail = std::max(best_tail, best_exec[si]);
      }
    }
    best_exec[ti] = exec_costs[ti] + best_tail;
  }

  // Start candidates: entry tasks lying on a CP.
  std::vector<TaskId> starts;
  Cost best_start = -1;
  for (const TaskId t : g.entry_tasks()) {
    if (!levels.on_critical_path(t)) continue;
    const Cost v = best_exec[static_cast<std::size_t>(t)];
    if (starts.empty() || time_lt(best_start, v)) {
      starts.assign(1, t);
      best_start = v;
    } else if (time_eq(v, best_start)) {
      starts.push_back(t);
    }
  }
  BSA_ASSERT(!starts.empty(), "no critical-path entry task found");
  TaskId cur = starts[rng.index(starts.size())];

  std::vector<TaskId> path{cur};
  while (true) {
    const auto ci = static_cast<std::size_t>(cur);
    std::vector<TaskId> nexts;
    Cost best_next = -1;
    for (const EdgeId e : g.out_edges(cur)) {
      const TaskId s = g.edge_dst(e);
      const auto si = static_cast<std::size_t>(s);
      const Cost via = exec_costs[ci] + comm_costs[static_cast<std::size_t>(e)] +
                       levels.b_level[si];
      if (!time_eq(via, levels.b_level[ci])) continue;
      const Cost v = best_exec[si];
      if (nexts.empty() || time_lt(best_next, v)) {
        nexts.assign(1, s);
        best_next = v;
      } else if (time_eq(v, best_next)) {
        nexts.push_back(s);
      }
    }
    if (nexts.empty()) break;
    cur = nexts[rng.index(nexts.size())];
    path.push_back(cur);
  }
  return path;
}

std::vector<TaskId> extract_critical_path(const TaskGraph& g, Rng& rng) {
  std::vector<Cost> exec(static_cast<std::size_t>(g.num_tasks()));
  std::vector<Cost> comm(static_cast<std::size_t>(g.num_edges()));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    exec[static_cast<std::size_t>(t)] = g.task_cost(t);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    comm[static_cast<std::size_t>(e)] = g.edge_cost(e);
  }
  const LevelSets levels = compute_levels(g, exec, comm);
  return extract_critical_path(g, exec, comm, levels, rng);
}

Cost path_exec_cost(std::span<const TaskId> path,
                    std::span<const Cost> exec_costs) {
  Cost sum = 0;
  for (const TaskId t : path) {
    BSA_REQUIRE(t >= 0 && static_cast<std::size_t>(t) < exec_costs.size(),
                "task id " << t << " out of range");
    sum += exec_costs[static_cast<std::size_t>(t)];
  }
  return sum;
}

Cost path_length(const TaskGraph& g, std::span<const TaskId> path,
                 std::span<const Cost> exec_costs,
                 std::span<const Cost> comm_costs) {
  check_cost_spans(g, exec_costs, comm_costs);
  Cost sum = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    sum += exec_costs[static_cast<std::size_t>(path[i])];
    if (i + 1 < path.size()) {
      const EdgeId e = g.find_edge(path[i], path[i + 1]);
      BSA_REQUIRE(e != kInvalidEdge, "path tasks " << path[i] << " and "
                                                   << path[i + 1]
                                                   << " not connected");
      sum += comm_costs[static_cast<std::size_t>(e)];
    }
  }
  return sum;
}

}  // namespace bsa::graph
