#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

/// \file task_graph.hpp
/// The weighted directed-acyclic task-graph model of §2.1 of the paper.
///
/// A parallel program is a set of tasks {T_1..T_n} with a partial order
/// T_i < T_j realised by directed edges carrying messages M_ij. Each task
/// has a *nominal* execution cost τ_i (its cost on the reference — fastest —
/// machine) and each edge a nominal communication cost c_ij. Actual costs
/// on a concrete processor/link are obtained by multiplying with the
/// heterogeneity factors held by a HeterogeneousCostModel.
///
/// TaskGraph is immutable; construct one through TaskGraphBuilder, which
/// validates acyclicity and edge sanity at build() time.

namespace bsa::graph {

/// Immutable weighted DAG. Task and edge ids are dense indices.
class TaskGraph {
 public:
  struct Task {
    Cost nominal_cost = 0;
    std::string name;
  };
  struct Edge {
    TaskId src = kInvalidTask;
    TaskId dst = kInvalidTask;
    Cost nominal_cost = 0;
  };

  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] Cost task_cost(TaskId t) const { return tasks_at(t).nominal_cost; }
  [[nodiscard]] const std::string& task_name(TaskId t) const {
    return tasks_at(t).name;
  }
  [[nodiscard]] Cost edge_cost(EdgeId e) const { return edges_at(e).nominal_cost; }
  [[nodiscard]] TaskId edge_src(EdgeId e) const { return edges_at(e).src; }
  [[nodiscard]] TaskId edge_dst(EdgeId e) const { return edges_at(e).dst; }

  /// Edges whose destination is `t` (incoming messages).
  [[nodiscard]] std::span<const EdgeId> in_edges(TaskId t) const {
    check_task(t);
    return in_[static_cast<std::size_t>(t)];
  }
  /// Edges whose source is `t` (outgoing messages).
  [[nodiscard]] std::span<const EdgeId> out_edges(TaskId t) const {
    check_task(t);
    return out_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] int in_degree(TaskId t) const {
    return static_cast<int>(in_edges(t).size());
  }
  [[nodiscard]] int out_degree(TaskId t) const {
    return static_cast<int>(out_edges(t).size());
  }

  /// The edge src→dst, or kInvalidEdge when absent. O(out_degree(src)).
  [[nodiscard]] EdgeId find_edge(TaskId src, TaskId dst) const;

  /// Tasks with no predecessors / successors, in id order.
  [[nodiscard]] const std::vector<TaskId>& entry_tasks() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<TaskId>& exit_tasks() const noexcept {
    return exits_;
  }

  /// A topological order computed at build time (Kahn, smallest id first —
  /// deterministic).
  [[nodiscard]] const std::vector<TaskId>& topological_order() const noexcept {
    return topo_;
  }

  [[nodiscard]] Cost total_exec_cost() const noexcept { return total_exec_; }
  [[nodiscard]] Cost total_comm_cost() const noexcept { return total_comm_; }
  [[nodiscard]] Cost average_exec_cost() const noexcept {
    return tasks_.empty() ? 0 : total_exec_ / static_cast<Cost>(tasks_.size());
  }
  [[nodiscard]] Cost average_comm_cost() const noexcept {
    return edges_.empty() ? 0 : total_comm_ / static_cast<Cost>(edges_.size());
  }
  /// Granularity as defined in §3: average exec cost / average comm cost.
  /// Returns +inf for graphs without edges.
  [[nodiscard]] double granularity() const noexcept;

  /// True when the underlying undirected graph is connected (the paper
  /// assumes connected task graphs: n-1 <= e).
  [[nodiscard]] bool is_weakly_connected() const;

 private:
  friend class TaskGraphBuilder;
  TaskGraph() = default;

  void check_task(TaskId t) const;
  void check_edge(EdgeId e) const;
  [[nodiscard]] const Task& tasks_at(TaskId t) const {
    check_task(t);
    return tasks_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const Edge& edges_at(EdgeId e) const {
    check_edge(e);
    return edges_[static_cast<std::size_t>(e)];
  }

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<TaskId> entries_;
  std::vector<TaskId> exits_;
  std::vector<TaskId> topo_;
  Cost total_exec_ = 0;
  Cost total_comm_ = 0;
};

/// Mutable builder; build() validates and freezes the graph.
class TaskGraphBuilder {
 public:
  /// Add a task with nominal cost >= 0; returns its id. An empty name is
  /// replaced by "T<i+1>" (1-based, matching the paper's numbering).
  TaskId add_task(Cost nominal_cost, std::string name = {});

  /// Add a directed edge; throws on self loops, unknown endpoints,
  /// duplicate (src,dst) pairs, or negative cost.
  EdgeId add_edge(TaskId src, TaskId dst, Cost nominal_cost);

  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  /// Validate (acyclicity) and produce the immutable graph.
  /// Throws PreconditionError when the edge set contains a cycle or when
  /// the graph is empty. The builder is left empty afterwards.
  [[nodiscard]] TaskGraph build();

 private:
  std::vector<TaskGraph::Task> tasks_;
  std::vector<TaskGraph::Edge> edges_;
};

}  // namespace bsa::graph
