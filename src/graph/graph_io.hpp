#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

/// \file graph_io.hpp
/// Text serialization for task graphs.
///
/// The native format is line-oriented:
///
///   # comment
///   task <cost> [name]          -- declares the next task id (0,1,2,...)
///   edge <src> <dst> <cost>     -- 0-based task ids
///
/// plus Graphviz DOT export for visual inspection of graphs.

namespace bsa::graph {

/// Write `g` in the native text format.
void write_text(std::ostream& os, const TaskGraph& g);

/// Parse the native text format. Throws PreconditionError on malformed
/// input (unknown directive, bad ids, cycles, ...).
[[nodiscard]] TaskGraph read_text(std::istream& is);

/// Round-trip helpers on std::string.
[[nodiscard]] std::string to_text(const TaskGraph& g);
[[nodiscard]] TaskGraph from_text(const std::string& text);

/// Graphviz DOT export; node labels show "name (cost)", edge labels show
/// communication costs.
void write_dot(std::ostream& os, const TaskGraph& g,
               const std::string& graph_name = "task_graph");
[[nodiscard]] std::string to_dot(const TaskGraph& g,
                                 const std::string& graph_name = "task_graph");

}  // namespace bsa::graph
