#include "graph/graph_stats.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

#include "graph/levels.hpp"
#include "graph/traversal.hpp"

namespace bsa::graph {

GraphStats compute_stats(const TaskGraph& g) {
  GraphStats s;
  s.num_tasks = g.num_tasks();
  s.num_edges = g.num_edges();
  s.depth = graph_depth(g);
  s.total_exec = g.total_exec_cost();
  s.total_comm = g.total_comm_cost();
  s.granularity = g.granularity();
  s.ccr = s.total_exec > 0 ? s.total_comm / s.total_exec : 0;

  // Width: tasks per hop-depth level.
  std::vector<int> level(static_cast<std::size_t>(g.num_tasks()), 0);
  std::map<int, int> level_count;
  for (const TaskId t : g.topological_order()) {
    const auto ti = static_cast<std::size_t>(t);
    for (const EdgeId e : g.in_edges(t)) {
      level[ti] = std::max(level[ti],
                           level[static_cast<std::size_t>(g.edge_src(e))] + 1);
    }
    ++level_count[level[ti]];
  }
  for (const auto& [lvl, count] : level_count) {
    (void)lvl;
    s.max_width = std::max(s.max_width, count);
  }

  double in_sum = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    in_sum += g.in_degree(t);
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(t));
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(t));
  }
  s.avg_in_degree = g.num_tasks() > 0 ? in_sum / g.num_tasks() : 0;

  const LevelSets levels = compute_levels(g);
  s.cp_length = levels.cp_length;
  s.parallelism = s.cp_length > 0 ? s.total_exec / s.cp_length : 0;
  return s;
}

void print_stats(std::ostream& os, const GraphStats& s) {
  os << "tasks: " << s.num_tasks << ", edges: " << s.num_edges
     << ", depth: " << s.depth << ", max width: " << s.max_width << '\n'
     << "degrees: avg in " << s.avg_in_degree << ", max in "
     << s.max_in_degree << ", max out " << s.max_out_degree << '\n'
     << "costs: exec " << s.total_exec << ", comm " << s.total_comm
     << ", granularity " << s.granularity << ", CCR " << s.ccr << '\n'
     << "critical path: " << s.cp_length << ", parallelism "
     << s.parallelism << '\n';
}

}  // namespace bsa::graph
