#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/task_graph.hpp"

/// \file levels.hpp
/// t-level / b-level analysis and critical-path extraction (§2.2 of the
/// paper).
///
/// * The *b-level* of a task is the length of the longest path beginning
///   with the task (including its own execution cost).
/// * The *t-level* is the length of the longest path reaching the task
///   (excluding the task's own cost).
/// * Every task on a critical path (CP) satisfies
///   t-level + b-level == CP length.
///
/// All functions take explicit per-task execution costs and per-edge
/// communication costs so the same machinery serves both nominal analysis
/// and the per-processor actual-cost analysis used by BSA's pivot
/// selection (§2.2: "Based on the set of actual execution costs, the CP is
/// constructed").

namespace bsa::graph {

/// Result of a level computation.
struct LevelSets {
  std::vector<Cost> t_level;  ///< indexed by TaskId
  std::vector<Cost> b_level;  ///< indexed by TaskId
  Cost cp_length = 0;         ///< max over tasks of (t_level + b_level)

  /// True when `t` lies on *some* critical path.
  [[nodiscard]] bool on_critical_path(TaskId t) const {
    const auto i = static_cast<std::size_t>(t);
    return time_eq(t_level[i] + b_level[i], cp_length);
  }
};

/// Compute t-levels and b-levels under the given cost vectors.
/// `exec_costs` is indexed by TaskId (size = num_tasks), `comm_costs` by
/// EdgeId (size = num_edges).
[[nodiscard]] LevelSets compute_levels(const TaskGraph& g,
                                       std::span<const Cost> exec_costs,
                                       std::span<const Cost> comm_costs);

/// Convenience overload using the graph's nominal costs.
[[nodiscard]] LevelSets compute_levels(const TaskGraph& g);

/// Extract one critical path as an ordered task sequence (entry to exit).
///
/// When multiple CPs exist the paper's rule applies: select the CP with the
/// largest sum of execution costs; remaining ties are broken randomly via
/// `rng` (Definition 1 / Serialization step 2).
[[nodiscard]] std::vector<TaskId> extract_critical_path(
    const TaskGraph& g, std::span<const Cost> exec_costs,
    std::span<const Cost> comm_costs, const LevelSets& levels, Rng& rng);

/// Convenience: nominal-cost critical path.
[[nodiscard]] std::vector<TaskId> extract_critical_path(const TaskGraph& g,
                                                        Rng& rng);

/// Sum of `exec_costs` over the tasks of `path`.
[[nodiscard]] Cost path_exec_cost(std::span<const TaskId> path,
                                  std::span<const Cost> exec_costs);

/// Length (exec + comm) of a concrete path; throws if consecutive tasks
/// are not connected by an edge.
[[nodiscard]] Cost path_length(const TaskGraph& g,
                               std::span<const TaskId> path,
                               std::span<const Cost> exec_costs,
                               std::span<const Cost> comm_costs);

}  // namespace bsa::graph
