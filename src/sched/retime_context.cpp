#include "sched/retime_context.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace bsa::sched {

RetimeContext::RetimeContext(Schedule& s,
                             const net::HeterogeneousCostModel& costs)
    : s_(&s),
      costs_(&costs),
      g_(&s.task_graph()),
      num_tasks_(s.task_graph().num_tasks()) {
  const auto n = static_cast<std::size_t>(num_tasks_);
  start_.resize(n, 0);
  finish_.resize(n, 0);
  node_edge_.resize(n, kInvalidEdge);
  node_k_.resize(n, 0);
  node_link_.resize(n, kInvalidLink);
  task_active_.resize(n, 0);
  hop_nodes_.resize(static_cast<std::size_t>(g_->num_edges()));
  proc_prev_.resize(n, kNone);
  proc_next_.resize(n, kNone);
  link_prev_.resize(n, kNone);
  link_next_.resize(n, kNone);
  mark_.resize(n, 0);
  indeg_.resize(n, 0);

  // Build the structure and adopt the schedule's times: the schedule is
  // required to be a re-timing fixpoint at construction.
  ++stats_.full_rebuilds;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    task_active_[static_cast<std::size_t>(t)] = s_->is_placed(t) ? 1 : 0;
    if (s_->is_placed(t)) {
      start_[static_cast<std::size_t>(t)] = s_->start_of(t);
      finish_[static_cast<std::size_t>(t)] = s_->finish_of(t);
    }
  }
  for (EdgeId e = 0; e < g_->num_edges(); ++e) rebuild_edge_hops(e);
  for (ProcId p = 0; p < s_->topology().num_processors(); ++p) {
    relink_proc_chain(p);
  }
  for (LinkId l = 0; l < s_->topology().num_links(); ++l) {
    relink_link_chain(l);
  }
  seeds_.clear();  // construction only syncs; nothing to recompute
  stats_.node_count = s_->num_placed() +
                      static_cast<std::int64_t>(start_.size() - n) -
                      static_cast<std::int64_t>(free_.size());
}

// --- node pool --------------------------------------------------------------

void RetimeContext::ensure_node_capacity(int v) {
  const auto need = static_cast<std::size_t>(v) + 1;
  if (start_.size() >= need) return;
  start_.resize(need, 0);
  finish_.resize(need, 0);
  node_edge_.resize(need, kInvalidEdge);
  node_k_.resize(need, 0);
  node_link_.resize(need, kInvalidLink);
  link_prev_.resize(need, kNone);
  link_next_.resize(need, kNone);
  mark_.resize(need, 0);
  indeg_.resize(need, 0);
}

int RetimeContext::alloc_hop_node(EdgeId e, int k, LinkId link) {
  int v = 0;
  if (!free_.empty()) {
    v = free_.back();
    free_.pop_back();
  } else {
    v = static_cast<int>(start_.size());
    ensure_node_capacity(v);
  }
  node_edge_[static_cast<std::size_t>(v)] = e;
  node_k_[static_cast<std::size_t>(v)] = k;
  node_link_[static_cast<std::size_t>(v)] = link;
  link_prev_[static_cast<std::size_t>(v)] = kNone;
  link_next_[static_cast<std::size_t>(v)] = kNone;
  return v;
}

void RetimeContext::free_edge_nodes(EdgeId e) {
  auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
  for (const int v : nodes) free_.push_back(v);
  nodes.clear();
}

// --- structure building ------------------------------------------------------

void RetimeContext::rebuild_edge_hops(EdgeId e) {
  free_edge_nodes(e);
  auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
  const auto& route = s_->route_of(e);
  nodes.reserve(route.size());
  for (int k = 0; k < static_cast<int>(route.size()); ++k) {
    const Hop& h = route[static_cast<std::size_t>(k)];
    const int v = alloc_hop_node(e, k, h.link);
    start_[static_cast<std::size_t>(v)] = h.start;
    finish_[static_cast<std::size_t>(v)] = h.finish;
    nodes.push_back(v);
  }
}

void RetimeContext::seed(int v) { seeds_.push_back(v); }

void RetimeContext::relink_proc_chain(ProcId p) {
  const auto& order = s_->tasks_on(p);
  TaskId prev = kNone;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TaskId u = order[i];
    if (proc_prev_[static_cast<std::size_t>(u)] != prev) {
      proc_prev_[static_cast<std::size_t>(u)] = prev;
      seed(u);
    }
    proc_next_[static_cast<std::size_t>(u)] =
        i + 1 < order.size() ? order[i + 1] : kNone;
    prev = u;
  }
}

void RetimeContext::relink_link_chain(LinkId l) {
  const auto& bookings = s_->bookings_on(l);
  int prev = kNone;
  for (std::size_t i = 0; i < bookings.size(); ++i) {
    const LinkBooking& b = bookings[i];
    const int v = hop_nodes_[static_cast<std::size_t>(b.edge)]
                            [static_cast<std::size_t>(b.hop_index)];
    if (link_prev_[static_cast<std::size_t>(v)] != prev) {
      link_prev_[static_cast<std::size_t>(v)] = prev;
      seed(v);
    }
    if (i + 1 < bookings.size()) {
      const LinkBooking& nb = bookings[i + 1];
      link_next_[static_cast<std::size_t>(v)] =
          hop_nodes_[static_cast<std::size_t>(nb.edge)]
                    [static_cast<std::size_t>(nb.hop_index)];
    } else {
      link_next_[static_cast<std::size_t>(v)] = kNone;
    }
    prev = v;
  }
}

// --- dependency enumeration --------------------------------------------------

template <typename Fn>
void RetimeContext::for_each_pred(int v, Fn&& fn) const {
  if (is_task_node(v)) {
    const auto t = static_cast<TaskId>(v);
    if (proc_prev_[static_cast<std::size_t>(t)] != kNone) {
      fn(proc_prev_[static_cast<std::size_t>(t)]);
    }
    for (const EdgeId e : g_->in_edges(t)) {
      const auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
      if (!nodes.empty()) {
        fn(nodes.back());
      } else {
        const TaskId src = g_->edge_src(e);
        if (task_active_[static_cast<std::size_t>(src)]) fn(src);
      }
    }
    return;
  }
  const EdgeId e = node_edge_[static_cast<std::size_t>(v)];
  const int k = node_k_[static_cast<std::size_t>(v)];
  if (k == 0) {
    const TaskId src = g_->edge_src(e);
    BSA_ASSERT(task_active_[static_cast<std::size_t>(src)],
               "routed message with unplaced source");
    fn(src);
  } else {
    fn(hop_nodes_[static_cast<std::size_t>(e)][static_cast<std::size_t>(k - 1)]);
  }
  if (link_prev_[static_cast<std::size_t>(v)] != kNone) {
    fn(link_prev_[static_cast<std::size_t>(v)]);
  }
}

template <typename Fn>
void RetimeContext::for_each_succ(int v, Fn&& fn) const {
  if (is_task_node(v)) {
    const auto t = static_cast<TaskId>(v);
    if (proc_next_[static_cast<std::size_t>(t)] != kNone) {
      fn(proc_next_[static_cast<std::size_t>(t)]);
    }
    for (const EdgeId e : g_->out_edges(t)) {
      const auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
      if (!nodes.empty()) {
        fn(nodes.front());
      } else {
        const TaskId dst = g_->edge_dst(e);
        if (task_active_[static_cast<std::size_t>(dst)]) fn(dst);
      }
    }
    return;
  }
  const EdgeId e = node_edge_[static_cast<std::size_t>(v)];
  const int k = node_k_[static_cast<std::size_t>(v)];
  const auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
  if (static_cast<std::size_t>(k + 1) < nodes.size()) {
    fn(nodes[static_cast<std::size_t>(k + 1)]);
  } else {
    const TaskId dst = g_->edge_dst(e);
    if (task_active_[static_cast<std::size_t>(dst)]) fn(dst);
  }
  if (link_next_[static_cast<std::size_t>(v)] != kNone) {
    fn(link_next_[static_cast<std::size_t>(v)]);
  }
}

Time RetimeContext::duration_of(int v) const {
  if (is_task_node(v)) {
    const auto t = static_cast<TaskId>(v);
    return costs_->exec_cost(t, s_->proc_of(t));
  }
  return costs_->comm_cost(node_edge_[static_cast<std::size_t>(v)],
                           node_link_[static_cast<std::size_t>(v)]);
}

// --- partial re-topological-sort ---------------------------------------------

void RetimeContext::collect_region() {
  region_.clear();
  queue_.clear();
  ++epoch_;
  for (const int v : seeds_) {
    if (mark_[static_cast<std::size_t>(v)] == epoch_) continue;
    mark_[static_cast<std::size_t>(v)] = epoch_;
    indeg_[static_cast<std::size_t>(v)] = 0;
    region_.push_back(v);
  }
  // Downstream closure: every node whose inputs may change. Because every
  // successor of a region node joins the region, the closure walk also
  // yields the region-restricted indegrees for free — each constraint
  // edge inside the region is enumerated exactly once here.
  for (std::size_t head = 0; head < region_.size(); ++head) {
    for_each_succ(region_[head], [&](int w) {
      const auto wi = static_cast<std::size_t>(w);
      if (mark_[wi] != epoch_) {
        mark_[wi] = epoch_;
        indeg_[wi] = 0;
        region_.push_back(w);
      }
      ++indeg_[wi];
    });
  }
}

bool RetimeContext::sweep_region() {
  // Kahn longest-path sweep over the region (indegrees were accumulated
  // by collect_region). Values of predecessors outside the region are
  // fixed by construction.
  queue_.clear();
  for (const int v : region_) {
    if (indeg_[static_cast<std::size_t>(v)] == 0) queue_.push_back(v);
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const int v = queue_[head];
    ++processed;
    Time st = 0;
    for_each_pred(v, [&](int u) {
      st = std::max(st, finish_[static_cast<std::size_t>(u)]);
    });
    start_[static_cast<std::size_t>(v)] = st;
    finish_[static_cast<std::size_t>(v)] = st + duration_of(v);
    for_each_succ(v, [&](int w) {
      if (mark_[static_cast<std::size_t>(w)] != epoch_) return;
      if (--indeg_[static_cast<std::size_t>(w)] == 0) queue_.push_back(w);
    });
  }
  return processed == region_.size();
}

void RetimeContext::write_back_region() {
  // Large parts of a region often re-derive their previous times (the
  // max over their inputs did not move); skip those — set_hop_times in
  // particular pays a booking lookup per call. The previous times of the
  // nodes actually written are journaled so undo_migration can restore
  // the context after a transactional rollback without a sweep.
  time_undo_.clear();
  for (const int v : region_) {
    const auto vi = static_cast<std::size_t>(v);
    if (is_task_node(v)) {
      const auto t = static_cast<TaskId>(v);
      if (s_->start_of(t) != start_[vi] || s_->finish_of(t) != finish_[vi]) {
        time_undo_.push_back(TimeUndo{v, s_->start_of(t), s_->finish_of(t)});
        s_->set_task_times(t, start_[vi], finish_[vi]);
      }
    } else {
      const Hop& h = s_->route_of(node_edge_[vi])
                         [static_cast<std::size_t>(node_k_[vi])];
      if (h.start != start_[vi] || h.finish != finish_[vi]) {
        time_undo_.push_back(TimeUndo{v, h.start, h.finish});
        s_->set_hop_times(node_edge_[vi], node_k_[vi], start_[vi],
                          finish_[vi]);
      }
    }
  }
}

Time RetimeContext::task_makespan() const {
  Time mk = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (task_active_[static_cast<std::size_t>(t)]) {
      mk = std::max(mk, finish_[static_cast<std::size_t>(t)]);
    }
  }
  return mk;
}

// --- public API --------------------------------------------------------------

bool RetimeContext::retime_full(Time* makespan) {
  ++stats_.full_rebuilds;
  pending_task_ = kInvalidTask;
  // A full rebuild has no re-appliable delta: a later rollback resync
  // must fall back to another full rebuild.
  last_task_ = kInvalidTask;
  last_pre_proc_ = kInvalidProc;
  last_post_proc_ = kInvalidProc;
  last_links_.clear();
  seeds_.clear();
  for (TaskId t = 0; t < num_tasks_; ++t) {
    task_active_[static_cast<std::size_t>(t)] = s_->is_placed(t) ? 1 : 0;
    proc_prev_[static_cast<std::size_t>(t)] = kNone;
    proc_next_[static_cast<std::size_t>(t)] = kNone;
  }
  for (EdgeId e = 0; e < g_->num_edges(); ++e) rebuild_edge_hops(e);
  for (ProcId p = 0; p < s_->topology().num_processors(); ++p) {
    relink_proc_chain(p);
  }
  for (LinkId l = 0; l < s_->topology().num_links(); ++l) {
    relink_link_chain(l);
  }
  // Seed every active node: recompute the whole graph.
  seeds_.clear();
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (task_active_[static_cast<std::size_t>(t)]) seed(t);
  }
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    for (const int v : hop_nodes_[static_cast<std::size_t>(e)]) seed(v);
  }
  collect_region();
  if (!sweep_region()) {
    stale_ = true;
    return false;
  }
  write_back_region();
  stats_.nodes_recomputed += static_cast<std::int64_t>(region_.size());
  stats_.node_count =
      s_->num_placed() +
      static_cast<std::int64_t>(start_.size()) - num_tasks_ -
      static_cast<std::int64_t>(free_.size());
  stale_ = false;
  if (makespan != nullptr) *makespan = task_makespan();
  return true;
}

void RetimeContext::begin_migration(TaskId t) {
  BSA_REQUIRE(t >= 0 && t < num_tasks_, "task id " << t << " out of range");
  pending_task_ = t;
  pre_proc_ = s_->is_placed(t) ? s_->proc_of(t) : kInvalidProc;
  pre_links_.clear();
  for (const EdgeId e : g_->in_edges(t)) {
    for (const Hop& h : s_->route_of(e)) pre_links_.push_back(h.link);
  }
  for (const EdgeId e : g_->out_edges(t)) {
    for (const Hop& h : s_->route_of(e)) pre_links_.push_back(h.link);
  }
}

bool RetimeContext::apply_delta(TaskId t, Time* makespan,
                                std::vector<LinkId> links, ProcId proc_a,
                                ProcId proc_b, bool is_resync) {
  BSA_REQUIRE(s_->is_placed(t), "retime delta for unplaced task " << t);
  // Collect links of the current (post-mutation) routes too.
  for (const EdgeId e : g_->in_edges(t)) {
    for (const Hop& h : s_->route_of(e)) links.push_back(h.link);
  }
  for (const EdgeId e : g_->out_edges(t)) {
    for (const Hop& h : s_->route_of(e)) links.push_back(h.link);
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());

  seeds_.clear();
  // The migrated task's incident routes were rewritten: re-allocate their
  // hop chains (the rest of the graph keeps its nodes).
  for (const EdgeId e : g_->in_edges(t)) {
    rebuild_edge_hops(e);
    for (const int v : hop_nodes_[static_cast<std::size_t>(e)]) seed(v);
  }
  for (const EdgeId e : g_->out_edges(t)) {
    rebuild_edge_hops(e);
    for (const int v : hop_nodes_[static_cast<std::size_t>(e)]) seed(v);
    const TaskId dst = g_->edge_dst(e);
    if (task_active_[static_cast<std::size_t>(dst)]) seed(dst);
  }
  seed(t);
  relink_proc_chain(proc_a);
  if (proc_b != proc_a && proc_b != kInvalidProc) relink_proc_chain(proc_b);
  for (const LinkId l : links) relink_link_chain(l);

  collect_region();
  if (!sweep_region()) {
    stale_ = true;
    return false;
  }
  write_back_region();
  if (is_resync) {
    ++stats_.resyncs;
  } else {
    ++stats_.migrations;
    stats_.nodes_recomputed += static_cast<std::int64_t>(region_.size());
  }
  stats_.node_count =
      s_->num_placed() +
      static_cast<std::int64_t>(start_.size()) - num_tasks_ -
      static_cast<std::int64_t>(free_.size());
  // Remember the delta so a guarded rollback can resync or undo cheaply.
  last_task_ = t;
  last_pre_proc_ = proc_a;
  last_post_proc_ = proc_b;
  last_links_ = std::move(links);
  if (makespan != nullptr) *makespan = task_makespan();
  return true;
}

bool RetimeContext::retime_migration(TaskId t, Time* makespan) {
  if (stale_) return retime_full(makespan);
  BSA_REQUIRE(pending_task_ == t,
              "retime_migration(" << t << ") without matching begin_migration");
  pending_task_ = kInvalidTask;
  const ProcId post = s_->is_placed(t) ? s_->proc_of(t) : kInvalidProc;
  return apply_delta(t, makespan, pre_links_,
                     pre_proc_ == kInvalidProc ? post : pre_proc_, post,
                     /*is_resync=*/false);
}

void RetimeContext::resync_migration(TaskId t) {
  if (stale_) return;  // next retime rebuilds anyway
  if (last_post_proc_ == kInvalidProc && last_pre_proc_ == kInvalidProc) {
    // The last retime was a full rebuild (no recorded delta to re-apply).
    stale_ = true;
    return;
  }
  // The restored schedule differs from the context by the inverse of the
  // last delta: the same resources are affected, so re-applying the delta
  // against the restored state resynchronises structure and times.
  if (!apply_delta(t, nullptr, last_links_,
                   last_pre_proc_ == kInvalidProc ? last_post_proc_
                                                  : last_pre_proc_,
                   last_post_proc_, /*is_resync=*/true)) {
    stale_ = true;  // restored orders should never be cyclic; be safe
  }
}

void RetimeContext::undo_migration(TaskId t) {
  if (stale_) return;  // next retime rebuilds anyway
  if (last_post_proc_ == kInvalidProc && last_pre_proc_ == kInvalidProc) {
    // The last retime was a full rebuild (no recorded delta to undo).
    stale_ = true;
    return;
  }
  BSA_REQUIRE(last_task_ == t, "undo_migration(" << t
                                                 << ") does not match the "
                                                    "last delta (task "
                                                 << last_task_ << ")");
  // The schedule was restored bit-exactly by the caller's transactional
  // rollback; mirror that restoration here. Times first: entries naming
  // hop nodes of t's rewritten routes are stale, but those nodes are
  // re-adopted from the restored schedule by the rebuild below, so the
  // blind writes are harmless.
  for (const TimeUndo& u : time_undo_) {
    start_[static_cast<std::size_t>(u.node)] = u.start;
    finish_[static_cast<std::size_t>(u.node)] = u.finish;
  }
  time_undo_.clear();
  // The journal baseline is the post-mutation schedule, so it cannot
  // cover what the mutations themselves changed: t's placement times and
  // its routes. Re-adopt both from the restored schedule (t is placed
  // again after the rollback).
  start_[static_cast<std::size_t>(t)] = s_->start_of(t);
  finish_[static_cast<std::size_t>(t)] = s_->finish_of(t);
  seeds_.clear();
  for (const EdgeId e : g_->in_edges(t)) rebuild_edge_hops(e);
  for (const EdgeId e : g_->out_edges(t)) rebuild_edge_hops(e);
  const ProcId proc_a =
      last_pre_proc_ == kInvalidProc ? last_post_proc_ : last_pre_proc_;
  relink_proc_chain(proc_a);
  if (last_post_proc_ != proc_a && last_post_proc_ != kInvalidProc) {
    relink_proc_chain(last_post_proc_);
  }
  for (const LinkId l : last_links_) relink_link_chain(l);
  // Relinking seeds changed-predecessor nodes, but the restored times are
  // a fixpoint by construction — nothing needs recomputing.
  seeds_.clear();
  ++stats_.undos;
  stats_.node_count =
      s_->num_placed() +
      static_cast<std::int64_t>(start_.size()) - num_tasks_ -
      static_cast<std::int64_t>(free_.size());
  // The delta is undone; a later rollback has nothing left to re-apply.
  last_task_ = kInvalidTask;
  last_pre_proc_ = kInvalidProc;
  last_post_proc_ = kInvalidProc;
  last_links_.clear();
}

}  // namespace bsa::sched

namespace bsa::sched {

// --- testing aid -------------------------------------------------------------

std::string RetimeContext::check_consistency() const {
  std::ostringstream os;
  // task times + activity
  for (TaskId t = 0; t < num_tasks_; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (static_cast<bool>(task_active_[ti]) != s_->is_placed(t)) {
      os << "task " << t << " active mismatch"; return os.str();
    }
    if (!s_->is_placed(t)) continue;
    if (start_[ti] != s_->start_of(t) || finish_[ti] != s_->finish_of(t)) {
      os << "task " << t << " times (" << start_[ti] << "," << finish_[ti]
         << ") vs sched (" << s_->start_of(t) << "," << s_->finish_of(t) << ")";
      return os.str();
    }
  }
  // proc chains
  for (ProcId p = 0; p < s_->topology().num_processors(); ++p) {
    const auto& order = s_->tasks_on(p);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto ui = static_cast<std::size_t>(order[i]);
      const int expect_prev = i == 0 ? kNone : order[i - 1];
      const int expect_next = i + 1 < order.size() ? order[i + 1] : kNone;
      if (proc_prev_[ui] != expect_prev) {
        os << "proc " << p << " task " << order[i] << " prev " << proc_prev_[ui]
           << " != " << expect_prev; return os.str();
      }
      if (proc_next_[ui] != expect_next) {
        os << "proc " << p << " task " << order[i] << " next " << proc_next_[ui]
           << " != " << expect_next; return os.str();
      }
    }
  }
  // hop nodes + times
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    const auto& route = s_->route_of(e);
    const auto& nodes = hop_nodes_[static_cast<std::size_t>(e)];
    if (nodes.size() != route.size()) {
      os << "edge " << e << " hop count " << nodes.size() << " vs "
         << route.size(); return os.str();
    }
    for (std::size_t k = 0; k < route.size(); ++k) {
      const auto vi = static_cast<std::size_t>(nodes[k]);
      if (node_edge_[vi] != e || node_k_[vi] != static_cast<int>(k) ||
          node_link_[vi] != route[k].link) {
        os << "edge " << e << " hop " << k << " payload mismatch"; return os.str();
      }
      if (start_[vi] != route[k].start || finish_[vi] != route[k].finish) {
        os << "edge " << e << " hop " << k << " times (" << start_[vi] << ","
           << finish_[vi] << ") vs (" << route[k].start << "," << route[k].finish
           << ")"; return os.str();
      }
    }
  }
  // link chains
  for (LinkId l = 0; l < s_->topology().num_links(); ++l) {
    const auto& bookings = s_->bookings_on(l);
    int prev = kNone;
    for (std::size_t i = 0; i < bookings.size(); ++i) {
      const int v = hop_nodes_[static_cast<std::size_t>(bookings[i].edge)]
                              [static_cast<std::size_t>(bookings[i].hop_index)];
      const auto vi = static_cast<std::size_t>(v);
      const int expect_next =
          i + 1 < bookings.size()
              ? hop_nodes_[static_cast<std::size_t>(bookings[i + 1].edge)]
                          [static_cast<std::size_t>(bookings[i + 1].hop_index)]
              : kNone;
      if (link_prev_[vi] != prev) {
        os << "link " << l << " booking " << i << " (edge " << bookings[i].edge
           << " hop " << bookings[i].hop_index << ") prev " << link_prev_[vi]
           << " != " << prev; return os.str();
      }
      if (link_next_[vi] != expect_next) {
        os << "link " << l << " booking " << i << " (edge " << bookings[i].edge
           << " hop " << bookings[i].hop_index << ") next " << link_next_[vi]
           << " != " << expect_next; return os.str();
      }
      prev = v;
    }
  }
  return {};
}
}  // namespace bsa::sched
