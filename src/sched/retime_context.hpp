#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file retime_context.hpp
/// Incremental re-timing engine.
///
/// `try_retime` (retime.hpp) rebuilds the whole order-constraint graph —
/// one node per task plus one per route hop, edges for precedence, route
/// chaining, processor order and link transmission order — and runs a
/// full Kahn longest-path sweep after *every* BSA migration. That full
/// rebuild dominates BSA's O(m^2 e n) inner loop.
///
/// RetimeContext keeps the constraint graph alive across migrations and
/// applies each migration as a *delta*:
///
///  * only the hop chains of the migrated task's incident messages are
///    re-allocated (their routes are the only ones a migration rewrites);
///  * only the two affected processor chains and the link chains touched
///    by the old and new routes are re-linked;
///  * every node whose predecessor set changed becomes a *seed*; the
///    downstream closure of the seeds is re-sorted with a worklist-based
///    partial Kahn pass and only that region's times are recomputed and
///    written back.
///
/// Nodes outside the region provably keep their times: the schedule is a
/// fixpoint of the constraint system between migrations (every retime
/// writes earliest-consistent times), and a node outside the closure has
/// neither a changed predecessor set nor a changed predecessor value.
/// The engine therefore produces bit-identical schedules to the full
/// rebuild — tests/retime_context_test.cpp cross-checks this on
/// randomized scenarios.
///
/// The context is bound to one Schedule. Whenever the schedule is
/// replaced wholesale behind its back (replay_retime fallback), call
/// `invalidate()`; the next call transparently falls back to a full
/// rebuild. A makespan-guarded rollback that restores a snapshot taken
/// at `begin_migration` time can instead call `resync_migration`, which
/// re-applies the same structural delta against the restored schedule.

namespace bsa::sched {

class RetimeContext {
 public:
  /// Bind to `s` and `costs` (both must outlive the context) and build
  /// the constraint graph from the schedule's current state. Times are
  /// adopted from the schedule, which must be a re-timing fixpoint
  /// (true after serialization injection and after every successful
  /// retime).
  RetimeContext(Schedule& s, const net::HeterogeneousCostModel& costs);

  RetimeContext(const RetimeContext&) = delete;
  RetimeContext& operator=(const RetimeContext&) = delete;

  /// Rebuild everything from the schedule and recompute every node —
  /// behaviourally identical to `try_retime`. Returns false (schedule
  /// untouched, context stale) when the recorded orders are cyclic.
  bool retime_full(Time* makespan = nullptr);

  /// Capture the pre-migration structure around task `t`: its processor
  /// and the links of its incident messages' routes. Must be called
  /// before the migration mutates the schedule.
  void begin_migration(TaskId t);

  /// Apply the structural delta around `t` after the migration's
  /// schedule mutations and re-time the affected region. Requires a
  /// matching `begin_migration(t)`. Returns false — leaving the schedule
  /// untouched and the context stale — when the new orders are cyclic
  /// (the caller then falls back to `replay_retime` exactly like the
  /// full-rebuild path). A stale context transparently performs a full
  /// rebuild instead.
  bool retime_migration(TaskId t, Time* makespan = nullptr);

  /// Re-sync after the caller restored the pre-migration snapshot of the
  /// schedule (makespan-guarded rollback): re-applies the last delta
  /// against the restored schedule, which is much cheaper than a full
  /// rebuild.
  void resync_migration(TaskId t);

  /// Cheaper alternative to resync_migration for transactional rollbacks
  /// (Schedule::rollback_transaction): the schedule is already bit-exact
  /// pre-migration state, so the context only (a) restores the node times
  /// the last retime journaled, (b) rebuilds the hop chains of `t`'s
  /// incident messages from the restored routes, and (c) re-links the
  /// touched processor/link chains. No region sweep, no schedule writes —
  /// O(touched). Falls back to marking the context stale when the last
  /// retime was a full rebuild (no recorded delta).
  void undo_migration(TaskId t);

  /// Mark the context stale; the next retime call rebuilds from scratch.
  /// Use when the schedule was replaced wholesale (replay fallback).
  void invalidate() noexcept { stale_ = true; }

  /// Perf counters for benches and traces.
  struct Stats {
    std::int64_t migrations = 0;       ///< delta re-timings applied
    std::int64_t resyncs = 0;          ///< rollback resyncs applied
    std::int64_t undos = 0;            ///< journal-based rollback undos
    std::int64_t full_rebuilds = 0;    ///< full rebuilds (construction, stale)
    std::int64_t nodes_recomputed = 0; ///< region sizes summed (migrations only)
    std::int64_t node_count = 0;       ///< active constraint-graph nodes
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Testing aid: verify the full node/chain/time structure against the
  /// bound schedule. Returns a description of the first inconsistency,
  /// empty when the context mirrors the schedule exactly. O(schedule) —
  /// used by tests after rollback undo paths, not on the hot path.
  [[nodiscard]] std::string check_consistency() const;

 private:
  static constexpr int kNone = -1;

  // --- node identity ------------------------------------------------------
  // Tasks occupy node ids [0, num_tasks); hop nodes are pool-allocated
  // beyond that and recycled through free_.
  [[nodiscard]] bool is_task_node(int v) const noexcept {
    return v < num_tasks_;
  }
  int alloc_hop_node(EdgeId e, int k, LinkId link);
  void free_edge_nodes(EdgeId e);
  void ensure_node_capacity(int v);

  // --- structure building -------------------------------------------------
  void rebuild_edge_hops(EdgeId e);
  void relink_proc_chain(ProcId p);
  void relink_link_chain(LinkId l);
  void seed(int v);

  // --- partial re-topological-sort ----------------------------------------
  void collect_region();
  /// Kahn over the seeded region; false on cycle. On success times of the
  /// region are updated in the node arrays (not yet in the schedule).
  bool sweep_region();
  void write_back_region();
  [[nodiscard]] Time task_makespan() const;

  /// Shared delta driver for retime_migration / resync_migration:
  /// `links` are the link timelines to re-link (the post-mutation route
  /// links of `t`'s incident messages are appended internally), proc_a /
  /// proc_b the two processor chains touched by the move.
  bool apply_delta(TaskId t, Time* makespan, std::vector<LinkId> links,
                   ProcId proc_a, ProcId proc_b, bool is_resync);

  template <typename Fn>
  void for_each_pred(int v, Fn&& fn) const;
  template <typename Fn>
  void for_each_succ(int v, Fn&& fn) const;

  [[nodiscard]] Time duration_of(int v) const;

  Schedule* s_;
  const net::HeterogeneousCostModel* costs_;
  const graph::TaskGraph* g_;
  int num_tasks_ = 0;

  // Node payload, indexed by node id.
  std::vector<Time> start_, finish_;
  std::vector<EdgeId> node_edge_;  // kInvalidEdge for task nodes
  std::vector<int> node_k_;
  std::vector<LinkId> node_link_;
  std::vector<char> task_active_;  // by TaskId

  std::vector<std::vector<int>> hop_nodes_;  // by EdgeId
  std::vector<int> free_;                    // recycled hop node ids

  // Chain neighbours (the order constraints that are not derivable from
  // the task graph alone).
  std::vector<TaskId> proc_prev_, proc_next_;  // by TaskId
  std::vector<int> link_prev_, link_next_;     // by node id

  // Region scratch (epoch-stamped so clears are O(region)).
  std::vector<int> mark_;
  int epoch_ = 0;
  std::vector<int> indeg_;
  std::vector<int> seeds_, region_, queue_;

  // Previous times of the nodes the last write_back_region changed, for
  // undo_migration. Stale entries (hop nodes of the migrated task's
  // edges, re-allocated during the undo) are overwritten harmlessly.
  struct TimeUndo {
    int node = 0;
    Time start = 0, finish = 0;
  };
  std::vector<TimeUndo> time_undo_;

  // begin_migration capture.
  TaskId pending_task_ = kInvalidTask;
  ProcId pre_proc_ = kInvalidProc;
  std::vector<LinkId> pre_links_;
  // Last applied delta (for resync_migration / undo_migration after a
  // rollback).
  TaskId last_task_ = kInvalidTask;
  ProcId last_pre_proc_ = kInvalidProc;
  ProcId last_post_proc_ = kInvalidProc;
  std::vector<LinkId> last_links_;

  bool stale_ = false;
  Stats stats_;
};

}  // namespace bsa::sched
