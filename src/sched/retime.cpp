#include "sched/retime.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "common/check.hpp"

namespace bsa::sched {
namespace {

/// Dense node numbering for the constraint graph: tasks first, then one
/// node per route hop (per-edge contiguous blocks).
struct NodeIndex {
  int num_tasks = 0;
  std::vector<int> hop_base;  // by EdgeId; hop (e,k) -> num_tasks + base + k
  int total = 0;

  explicit NodeIndex(const Schedule& s) {
    const auto& g = s.task_graph();
    num_tasks = g.num_tasks();
    hop_base.resize(static_cast<std::size_t>(g.num_edges()));
    int acc = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      hop_base[static_cast<std::size_t>(e)] = acc;
      acc += static_cast<int>(s.route_of(e).size());
    }
    total = num_tasks + acc;
  }

  [[nodiscard]] int task_node(TaskId t) const { return t; }
  [[nodiscard]] int hop_node(EdgeId e, int k) const {
    return num_tasks + hop_base[static_cast<std::size_t>(e)] + k;
  }
};

}  // namespace

bool try_retime(Schedule& s, const net::HeterogeneousCostModel& costs,
                Time* makespan) {
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  const NodeIndex idx(s);

  std::vector<std::vector<int>> succ(static_cast<std::size_t>(idx.total));
  std::vector<int> indegree(static_cast<std::size_t>(idx.total), 0);
  std::vector<char> active(static_cast<std::size_t>(idx.total), 0);

  auto add_dep = [&](int from, int to) {
    succ[static_cast<std::size_t>(from)].push_back(to);
    ++indegree[static_cast<std::size_t>(to)];
  };

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (s.is_placed(t)) active[static_cast<std::size_t>(idx.task_node(t))] = 1;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = s.route_of(e);
    for (int k = 0; k < static_cast<int>(route.size()); ++k) {
      active[static_cast<std::size_t>(idx.hop_node(e, k))] = 1;
    }
  }

  // Precedence and route-chaining dependencies.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const TaskId src = g.edge_src(e);
    const TaskId dst = g.edge_dst(e);
    const auto& route = s.route_of(e);
    if (route.empty()) {
      if (s.is_placed(src) && s.is_placed(dst)) {
        add_dep(idx.task_node(src), idx.task_node(dst));
      }
      continue;
    }
    BSA_ASSERT(s.is_placed(src), "routed message with unplaced source");
    add_dep(idx.task_node(src), idx.hop_node(e, 0));
    for (int k = 0; k + 1 < static_cast<int>(route.size()); ++k) {
      add_dep(idx.hop_node(e, k), idx.hop_node(e, k + 1));
    }
    if (s.is_placed(dst)) {
      add_dep(idx.hop_node(e, static_cast<int>(route.size()) - 1),
              idx.task_node(dst));
    }
  }
  // Processor order chains.
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    const auto& order = s.tasks_on(p);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      add_dep(idx.task_node(order[i]), idx.task_node(order[i + 1]));
    }
  }
  // Link transmission-order chains.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& bookings = s.bookings_on(l);
    for (std::size_t i = 0; i + 1 < bookings.size(); ++i) {
      add_dep(idx.hop_node(bookings[i].edge, bookings[i].hop_index),
              idx.hop_node(bookings[i + 1].edge, bookings[i + 1].hop_index));
    }
  }

  // Decode helper: map hop node back to (edge, hop index).
  std::vector<EdgeId> hop_edge(
      static_cast<std::size_t>(idx.total - idx.num_tasks));
  std::vector<int> hop_k(static_cast<std::size_t>(idx.total - idx.num_tasks));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = s.route_of(e);
    for (int k = 0; k < static_cast<int>(route.size()); ++k) {
      const auto off =
          static_cast<std::size_t>(idx.hop_node(e, k) - idx.num_tasks);
      hop_edge[off] = e;
      hop_k[off] = k;
    }
  }

  // Kahn longest-path sweep.
  std::vector<Time> start(static_cast<std::size_t>(idx.total), 0);
  std::vector<Time> finish(static_cast<std::size_t>(idx.total), 0);
  std::queue<int> ready;
  int active_count = 0;
  for (int v = 0; v < idx.total; ++v) {
    if (!active[static_cast<std::size_t>(v)]) continue;
    ++active_count;
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }

  int processed = 0;
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop();
    ++processed;
    const auto vi = static_cast<std::size_t>(v);
    if (v < idx.num_tasks) {
      const auto t = static_cast<TaskId>(v);
      finish[vi] = start[vi] + costs.exec_cost(t, s.proc_of(t));
    } else {
      const std::size_t off = vi - static_cast<std::size_t>(idx.num_tasks);
      const EdgeId e = hop_edge[off];
      const Hop& h = s.route_of(e)[static_cast<std::size_t>(hop_k[off])];
      finish[vi] = start[vi] + costs.comm_cost(e, h.link);
    }
    for (const int w : succ[vi]) {
      const auto wi = static_cast<std::size_t>(w);
      start[wi] = std::max(start[wi], finish[vi]);
      if (--indegree[wi] == 0) ready.push(w);
    }
  }
  if (processed != active_count) return false;  // order cycle

  // Write the new times back.
  Time mk = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_placed(t)) continue;
    const auto vi = static_cast<std::size_t>(idx.task_node(t));
    s.set_task_times(t, start[vi], finish[vi]);
    mk = std::max(mk, finish[vi]);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = s.route_of(e);
    for (int k = 0; k < static_cast<int>(route.size()); ++k) {
      const auto vi = static_cast<std::size_t>(idx.hop_node(e, k));
      s.set_hop_times(e, k, start[vi], finish[vi]);
    }
  }
  s.normalize_orders();
  if (makespan != nullptr) *makespan = mk;
  return true;
}

Time retime(Schedule& s, const net::HeterogeneousCostModel& costs) {
  Time mk = 0;
  const bool ok = try_retime(s, costs, &mk);
  BSA_ASSERT(ok, "schedule order constraints contain a cycle");
  return mk;
}

Time replay_retime(Schedule& s, const net::HeterogeneousCostModel& costs,
                   bool insertion_slots) {
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  BSA_REQUIRE(s.all_placed(), "replay requires a complete placement");

  // Snapshot the assignment and priorities.
  const auto n = static_cast<std::size_t>(g.num_tasks());
  std::vector<ProcId> proc(n);
  std::vector<Time> task_prio(n);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    proc[static_cast<std::size_t>(t)] = s.proc_of(t);
    task_prio[static_cast<std::size_t>(t)] = s.start_of(t);
  }
  std::vector<std::vector<LinkId>> route_links(
      static_cast<std::size_t>(g.num_edges()));
  std::vector<std::vector<Time>> hop_prio(
      static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const Hop& h : s.route_of(e)) {
      route_links[static_cast<std::size_t>(e)].push_back(h.link);
      hop_prio[static_cast<std::size_t>(e)].push_back(h.start);
    }
  }

  Schedule fresh(g, topo);

  // Replay state.
  std::vector<Time> task_finish(n, kUnsetTime);
  std::vector<std::vector<Hop>> new_hops(
      static_cast<std::size_t>(g.num_edges()));
  // Item key: (priority, kind 0=task 1=hop, id, hop index).
  using Key = std::tuple<Time, int, std::int64_t, int>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> ready;

  std::vector<int> task_waits(n, 0);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    task_waits[static_cast<std::size_t>(t)] = g.in_degree(t);
    if (g.in_degree(t) == 0) {
      ready.emplace(task_prio[static_cast<std::size_t>(t)], 0, t, 0);
    }
  }

  auto arrival_known = [&](EdgeId e) {
    // Fires once the message's arrival time at its destination processor
    // is determined; enables the destination task.
    const TaskId dst = g.edge_dst(e);
    if (--task_waits[static_cast<std::size_t>(dst)] == 0) {
      ready.emplace(task_prio[static_cast<std::size_t>(dst)], 0, dst, 0);
    }
  };

  auto proc_append_start = [&](ProcId p, Time avail, Time dur) {
    const auto& order = fresh.tasks_on(p);
    Time tail = order.empty() ? Time{0} : fresh.finish_of(order.back());
    (void)dur;
    return std::max(avail, tail);
  };
  auto link_append_start = [&](LinkId l, Time avail, Time dur) {
    const auto& q = fresh.bookings_on(l);
    Time tail = q.empty() ? Time{0} : q.back().finish;
    (void)dur;
    return std::max(avail, tail);
  };

  int executed = 0;
  while (!ready.empty()) {
    const auto [prio, kind, id, k] = ready.top();
    ready.pop();
    ++executed;
    if (kind == 0) {
      const auto t = static_cast<TaskId>(id);
      const auto ti = static_cast<std::size_t>(t);
      Time drt = 0;
      for (const EdgeId e : g.in_edges(t)) {
        const auto& hops = new_hops[static_cast<std::size_t>(e)];
        const Time arr =
            hops.empty()
                ? task_finish[static_cast<std::size_t>(g.edge_src(e))]
                : hops.back().finish;
        BSA_ASSERT(arr != kUnsetTime, "replay ordering bug");
        drt = std::max(drt, arr);
      }
      const ProcId p = proc[ti];
      const Time dur = costs.exec_cost(t, p);
      const Time st = insertion_slots ? fresh.earliest_task_slot(p, drt, dur)
                                      : proc_append_start(p, drt, dur);
      fresh.place_task(t, p, st, st + dur);
      task_finish[ti] = st + dur;
      // Enable outgoing messages.
      for (const EdgeId e : g.out_edges(t)) {
        if (route_links[static_cast<std::size_t>(e)].empty()) {
          arrival_known(e);
        } else {
          ready.emplace(hop_prio[static_cast<std::size_t>(e)][0], 1, e, 0);
        }
      }
    } else {
      const auto e = static_cast<EdgeId>(id);
      const auto ei = static_cast<std::size_t>(e);
      const LinkId l = route_links[ei][static_cast<std::size_t>(k)];
      const Time avail =
          k == 0 ? task_finish[static_cast<std::size_t>(g.edge_src(e))]
                 : new_hops[ei][static_cast<std::size_t>(k - 1)].finish;
      BSA_ASSERT(avail != kUnsetTime, "replay ordering bug (hop)");
      const Time dur = costs.comm_cost(e, l);
      const Time st = insertion_slots ? fresh.earliest_link_slot(l, avail, dur)
                                      : link_append_start(l, avail, dur);
      const Hop h{l, st, st + dur};
      fresh.append_hop(e, h);  // book immediately so later searches see it
      new_hops[ei].push_back(h);
      if (static_cast<std::size_t>(k + 1) < route_links[ei].size()) {
        ready.emplace(hop_prio[ei][static_cast<std::size_t>(k + 1)], 1, e,
                      k + 1);
      } else {
        arrival_known(e);
      }
    }
  }
  std::size_t expected = n;
  for (const auto& links : route_links) expected += links.size();
  BSA_ASSERT(static_cast<std::size_t>(executed) == expected,
             "replay executed " << executed << " of " << expected
                                << " items");
  s = std::move(fresh);
  return s.makespan();
}

}  // namespace bsa::sched
